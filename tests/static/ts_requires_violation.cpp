// Thread-safety-analysis regression snippet: REQUIRES VIOLATION.
//
// As written, the MALSCHED_REQUIRES(mutex) helper is only called with the
// lock held and the snippet compiles clean under `-Wthread-safety
// -Wthread-safety-beta -Werror`. With MALSCHED_STATIC_VIOLATE defined, the
// caller skips the lock -- calling a *_locked function without its
// precondition, the mistake the service's enqueue_locked/-style helpers
// exist to catch -- and the build MUST fail (enforced by
// tests/static/static_checks.cmake).

#include "support/mutex.hpp"

namespace {

struct Queue {
  malsched::Mutex mutex;
  int depth MALSCHED_GUARDED_BY(mutex){0};

  void push_locked() MALSCHED_REQUIRES(mutex) { ++depth; }

  void push() MALSCHED_EXCLUDES(mutex) {
#if defined(MALSCHED_STATIC_VIOLATE)
    push_locked();  // precondition not established
#else
    const malsched::LockGuard lock(mutex);
    push_locked();
#endif
  }
};

}  // namespace

int main() {
  Queue queue;
  queue.push();
  return 0;
}
