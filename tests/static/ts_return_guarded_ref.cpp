// Thread-safety-analysis regression snippet: GUARDED REFERENCE ESCAPE.
//
// As written, readers copy the guarded value under the lock and the snippet
// compiles clean under `-Wthread-safety -Wthread-safety-beta -Werror`. With
// MALSCHED_STATIC_VIOLATE defined, an accessor returns a REFERENCE to the
// guarded field without the lock: the escaped alias lets every caller read
// and write the field forever with no lock at all, so GUARDED_BY stops
// meaning anything for this member. Clang's reference-return check (part
// of -Wthread-safety, clang >= 17) rejects it and the build MUST fail
// (enforced by tests/static/static_checks.cmake).

#include "support/mutex.hpp"

namespace {

struct Meter {
  malsched::Mutex mutex;
  long total MALSCHED_GUARDED_BY(mutex){0};

  void add(long amount) MALSCHED_EXCLUDES(mutex) {
    const malsched::LockGuard lock(mutex);
    total += amount;
  }

#if defined(MALSCHED_STATIC_VIOLATE)
  long& peek() MALSCHED_EXCLUDES(mutex) {
    return total;  // unguarded alias escapes: callers mutate with no lock
  }
#else
  long snapshot() MALSCHED_EXCLUDES(mutex) {
    const malsched::LockGuard lock(mutex);
    return total;  // by VALUE: the lock covers the read, nothing escapes
  }
#endif
};

}  // namespace

int main() {
  Meter meter;
  meter.add(2);
#if defined(MALSCHED_STATIC_VIOLATE)
  return meter.peek() == 2 ? 0 : 1;
#else
  return meter.snapshot() == 2 ? 0 : 1;
#endif
}
