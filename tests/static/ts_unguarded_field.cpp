// Thread-safety-analysis regression snippet: UNGUARDED FIELD ACCESS.
//
// As written, every touch of `balance` holds the guarding mutex and the
// snippet compiles clean under `-Wthread-safety -Wthread-safety-beta
// -Werror`. With MALSCHED_STATIC_VIOLATE defined, read() reaches the
// MALSCHED_GUARDED_BY field without the lock -- the exact mistake a torn
// ServiceStats read would be -- and the build MUST fail (enforced by
// tests/static/static_checks.cmake).

#include "support/mutex.hpp"

namespace {

struct Account {
  malsched::Mutex mutex;
  int balance MALSCHED_GUARDED_BY(mutex){0};

  void deposit(int amount) MALSCHED_EXCLUDES(mutex) {
    const malsched::LockGuard lock(mutex);
    balance += amount;
  }

  int read() MALSCHED_EXCLUDES(mutex) {
#if defined(MALSCHED_STATIC_VIOLATE)
    return balance;  // racy read: no lock held
#else
    const malsched::LockGuard lock(mutex);
    return balance;
#endif
  }
};

}  // namespace

int main() {
  Account account;
  account.deposit(1);
  return account.read() == 1 ? 0 : 1;
}
