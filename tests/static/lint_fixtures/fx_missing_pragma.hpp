// Lint fixture: header without #pragma once. (The directive lives in the
// marker below, not the file, so double inclusion would redefine the
// function.)
// lint:expect(pragma-once)

inline int fixture_answer() { return 42; }
