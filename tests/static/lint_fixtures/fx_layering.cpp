// Lint fixture: a layering back-edge. The lint:layer(core) directive pins
// this file to the core/ layer (fixtures live under tests/, which may
// include anything, so the pin is what makes the violation expressible);
// core (rank 30) must not include api/ (rank 80) -- the include below is
// exactly the upward dependency the layering DAG check exists to reject,
// reported with the offending include edge (and, in the real tree, the
// chain closing the cycle).
// lint:layer(core)
// lint:expect(layering)
#include "api/malsched.hpp"

int fixture_uses_api_from_core() { return 0; }
