// Lint fixture: an unbounded CondVar wait loop with no documented wake
// contract. Without an `unblocked by:` comment naming every notifying path
// (including the shutdown/cancel one), nothing forces the author to prove
// the loop can exit -- the classic drain()/shutdown() hang.
// lint:expect(cv-wait-predicate)
#include "support/mutex.hpp"

namespace {
malsched::Mutex fixture_mutex;
malsched::CondVar fixture_cv_;
bool fixture_ready = false;
}  // namespace

void fixture_wait_undocumented() {
  const malsched::LockGuard lock(fixture_mutex);
  while (!fixture_ready) fixture_cv_.wait(fixture_mutex);
}

void fixture_wait_documented() {
  const malsched::LockGuard lock(fixture_mutex);
  // unblocked by: fixture_release() notifying after setting fixture_ready,
  // and fixture_shutdown() notifying all with the flag forced true.
  while (!fixture_ready) fixture_cv_.wait(fixture_mutex);
}
