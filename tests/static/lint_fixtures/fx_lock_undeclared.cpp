// Lint fixture: a consistent but UNDECLARED lock ordering. Nesting outer_
// over inner_ is deadlock-free as written, but the ordering is not declared
// in a lint:lock-order(...) directive (src/support/mutex.hpp carries the
// real tree's hierarchy), so the analysis reports one undeclared-edge
// finding: every ordering the code relies on must be reviewed into the
// hierarchy, or a second, reversed nesting elsewhere becomes a deadlock
// nobody models.
// lint:expect(lock-order-undeclared)
#include "support/mutex.hpp"

struct FixtureRouter {
  malsched::Mutex outer_;
  malsched::Mutex inner_;
  int routes MALSCHED_GUARDED_BY(outer_){0};
  int hops MALSCHED_GUARDED_BY(inner_){0};

  void reroute() {
    const malsched::LockGuard table(outer_);
    ++routes;
    const malsched::LockGuard leaf(inner_);
    ++hops;
  }
};
