// Lint fixture: a static deadlock. Two methods of the same class take the
// same two mutexes in OPPOSITE orders -- thread 1 in forward() holds
// first_ and wants second_ while thread 2 in backward() holds second_ and
// wants first_. The lock-order analysis must report the cycle (one finding,
// with the witness path); the two edges forming it are exempt from the
// undeclared-ordering check because the cycle is the actionable diagnosis.
// lint:expect(lock-order)
#include "support/mutex.hpp"

struct FixtureLedger {
  malsched::Mutex first_;
  malsched::Mutex second_;
  int balance MALSCHED_GUARDED_BY(first_){0};
  int audit MALSCHED_GUARDED_BY(second_){0};

  void forward() {
    const malsched::LockGuard a(first_);
    const malsched::LockGuard b(second_);
    audit = balance;
  }

  void backward() {
    const malsched::LockGuard b(second_);
    const malsched::LockGuard a(first_);
    balance = audit;
  }
};
