// Lint fixture: the same raw-mutex violations as fx_raw_mutex.cpp, but
// every one carries a lint:allow -- the linter must report NOTHING here
// (no lint:expect markers). Exercises both same-line and preceding-line
// suppression.
#include <mutex>

namespace {
std::mutex fixture_mutex;  // lint:allow(raw-mutex)
int fixture_value = 0;
}  // namespace

void fixture_bump() {
  // lint:allow(raw-mutex)
  const std::lock_guard<std::mutex> lock(fixture_mutex);
  ++fixture_value;
}
