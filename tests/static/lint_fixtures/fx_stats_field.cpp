// Lint fixture: a ServiceStats counter that misses the sharded rollup. The
// struct declares three counters; accumulate_stats sums only two, so a
// sharded-tier stats() call would silently report retries_ever as 0. The
// stats-exhaustiveness analysis must report exactly that field (the
// serializer below is complete, and the schema sub-check only runs in tree
// mode, so the rollup gap is the single finding). In the real tree the
// anchors are src/api/scheduler_service.hpp, src/api/sharded_service.cpp,
// src/api/stats_json.cpp, and bench/bench_schema.json.
// lint:expect(stats-exhaustive)

struct JsonSink {
  void key(const char* name);
  void value(unsigned long long number);
};

struct ServiceStats {
  unsigned long long accepted{0};
  unsigned long long served{0};
  unsigned long long retries_ever{0};
};

void accumulate_stats(ServiceStats& total, const ServiceStats& shard) {
  total.accepted += shard.accepted;
  total.served += shard.served;
}

void write_service_stats(JsonSink& json, const ServiceStats& stats) {
  json.key("accepted");
  json.value(stats.accepted);
  json.key("served");
  json.value(stats.served);
  json.key("retries_ever");
  json.value(stats.retries_ever);
}
