// Lint fixture: printf-family output from library code. snprintf is the
// one sanctioned member (bounded, used by support/json.cpp for float
// formatting) and must NOT be flagged.
// lint:expect(printf)
#include <cstdio>

void fixture_report(double value) {
  std::printf("value=%f\n", value);
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%f", value);  // allowed: bounded
}
