// Lint fixture: raw standard-library locking that bypasses the annotated
// support/mutex.hpp wrapper (invisible to -Wthread-safety).
// lint:expect(raw-mutex)
// lint:expect(raw-mutex)
#include <mutex>

namespace {
std::mutex fixture_mutex;
int fixture_value = 0;
}  // namespace

void fixture_bump() {
  const std::lock_guard<std::mutex> lock(fixture_mutex);  // lint counts the line once
  ++fixture_value;
}
