// Lint fixture: C wall-clock APIs in trace/replay timing code. Arrival
// traces and latency replays timestamp in steady-clock seconds relative to
// a run anchor (support/stopwatch.hpp); gettimeofday / clock_gettime /
// timespec_get reads make two runs' timestamps incomparable and break the
// same-seed reproducibility contract. clock_gettime is flagged even with
// CLOCK_MONOTONIC -- monotonic reads belong behind the Stopwatch.
// lint:expect(steady-clock)
// lint:expect(steady-clock)
// lint:expect(steady-clock)
#include <ctime>
#include <sys/time.h>

double fixture_trace_anchor() {
  timeval now{};
  gettimeofday(&now, nullptr);
  return static_cast<double>(now.tv_sec) + static_cast<double>(now.tv_usec) * 1e-6;
}

double fixture_monotonic_read() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

double fixture_c11_read() {
  timespec ts{};
  timespec_get(&ts, TIME_UTC);
  return static_cast<double>(ts.tv_sec);
}

// A type or member merely NAMED like the APIs must NOT trip the call-shaped
// pattern: only actual calls are wall-clock reads.
struct FixtureClockNames {
  int gettimeofday_calls{0};
  int clock_gettime_errors{0};
};
