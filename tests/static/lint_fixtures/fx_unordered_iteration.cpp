// Lint fixture: hash-order iteration over an unordered container -- the
// classic nondeterminism leak into JSON/table artifacts.
// lint:expect(unordered-iteration)
#include <string>
#include <unordered_map>

int fixture_total() {
  std::unordered_map<std::string, int> counts{{"a", 1}, {"b", 2}};
  int total = 0;
  for (const auto& entry : counts) {
    total += entry.second;
  }
  return total;
}
