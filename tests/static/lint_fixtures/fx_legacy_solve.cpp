// Lint fixture: a new call site using legacy string-name dispatch --
// solve("name", instance, options) -- instead of building a SolveRequest
// over an interned InstanceHandle (API v2). The string-literal first
// argument appears on exactly one code line, so exactly one finding.
// lint:expect(legacy-api)

struct FixtureRegistry {
  int solve(const char* name, const struct FixtureInstance& instance) const;
};

int fixture_dispatch(const FixtureRegistry& registry, const struct FixtureInstance& instance) {
  return registry.solve("mrt", instance);
}

// The v2 shape -- a request variable as the only argument -- must NOT trip:
int fixture_dispatch_v2(const struct FixtureService& service, const struct FixtureRequest& request);
