// Lint fixture: wall-clock timing outside support/stopwatch.hpp.
// lint:expect(steady-clock)
// lint:expect(steady-clock)
#include <chrono>

double fixture_elapsed() {
  const auto start = std::chrono::system_clock::now();
  const auto stop = std::chrono::high_resolution_clock::now();
  return std::chrono::duration<double>(stop.time_since_epoch() -
                                       start.time_since_epoch())
      .count();
}
