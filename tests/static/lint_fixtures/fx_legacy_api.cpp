// Lint fixture: a new call site reaching for the legacy BatchJob entry
// point instead of SolveRequest/SchedulerService (API v2). The legacy name
// appears on exactly one code line, so exactly one finding.
// lint:expect(legacy-api)

int fixture_submit(const struct BatchJob& job);

int fixture_forward(const struct fixture_opaque& job);
