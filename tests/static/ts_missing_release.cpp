// Thread-safety-analysis regression snippet: MISSING RELEASE.
//
// As written, the manual lock()/unlock() pair is balanced and the snippet
// compiles clean under `-Wthread-safety -Wthread-safety-beta -Werror`.
// With MALSCHED_STATIC_VIOLATE defined, the unlock disappears -- the
// function exits still holding a capability it promised (by EXCLUDES) not
// to keep -- and the build MUST fail (enforced by
// tests/static/static_checks.cmake).

#include "support/mutex.hpp"

namespace {

struct Counter {
  malsched::Mutex mutex;
  int value MALSCHED_GUARDED_BY(mutex){0};

  void bump() MALSCHED_EXCLUDES(mutex) {
    mutex.lock();
    ++value;
#if !defined(MALSCHED_STATIC_VIOLATE)
    mutex.unlock();
#endif
  }
};

}  // namespace

int main() {
  Counter counter;
  counter.bump();
  return 0;
}
