# Compile-fail harness for the thread-safety annotations (configure-time).
#
# Every ts_*.cpp snippet in this directory has two personalities:
#
#   * good (default):                the snippet holds the right locks and
#     MUST COMPILE under every configured compiler -- gcc included, where
#     the MALSCHED_* annotation macros expand to nothing. This keeps the
#     snippets honest C++ instead of rotting behind an #ifdef.
#
#   * bad (-DMALSCHED_STATIC_VIOLATE): the snippet commits one seeded
#     concurrency mistake (unguarded field access, missing release,
#     REQUIRES violation, double acquire) and MUST BE REJECTED by clang's
#     `-Wthread-safety -Wthread-safety-beta -Werror`. A bad variant that
#     compiles means the annotations stopped protecting that class of bug,
#     so the configure step fails hard.
#
# Bad variants are only exercised under clang (gcc has no thread-safety
# analysis; off clang the annotations are no-ops and the seeded bugs
# compile "fine"). The harness passes the analysis flags itself, so any
# clang configure -- not just -DMALSCHED_THREAD_SAFETY=ON -- runs them.

set(MALSCHED_STATIC_SNIPPETS
  ts_unguarded_field
  ts_missing_release
  ts_requires_violation
  ts_double_acquire
  ts_return_guarded_ref
  ts_excludes_violation)

set(MALSCHED_STATIC_DIR ${CMAKE_CURRENT_LIST_DIR})
set(MALSCHED_STATIC_BIN ${CMAKE_BINARY_DIR}/static_checks)

foreach(snippet IN LISTS MALSCHED_STATIC_SNIPPETS)
  set(snippet_source ${MALSCHED_STATIC_DIR}/${snippet}.cpp)

  # Fresh verdict every configure: try_compile caches its result variable,
  # and a stale OK must not mask a regression introduced since.
  unset(MALSCHED_STATIC_GOOD_${snippet} CACHE)
  try_compile(MALSCHED_STATIC_GOOD_${snippet}
    ${MALSCHED_STATIC_BIN}/${snippet}_good
    SOURCES ${snippet_source}
    CMAKE_FLAGS "-DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}/src"
    LINK_LIBRARIES Threads::Threads
    CXX_STANDARD 20
    CXX_STANDARD_REQUIRED ON
    OUTPUT_VARIABLE MALSCHED_STATIC_GOOD_LOG)
  if(NOT MALSCHED_STATIC_GOOD_${snippet})
    message(FATAL_ERROR
      "static check ${snippet}: the CORRECTED snippet failed to compile -- "
      "the harness is broken, not the annotations.\n"
      "${MALSCHED_STATIC_GOOD_LOG}")
  endif()

  if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    unset(MALSCHED_STATIC_BAD_${snippet} CACHE)
    try_compile(MALSCHED_STATIC_BAD_${snippet}
      ${MALSCHED_STATIC_BIN}/${snippet}_bad
      SOURCES ${snippet_source}
      CMAKE_FLAGS
        "-DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}/src"
        "-DCMAKE_CXX_FLAGS=-Wthread-safety -Wthread-safety-beta -Werror"
      COMPILE_DEFINITIONS -DMALSCHED_STATIC_VIOLATE
      LINK_LIBRARIES Threads::Threads
      CXX_STANDARD 20
      CXX_STANDARD_REQUIRED ON
      OUTPUT_VARIABLE MALSCHED_STATIC_BAD_LOG)
    if(MALSCHED_STATIC_BAD_${snippet})
      message(FATAL_ERROR
        "static check ${snippet}: the SEEDED VIOLATION compiled clean under "
        "-Wthread-safety -- the annotations no longer reject this bug class.")
    endif()
    message(STATUS "static check ${snippet}: good compiles, bad rejected")
  else()
    message(STATUS
      "static check ${snippet}: good compiles (violation check needs clang)")
  endif()
endforeach()
