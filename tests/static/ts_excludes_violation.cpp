// Thread-safety-analysis regression snippet: EXCLUDES VIOLATION.
//
// As written, reset() is called only with the mutex free and the snippet
// compiles clean under `-Wthread-safety -Wthread-safety-beta -Werror`. With
// MALSCHED_STATIC_VIOLATE defined, a method that already holds the mutex
// calls reset() -- whose MALSCHED_EXCLUDES(mutex) contract says "I take
// this lock myself" -- so the non-recursive mutex would be acquired twice:
// the same self-deadlock as ts_double_acquire, but hidden behind a call
// boundary, which is exactly where code review stops seeing it. The
// analysis rejects the call and the build MUST fail (enforced by
// tests/static/static_checks.cmake).

#include "support/mutex.hpp"

namespace {

struct Tracker {
  malsched::Mutex mutex;
  int pending MALSCHED_GUARDED_BY(mutex){0};

  void reset() MALSCHED_EXCLUDES(mutex) {
    const malsched::LockGuard lock(mutex);
    pending = 0;
  }

  void record_and_flush() MALSCHED_EXCLUDES(mutex) {
    {
      const malsched::LockGuard lock(mutex);
      ++pending;
#if defined(MALSCHED_STATIC_VIOLATE)
      reset();  // EXCLUDES(mutex) callee, mutex held: relock through a call
#endif
    }
    reset();  // lock released: the contract holds
  }
};

}  // namespace

int main() {
  Tracker tracker;
  tracker.record_and_flush();
  return 0;
}
