// Thread-safety-analysis regression snippet: LOCK ACQUIRED TWICE.
//
// As written, each scope takes the mutex once and the snippet compiles
// clean under `-Wthread-safety -Wthread-safety-beta -Werror`. With
// MALSCHED_STATIC_VIOLATE defined, a second LockGuard acquires the same
// (non-recursive!) mutex in the same scope -- a guaranteed self-deadlock at
// runtime, rejected at compile time -- and the build MUST fail (enforced by
// tests/static/static_checks.cmake).

#include "support/mutex.hpp"

namespace {

struct Tally {
  malsched::Mutex mutex;
  int total MALSCHED_GUARDED_BY(mutex){0};

  void add(int amount) MALSCHED_EXCLUDES(mutex) {
    const malsched::LockGuard lock(mutex);
#if defined(MALSCHED_STATIC_VIOLATE)
    // The repo linter's lock-order analysis is preprocessor-blind and sees
    // this deliberate relock too; the violation is this snippet's PURPOSE.
    // lint:allow(lock-order)
    const malsched::LockGuard again(mutex);  // self-deadlock
#endif
    total += amount;
  }
};

}  // namespace

int main() {
  Tally tally;
  tally.add(2);
  return 0;
}
