// Tests for src/graph: DAG construction/validation, levels and critical
// paths, the layered and ready-list schedulers, and the graph workload
// generators (the paper's Section 5 future-work extension).

#include <gtest/gtest.h>

#include <tuple>

#include "graph/graph_scheduler.hpp"
#include "graph/task_graph.hpp"
#include "model/instance_io.hpp"
#include "model/speedup_models.hpp"
#include "sched/validate.hpp"
#include "support/math_utils.hpp"
#include "support/strings.hpp"

namespace malsched {
namespace {

TaskGraph diamond_graph() {
  // 0 -> {1, 2} -> 3 on 4 machines.
  std::vector<MalleableTask> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.emplace_back(power_law_profile(2.0 + i, 0.8, 4), label("n", i));
  }
  return TaskGraph(4, std::move(tasks), {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
}

// ------------------------------------------------------------ construction

TEST(TaskGraph, BuildsDiamond) {
  const auto graph = diamond_graph();
  EXPECT_EQ(graph.size(), 4);
  EXPECT_EQ(graph.level_count(), 3);
  EXPECT_EQ(graph.levels(), (std::vector<int>{0, 1, 1, 2}));
  EXPECT_EQ(graph.predecessors(3), (std::vector<int>{1, 2}));
  EXPECT_EQ(graph.successors(0), (std::vector<int>{1, 2}));
  EXPECT_EQ(graph.topological_order().front(), 0);
  EXPECT_EQ(graph.topological_order().back(), 3);
}

TEST(TaskGraph, RejectsCycle) {
  std::vector<MalleableTask> tasks;
  for (int i = 0; i < 3; ++i) tasks.emplace_back(sequential_profile(1.0, 2));
  EXPECT_THROW(TaskGraph(2, std::move(tasks), {{0, 1}, {1, 2}, {2, 0}}),
               std::invalid_argument);
}

TEST(TaskGraph, RejectsBadEdges) {
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(sequential_profile(1.0, 2));
  EXPECT_THROW(TaskGraph(2, std::move(tasks), {{0, 5}}), std::invalid_argument);
  std::vector<MalleableTask> tasks2;
  tasks2.emplace_back(sequential_profile(1.0, 2));
  EXPECT_THROW(TaskGraph(2, std::move(tasks2), {{0, 0}}), std::invalid_argument);
}

TEST(TaskGraph, EmptyGraph) {
  const TaskGraph graph(2, {}, {});
  EXPECT_EQ(graph.size(), 0);
  EXPECT_EQ(graph.level_count(), 0);
  EXPECT_DOUBLE_EQ(graph.critical_path_lower_bound(), 0.0);
}

TEST(TaskGraph, CriticalPathOnChain) {
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(std::vector<double>{2.0, 1.2}, "a");
  tasks.emplace_back(std::vector<double>{3.0, 1.8}, "b");
  const TaskGraph graph(2, std::move(tasks), {{0, 1}});
  // Chain: t_0(2) + t_1(2) = 1.2 + 1.8.
  EXPECT_NEAR(graph.critical_path_lower_bound(), 3.0, 1e-12);
  // Area bound: (2 + 3)/2 = 2.5 < 3 -> combined is the chain.
  EXPECT_NEAR(graph.makespan_lower_bound(), 3.0, 1e-12);
}

TEST(TaskGraph, CriticalPathDominatedByHeavyBranch) {
  const auto graph = diamond_graph();
  // Longest path 0 -> 2 -> 3 with t(4) weights.
  const double expected = graph.task(0).time(4) + graph.task(2).time(4) + graph.task(3).time(4);
  EXPECT_NEAR(graph.critical_path_lower_bound(), expected, 1e-12);
}

// -------------------------------------------------------------- schedulers

class GraphSchedulerTest : public ::testing::TestWithParam<std::tuple<bool, int>> {};

TEST_P(GraphSchedulerTest, ValidAndPrecedenceRespectingOnRandomGraphs) {
  const auto [use_tree, seed] = GetParam();
  const TaskGraph graph =
      use_tree ? random_out_tree({}, static_cast<std::uint64_t>(seed))
               : random_layered_dag({}, static_cast<std::uint64_t>(seed));

  for (const bool layered : {true, false}) {
    const auto result =
        layered ? layered_graph_schedule(graph) : ready_list_graph_schedule(graph);
    const auto report = validate_schedule(result.schedule, graph.instance());
    EXPECT_TRUE(report.ok) << report.str();
    EXPECT_TRUE(respects_precedence(result.schedule, graph));
    EXPECT_TRUE(geq(result.makespan, graph.makespan_lower_bound()));
    EXPECT_GT(result.ratio, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GraphSchedulerTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Values(1, 2, 3, 4, 5)));

TEST(GraphScheduler, ChainIsScheduledBackToBack) {
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(linear_profile(4.0, 4), "a");
  tasks.emplace_back(linear_profile(4.0, 4), "b");
  const TaskGraph graph(4, std::move(tasks), {{0, 1}});
  const auto result = layered_graph_schedule(graph);
  // Each task runs on all 4 processors (linear speedup): 1.0 + 1.0.
  EXPECT_NEAR(result.makespan, 2.0, 0.05);
  EXPECT_TRUE(respects_precedence(result.schedule, graph));
}

TEST(GraphScheduler, RespectsPrecedenceDetectsViolations) {
  const auto graph = diamond_graph();
  Schedule bogus(4, 4);
  bogus.assign(0, 0.0, graph.task(0).time(1), 0, 1);
  bogus.assign(1, 0.0, graph.task(1).time(1), 1, 1);  // starts with its pred!
  bogus.assign(2, 10.0, graph.task(2).time(1), 2, 1);
  bogus.assign(3, 20.0, graph.task(3).time(1), 3, 1);
  EXPECT_FALSE(respects_precedence(bogus, graph));
}

TEST(GraphScheduler, WideGraphBenefitsFromLayeredOptimization) {
  // A root fanning out to many independent children: the layer containing
  // the children is a pure independent malleable instance, where the
  // sqrt(3) scheduler shines.
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(linear_profile(2.0, 16), "root");
  std::vector<std::pair<int, int>> edges;
  for (int c = 1; c <= 12; ++c) {
    tasks.emplace_back(power_law_profile(3.0, 0.85, 16), label("c", c));
    edges.emplace_back(0, c);
  }
  const TaskGraph graph(16, std::move(tasks), std::move(edges));
  const auto layered = layered_graph_schedule(graph);
  const auto ready = ready_list_graph_schedule(graph);
  EXPECT_TRUE(leq(layered.makespan, ready.makespan * 1.05));
}

// -------------------------------------------------------------- generators

TEST(GraphWorkloads, TreeIsConnectedAndSingleRoot) {
  const auto graph = random_out_tree({}, 11);
  int roots = 0;
  for (int v = 0; v < graph.size(); ++v) {
    if (graph.predecessors(v).empty()) ++roots;
    EXPECT_LE(graph.predecessors(v).size(), 1u) << "a tree node has one parent";
  }
  EXPECT_EQ(roots, 1);
}

TEST(GraphWorkloads, LayeredDagHasExpectedShape) {
  LayeredDagOptions options;
  options.layers = 4;
  options.width = 5;
  const auto graph = random_layered_dag(options, 13);
  EXPECT_EQ(graph.size(), 20);
  EXPECT_EQ(graph.level_count(), 4);
  for (int v = 0; v < graph.size(); ++v) {
    if (v >= options.width) {
      EXPECT_FALSE(graph.predecessors(v).empty());
    }
  }
}

TEST(GraphWorkloads, DeterministicPerSeed) {
  const auto a = random_out_tree({}, 21);
  const auto b = random_out_tree({}, 21);
  EXPECT_EQ(instance_to_string(a.instance()), instance_to_string(b.instance()));
  EXPECT_EQ(a.levels(), b.levels());
}

}  // namespace
}  // namespace malsched
