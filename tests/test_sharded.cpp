// Tests for the sharded serving tier (src/api/sharded_service.*), the
// process-wide intern table behind it (model/instance_handle), the
// ServiceConfig aggregate, and the typed SolveError taxonomy: byte-identical
// outcomes across shard AND worker counts, content routing, per-shard dedup
// with cross-shard independence, config rejection paths, and shutdown/drain
// with pending work on every shard.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/malsched.hpp"
#include "exec/batch_json.hpp"
#include "support/mutex.hpp"
#include "workload/generators.hpp"

namespace malsched {
namespace {

Instance small_instance(std::uint64_t seed, int tasks = 16, int machines = 8) {
  GeneratorOptions options;
  options.tasks = tasks;
  options.machines = machines;
  const auto families = all_workload_families();
  return generate_instance(families[seed % families.size()], options, seed);
}

/// Mixed-solver requests plus exact-duplicate tails (cache-hit material),
/// seeded away from the other suites so the process-wide intern table never
/// aliases their content. mrt requests use distinct instances: same-instance
/// mrt misses legitimately report different workspace audit deltas, which
/// the byte-compare must not see.
std::vector<SolveRequest> mixed_requests(std::size_t base_count) {
  const std::vector<std::pair<std::string, std::string>> configs{
      {"mrt", ""},
      {"two_phase", "rigid=ffdh"},
      {"naive", "policy=lpt-seq"},
      {"two_shelves_32", ""},
  };
  std::vector<SolveRequest> requests;
  for (std::size_t i = 0; i < base_count; ++i) {
    const auto& [solver, spec] = configs[i % configs.size()];
    requests.emplace_back(solver, SolverOptions::from_string(spec),
                          InstanceHandle::intern(small_instance(7100 + i)));
  }
  requests.emplace_back(requests[1].solver, requests[1].options, requests[1].instance);
  requests.emplace_back(requests[2].solver, requests[2].options, requests[2].instance);
  return requests;
}

/// Outcomes reshaped as a BatchReport so the byte-compare reuses the proven
/// exec/batch_json serialization. Indices come from submission order, NOT
/// the (composite, per-shard) sharded tickets.
BatchReport report_from(const std::vector<SolveOutcome>& outcomes) {
  BatchReport report;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    BatchItem item;
    item.index = i;
    item.status = outcomes[i].status;
    item.result = outcomes[i].result;
    item.error = outcomes[i].error;
    switch (item.status) {
      case BatchItemStatus::kOk: ++report.ok; break;
      case BatchItemStatus::kError: ++report.errors; break;
      case BatchItemStatus::kCancelled: ++report.cancelled; break;
    }
    report.items.push_back(std::move(item));
  }
  return report;
}

/// Two-way latch for the blocking test solver (same shape as the
/// test_service one; duplicated because both live in anonymous namespaces).
struct Gate {
  Mutex mutex;
  CondVar cv;
  int entered MALSCHED_GUARDED_BY(mutex){0};
  bool open MALSCHED_GUARDED_BY(mutex){false};

  void enter_and_wait() MALSCHED_EXCLUDES(mutex) {
    const LockGuard lock(mutex);
    ++entered;
    cv.notify_all();
    while (!open) cv.wait(mutex);
  }
  void wait_entered(int count) MALSCHED_EXCLUDES(mutex) {
    const LockGuard lock(mutex);
    while (entered < count) cv.wait(mutex);
  }
  void release() MALSCHED_EXCLUDES(mutex) {
    {
      const LockGuard lock(mutex);
      open = true;
    }
    cv.notify_all();
  }
};

Schedule sequential_schedule(const Instance& instance) {
  Schedule schedule(instance.machines(), instance.size());
  double t = 0.0;
  for (int i = 0; i < instance.size(); ++i) {
    schedule.assign(i, t, instance.task(i).time(1), 0, 1);
    t += instance.task(i).time(1);
  }
  return schedule;
}

/// Registry with a fast solver and a counting, gate-blocked solver.
SolverRegistry gated_registry(const std::shared_ptr<Gate>& gate,
                              const std::shared_ptr<std::atomic<int>>& solves) {
  SolverRegistry registry;
  registry.add("seq", "sequential on processor 0",
               [](const Instance& instance, const SolverOptions&) {
                 return SolverResult{"", sequential_schedule(instance), 0, 0, 0, 0, {}};
               });
  registry.add("counted-gate", "counts invocations, blocks until released",
               [gate, solves](const Instance& instance, const SolverOptions&) {
                 solves->fetch_add(1);
                 gate->enter_and_wait();
                 return SolverResult{"", sequential_schedule(instance), 0, 0, 0, 0, {}};
               });
  return registry;
}

/// Two handles (from the given seed base) that route to DIFFERENT shards of
/// a `shards`-way service -- found by scanning seeds, so the test never
/// depends on how the fingerprint function distributes any one seed.
std::pair<InstanceHandle, InstanceHandle> handles_on_distinct_shards(
    const ShardedSchedulerService& service, std::uint64_t seed_base) {
  const InstanceHandle first = InstanceHandle::intern(small_instance(seed_base));
  for (std::uint64_t seed = seed_base + 1; seed < seed_base + 64; ++seed) {
    InstanceHandle candidate = InstanceHandle::intern(small_instance(seed));
    if (service.shard_of(candidate) != service.shard_of(first)) {
      return {first, std::move(candidate)};
    }
  }
  ADD_FAILURE() << "no distinct-shard seed found in 64 tries";
  return {first, first};
}

// ------------------------------------------------------------- determinism

// The tentpole acceptance property: for a fixed request sequence, outcomes
// are byte-identical across shard counts AND worker counts, and identical
// to the closed-batch reference.
TEST(ShardedService, ByteIdenticalOutcomesAcrossShardAndWorkerCounts) {
  const auto requests = mixed_requests(16);
  BatchJsonOptions json;
  json.include_timing = false;
  json.include_schedules = true;
  const std::string reference = batch_report_json(solve_batch(requests), json);

  for (const unsigned shards : {1u, 2u, 8u}) {
    for (const unsigned workers : {1u, 2u, 8u}) {
      ServiceConfig config;
      config.threads = workers;
      ShardedSchedulerService service(config, shards);
      const auto tickets = service.submit(requests);
      ASSERT_EQ(tickets.size(), requests.size());
      service.drain();

      std::vector<SolveOutcome> outcomes;
      outcomes.reserve(tickets.size());
      for (const auto ticket : tickets) outcomes.push_back(service.wait(ticket));
      EXPECT_EQ(batch_report_json(report_from(outcomes), json), reference)
          << "outcomes differ at " << shards << " shards x " << workers << " workers";

      const auto stats = service.stats();
      EXPECT_EQ(stats.submitted, requests.size());
      EXPECT_EQ(stats.completed, requests.size());
      EXPECT_EQ(stats.delivered, requests.size());
    }
  }
}

TEST(ShardedService, RoutesByFingerprintAndStampsShardProvenance) {
  ServiceConfig config;
  config.threads = 2;
  ShardedSchedulerService service(config, 4);
  EXPECT_EQ(service.shards(), 4u);
  EXPECT_EQ(service.threads(), 8u);

  for (std::uint64_t seed = 7300; seed < 7310; ++seed) {
    const auto handle = InstanceHandle::intern(small_instance(seed));
    const unsigned expected = static_cast<unsigned>(handle.fingerprint() % 4);
    EXPECT_EQ(service.shard_of(handle), expected);

    const auto ticket = service.submit({"mrt", {}, handle});
    const auto outcome = service.wait(ticket);
    EXPECT_EQ(outcome.status, SolveStatus::kOk);
    EXPECT_EQ(outcome.ticket, ticket.id) << "outcome carries the composite ticket";
    EXPECT_EQ(outcome.shard, static_cast<int>(expected));
  }
  // Equal content routes identically -- the invariant per-shard dedup and
  // caching rest on.
  const auto a = InstanceHandle::intern(small_instance(7300));
  const auto b = InstanceHandle::intern(small_instance(7300));
  EXPECT_EQ(service.shard_of(a), service.shard_of(b));

  EXPECT_THROW(static_cast<void>(service.shard_of(InstanceHandle{})), std::invalid_argument);
  // A ticket naming a shard this service never had.
  EXPECT_THROW(static_cast<void>(service.poll(JobTicket{std::uint64_t{7} << 48})),
               std::out_of_range);
}

// ------------------------------------------------------------ intern table

// Cross-shard handle identity: equal content interned concurrently from
// many threads converges on ONE allocation (the process-wide intern table),
// with exactly one fingerprint computation per intern() and zero re-hashing
// afterwards, all the way through a sharded submit/drain cycle.
TEST(ShardedService, ConcurrentEqualContentInternsShareOneAllocationAndNeverRehash) {
  constexpr int kThreads = 8;
  const Instance content = small_instance(7401, 24, 12);

  const auto hashes_before = InstanceHandle::content_hashes();
  const auto hits_before = InstanceHandle::intern_table_hits();

  std::vector<InstanceHandle> handles(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&handles, &content, t] {
        handles[t] = InstanceHandle::intern(Instance{content});  // own copy each
      });
    }
    for (auto& thread : threads) thread.join();
  }

  // One hash per intern (the probe itself), no extras.
  EXPECT_EQ(InstanceHandle::content_hashes(), hashes_before + kThreads);
  // Exactly one thread inserted; the other seven were served by the table.
  EXPECT_EQ(InstanceHandle::intern_table_hits(), hits_before + kThreads - 1);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(handles[t].shared().get(), handles[0].shared().get())
        << "equal-content handles must share one allocation";
    EXPECT_EQ(handles[t].fingerprint(), handles[0].fingerprint());
    EXPECT_EQ(handles[t].static_lower_bound(), handles[0].static_lower_bound());
    EXPECT_TRUE(handles[t] == handles[0]);  // pointer fast path
  }

  // Zero re-hash audit across the sharded serving path: submitting every
  // handle (cache keys included) must not touch profile bits again.
  const auto hashes_mid = InstanceHandle::content_hashes();
  ServiceConfig config;
  config.threads = 2;
  ShardedSchedulerService service(config, 2);
  std::vector<JobTicket> tickets;
  tickets.reserve(handles.size());
  for (const auto& handle : handles) {
    tickets.push_back(service.submit({"mrt", {}, handle}));
  }
  service.drain();
  for (const auto ticket : tickets) {
    EXPECT_EQ(service.wait(ticket).status, SolveStatus::kOk);
  }
  EXPECT_EQ(InstanceHandle::content_hashes(), hashes_mid)
      << "the submit path re-hashed an interned profile";
}

// --------------------------------------------------------- per-shard dedup

// Duplicates coalesce on their shard while a different-content request on
// another shard is served to completion with the first shard's leader still
// blocked -- shards do not contend.
TEST(ShardedService, DuplicatesJoinOnOneShardWhileOtherShardsServeIndependently) {
  const auto gate = std::make_shared<Gate>();
  const auto solves = std::make_shared<std::atomic<int>>(0);
  const auto registry = gated_registry(gate, solves);
  ServiceConfig config;
  config.threads = 2;  // leader blocks one worker; the spare drains joiners
  config.registry = &registry;
  ShardedSchedulerService service(config, 2);

  const auto [dup_handle, other_handle] = handles_on_distinct_shards(service, 7500);
  const unsigned dup_shard = service.shard_of(dup_handle);
  const unsigned other_shard = service.shard_of(other_handle);
  ASSERT_NE(dup_shard, other_shard);

  constexpr std::size_t kDuplicates = 4;
  std::vector<JobTicket> dup_tickets;
  for (std::size_t i = 0; i < kDuplicates; ++i) {
    dup_tickets.push_back(service.submit({"counted-gate", {}, dup_handle}));
  }
  gate->wait_entered(1);
  while (service.stats().dedup_joins < kDuplicates - 1) std::this_thread::yield();

  // The other shard's workers are untouched by the blocked leader: this
  // completes while the gate is still closed.
  const auto independent = service.wait(service.submit({"seq", {}, other_handle}));
  EXPECT_EQ(independent.status, SolveStatus::kOk);
  EXPECT_EQ(independent.shard, static_cast<int>(other_shard));
  EXPECT_EQ(solves->load(), 1) << "the leader must still be the only solve";

  gate->release();
  service.drain();

  EXPECT_EQ(solves->load(), 1) << "duplicates must coalesce onto one solve";
  const auto breakdown = service.shard_stats();
  ASSERT_EQ(breakdown.shards.size(), 2u);
  EXPECT_EQ(breakdown.shards[dup_shard].dedup_joins, kDuplicates - 1);
  EXPECT_EQ(breakdown.shards[dup_shard].submitted, kDuplicates);
  EXPECT_EQ(breakdown.shards[other_shard].dedup_joins, 0u);
  EXPECT_EQ(breakdown.shards[other_shard].completed, 1u);
  EXPECT_EQ(breakdown.total.submitted, kDuplicates + 1);
  EXPECT_EQ(breakdown.total.completed, kDuplicates + 1);
  EXPECT_EQ(breakdown.total.dedup_joins, kDuplicates - 1);
  EXPECT_EQ(service.stats().dedup_joins, kDuplicates - 1);

  for (const auto ticket : dup_tickets) {
    const auto outcome = service.wait(ticket);
    EXPECT_EQ(outcome.status, SolveStatus::kOk);
    EXPECT_EQ(outcome.shard, static_cast<int>(dup_shard));
  }
}

// ------------------------------------------------------------ ServiceConfig

TEST(ServiceConfigTest, DefaultsAreValidAndViolationsReadReasonably) {
  EXPECT_TRUE(ServiceConfig{}.validate().empty());
  EXPECT_NO_THROW(ServiceConfig{}.ensure_valid());

  ServiceConfig negative_ttl;
  negative_ttl.cache_ttl_seconds = -1.0;
  const auto ttl_errors = negative_ttl.validate();
  ASSERT_EQ(ttl_errors.size(), 1u);
  EXPECT_NE(ttl_errors[0].find("cache_ttl_seconds"), std::string::npos);

  ServiceConfig nan_ttl;
  nan_ttl.cache_ttl_seconds = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(nan_ttl.validate().size(), 1u);

  ServiceConfig zero_capacity;
  zero_capacity.cache = true;
  zero_capacity.cache_capacity = 0;
  const auto capacity_errors = zero_capacity.validate();
  ASSERT_EQ(capacity_errors.size(), 1u);
  EXPECT_NE(capacity_errors[0].find("cache_capacity"), std::string::npos);

  // cache off with capacity 0 is a fine way to say "no cache".
  ServiceConfig cache_off = zero_capacity;
  cache_off.cache = false;
  EXPECT_TRUE(cache_off.validate().empty());

  ServiceConfig absurd_threads;
  absurd_threads.threads = ServiceConfig::kMaxThreads + 1;
  EXPECT_EQ(absurd_threads.validate().size(), 1u);

  // Multiple violations are ALL reported, in one readable message.
  ServiceConfig doubly_bad;
  doubly_bad.cache_ttl_seconds = -2.0;
  doubly_bad.cache_capacity = 0;
  EXPECT_EQ(doubly_bad.validate().size(), 2u);
  try {
    doubly_bad.ensure_valid();
    FAIL() << "ensure_valid() must throw";
  } catch (const std::invalid_argument& err) {
    const std::string message = err.what();
    EXPECT_NE(message.find("cache_ttl_seconds"), std::string::npos);
    EXPECT_NE(message.find("cache_capacity"), std::string::npos);
  }
}

TEST(ServiceConfigTest, BothTiersRejectInvalidConfigsAtConstruction) {
  ServiceConfig bad;
  bad.cache_ttl_seconds = -1.0;
  EXPECT_THROW(SchedulerService{bad}, std::invalid_argument);
  EXPECT_THROW(ShardedSchedulerService(bad, 2), std::invalid_argument);
  EXPECT_THROW(ShardedSchedulerService({}, 0), std::invalid_argument);
  EXPECT_THROW(ShardedSchedulerService({}, ShardedSchedulerService::kMaxShards + 1),
               std::invalid_argument);
}

TEST(ServiceConfigTest, BothTiersRejectBadRobustnessKnobs) {
  ServiceConfig negative_depth;
  negative_depth.max_queue_depth = -3;
  const auto depth_errors = negative_depth.validate();
  ASSERT_EQ(depth_errors.size(), 1u);
  EXPECT_NE(depth_errors[0].find("max_queue_depth"), std::string::npos);
  EXPECT_THROW(SchedulerService{negative_depth}, std::invalid_argument);
  EXPECT_THROW(ShardedSchedulerService(negative_depth, 2), std::invalid_argument);

  ServiceConfig unknown_policy;
  unknown_policy.overload_policy = "panic";
  EXPECT_EQ(unknown_policy.validate().size(), 1u);
  EXPECT_THROW(SchedulerService{unknown_policy}, std::invalid_argument);
  EXPECT_THROW(ShardedSchedulerService(unknown_policy, 2), std::invalid_argument);

  ServiceConfig degrade_without_fallback;
  degrade_without_fallback.overload_policy = "degrade";
  EXPECT_EQ(degrade_without_fallback.validate().size(), 1u);
  EXPECT_THROW(ShardedSchedulerService(degrade_without_fallback, 2), std::invalid_argument);

  ServiceConfig unregistered_fallback;
  unregistered_fallback.fallback_solver = "not_a_solver";
  const auto fallback_errors = unregistered_fallback.validate();
  ASSERT_EQ(fallback_errors.size(), 1u);
  EXPECT_NE(fallback_errors[0].find("fallback_solver"), std::string::npos);
  EXPECT_THROW(ShardedSchedulerService(unregistered_fallback, 2), std::invalid_argument);

  // The effective registry is the CONFIGURED one: a fallback missing from a
  // custom registry is rejected even if the global registry has it, and a
  // custom solver unknown to the global registry validates fine.
  SolverRegistry custom;
  custom.add("fast", "custom fallback", [](const Instance& instance, const SolverOptions&) {
    return SolverResult{"", Schedule(instance.machines(), instance.size()), 0, 0, 0, 0, {}};
  });
  ServiceConfig custom_ok;
  custom_ok.registry = &custom;
  custom_ok.overload_policy = "degrade";
  custom_ok.fallback_solver = "fast";
  custom_ok.max_queue_depth = 1;
  EXPECT_TRUE(custom_ok.validate().empty());
  ServiceConfig custom_missing = custom_ok;
  custom_missing.fallback_solver = "two_phase";  // global-only name
  EXPECT_EQ(custom_missing.validate().size(), 1u);

  ServiceConfig good;
  good.max_queue_depth = 8;
  good.overload_policy = "shed_oldest";
  EXPECT_NO_THROW(ShardedSchedulerService(good, 2));
}

// ----------------------------------------------------------- typed errors

TEST(ShardedService, ErrorTaxonomyClassifiesFailureAndInvalidOption) {
  ServiceConfig config;
  config.threads = 1;
  ShardedSchedulerService service(config, 2);

  // Unknown option key -> rejected by OptionSpec validation before dispatch.
  const auto bad_option = service.wait(service.submit(
      {"mrt", SolverOptions::from_string("no_such_option=1"),
       InstanceHandle::intern(small_instance(7600))}));
  EXPECT_EQ(bad_option.status, SolveStatus::kError);
  EXPECT_EQ(bad_option.error.code, SolveErrorCode::kInvalidOption);
  EXPECT_NE(bad_option.error.detail.find("no_such_option"), std::string::npos);

  // Unknown solver name -> same code (a request the registry cannot take).
  const auto bad_solver = service.wait(service.submit(
      {"no-such-solver", {}, InstanceHandle::intern(small_instance(7601))}));
  EXPECT_EQ(bad_solver.status, SolveStatus::kError);
  EXPECT_EQ(bad_solver.error.code, SolveErrorCode::kInvalidOption);

  EXPECT_EQ(to_string(SolveErrorCode::kInvalidOption), "invalid_option");
  EXPECT_EQ(to_string(SolveErrorCode::kSolverFailure), "solver_failure");
  EXPECT_EQ(to_string(SolveErrorCode::kCancelled), "cancelled");
  EXPECT_EQ(to_string(SolveErrorCode::kShutdown), "shutdown");
  EXPECT_EQ(to_string(SolveErrorCode::kNone), "none");
}

// --------------------------------------------------------- shutdown / drain

// Shutdown with the pipeline full on every shard: running solves finish,
// queued jobs are cancelled with the kShutdown code, everything stays
// poll()-able, and the counters close over the per-shard breakdown.
TEST(ShardedService, ShutdownWithPendingWorkAcrossAllShards) {
  // One gate PER SHARD: shutdown() fans out shard by shard (cancel queued,
  // then join that shard's pool), so a single shared gate could not be
  // released without letting the not-yet-shut shard's worker steal its
  // queued job back.
  const auto gate_a = std::make_shared<Gate>();
  const auto gate_b = std::make_shared<Gate>();
  SolverRegistry registry;
  registry.add("seq", "sequential on processor 0",
               [](const Instance& instance, const SolverOptions&) {
                 return SolverResult{"", sequential_schedule(instance), 0, 0, 0, 0, {}};
               });
  registry.add("gate-a", "blocks until the test releases gate_a",
               [gate_a](const Instance& instance, const SolverOptions&) {
                 gate_a->enter_and_wait();
                 return SolverResult{"", sequential_schedule(instance), 0, 0, 0, 0, {}};
               });
  registry.add("gate-b", "blocks until the test releases gate_b",
               [gate_b](const Instance& instance, const SolverOptions&) {
                 gate_b->enter_and_wait();
                 return SolverResult{"", sequential_schedule(instance), 0, 0, 0, 0, {}};
               });
  ServiceConfig config;
  config.threads = 1;  // one worker per shard: the gated job blocks the shard
  config.registry = &registry;
  ShardedSchedulerService service(config, 2);

  const auto [handle_a, handle_b] = handles_on_distinct_shards(service, 7700);

  // One gated job per shard (both workers blocked), then a queued job per
  // shard that shutdown() must cancel.
  const auto running_a = service.submit({"gate-a", {}, handle_a});
  const auto running_b = service.submit({"gate-b", {}, handle_b});
  gate_a->wait_entered(1);
  gate_b->wait_entered(1);
  // use_cache=false keeps the queued duplicates from joining the gated
  // leaders -- they must sit QUEUED so shutdown() cancels them.
  const auto queued_a = service.submit({"seq", {}, handle_a, /*consult_cache=*/false});
  const auto queued_b = service.submit({"seq", {}, handle_b, /*consult_cache=*/false});
  EXPECT_EQ(service.state(queued_a), JobState::kQueued);
  EXPECT_EQ(service.state(queued_b), JobState::kQueued);

  // shutdown() runs on a helper thread (it joins the gated workers); each
  // gate is released only AFTER its shard's queued job has been cancelled
  // (turned terminal) -- releasing earlier would let that shard's worker
  // steal the queued job back. Shard shutdown order is an implementation
  // detail, so poll both and release whichever cancellation lands first.
  std::thread shutter([&service] { service.shutdown(); });
  bool released_a = false;
  bool released_b = false;
  while (!released_a || !released_b) {
    if (!released_a && service.state(queued_a) == JobState::kDone) {
      gate_a->release();
      released_a = true;
    }
    if (!released_b && service.state(queued_b) == JobState::kDone) {
      gate_b->release();
      released_b = true;
    }
    std::this_thread::yield();
  }
  shutter.join();

  for (const auto ticket : {running_a, running_b}) {
    const auto outcome = service.wait(ticket);
    EXPECT_EQ(outcome.status, SolveStatus::kOk) << "running solves finish on shutdown";
  }
  for (const auto ticket : {queued_a, queued_b}) {
    const auto outcome = service.wait(ticket);
    EXPECT_EQ(outcome.status, SolveStatus::kCancelled);
    EXPECT_EQ(outcome.error.code, SolveErrorCode::kShutdown);
  }

  const auto breakdown = service.shard_stats();
  EXPECT_EQ(breakdown.total.submitted, 4u);
  EXPECT_EQ(breakdown.total.completed, 2u);
  EXPECT_EQ(breakdown.total.cancelled, 2u);
  for (const auto& shard : breakdown.shards) {
    EXPECT_EQ(shard.submitted, 2u);
    EXPECT_EQ(shard.completed, 1u);
    EXPECT_EQ(shard.cancelled, 1u);
  }

  EXPECT_THROW(static_cast<void>(service.submit({"seq", {}, handle_a})), std::runtime_error);
  service.shutdown();  // idempotent
}

// drain() returns only when every shard's stream is flushed; a fresh
// service drains trivially.
TEST(ShardedService, DrainCoversEveryShard) {
  ServiceConfig config;
  config.threads = 1;
  ShardedSchedulerService service(config, 3);
  service.drain();  // empty: returns immediately

  std::vector<JobTicket> tickets;
  for (std::uint64_t seed = 7800; seed < 7812; ++seed) {
    tickets.push_back(service.submit({"mrt", {}, InstanceHandle::intern(small_instance(seed))}));
  }
  service.drain();
  const auto stats = service.stats();
  EXPECT_EQ(stats.delivered, tickets.size());
  for (const auto ticket : tickets) {
    EXPECT_EQ(service.state(ticket), JobState::kDone);
  }
}

// Streaming across shards: every outcome is delivered exactly once with the
// composite ticket and shard stamped; per-shard suborder follows per-shard
// ticket order.
TEST(ShardedService, StreamDeliversEveryOutcomeOnceWithShardProvenance) {
  ServiceConfig config;
  config.threads = 2;
  ShardedSchedulerService service(config, 4);

  struct Seen {
    Mutex mutex;
    std::vector<SolveOutcome> outcomes MALSCHED_GUARDED_BY(mutex);
  };
  const auto seen = std::make_shared<Seen>();
  service.on_result([seen](const SolveOutcome& outcome) {
    const LockGuard lock(seen->mutex);
    seen->outcomes.push_back(outcome);
  });

  std::vector<JobTicket> tickets;
  for (std::uint64_t seed = 7900; seed < 7920; ++seed) {
    tickets.push_back(service.submit({"mrt", {}, InstanceHandle::intern(small_instance(seed))}));
  }
  service.drain();

  const LockGuard lock(seen->mutex);
  ASSERT_EQ(seen->outcomes.size(), tickets.size());
  std::vector<std::uint64_t> delivered;
  std::vector<std::uint64_t> expected;
  std::vector<std::uint64_t> last_inner_per_shard(4, 0);
  for (const auto& outcome : seen->outcomes) {
    ASSERT_GE(outcome.shard, 0);
    ASSERT_LT(outcome.shard, 4);
    delivered.push_back(outcome.ticket);
    // Within one shard, delivery follows per-shard ticket order.
    const auto inner = outcome.ticket & ((std::uint64_t{1} << 48) - 1);
    auto& last = last_inner_per_shard[static_cast<std::size_t>(outcome.shard)];
    EXPECT_GE(inner, last);
    last = inner;
  }
  for (const auto ticket : tickets) expected.push_back(ticket.id);
  std::sort(delivered.begin(), delivered.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(delivered, expected) << "each ticket delivered exactly once";
}

}  // namespace
}  // namespace malsched
