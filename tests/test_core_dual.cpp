// Tests for the dual-approximation machinery: soundness of rejections,
// acceptance bounds, the dichotomic search, and cross-checks against the
// brute-force oracle on tiny instances.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/dual_approx.hpp"
#include "core/mrt_scheduler.hpp"
#include "model/lower_bounds.hpp"
#include "model/speedup_models.hpp"
#include "sched/exact_small.hpp"
#include "sched/validate.hpp"
#include "support/math_utils.hpp"
#include "support/rng.hpp"
#include "workload/generators.hpp"

namespace malsched {
namespace {

// ---------------------------------------------------------------- dual step

class DualStepSweepTest
    : public ::testing::TestWithParam<std::tuple<WorkloadFamily, int>> {};

TEST_P(DualStepSweepTest, AcceptanceAlwaysValidatedWithinSqrt3) {
  const auto [family, seed] = GetParam();
  GeneratorOptions options;
  options.tasks = 30;
  options.machines = 16;
  const auto instance = generate_instance(family, options, static_cast<std::uint64_t>(seed));
  const double lb = makespan_lower_bound(instance);
  for (const double factor : {0.5, 0.8, 1.0, 1.3, 1.8, 3.0, 8.0}) {
    const double guess = lb * factor;
    const auto outcome = mrt_dual_step(instance, guess);
    if (outcome.schedule) {
      ValidationOptions validation;
      validation.makespan_bound = kSqrt3 * guess;
      const auto report = validate_schedule(*outcome.schedule, instance, validation);
      EXPECT_TRUE(report.ok) << to_string(outcome.branch) << ": " << report.str();
    } else if (outcome.certified_reject) {
      // A certificate at `guess` asserts OPT > guess; it must never fire at
      // a guess we can refute with an actual schedule later. Checked
      // globally by the packed-instance test below.
      EXPECT_EQ(outcome.branch, DualBranch::kRejected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, DualStepSweepTest,
    ::testing::Combine(::testing::Values(WorkloadFamily::kUniform, WorkloadFamily::kBimodal,
                                         WorkloadFamily::kHeavyTail, WorkloadFamily::kStairs,
                                         WorkloadFamily::kSequentialOnly),
                       ::testing::Values(1, 2, 3)));

TEST(DualStep, NeverCertifiedRejectsOptLeOneInstances) {
  // Packed instances admit a schedule of length 1; Property 2 must therefore
  // never certify OPT > 1 at guess 1, and per the paper the step should in
  // fact *accept* guess 1 (no gaps).
  int accepted = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    for (const int machines : {4, 8, 16, 24}) {
      const auto instance = packed_instance(machines, seed);
      const auto outcome = mrt_dual_step(instance, 1.0);
      EXPECT_FALSE(outcome.certified_reject)
          << "unsound certificate at seed " << seed << " m " << machines;
      if (outcome.schedule) {
        ++accepted;
        EXPECT_TRUE(leq(outcome.schedule->makespan(), kSqrt3));
      } else {
        ADD_FAILURE() << "gap at OPT<=1 instance: seed " << seed << " m " << machines;
      }
    }
  }
  EXPECT_EQ(accepted, 160);
}

TEST(DualStep, CertificatesAgreeWithBruteForceOnTinyInstances) {
  // For instances small enough to enumerate: whenever the dual step
  // certified-rejects a guess, no brute-force schedule may beat that guess.
  Rng rng(99);
  for (int trial = 0; trial < 15; ++trial) {
    GeneratorOptions options;
    options.tasks = 4;
    options.machines = 4;
    options.seq_time_lo = 0.5;
    options.seq_time_hi = 4.0;
    const auto instance = generate_instance(WorkloadFamily::kUniform, options, rng.fork_seed());
    const auto brute = brute_force_schedule(instance);
    ASSERT_TRUE(brute.has_value());
    for (const double factor : {0.55, 0.7, 0.85, 0.95, 1.0, 1.1}) {
      const double guess = brute->makespan * factor;
      const auto outcome = mrt_dual_step(instance, guess);
      if (outcome.certified_reject) {
        EXPECT_TRUE(lt_strict(guess, brute->makespan))
            << "certificate contradicts a known schedule of length "
            << brute->makespan;
      }
    }
  }
}

TEST(DualStep, BranchSelectionFollowsAreaRegime) {
  // A packed instance with large canonical area should route to the
  // knapsack; one with small area to a list/single-shelf branch.
  int knapsack_when_large = 0;
  int large_area_steps = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const auto instance = packed_instance(16, seed);
    const auto outcome = mrt_dual_step(instance, 1.0);
    ASSERT_TRUE(outcome.schedule.has_value());
    if (!outcome.area_condition) {
      ++large_area_steps;
      knapsack_when_large += outcome.branch == DualBranch::kTwoShelfKnapsack ||
                             outcome.branch == DualBranch::kTwoShelfTrivial;
    }
  }
  if (large_area_steps > 0) {
    // The knapsack route should handle the clear majority of large-area
    // steps (it is the guaranteed branch there).
    EXPECT_GE(knapsack_when_large * 10, large_area_steps * 5);
  }
}

// -------------------------------------------------------------- dual search

TEST(DualSearch, SyntheticStepConvergesToThreshold) {
  // A synthetic dual step accepting exactly when guess >= 5.0; the search
  // must bracket 5.0 within (1+eps) and report certified bounds.
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(sequential_profile(1.0, 2));
  const Instance instance(2, std::move(tasks));
  const DualStep step = [&](double guess) {
    DualStepResult result;
    if (guess >= 5.0) {
      Schedule schedule(2, 1);
      schedule.assign(0, 0.0, 1.0, 0, 1);
      result.schedule = std::move(schedule);
    } else {
      result.certified_reject = true;
    }
    return result;
  };
  DualSearchOptions options;
  options.epsilon = 0.01;
  const auto result = dual_search(instance, step, options);
  EXPECT_GE(result.final_guess, 5.0);
  EXPECT_LE(result.final_guess, 5.0 * 1.03);
  EXPECT_GE(result.certified_lower_bound, 5.0 / 1.03);
  EXPECT_EQ(result.gaps, 0);
}

TEST(DualSearch, UncertifiedRejectionsCountAsGaps) {
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(sequential_profile(1.0, 2));
  const Instance instance(2, std::move(tasks));
  int steps = 0;
  const DualStep step = [&](double guess) {
    ++steps;
    DualStepResult result;
    if (guess >= 4.0) {
      Schedule schedule(2, 1);
      schedule.assign(0, 0.0, 1.0, 0, 1);
      result.schedule = std::move(schedule);
    }
    // no certificate on rejection
    return result;
  };
  const auto result = dual_search(instance, step, {});
  EXPECT_GT(result.gaps, 0);
  // Gaps must not inflate the certified bound beyond the static LB (1.0
  // area/2... here max(t(2), work/2) = 1.0 sequential time on 2 procs ->
  // lb = max(1.0, 0.5) = 1.0).
  EXPECT_NEAR(result.certified_lower_bound, makespan_lower_bound(instance), 1e-12);
}

TEST(DualSearch, EscapesZeroStaticLowerBound) {
  // An empty instance has a static lower bound of 0; before the ramp guard,
  // phase 1 could never escape `hi *= 2.0` from 0.0 and a step that only
  // accepts larger guesses exhausted the whole iteration budget and threw.
  const Instance instance(2, {});
  ASSERT_EQ(makespan_lower_bound(instance), 0.0);
  EXPECT_EQ(dual_ramp_start(instance), 1.0);  // empty-profile fallback seed

  int steps = 0;
  const DualStep step = [&](double guess) {
    ++steps;
    DualStepResult result;
    if (guess >= 5.0) result.schedule = Schedule(2, 0);
    return result;
  };
  const auto result = dual_search(instance, step, {});
  EXPECT_GE(result.final_guess, 5.0);
  EXPECT_LE(result.final_guess, 5.0 * 1.03);
  EXPECT_LE(steps, 16);  // 1, 2, 4, 8 ramp plus the geometric bisection
}

TEST(DualSearch, RampStartEqualsStaticBoundOnRegularInstances) {
  // The guard must not perturb the guess sequence of any real instance.
  const auto instance = packed_instance(8, 3);
  EXPECT_EQ(dual_ramp_start(instance), makespan_lower_bound(instance));
}

TEST(DualSearch, RejectsBadEpsilon) {
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(sequential_profile(1.0, 2));
  const Instance instance(2, std::move(tasks));
  DualSearchOptions options;
  options.epsilon = 0.0;
  EXPECT_THROW(
      dual_search(instance, [](double) { return DualStepResult{}; }, options),
      std::invalid_argument);
}

TEST(DualSearch, ThrowsWhenNothingAccepted) {
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(sequential_profile(1.0, 2));
  const Instance instance(2, std::move(tasks));
  DualSearchOptions options;
  options.max_iterations = 10;
  EXPECT_THROW(
      dual_search(instance, [](double) { return DualStepResult{}; }, options),
      std::runtime_error);
}

TEST(DualSearch, TighterEpsilonTightensTheBracket) {
  const auto instance = packed_instance(12, 7);
  const DualStep step = [&](double guess) {
    auto outcome = mrt_dual_step(instance, guess);
    DualStepResult result;
    result.schedule = std::move(outcome.schedule);
    result.certified_reject = outcome.certified_reject;
    return result;
  };
  DualSearchOptions coarse;
  coarse.epsilon = 0.2;
  DualSearchOptions fine;
  fine.epsilon = 0.005;
  const auto coarse_result = dual_search(instance, step, coarse);
  const auto fine_result = dual_search(instance, step, fine);
  EXPECT_LE(fine_result.final_guess, coarse_result.final_guess * (1.0 + 1e-9));
  EXPECT_GE(fine_result.iterations, coarse_result.iterations);
}

}  // namespace
}  // namespace malsched
