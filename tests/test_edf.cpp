// Tests for the v2.1 queue-discipline and fast-path serving features:
// earliest-deadline-first dispatch (ServiceConfig::queue_discipline = "edf"),
// its FIFO tiebreaks and byte-identity when no deadlines are set, the
// interaction with shed_oldest admission, the small-instance submit-thread
// fast path (ServiceConfig::fast_path_max_tasks), and the
// queue_depth_high_water / fast_path_hits ServiceStats gauges (including the
// sharded rollup).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/scheduler_service.hpp"
#include "api/sharded_service.hpp"
#include "registry/solver_registry.hpp"
#include "exec/batch_json.hpp"
#include "support/cancellation.hpp"
#include "support/mutex.hpp"
#include "workload/generators.hpp"

namespace malsched {
namespace {

Instance small_instance(std::uint64_t seed, int tasks = 16, int machines = 8) {
  GeneratorOptions options;
  options.tasks = tasks;
  options.machines = machines;
  const auto families = all_workload_families();
  return generate_instance(families[seed % families.size()], options, seed);
}

Schedule sequential_schedule(const Instance& instance) {
  Schedule schedule(instance.machines(), instance.size());
  double t = 0.0;
  for (int i = 0; i < instance.size(); ++i) {
    schedule.assign(i, t, instance.task(i).time(1), 0, 1);
    t += instance.task(i).time(1);
  }
  return schedule;
}

/// Atomic two-way latch (test_faults idiom): the blocking solver spins so a
/// CancelToken could still wake it, and the test polls `entered`.
struct PollGate {
  std::atomic<bool> entered{false};
  std::atomic<bool> open{false};

  void wait_entered() const {
    while (!entered.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
};

/// Dispatch-order probe: every "record" solve appends its instance's task
/// count, so a test that gives each job a distinct size reads back the exact
/// order the worker dequeued them.
struct DispatchLog {
  Mutex mutex;
  std::vector<int> sizes MALSCHED_GUARDED_BY(mutex);

  void push(int size) MALSCHED_EXCLUDES(mutex) {
    const LockGuard lock(mutex);
    sizes.push_back(size);
  }
  [[nodiscard]] std::vector<int> snapshot() MALSCHED_EXCLUDES(mutex) {
    const LockGuard lock(mutex);
    return sizes;
  }
};

/// Registry with the worker-blocking gate solver and the order-recording one.
SolverRegistry edf_registry(const std::shared_ptr<PollGate>& gate,
                            const std::shared_ptr<DispatchLog>& log) {
  SolverRegistry registry;
  registry.add("record", "sequential; records its dispatch order",
               [log](const Instance& instance, const SolverOptions&) {
                 log->push(instance.size());
                 return SolverResult{"", sequential_schedule(instance), 0, 0, 0, 0, {}};
               });
  registry.add_with_context(
      "pollgate", "blocks until released, polling the cancel check",
      [gate](const Instance& instance, const SolverOptions&,
             const SolveContext& context) -> SolverResult {
        const CancelCheck check(context.cancel, context.deadline_seconds);
        gate->entered.store(true);
        while (!gate->open.load()) {
          check.poll();
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return SolverResult{"", sequential_schedule(instance), 0, 0, 0, 0, {}};
      });
  return registry;
}

// ------------------------------------------------------------ edf dispatch

TEST(EdfDiscipline, DispatchesEarliestDeadlineFirstUnderSaturation) {
  const auto gate = std::make_shared<PollGate>();
  const auto log = std::make_shared<DispatchLog>();
  const auto registry = edf_registry(gate, log);
  ServiceConfig config;
  config.threads = 1;
  config.registry = &registry;
  config.queue_discipline = "edf";
  SchedulerService service(config);

  // Saturate the single worker so everything below queues up, then submit
  // with budgets deliberately OUT of deadline order (and one deadline-less
  // job first, which EDF must hold until last). Task counts 10/11/12/13
  // tag the jobs in the dispatch log.
  static_cast<void>(service.submit({"pollgate", {}, small_instance(1)}));
  gate->wait_entered();
  SolveRequest no_deadline{"record", {}, InstanceHandle::intern(small_instance(2, 10))};
  SolveRequest late{"record", {}, InstanceHandle::intern(small_instance(3, 11))};
  late.budget_seconds = 3600.0;
  SolveRequest early{"record", {}, InstanceHandle::intern(small_instance(4, 12))};
  early.budget_seconds = 900.0;
  SolveRequest middle{"record", {}, InstanceHandle::intern(small_instance(5, 13))};
  middle.budget_seconds = 1800.0;
  static_cast<void>(service.submit(std::move(no_deadline)));
  static_cast<void>(service.submit(std::move(late)));
  static_cast<void>(service.submit(std::move(early)));
  static_cast<void>(service.submit(std::move(middle)));

  gate->open.store(true);
  service.drain();
  // Deadline order: early (900 s) < middle (1800 s) < late (3600 s) <
  // deadline-less. The budget gaps dwarf submit-time anchor jitter.
  EXPECT_EQ(log->snapshot(), (std::vector<int>{12, 13, 11, 10}));
}

TEST(EdfDiscipline, EqualDeadlinesBreakTiesByTicket) {
  const auto gate = std::make_shared<PollGate>();
  const auto log = std::make_shared<DispatchLog>();
  const auto registry = edf_registry(gate, log);
  ServiceConfig config;
  config.threads = 1;
  config.registry = &registry;
  config.queue_discipline = "edf";
  SchedulerService service(config);

  static_cast<void>(service.submit({"pollgate", {}, small_instance(6)}));
  gate->wait_entered();
  // One shared ABSOLUTE deadline: merged keys are bit-equal, so the heap
  // must fall back to ticket order.
  const double deadline = steady_now_seconds() + 3600.0;
  for (int i = 0; i < 4; ++i) {
    SolveRequest request{"record", {}, InstanceHandle::intern(small_instance(7, 10 + i))};
    request.deadline_seconds = deadline;
    static_cast<void>(service.submit(std::move(request)));
  }
  gate->open.store(true);
  service.drain();
  EXPECT_EQ(log->snapshot(), (std::vector<int>{10, 11, 12, 13}));
}

TEST(EdfDiscipline, WithoutDeadlinesMatchesFifoByteIdentically) {
  // The contract in ServiceConfig's docs: no deadlines anywhere -> "edf"
  // dispatches exactly like "fifo" and the streamed outcomes are
  // byte-identical (schedules included, timing excluded).
  std::vector<SolveRequest> requests;
  for (std::uint64_t i = 0; i < 12; ++i) {
    requests.push_back({"mrt", {}, InstanceHandle::intern(small_instance(400 + i))});
  }
  const auto run = [&requests](const std::string& discipline) {
    ServiceConfig config;
    config.threads = 1;
    config.cache = false;
    config.queue_discipline = discipline;
    SchedulerService service(config);
    BatchReport report;
    service.on_result([&report](const SolveOutcome& outcome) {
      BatchItem item;
      item.index = outcome.ticket;
      item.status = outcome.status;
      item.result = outcome.result;
      item.error = outcome.error;
      report.items.push_back(std::move(item));
      ++report.ok;
    });
    static_cast<void>(service.submit(requests));
    service.drain();
    BatchJsonOptions json;
    json.include_timing = false;
    json.include_schedules = true;
    return batch_report_json(report, json);
  };
  EXPECT_EQ(run("edf"), run("fifo"));
}

TEST(EdfDiscipline, ShedOldestEvictsTheOldestTicketNotTheLatestDeadline) {
  const auto gate = std::make_shared<PollGate>();
  const auto log = std::make_shared<DispatchLog>();
  const auto registry = edf_registry(gate, log);
  ServiceConfig config;
  config.threads = 1;
  config.registry = &registry;
  config.queue_discipline = "edf";
  config.max_queue_depth = 2;
  config.overload_policy = "shed_oldest";
  SchedulerService service(config);

  static_cast<void>(service.submit({"pollgate", {}, small_instance(8)}));
  gate->wait_entered();
  // The oldest queued job carries the EARLIEST deadline: shed_oldest must
  // still evict it (shedding is age-based admission control, not a deadline
  // judgment -- EDF only orders what stays admitted).
  SolveRequest oldest{"record", {}, InstanceHandle::intern(small_instance(9, 10))};
  oldest.budget_seconds = 900.0;
  SolveRequest kept{"record", {}, InstanceHandle::intern(small_instance(10, 11))};
  kept.budget_seconds = 3600.0;
  const auto oldest_ticket = service.submit(std::move(oldest));
  const auto kept_ticket = service.submit(std::move(kept));
  SolveRequest admitted{"record", {}, InstanceHandle::intern(small_instance(11, 12))};
  admitted.budget_seconds = 1800.0;
  const auto admitted_ticket = service.submit(std::move(admitted));

  const auto shed = service.poll(oldest_ticket);
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->status, SolveStatus::kError);
  EXPECT_EQ(shed->error.code, SolveErrorCode::kRejected);

  gate->open.store(true);
  service.drain();
  EXPECT_EQ(service.wait(kept_ticket).status, SolveStatus::kOk);
  EXPECT_EQ(service.wait(admitted_ticket).status, SolveStatus::kOk);
  EXPECT_EQ(service.stats().shed, 1u);
  // Of the two survivors, EDF still runs the earlier deadline (1800 s,
  // size 12) before the later one (3600 s, size 11) -- the shed job's stale
  // heap entry must not confuse the order.
  EXPECT_EQ(log->snapshot(), (std::vector<int>{12, 11}));
}

// --------------------------------------------------------------- fast path

TEST(FastPath, SolvesInlineWithProvenanceAndThreshold) {
  ServiceConfig config;
  config.threads = 1;
  config.cache = false;
  config.fast_path_max_tasks = 16;
  SchedulerService service(config);

  // At the threshold: solved on the submitting thread, terminal before
  // submit() returns, fast_path provenance, worker -1.
  const auto inline_ticket =
      service.submit(SolveRequest{"mrt", {}, InstanceHandle::intern(small_instance(20, 16))});
  const auto inline_outcome = service.poll(inline_ticket);
  ASSERT_TRUE(inline_outcome.has_value()) << "fast path must be terminal at submit return";
  EXPECT_EQ(inline_outcome->status, SolveStatus::kOk);
  EXPECT_TRUE(inline_outcome->fast_path);
  EXPECT_FALSE(inline_outcome->cache_hit);
  EXPECT_EQ(inline_outcome->worker, -1);

  // One task over: the normal queued path, no fast_path provenance.
  const auto queued_ticket =
      service.submit(SolveRequest{"mrt", {}, InstanceHandle::intern(small_instance(21, 17))});
  const auto queued_outcome = service.wait(queued_ticket);
  EXPECT_EQ(queued_outcome.status, SolveStatus::kOk);
  EXPECT_FALSE(queued_outcome.fast_path);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.fast_path_hits, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(FastPath, CacheHitReportsCacheHitNotFastPath) {
  ServiceConfig config;
  config.threads = 1;
  config.cache = true;
  config.fast_path_max_tasks = 16;
  SchedulerService service(config);

  const SolveRequest request{"mrt", {}, InstanceHandle::intern(small_instance(22, 16))};
  const auto first = service.wait(service.submit(request));
  EXPECT_TRUE(first.fast_path);
  EXPECT_FALSE(first.cache_hit);
  // Identical request: the fast path consults the cache with normal
  // accounting, so the repeat is a cache hit, NOT a fresh inline solve.
  const auto second = service.wait(service.submit(request));
  EXPECT_TRUE(second.cache_hit);
  EXPECT_FALSE(second.fast_path);
  EXPECT_EQ(second.result->makespan, first.result->makespan);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.fast_path_hits, 1u);  // the miss that solved inline
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);  // exactly one miss: accounting intact
}

TEST(FastPath, RespectsAnAlreadyExpiredBudget) {
  ServiceConfig config;
  config.threads = 1;
  config.cache = false;
  config.fast_path_max_tasks = 16;
  SchedulerService service(config);

  SolveRequest request{"mrt", {}, InstanceHandle::intern(small_instance(23, 16))};
  request.deadline_seconds = steady_now_seconds() - 1.0;  // already past
  const auto outcome = service.wait(service.submit(std::move(request)));
  EXPECT_EQ(outcome.status, SolveStatus::kError);
  EXPECT_EQ(outcome.error.code, SolveErrorCode::kDeadlineExceeded);
}

// -------------------------------------------------------------- the gauges

TEST(ServiceGauges, QueueDepthHighWaterTracksTheDeepestQueue) {
  const auto gate = std::make_shared<PollGate>();
  const auto log = std::make_shared<DispatchLog>();
  const auto registry = edf_registry(gate, log);
  ServiceConfig config;
  config.threads = 1;
  config.registry = &registry;
  SchedulerService service(config);

  EXPECT_EQ(service.stats().queue_depth_high_water, 0u);
  static_cast<void>(service.submit({"pollgate", {}, small_instance(30)}));
  gate->wait_entered();
  for (std::uint64_t i = 0; i < 3; ++i) {
    static_cast<void>(
        service.submit({"record", {}, InstanceHandle::intern(small_instance(31 + i))}));
  }
  EXPECT_EQ(service.stats().queue_depth_high_water, 3u);
  gate->open.store(true);
  service.drain();
  // The gauge is a high-water mark: draining must not lower it.
  EXPECT_EQ(service.stats().queue_depth_high_water, 3u);
}

TEST(ServiceGauges, ShardedRollupSumsHighWaterAndFastPathHits) {
  ServiceConfig config;
  config.threads = 1;
  config.cache = false;
  config.fast_path_max_tasks = 16;
  ShardedSchedulerService service(config, 4);

  for (std::uint64_t i = 0; i < 24; ++i) {
    static_cast<void>(
        service.submit(SolveRequest{"mrt", {}, InstanceHandle::intern(small_instance(50 + i))}));
  }
  service.drain();
  const ShardedServiceStats stats = service.shard_stats();
  // Every request was fast-path material; the rollup must see all of them
  // and equal the per-shard sum exactly (same for the high-water gauge).
  EXPECT_EQ(stats.total.fast_path_hits, 24u);
  std::uint64_t fast_paths = 0;
  std::uint64_t high_water = 0;
  for (const auto& shard : stats.shards) {
    fast_paths += shard.fast_path_hits;
    high_water += shard.queue_depth_high_water;
  }
  EXPECT_EQ(stats.total.fast_path_hits, fast_paths);
  EXPECT_EQ(stats.total.queue_depth_high_water, high_water);
  EXPECT_EQ(high_water, 0u);  // inline solves never touch the queues
}

// ------------------------------------------------------------- validation

TEST(QueueConfigValidation, RejectsUnknownDisciplineAndNegativeFastPath) {
  ServiceConfig config;
  config.queue_discipline = "lifo";
  config.fast_path_max_tasks = -1;
  const auto violations = config.validate();
  EXPECT_GE(violations.size(), 2u);
  EXPECT_THROW(SchedulerService{config}, std::invalid_argument);
  EXPECT_THROW(ShardedSchedulerService(config, 2), std::invalid_argument);
}

TEST(QueueConfigValidation, DefaultsAreFifoWithTheFastPathOff) {
  const ServiceConfig config;
  EXPECT_EQ(config.queue_discipline, "fifo");
  EXPECT_EQ(config.fast_path_max_tasks, 0);
  EXPECT_TRUE(config.validate().empty());
}

}  // namespace
}  // namespace malsched
