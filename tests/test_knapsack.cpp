// Tests for src/knapsack: the exact DP, the FPTAS, the dual (min) knapsack
// and the greedy bound, cross-checked against brute force.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "knapsack/knapsack.hpp"
#include "support/rng.hpp"

namespace malsched {
namespace {

std::vector<KnapsackItem> random_items(Rng& rng, int count, long long max_weight,
                                       long long max_profit) {
  std::vector<KnapsackItem> items(static_cast<std::size_t>(count));
  for (auto& item : items) {
    item.weight = rng.uniform_int(0, max_weight);
    item.profit = rng.uniform_int(0, max_profit);
  }
  return items;
}

long long selection_weight(const std::vector<KnapsackItem>& items,
                           const KnapsackSelection& sel) {
  long long total = 0;
  for (const int i : sel.items) total += items[static_cast<std::size_t>(i)].weight;
  return total;
}

long long selection_profit(const std::vector<KnapsackItem>& items,
                           const KnapsackSelection& sel) {
  long long total = 0;
  for (const int i : sel.items) total += items[static_cast<std::size_t>(i)].profit;
  return total;
}

/// Brute-force optimum of the *dual* problem: min weight with profit >= demand.
std::optional<long long> brute_min_weight(const std::vector<KnapsackItem>& items,
                                          long long demand) {
  std::optional<long long> best;
  const auto n = items.size();
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    long long weight = 0;
    long long profit = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::uint64_t{1} << i)) {
        weight += items[i].weight;
        profit += items[i].profit;
      }
    }
    if (profit >= demand && (!best || weight < *best)) best = weight;
  }
  return best;
}

// ------------------------------------------------------------ exact max DP

class KnapsackRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(KnapsackRandomTest, ExactMatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 30; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(0, 12));
    const auto items = random_items(rng, n, 20, 30);
    const long long capacity = rng.uniform_int(0, 60);
    const auto exact = knapsack_exact(items, capacity);
    const auto brute = knapsack_brute_force(items, capacity);
    EXPECT_EQ(exact.profit, brute.profit);
    EXPECT_LE(exact.weight, capacity);
    // Reported totals must match the actual selection.
    EXPECT_EQ(selection_weight(items, exact), exact.weight);
    EXPECT_EQ(selection_profit(items, exact), exact.profit);
  }
}

TEST_P(KnapsackRandomTest, FptasWithinFactor) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  for (const double eps : {0.5, 0.25, 0.1}) {
    for (int trial = 0; trial < 20; ++trial) {
      const int n = static_cast<int>(rng.uniform_int(1, 12));
      const auto items = random_items(rng, n, 25, 500);
      const long long capacity = rng.uniform_int(0, 80);
      const auto approx = knapsack_fptas(items, capacity, eps);
      const auto brute = knapsack_brute_force(items, capacity);
      EXPECT_LE(approx.weight, capacity);
      EXPECT_GE(static_cast<double>(approx.profit) + 1e-9,
                (1.0 - eps) * static_cast<double>(brute.profit))
          << "eps=" << eps;
    }
  }
}

TEST_P(KnapsackRandomTest, GreedyIsHalfOptimal) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    const auto items = random_items(rng, n, 20, 100);
    const long long capacity = rng.uniform_int(1, 60);
    const auto greedy = knapsack_greedy(items, capacity);
    const auto brute = knapsack_brute_force(items, capacity);
    EXPECT_LE(greedy.weight, capacity);
    EXPECT_GE(2 * greedy.profit, brute.profit);
  }
}

TEST_P(KnapsackRandomTest, MinKnapsackMatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 3000);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(0, 11));
    const auto items = random_items(rng, n, 20, 15);
    const long long demand = rng.uniform_int(0, 70);
    const auto dp = min_knapsack_exact(items, demand);
    const auto brute = brute_min_weight(items, demand);
    ASSERT_EQ(dp.has_value(), brute.has_value());
    if (dp) {
      EXPECT_EQ(dp->weight, *brute);
      EXPECT_GE(selection_profit(items, *dp), demand);
      EXPECT_EQ(selection_weight(items, *dp), dp->weight);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackRandomTest, ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------------------------- edges

TEST(Knapsack, EmptyAndZeroCapacity) {
  EXPECT_EQ(knapsack_exact({}, 10).profit, 0);
  const std::vector<KnapsackItem> items{{5, 7}};
  EXPECT_EQ(knapsack_exact(items, 0).profit, 0);
  EXPECT_EQ(knapsack_exact(items, -1).profit, 0);
  EXPECT_EQ(knapsack_exact(items, 5).profit, 7);
}

TEST(Knapsack, ZeroWeightItemsAlwaysFit) {
  const std::vector<KnapsackItem> items{{0, 3}, {0, 4}, {10, 100}};
  const auto sel = knapsack_exact(items, 0);
  EXPECT_EQ(sel.profit, 7);
}

TEST(Knapsack, RejectsNegativeInputs) {
  const std::vector<KnapsackItem> bad{{-1, 2}};
  EXPECT_THROW(knapsack_exact(bad, 5), std::invalid_argument);
  const std::vector<KnapsackItem> bad2{{1, -2}};
  EXPECT_THROW(knapsack_exact(bad2, 5), std::invalid_argument);
}

TEST(Knapsack, ExactMemoryGuardThrows) {
  const std::vector<KnapsackItem> items(4, KnapsackItem{1, 1});
  EXPECT_THROW(knapsack_exact(items, 1LL << 40), std::length_error);
}

TEST(Knapsack, ExactWithScratchMatchesPlainExact) {
  Rng rng(5150);
  KnapsackScratch scratch;
  for (int trial = 0; trial < 25; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(0, 12));
    const auto items = random_items(rng, n, 20, 30);
    const long long capacity = rng.uniform_int(0, 60);
    const auto plain = knapsack_exact(items, capacity);
    const auto reused = knapsack_exact(items, capacity, scratch);
    EXPECT_EQ(plain.items, reused.items);
    EXPECT_EQ(plain.weight, reused.weight);
    EXPECT_EQ(plain.profit, reused.profit);
  }
  // The scratch warms up once per high-water mark, then stops allocating.
  const auto items = random_items(rng, 12, 20, 30);
  (void)knapsack_exact(items, 60, scratch);  // establishes the high-water mark
  const auto warmed = scratch.alloc_events;
  (void)knapsack_exact(items, 60, scratch);
  (void)knapsack_exact(items, 30, scratch);
  EXPECT_EQ(scratch.alloc_events, warmed);
}

TEST(Knapsack, ExactAutoFallsBackToBranchAndBoundOverTheGuard) {
  // A capacity huge enough that the DP table would blow the ~512 MB guard:
  // knapsack_exact throws, knapsack_exact_auto must solve it exactly via
  // branch and bound instead of propagating std::length_error (the two-shelf
  // construction relies on this for huge-machine instances).
  const long long capacity = 1LL << 40;
  std::vector<KnapsackItem> items;
  items.push_back({capacity / 2, 10});
  items.push_back({capacity / 2, 9});
  items.push_back({capacity / 2 + 1, 25});
  items.push_back({3, 1});
  ASSERT_TRUE(knapsack_exact_exceeds_guard(items, capacity));
  EXPECT_THROW(knapsack_exact(items, capacity), std::length_error);

  const auto sel = knapsack_exact_auto(items, capacity);
  EXPECT_EQ(sel.profit, 26);  // {capacity/2 + 1, 25} + {3, 1}
  EXPECT_LE(selection_weight(items, sel), capacity);
  EXPECT_EQ(selection_profit(items, sel), sel.profit);

  // In-guard inputs keep taking the byte-identical DP route.
  Rng rng(99);
  const auto small = random_items(rng, 10, 20, 30);
  ASSERT_FALSE(knapsack_exact_exceeds_guard(small, 50));
  const auto via_auto = knapsack_exact_auto(small, 50);
  const auto via_dp = knapsack_exact(small, 50);
  EXPECT_EQ(via_auto.items, via_dp.items);
  EXPECT_EQ(via_auto.profit, via_dp.profit);
}

TEST(Knapsack, FptasRejectsBadEps) {
  const std::vector<KnapsackItem> items{{1, 1}};
  EXPECT_THROW(knapsack_fptas(items, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(knapsack_fptas(items, 1, 1.0), std::invalid_argument);
}

TEST(Knapsack, BruteForceLimit) {
  const std::vector<KnapsackItem> items(25, KnapsackItem{1, 1});
  EXPECT_THROW(knapsack_brute_force(items, 5), std::invalid_argument);
}

TEST(MinKnapsack, ZeroDemandIsEmpty) {
  const std::vector<KnapsackItem> items{{3, 4}};
  const auto sel = min_knapsack_exact(items, 0);
  ASSERT_TRUE(sel.has_value());
  EXPECT_TRUE(sel->items.empty());
  EXPECT_EQ(sel->weight, 0);
}

TEST(MinKnapsack, InfeasibleDemand) {
  const std::vector<KnapsackItem> items{{3, 4}, {2, 5}};
  EXPECT_FALSE(min_knapsack_exact(items, 10).has_value());
}

TEST(MinKnapsack, ApproxKeepsHardConstraint) {
  Rng rng(777);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    const auto items = random_items(rng, n, 20, 15);
    long long total_profit = 0;
    for (const auto& item : items) total_profit += item.profit;
    const long long demand = rng.uniform_int(0, total_profit);
    const auto sel = min_knapsack_approx(items, demand, 0.25);
    ASSERT_TRUE(sel.has_value());
    EXPECT_GE(selection_profit(items, *sel), demand);
  }
}

TEST(MinKnapsack, ApproxRejectsBadEps) {
  const std::vector<KnapsackItem> items{{1, 1}};
  EXPECT_THROW(min_knapsack_approx(items, 1, 0.0), std::invalid_argument);
}

TEST(Knapsack, SelectionIndicesSortedAndUnique) {
  Rng rng(888);
  const auto items = random_items(rng, 12, 10, 10);
  const auto sel = knapsack_exact(items, 30);
  for (std::size_t i = 1; i < sel.items.size(); ++i) {
    EXPECT_LT(sel.items[i - 1], sel.items[i]);
  }
}

}  // namespace
}  // namespace malsched
