// Tests for the open-loop load-generation primitives: workload/arrivals
// (seeded Poisson / bursty / diurnal traces and the timed-trace pairing) and
// support/latency_histogram (lock-free log-bucketed percentiles).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "model/instance_io.hpp"
#include "support/json.hpp"
#include "support/latency_histogram.hpp"
#include "workload/arrivals.hpp"
#include "workload/trace.hpp"

namespace malsched {
namespace {

// ------------------------------------------------------------- arrivals

TEST(Arrivals, DeterministicPerSeed) {
  for (const auto process :
       {ArrivalProcess::kPoisson, ArrivalProcess::kBursty, ArrivalProcess::kDiurnal}) {
    ArrivalOptions options;
    options.process = process;
    options.rate_per_second = 500.0;
    options.duration_seconds = 2.0;
    const auto a = generate_arrivals(options, 42);
    const auto b = generate_arrivals(options, 42);
    const auto c = generate_arrivals(options, 43);
    ASSERT_EQ(a.size(), b.size()) << to_string(process);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << to_string(process) << " diverges at arrival " << i;
    }
    EXPECT_NE(a, c) << to_string(process) << " ignores the seed";
  }
}

TEST(Arrivals, SortedWithinHorizonAndNearMeanRate) {
  for (const auto process :
       {ArrivalProcess::kPoisson, ArrivalProcess::kBursty, ArrivalProcess::kDiurnal}) {
    ArrivalOptions options;
    options.process = process;
    options.rate_per_second = 1000.0;
    options.duration_seconds = 4.0;
    const auto arrivals = generate_arrivals(options, 7);
    EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end())) << to_string(process);
    ASSERT_FALSE(arrivals.empty()) << to_string(process);
    EXPECT_GE(arrivals.front(), 0.0) << to_string(process);
    EXPECT_LT(arrivals.back(), options.duration_seconds) << to_string(process);
    // All three processes share the same long-run mean; 4000 expected
    // arrivals has a relative sigma under 2% for Poisson, somewhat more for
    // the modulated shapes -- 25% slack is far outside noise yet catches a
    // rate off by a factor.
    const double expected = options.rate_per_second * options.duration_seconds;
    EXPECT_GT(static_cast<double>(arrivals.size()), 0.75 * expected) << to_string(process);
    EXPECT_LT(static_cast<double>(arrivals.size()), 1.25 * expected) << to_string(process);
  }
}

TEST(Arrivals, MaxArrivalsCaps) {
  ArrivalOptions options;
  options.rate_per_second = 10000.0;
  options.duration_seconds = 1.0;
  options.max_arrivals = 50;
  EXPECT_EQ(generate_arrivals(options, 3).size(), 50u);
}

TEST(Arrivals, BurstyIsBurstierThanPoisson) {
  // Count arrivals in 10 ms windows: the on-off process must show a heavier
  // busiest window than memoryless arrivals at the same mean rate.
  const auto busiest_window = [](const std::vector<double>& arrivals) {
    std::vector<int> per_window(400, 0);
    for (const double t : arrivals) {
      const auto w = static_cast<std::size_t>(t / 0.01);
      if (w < per_window.size()) ++per_window[w];
    }
    return *std::max_element(per_window.begin(), per_window.end());
  };
  ArrivalOptions options;
  options.rate_per_second = 2000.0;
  options.duration_seconds = 4.0;
  options.process = ArrivalProcess::kPoisson;
  const int poisson_peak = busiest_window(generate_arrivals(options, 11));
  options.process = ArrivalProcess::kBursty;
  options.burst_factor = 8.0;
  options.on_fraction = 0.1;  // product 0.8: ON phases run at 8x the mean
  const int bursty_peak = busiest_window(generate_arrivals(options, 11));
  // Even against Poisson fluctuation the busiest window must be clearly
  // heavier when a tenth of the time carries 8x the rate.
  EXPECT_GT(bursty_peak, 2 * poisson_peak);
}

TEST(Arrivals, DiurnalFollowsTheRateCurve) {
  ArrivalOptions options;
  options.process = ArrivalProcess::kDiurnal;
  options.rate_per_second = 4000.0;
  options.duration_seconds = 1.0;  // exactly one period
  options.diurnal_amplitude = 0.8;
  const auto arrivals = generate_arrivals(options, 5);
  // First half-period: rate = mean * (1 + 0.8 sin), sin >= 0 -> above mean.
  // Second half: below mean. With amplitude 0.8 the halves split roughly
  // (1 + 2*0.8/pi) : (1 - 2*0.8/pi) ~ 1.51 : 0.49.
  const auto split = std::lower_bound(arrivals.begin(), arrivals.end(), 0.5);
  const auto first_half = static_cast<double>(split - arrivals.begin());
  const auto second_half = static_cast<double>(arrivals.end() - split);
  EXPECT_GT(first_half, 2.0 * second_half);
}

TEST(Arrivals, ValidateListsEveryViolation) {
  ArrivalOptions options;
  options.rate_per_second = -1.0;
  options.duration_seconds = 0.0;
  options.process = ArrivalProcess::kBursty;
  options.burst_factor = 0.5;   // < 1
  options.on_fraction = 1.5;    // outside (0, 1)
  const auto violations = options.validate();
  EXPECT_GE(violations.size(), 4u);
  EXPECT_THROW((void)generate_arrivals(options, 1), std::invalid_argument);
}

TEST(Arrivals, BurstFactorTimesOnFractionMustNotExceedOne) {
  ArrivalOptions options;
  options.process = ArrivalProcess::kBursty;
  options.on_fraction = 0.5;
  options.burst_factor = 4.0;  // product 2.0 > 1: the OFF rate would be negative
  EXPECT_FALSE(options.validate().empty());
  options.burst_factor = 2.0;  // product exactly 1.0: OFF rate 0, valid
  EXPECT_TRUE(options.validate().empty());
}

TEST(Arrivals, RoundTripNames) {
  for (const auto process :
       {ArrivalProcess::kPoisson, ArrivalProcess::kBursty, ArrivalProcess::kDiurnal}) {
    EXPECT_EQ(arrival_process_from_string(to_string(process)), process);
  }
  EXPECT_THROW((void)arrival_process_from_string("uniform"), std::invalid_argument);
}

// ---------------------------------------------------------- timed traces

TEST(TimedTrace, PairsArrivalsWithDeterministicSnapshots) {
  TraceOptions trace_options;
  ArrivalOptions arrivals;
  arrivals.rate_per_second = 200.0;
  arrivals.duration_seconds = 1.0;
  const auto a = timed_trace(trace_options, arrivals, 9);
  const auto b = timed_trace(trace_options, arrivals, 9);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.size(), generate_arrivals(arrivals, 9).size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_seconds, b[i].arrival_seconds);
    EXPECT_EQ(instance_to_string(a[i].instance), instance_to_string(b[i].instance));
    if (i > 0) {
      EXPECT_GE(a[i].arrival_seconds, a[i - 1].arrival_seconds);
    }
  }
  // Snapshots vary along the trace (forked seeds, not one repeated draw).
  if (a.size() >= 2) {
    EXPECT_NE(instance_to_string(a.front().instance), instance_to_string(a.back().instance));
  }
}

// ------------------------------------------------------------- histogram

TEST(LatencyHistogram, QuantilesLandInTheRightBucket) {
  LatencyHistogram histogram;
  // 90 samples at ~1 ms, 9 at ~100 ms, 1 at ~1 s: p50/p95 -> the 1 ms and
  // 100 ms buckets, p999 -> the 1 s bucket.
  for (int i = 0; i < 90; ++i) histogram.record(1e-3);
  for (int i = 0; i < 9; ++i) histogram.record(0.1);
  histogram.record(1.0);
  EXPECT_EQ(histogram.count(), 100u);
  EXPECT_EQ(histogram.max_seconds(), 1.0);
  // The reported edge overestimates by at most one bucket ratio (~15.5%).
  EXPECT_GE(histogram.quantile(0.5), 1e-3);
  EXPECT_LT(histogram.quantile(0.5), 1e-3 * 1.2);
  EXPECT_GE(histogram.quantile(0.95), 0.1);
  EXPECT_LT(histogram.quantile(0.95), 0.1 * 1.2);
  EXPECT_GE(histogram.quantile(0.999), 1.0);
  EXPECT_LT(histogram.quantile(0.999), 1.2);
}

TEST(LatencyHistogram, UnderflowOverflowAndEmpty) {
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.quantile(0.5), 0.0);  // empty
  histogram.record(-1.0);          // negative -> underflow, max untouched
  histogram.record(std::nan(""));  // NaN -> underflow
  EXPECT_EQ(histogram.count(), 2u);
  EXPECT_EQ(histogram.max_seconds(), 0.0);
  histogram.record(1e-9);  // positive but below kMinSeconds: underflow, yet the max sees it
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_EQ(histogram.max_seconds(), 1e-9);
  EXPECT_EQ(histogram.quantile(0.5), LatencyHistogram::kMinSeconds);
  histogram.record(5000.0);  // beyond the last decade -> overflow bucket
  EXPECT_EQ(histogram.quantile(1.0), 5000.0);  // overflow reports the max
  EXPECT_EQ(histogram.bucket_count(LatencyHistogram::kBuckets - 1), 1u);
}

TEST(LatencyHistogram, MergeIsBucketwiseAddition) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 10; ++i) a.record(1e-3);
  for (int i = 0; i < 5; ++i) b.record(0.5);
  a.merge(b);
  EXPECT_EQ(a.count(), 15u);
  EXPECT_EQ(a.max_seconds(), 0.5);
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (a.bucket_count(i) == 0) continue;
    // Every non-empty bucket of the merge is one of the two inputs' buckets.
    EXPECT_TRUE(a.bucket_count(i) == 10u || a.bucket_count(i) == 5u);
  }
}

TEST(LatencyHistogram, ConcurrentRecordLosesNothing) {
  LatencyHistogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.record(1e-4 * static_cast<double>(1 + ((t + i) % 7)));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(histogram.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram.max_seconds(), 7e-4);
}

TEST(LatencyHistogram, BucketEdgesAreGeometric) {
  // Edges must grow by exactly 10^(1/16) per bucket across each decade; the
  // JSON report and bucket_index share this table, so spot-check it.
  const double ratio = std::pow(10.0, 1.0 / LatencyHistogram::kBucketsPerDecade);
  for (int i = 1; i + 2 < LatencyHistogram::kBuckets; ++i) {
    const double edge = LatencyHistogram::bucket_upper_edge(i);
    const double next = LatencyHistogram::bucket_upper_edge(i + 1);
    EXPECT_NEAR(next / edge, ratio, 1e-9) << "bucket " << i;
  }
  EXPECT_EQ(LatencyHistogram::bucket_upper_edge(0), LatencyHistogram::kMinSeconds);
  EXPECT_TRUE(std::isinf(LatencyHistogram::bucket_upper_edge(LatencyHistogram::kBuckets - 1)));
}

TEST(LatencyHistogram, WriteJsonEmitsPercentilesAndSparseBuckets) {
  LatencyHistogram histogram;
  for (int i = 0; i < 100; ++i) histogram.record(2e-3);
  histogram.record(5000.0);  // overflow: its edge must render as null
  JsonWriter json;
  json.begin_object();
  json.key("latency_histogram");
  histogram.write_json(json);
  json.end_object();
  const std::string& text = json.str();
  EXPECT_NE(text.find("\"count\":101"), std::string::npos) << text;
  EXPECT_NE(text.find("\"p50_seconds\""), std::string::npos);
  EXPECT_NE(text.find("\"p999_seconds\""), std::string::npos);
  EXPECT_NE(text.find("\"upper_seconds\":null"), std::string::npos) << text;
  // Sparse: two non-empty buckets -> exactly two bucket objects.
  std::size_t buckets = 0;
  for (std::size_t at = text.find("\"upper_seconds\""); at != std::string::npos;
       at = text.find("\"upper_seconds\"", at + 1)) {
    ++buckets;
  }
  EXPECT_EQ(buckets, 2u);
}

}  // namespace
}  // namespace malsched
