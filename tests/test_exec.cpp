// Tests for src/exec: the deterministic BatchRunner fan-out, its JSON
// serialization, and the api/solve_batch facade.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "api/solve_batch.hpp"
#include "exec/batch_json.hpp"
#include "exec/batch_runner.hpp"
#include "workload/generators.hpp"

namespace malsched {
namespace {

Instance small_instance(std::uint64_t seed, int tasks = 16, int machines = 8) {
  GeneratorOptions options;
  options.tasks = tasks;
  options.machines = machines;
  const auto families = all_workload_families();
  return generate_instance(families[seed % families.size()], options, seed);
}

/// A mixed batch: families rotate with the seed, solvers with the index.
std::vector<BatchJob> mixed_jobs(std::size_t count) {
  const std::vector<std::pair<std::string, std::string>> configs{
      {"mrt", ""},
      {"two_phase", "rigid=ffdh"},
      {"naive", "policy=lpt-seq"},
      {"two_shelves_32", ""},
  };
  std::vector<BatchJob> jobs;
  for (std::size_t i = 0; i < count; ++i) {
    const auto& [solver, spec] = configs[i % configs.size()];
    jobs.push_back({solver, SolverOptions::from_string(spec), small_instance(100 + i)});
  }
  return jobs;
}

/// Registry with one well-behaved solver and one that always throws.
SolverRegistry flaky_registry() {
  SolverRegistry registry;
  registry.add("seq", "puts every task on one processor, back to back",
               [](const Instance& instance, const SolverOptions&) {
                 Schedule schedule(instance.machines(), instance.size());
                 double t = 0.0;
                 for (int i = 0; i < instance.size(); ++i) {
                   schedule.assign(i, t, instance.task(i).time(1), 0, 1);
                   t += instance.task(i).time(1);
                 }
                 return SolverResult{"", std::move(schedule), 0, 0, 0, 0, {}};
               });
  registry.add("boom", "always throws", [](const Instance&, const SolverOptions&) -> SolverResult {
    throw std::runtime_error("boom: simulated solver failure");
  });
  return registry;
}

// --------------------------------------------------------------- BatchRunner

TEST(BatchRunner, EmptyBatchIsANoop) {
  // Explicit element type: `{}` would be ambiguous between the SolveRequest
  // and the legacy BatchJob overloads.
  const auto report = BatchRunner().run(std::vector<SolveRequest>{});
  EXPECT_TRUE(report.items.empty());
  EXPECT_TRUE(report.all_ok());
  EXPECT_EQ(report.ok + report.errors + report.cancelled, 0u);
}

TEST(BatchRunner, ItemsComeBackInJobOrder) {
  const auto jobs = mixed_jobs(12);
  BatchRunnerOptions options;
  options.threads = 4;
  const auto report = BatchRunner(SolverRegistry::global(), options).run(jobs);
  ASSERT_EQ(report.items.size(), jobs.size());
  EXPECT_EQ(report.ok, jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(report.items[i].index, i);
    ASSERT_TRUE(report.items[i].result.has_value());
    EXPECT_EQ(report.items[i].result->solver, jobs[i].solver);
  }
}

TEST(BatchRunner, MatchesSerialRegistryDispatch) {
  const auto jobs = mixed_jobs(8);
  BatchRunnerOptions options;
  options.threads = 3;
  const auto report = BatchRunner(SolverRegistry::global(), options).run(jobs);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto direct = solve(jobs[i].solver, *jobs[i].instance, jobs[i].options);
    ASSERT_TRUE(report.items[i].result.has_value());
    EXPECT_DOUBLE_EQ(report.items[i].result->makespan, direct.makespan);
    EXPECT_DOUBLE_EQ(report.items[i].result->lower_bound, direct.lower_bound);
  }
}

// The acceptance property of the whole subsystem: a 64-instance batch on 8
// threads serializes byte-identically to the 1-thread run (schedules
// included; only wall times may differ, and those are excluded).
TEST(BatchRunner, ByteIdenticalAcrossThreadCounts) {
  const auto jobs = mixed_jobs(64);
  BatchJsonOptions json;
  json.include_timing = false;
  json.include_schedules = true;

  std::string baseline;
  for (const unsigned threads : {1u, 2u, 8u}) {
    BatchRunnerOptions options;
    options.threads = threads;
    const auto report = BatchRunner(SolverRegistry::global(), options).run(jobs);
    EXPECT_EQ(report.ok, jobs.size());
    EXPECT_EQ(report.threads, std::min<std::size_t>(threads, jobs.size()));
    const auto text = batch_report_json(report, json);
    if (baseline.empty()) {
      baseline = text;
    } else {
      EXPECT_EQ(text, baseline) << "results depend on the thread count at " << threads;
    }
  }
}

TEST(BatchRunner, SolveRequestPathMatchesBatchJobShimByteForByte) {
  // API v2: requests built from handles interned once must produce the same
  // report as the legacy interning shim -- and do so without re-hashing any
  // profile bits at run() time.
  const auto jobs = mixed_jobs(12);
  BatchJsonOptions json;
  json.include_timing = false;
  json.include_schedules = true;
  const std::string reference = batch_report_json(BatchRunner().run(jobs), json);

  std::vector<SolveRequest> requests;
  for (const auto& job : jobs) {
    requests.emplace_back(job.solver, job.options, InstanceHandle::intern(job.instance));
  }
  const auto hashes_before = InstanceHandle::content_hashes();
  BatchRunnerOptions options;
  options.threads = 4;
  const auto report = BatchRunner(SolverRegistry::global(), options).run(requests);
  EXPECT_EQ(InstanceHandle::content_hashes(), hashes_before)
      << "the request path must not re-fingerprint interned instances";
  EXPECT_EQ(batch_report_json(report, json), reference);
}

TEST(BatchRunner, RequestWithEmptyHandleIsRejectedUpFront) {
  std::vector<SolveRequest> requests(1);  // default = empty handle
  EXPECT_THROW(static_cast<void>(BatchRunner().run(requests)), std::invalid_argument);
}

TEST(BatchRunner, OversubscriptionStressStaysDeterministic) {
  // Far more workers than cores (this container has few) and than jobs'
  // natural parallelism; tiny instances maximize scheduling churn.
  std::vector<BatchJob> jobs;
  for (std::size_t i = 0; i < 100; ++i) {
    jobs.push_back({"naive", SolverOptions::from_string("policy=lpt-seq"),
                    small_instance(i, /*tasks=*/6, /*machines=*/4)});
  }
  BatchJsonOptions json;
  json.include_timing = false;
  json.include_schedules = true;

  BatchRunnerOptions serial;
  serial.threads = 1;
  const auto reference = batch_report_json(BatchRunner(SolverRegistry::global(), serial).run(jobs), json);

  BatchRunnerOptions oversubscribed;
  oversubscribed.threads = 32;
  const auto report = BatchRunner(SolverRegistry::global(), oversubscribed).run(jobs);
  EXPECT_EQ(report.ok, jobs.size());
  EXPECT_EQ(report.threads, 32u);
  EXPECT_EQ(batch_report_json(report, json), reference);
}

TEST(BatchRunner, OneThrowingSolveDoesNotPoisonTheBatch) {
  const auto registry = flaky_registry();
  std::vector<BatchJob> jobs;
  for (std::size_t i = 0; i < 10; ++i) {
    jobs.push_back({i % 2 == 0 ? "seq" : "boom", {}, small_instance(i)});
  }
  BatchRunnerOptions options;
  options.threads = 4;
  const auto report = BatchRunner(registry, options).run(jobs);
  EXPECT_EQ(report.ok, 5u);
  EXPECT_EQ(report.errors, 5u);
  EXPECT_EQ(report.cancelled, 0u);
  EXPECT_FALSE(report.all_ok());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(report.items[i].status, BatchItemStatus::kOk);
      ASSERT_TRUE(report.items[i].result.has_value());
      EXPECT_TRUE(report.items[i].result->schedule.complete());
    } else {
      EXPECT_EQ(report.items[i].status, BatchItemStatus::kError);
      EXPECT_EQ(report.items[i].error.code, SolveErrorCode::kSolverFailure);
      EXPECT_NE(report.items[i].error.detail.find("boom"), std::string::npos);
      EXPECT_FALSE(report.items[i].result.has_value());
    }
  }
}

TEST(BatchRunner, UnknownSolverNameIsIsolatedToo) {
  std::vector<BatchJob> jobs;
  jobs.push_back({"mrt", {}, small_instance(1)});
  jobs.push_back({"no-such-solver", {}, small_instance(2)});
  const auto report = BatchRunner().run(jobs);
  EXPECT_EQ(report.ok, 1u);
  EXPECT_EQ(report.errors, 1u);
  EXPECT_EQ(report.items[1].error.code, SolveErrorCode::kInvalidOption);
  EXPECT_NE(report.items[1].error.detail.find("unknown solver"), std::string::npos);
}

TEST(BatchRunner, StopOnErrorCancelsTheRemainder) {
  const auto registry = flaky_registry();
  std::vector<BatchJob> jobs;
  jobs.push_back({"seq", {}, small_instance(0)});
  jobs.push_back({"boom", {}, small_instance(1)});
  jobs.push_back({"seq", {}, small_instance(2)});
  jobs.push_back({"seq", {}, small_instance(3)});
  BatchRunnerOptions options;
  options.threads = 1;  // serial dispatch makes the cancellation point exact
  options.stop_on_error = true;
  const auto report = BatchRunner(registry, options).run(jobs);
  EXPECT_EQ(report.items[0].status, BatchItemStatus::kOk);
  EXPECT_EQ(report.items[1].status, BatchItemStatus::kError);
  EXPECT_EQ(report.items[2].status, BatchItemStatus::kCancelled);
  EXPECT_EQ(report.items[3].status, BatchItemStatus::kCancelled);
  EXPECT_EQ(report.ok, 1u);
  EXPECT_EQ(report.errors, 1u);
  EXPECT_EQ(report.cancelled, 2u);
}

TEST(BatchRunner, StopOnErrorDoesNotFireTheCallersToken) {
  const auto registry = flaky_registry();
  std::vector<BatchJob> jobs;
  jobs.push_back({"boom", {}, small_instance(0)});
  jobs.push_back({"seq", {}, small_instance(1)});
  BatchRunnerOptions options;
  options.threads = 1;
  options.stop_on_error = true;
  CancelToken token;  // shared with, say, a shutdown watcher
  const auto report = BatchRunner(registry, options).run(jobs, token);
  EXPECT_EQ(report.errors, 1u);
  EXPECT_EQ(report.cancelled, 1u);
  EXPECT_FALSE(token.cancelled()) << "a failing job must not look like external cancellation";
}

TEST(BatchRunner, PreCancelledTokenSkipsEveryJob) {
  CancelToken token;
  token.cancel();
  const auto report = BatchRunner().run(mixed_jobs(6), token);
  EXPECT_EQ(report.cancelled, 6u);
  EXPECT_EQ(report.ok, 0u);
  for (const auto& item : report.items) {
    EXPECT_EQ(item.status, BatchItemStatus::kCancelled);
    EXPECT_FALSE(item.result.has_value());
  }
}

TEST(BatchJob, SharedInstanceIsNotCopiedAndNullIsRejected) {
  const auto shared = std::make_shared<const Instance>(small_instance(5));
  std::vector<BatchJob> jobs;
  jobs.push_back({"mrt", {}, shared});
  jobs.push_back({"naive", SolverOptions::from_string("policy=gang"), shared});
  EXPECT_EQ(jobs[0].instance.get(), shared.get());
  EXPECT_EQ(jobs[1].instance.get(), shared.get());
  const auto report = BatchRunner().run(jobs);
  EXPECT_EQ(report.ok, 2u);

  EXPECT_THROW(BatchJob("mrt", {}, std::shared_ptr<const Instance>{}), std::invalid_argument);
}

TEST(BatchRunner, CopiedTokensShareOneFlag) {
  CancelToken token;
  const CancelToken copy = token;
  token.cancel();
  EXPECT_TRUE(copy.cancelled());
}

TEST(BatchReport, AggregateStatsSumSolverCounters) {
  std::vector<BatchJob> jobs;
  for (std::size_t i = 0; i < 4; ++i) jobs.push_back({"mrt", {}, small_instance(i)});
  const auto report = BatchRunner().run(jobs);
  ASSERT_EQ(report.ok, jobs.size());
  double expected_iterations = 0.0;
  for (const auto& item : report.items) expected_iterations += item.result->stat("iterations");
  double aggregated = 0.0;
  for (const auto& [key, value] : report.aggregate_stats()) {
    if (key == "iterations") aggregated = value;
  }
  EXPECT_GT(aggregated, 0.0);
  EXPECT_DOUBLE_EQ(aggregated, expected_iterations);
}

// --------------------------------------------------------------- solve_batch

TEST(SolveBatch, DispatchesThroughTheGlobalRegistry) {
  const auto jobs = mixed_jobs(5);
  const auto report = solve_batch(jobs);
  EXPECT_EQ(report.ok, jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(report.items[i].result->solver, jobs[i].solver);
  }
  EXPECT_GE(report.wall_seconds, 0.0);
  EXPECT_GE(report.threads, 1u);
}

TEST(SolveBatch, HonorsCancellation) {
  CancelToken token;
  token.cancel();
  const auto report = solve_batch(mixed_jobs(3), {}, token);
  EXPECT_EQ(report.cancelled, 3u);
}

// ---------------------------------------------------------------- batch_json

TEST(BatchJson, SerializesStatusErrorAndResultFields) {
  const auto registry = flaky_registry();
  std::vector<BatchJob> jobs;
  jobs.push_back({"seq", {}, small_instance(0)});
  jobs.push_back({"boom", {}, small_instance(1)});
  const auto report = BatchRunner(registry).run(jobs);
  const auto text = batch_report_json(report);
  EXPECT_NE(text.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(text.find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(text.find("\"error\":\"boom: simulated solver failure\""), std::string::npos);
  EXPECT_NE(text.find("\"solver\":\"seq\""), std::string::npos);
  EXPECT_NE(text.find("\"makespan\":"), std::string::npos);
  EXPECT_NE(text.find("\"wall_seconds\":"), std::string::npos);
  EXPECT_NE(text.find("\"aggregate_stats\":"), std::string::npos);
}

TEST(BatchJson, TimingAndScheduleTogglesChangeTheDocument) {
  std::vector<BatchJob> jobs;
  jobs.push_back({"mrt", {}, small_instance(0)});
  const auto report = BatchRunner().run(jobs);

  BatchJsonOptions bare;
  bare.include_timing = false;
  const auto without_timing = batch_report_json(report, bare);
  EXPECT_EQ(without_timing.find("wall_seconds"), std::string::npos);
  EXPECT_EQ(without_timing.find("\"schedule\""), std::string::npos);

  BatchJsonOptions full;
  full.include_schedules = true;
  const auto with_schedules = batch_report_json(report, full);
  EXPECT_NE(with_schedules.find("\"schedule\":["), std::string::npos);
  EXPECT_NE(with_schedules.find("\"first_proc\":"), std::string::npos);
}

}  // namespace
}  // namespace malsched
