// Tests for the SchedulerService front end (src/api/scheduler_service.*),
// the content-hash SolveCache behind it, and the exec/WorkerPool it runs on:
// ordered streaming byte-identical to solve_batch, cache hit/eviction
// accounting, per-worker workspace reuse, cancellation mid-stream, and
// graceful shutdown with pending jobs.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/scheduler_service.hpp"
#include "api/solve_batch.hpp"
#include "api/solve_cache.hpp"
#include "exec/batch_json.hpp"
#include "exec/worker_pool.hpp"
#include "support/mutex.hpp"
#include "workload/generators.hpp"

namespace malsched {
namespace {

Instance small_instance(std::uint64_t seed, int tasks = 16, int machines = 8) {
  GeneratorOptions options;
  options.tasks = tasks;
  options.machines = machines;
  const auto families = all_workload_families();
  return generate_instance(families[seed % families.size()], options, seed);
}

/// A mixed batch plus exact-duplicate tails (the duplicates share the
/// instance AND the options, so they are cache-hit material). mrt jobs all
/// use distinct instances: same-instance mrt misses legitimately report
/// different workspace audit deltas, which the byte-compare here must not
/// see (covered by WorkspaceReuse* below instead).
std::vector<BatchJob> mixed_jobs_with_duplicates(std::size_t base_count) {
  const std::vector<std::pair<std::string, std::string>> configs{
      {"mrt", ""},
      {"two_phase", "rigid=ffdh"},
      {"naive", "policy=lpt-seq"},
      {"two_shelves_32", ""},
  };
  std::vector<BatchJob> jobs;
  for (std::size_t i = 0; i < base_count; ++i) {
    const auto& [solver, spec] = configs[i % configs.size()];
    jobs.push_back({solver, SolverOptions::from_string(spec), small_instance(200 + i)});
  }
  // Exact duplicates of two non-mrt jobs (same shared instance, same
  // options): deterministic cache hits once the original has completed.
  jobs.push_back({jobs[1].solver, jobs[1].options, jobs[1].instance});
  jobs.push_back({jobs[2].solver, jobs[2].options, jobs[2].instance});
  return jobs;
}

/// Outcomes reshaped as a BatchReport so the byte-compare reuses the proven
/// exec/batch_json serialization.
BatchReport report_from(const std::vector<JobOutcome>& outcomes) {
  BatchReport report;
  for (const auto& outcome : outcomes) {
    BatchItem item;
    item.index = outcome.ticket;
    item.status = outcome.status;
    item.result = outcome.result;
    item.error = outcome.error;
    switch (item.status) {
      case BatchItemStatus::kOk: ++report.ok; break;
      case BatchItemStatus::kError: ++report.errors; break;
      case BatchItemStatus::kCancelled: ++report.cancelled; break;
    }
    report.items.push_back(std::move(item));
  }
  return report;
}

/// Two-way latch for the blocking test solver: the test waits for the solve
/// to start, the solve waits for the test to release it.
struct Gate {
  Mutex mutex;
  CondVar cv;
  bool entered MALSCHED_GUARDED_BY(mutex){false};
  bool open MALSCHED_GUARDED_BY(mutex){false};

  void enter_and_wait() MALSCHED_EXCLUDES(mutex) {
    const LockGuard lock(mutex);
    entered = true;
    cv.notify_all();
    while (!open) cv.wait(mutex);
  }
  void wait_entered() MALSCHED_EXCLUDES(mutex) {
    const LockGuard lock(mutex);
    while (!entered) cv.wait(mutex);
  }
  void release() MALSCHED_EXCLUDES(mutex) {
    {
      const LockGuard lock(mutex);
      open = true;
    }
    cv.notify_all();
  }
};

Schedule sequential_schedule(const Instance& instance) {
  Schedule schedule(instance.machines(), instance.size());
  double t = 0.0;
  for (int i = 0; i < instance.size(); ++i) {
    schedule.assign(i, t, instance.task(i).time(1), 0, 1);
    t += instance.task(i).time(1);
  }
  return schedule;
}

/// Registry with a fast solver, a gate-blocked solver, and a throwing one.
SolverRegistry gated_registry(const std::shared_ptr<Gate>& gate) {
  SolverRegistry registry;
  registry.add("seq", "sequential on processor 0",
               [](const Instance& instance, const SolverOptions&) {
                 return SolverResult{"", sequential_schedule(instance), 0, 0, 0, 0, {}};
               });
  registry.add("gate", "blocks until the test releases it",
               [gate](const Instance& instance, const SolverOptions&) {
                 gate->enter_and_wait();
                 return SolverResult{"", sequential_schedule(instance), 0, 0, 0, 0, {}};
               });
  registry.add("boom", "always throws",
               [](const Instance&, const SolverOptions&) -> SolverResult {
                 throw std::runtime_error("boom: simulated solver failure");
               });
  return registry;
}

// ------------------------------------------------------- ordered streaming

// The acceptance property: the streamed sequence at 1/2/8 threads is
// byte-identical to solve_batch on the same jobs (schedules included;
// timing excluded -- the one legitimately nondeterministic field).
TEST(SchedulerService, StreamsInTicketOrderByteIdenticalToSolveBatch) {
  const auto jobs = mixed_jobs_with_duplicates(24);
  BatchJsonOptions json;
  json.include_timing = false;
  json.include_schedules = true;
  const std::string reference = batch_report_json(solve_batch(jobs), json);

  for (const unsigned threads : {1u, 2u, 8u}) {
    ServiceOptions options;
    options.threads = threads;
    SchedulerService service(options);
    std::vector<JobOutcome> streamed;
    service.on_result([&streamed](const JobOutcome& outcome) {
      // Delivery is serialized by contract; no lock needed.
      streamed.push_back(outcome);
    });
    const auto tickets = service.submit(jobs);
    ASSERT_EQ(tickets.size(), jobs.size());
    service.drain();

    ASSERT_EQ(streamed.size(), jobs.size());
    for (std::size_t i = 0; i < streamed.size(); ++i) {
      EXPECT_EQ(streamed[i].ticket, i) << "stream must arrive in ticket order";
    }
    EXPECT_EQ(batch_report_json(report_from(streamed), json), reference)
        << "streamed results differ from solve_batch at " << threads << " threads";
    EXPECT_EQ(service.stats().delivered, jobs.size());
  }
}

TEST(SchedulerService, PollWaitStateLifecycle) {
  const auto gate = std::make_shared<Gate>();
  const auto registry = gated_registry(gate);
  ServiceOptions options;
  options.threads = 1;
  options.registry = &registry;
  SchedulerService service(options);

  const auto blocked = service.submit({"gate", {}, small_instance(1)});
  gate->wait_entered();
  EXPECT_EQ(service.state(blocked), JobState::kRunning);
  EXPECT_FALSE(service.poll(blocked).has_value());

  const auto queued = service.submit({"seq", {}, small_instance(2)});
  EXPECT_EQ(service.state(queued), JobState::kQueued);

  gate->release();
  const auto outcome = service.wait(queued);
  EXPECT_EQ(outcome.status, BatchItemStatus::kOk);
  EXPECT_EQ(outcome.ticket, queued.id);
  EXPECT_EQ(service.state(queued), JobState::kDone);
  ASSERT_TRUE(service.poll(blocked).has_value() || service.wait(blocked).status ==
                                                       BatchItemStatus::kOk);

  const JobTicket bogus{999};
  EXPECT_THROW(static_cast<void>(service.poll(bogus)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(service.state(bogus)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(service.wait(bogus)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(service.cancel(bogus)), std::out_of_range);
}

TEST(SchedulerService, ErrorsAreIsolatedPerJob) {
  const auto gate = std::make_shared<Gate>();
  const auto registry = gated_registry(gate);
  ServiceOptions options;
  options.threads = 2;
  options.registry = &registry;
  SchedulerService service(options);
  const auto bad = service.submit({"boom", {}, small_instance(3)});
  const auto good = service.submit({"seq", {}, small_instance(4)});
  const auto failed = service.wait(bad);
  EXPECT_EQ(failed.status, BatchItemStatus::kError);
  EXPECT_EQ(failed.error.code, SolveErrorCode::kSolverFailure);
  EXPECT_NE(failed.error.detail.find("boom"), std::string::npos);
  EXPECT_EQ(service.wait(good).status, BatchItemStatus::kOk);
  const auto stats = service.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

// ------------------------------------------------------------- solve cache

TEST(SchedulerService, CacheHitIsByteIdenticalAndCounted) {
  ServiceOptions options;
  options.threads = 1;
  SchedulerService service(options);
  const auto instance = std::make_shared<const Instance>(small_instance(7));
  const BatchJob job{"mrt", SolverOptions::from_string("epsilon=0.05"), instance};

  const auto first = service.wait(service.submit(job));
  const auto second = service.wait(service.submit(job));
  ASSERT_EQ(first.status, BatchItemStatus::kOk);
  ASSERT_EQ(second.status, BatchItemStatus::kOk);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);

  // The memoized result is the first result, bytes included (stats too --
  // the solvers are deterministic). Tickets naturally differ; normalize them
  // so the compare sees only the payload.
  BatchJsonOptions json;
  json.include_timing = false;
  json.include_schedules = true;
  auto first_norm = first;
  auto second_norm = second;
  first_norm.ticket = 0;
  second_norm.ticket = 0;
  EXPECT_EQ(batch_report_json(report_from({second_norm}), json),
            batch_report_json(report_from({first_norm}), json));

  const auto stats = service.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_entries, 1u);

  // Content addressing: an identical but separately generated instance hits
  // the same entry (no shared_ptr required).
  const BatchJob regenerated{"mrt", SolverOptions::from_string("epsilon=0.05"),
                             small_instance(7)};
  EXPECT_TRUE(service.wait(service.submit(regenerated)).cache_hit);
}

TEST(SchedulerService, CacheRespectsPerJobOptOutAndServiceSwitch) {
  const auto instance = std::make_shared<const Instance>(small_instance(9));
  const BatchJob job{"two_phase", SolverOptions::from_string("rigid=ffdh"), instance};

  {
    ServiceOptions options;
    options.threads = 1;
    SchedulerService service(options);
    SubmitOptions no_cache;
    no_cache.cache = false;
    static_cast<void>(service.wait(service.submit(job, no_cache)));
    const auto repeat = service.wait(service.submit(job, no_cache));
    EXPECT_FALSE(repeat.cache_hit);
    const auto stats = service.stats();
    EXPECT_EQ(stats.cache_hits, 0u);
    EXPECT_EQ(stats.cache_misses, 0u);  // opted-out jobs never even look
    EXPECT_EQ(stats.cache_entries, 0u);
  }
  {
    ServiceOptions options;
    options.threads = 1;
    options.cache = false;  // service-wide off switch
    SchedulerService service(options);
    static_cast<void>(service.wait(service.submit(job)));
    EXPECT_FALSE(service.wait(service.submit(job)).cache_hit);
    EXPECT_EQ(service.stats().cache_entries, 0u);
  }
}

TEST(SchedulerService, CacheEvictsLeastRecentlyUsedAndCountsIt) {
  ServiceOptions options;
  options.threads = 1;
  options.cache_capacity = 2;
  SchedulerService service(options);
  const auto submit_seed = [&](std::uint64_t seed) {
    return service.wait(service.submit({"naive", SolverOptions::from_string("policy=lpt-seq"),
                                        small_instance(seed)}));
  };
  static_cast<void>(submit_seed(11));  // cache: {11}
  static_cast<void>(submit_seed(12));  // cache: {12, 11}
  static_cast<void>(submit_seed(13));  // evicts 11 -> {13, 12}
  auto stats = service.stats();
  EXPECT_EQ(stats.cache_evictions, 1u);
  EXPECT_EQ(stats.cache_entries, 2u);
  EXPECT_TRUE(submit_seed(12).cache_hit);    // still resident
  EXPECT_FALSE(submit_seed(11).cache_hit);   // was evicted, solves again
}

// -------------------------------------------------------- workspace reuse

// Same instance, different options: both jobs miss the cache, and on one
// worker the second solve reuses the first's DualWorkspace. Everything
// except the workspace audit counters (per-solve deltas by contract) is
// byte-identical to the one-shot path.
TEST(SchedulerService, WorkspaceReuseKeepsResultsIdenticalModuloAuditCounters) {
  ServiceOptions options;
  options.threads = 1;
  SchedulerService service(options);
  const auto instance = std::make_shared<const Instance>(small_instance(21, 24, 12));
  const BatchJob first{"mrt", SolverOptions::from_string("epsilon=0.05"), instance};
  const BatchJob second{"mrt", SolverOptions::from_string("epsilon=0.02"), instance};

  const auto first_outcome = service.wait(service.submit(first));
  const auto second_outcome = service.wait(service.submit(second));
  ASSERT_EQ(first_outcome.status, BatchItemStatus::kOk);
  ASSERT_EQ(second_outcome.status, BatchItemStatus::kOk);
  EXPECT_FALSE(second_outcome.cache_hit);
  EXPECT_GE(service.stats().workspace_reuses, 1u);

  const auto strip_audit = [](SolverResult result) {
    auto& stats = result.stats;
    std::erase_if(stats, [](const std::pair<std::string, double>& stat) {
      return stat.first.rfind("workspace.", 0) == 0;
    });
    return result;
  };
  BatchJsonOptions json;
  json.include_timing = false;
  json.include_schedules = true;
  for (const auto* pair : {&first, &second}) {
    const bool is_first = pair == &first;
    const auto& outcome = is_first ? first_outcome : second_outcome;
    const auto direct = solve(pair->solver, *pair->instance, pair->options);
    auto streamed_item = report_from({outcome});
    streamed_item.items[0].result = strip_audit(*streamed_item.items[0].result);
    BatchReport direct_report;
    BatchItem item;
    item.index = outcome.ticket;
    item.status = BatchItemStatus::kOk;
    item.result = strip_audit(direct);
    direct_report.items.push_back(std::move(item));
    direct_report.ok = 1;
    EXPECT_EQ(batch_report_json(streamed_item, json), batch_report_json(direct_report, json));
  }
}

// ----------------------------------------------------------- in-flight dedup

/// Registry with one solver that counts invocations and blocks on the gate:
/// the probe for "exactly one underlying solve" under concurrent duplicates.
SolverRegistry counting_gated_registry(const std::shared_ptr<Gate>& gate,
                                       const std::shared_ptr<std::atomic<int>>& solves) {
  SolverRegistry registry;
  registry.add("counted-gate", "counts invocations, blocks until released",
               [gate, solves](const Instance& instance, const SolverOptions&) {
                 solves->fetch_add(1);
                 gate->enter_and_wait();
                 return SolverResult{"", sequential_schedule(instance), 0, 0, 0, 0, {}};
               });
  return registry;
}

// The acceptance property for dedup: N identical concurrent submissions
// produce exactly ONE solver invocation, every ticket observes a
// byte-identical outcome, and the hits/joins accounting closes -- at any
// worker count. The gate holds the leader in flight until (for >1 workers)
// every duplicate has coalesced, which makes the join count deterministic:
// joining is non-blocking, so a single extra worker drains all duplicates
// into joiners while the leader still solves.
TEST(SchedulerService, InFlightDedupCoalescesToOneSolveAtAnyThreadCount) {
  const auto handle = InstanceHandle::intern(small_instance(91, 24, 12));
  constexpr std::size_t kDuplicates = 8;

  for (const unsigned threads : {1u, 2u, 8u}) {
    const auto gate = std::make_shared<Gate>();
    const auto solves = std::make_shared<std::atomic<int>>(0);
    const auto registry = counting_gated_registry(gate, solves);
    ServiceOptions options;
    options.threads = threads;
    options.registry = &registry;
    SchedulerService service(options);

    const std::vector<SolveRequest> requests(kDuplicates,
                                             SolveRequest{"counted-gate", {}, handle});
    const auto tickets = service.submit(requests);
    gate->wait_entered();
    if (threads > 1) {
      while (service.stats().dedup_joins < kDuplicates - 1) std::this_thread::yield();
    }
    gate->release();
    service.drain();

    EXPECT_EQ(solves->load(), 1)
        << "duplicates must coalesce onto one solve at " << threads << " threads";
    const auto stats = service.stats();
    EXPECT_EQ(stats.dedup_joins + stats.cache_hits, kDuplicates - 1)
        << "every non-leader must be served by a join or a hit";
    if (threads > 1) {
      // One worker solves, the rest join: with the leader gated, no
      // duplicate can ever see the cache populated.
      EXPECT_EQ(stats.dedup_joins, kDuplicates - 1);
    } else {
      // One worker serializes everything: the duplicates run after the
      // leader finished and hit the cache instead.
      EXPECT_EQ(stats.cache_hits, kDuplicates - 1);
    }
    EXPECT_EQ(stats.completed, kDuplicates);

    // Byte-identical outcomes: every ticket's payload serializes exactly
    // like the leader's (tickets normalized; provenance is not payload).
    BatchJsonOptions json;
    json.include_timing = false;
    json.include_schedules = true;
    std::vector<JobOutcome> outcomes;
    for (const auto ticket : tickets) outcomes.push_back(service.wait(ticket));
    const auto leader = std::find_if(outcomes.begin(), outcomes.end(), [](const JobOutcome& o) {
      return !o.dedup_join && !o.cache_hit;
    });
    ASSERT_NE(leader, outcomes.end());
    auto leader_norm = *leader;
    leader_norm.ticket = 0;
    const auto reference = batch_report_json(report_from({leader_norm}), json);
    for (const auto& outcome : outcomes) {
      EXPECT_EQ(outcome.status, BatchItemStatus::kOk);
      EXPECT_GE(outcome.worker, 0);
      auto normalized = outcome;
      normalized.ticket = 0;
      EXPECT_EQ(batch_report_json(report_from({normalized}), json), reference);
    }
  }
}

TEST(SchedulerService, CacheOptOutAlsoSkipsDedup) {
  const auto gate = std::make_shared<Gate>();
  const auto solves = std::make_shared<std::atomic<int>>(0);
  const auto registry = counting_gated_registry(gate, solves);
  ServiceOptions options;
  options.threads = 2;
  options.registry = &registry;
  SchedulerService service(options);

  const auto handle = InstanceHandle::intern(small_instance(92, 24, 12));
  const std::vector<SolveRequest> requests(
      3, SolveRequest{"counted-gate", {}, handle, /*consult_cache=*/false});
  static_cast<void>(service.submit(requests));
  gate->wait_entered();
  gate->release();  // the gate stays open for every later entrant
  service.drain();

  EXPECT_EQ(solves->load(), 3) << "opted-out duplicates must each measure a real solve";
  const auto stats = service.stats();
  EXPECT_EQ(stats.dedup_joins, 0u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_entries, 0u);
}

// The acceptance audit: after intern(), nothing on the submit path -- key
// construction, cache lookups, hits, misses, dedup bookkeeping -- reads
// profile bits again. One intern, one content hash, however many submits.
TEST(SchedulerService, SubmitPathNeverRehashesProfilesAfterIntern) {
  ServiceOptions options;
  options.threads = 1;
  SchedulerService service(options);

  const auto before = InstanceHandle::content_hashes();
  const auto handle = InstanceHandle::intern(small_instance(95));
  ASSERT_EQ(InstanceHandle::content_hashes(), before + 1);

  const auto submit = [&](const char* solver, const char* spec) {
    return service.wait(
        service.submit(SolveRequest{solver, SolverOptions::from_string(spec), handle}));
  };
  EXPECT_FALSE(submit("mrt", "epsilon=0.05").cache_hit);  // miss + solve + insert
  EXPECT_TRUE(submit("mrt", "epsilon=0.05").cache_hit);   // hit
  EXPECT_FALSE(submit("mrt", "epsilon=0.02").cache_hit);  // new options: miss
  EXPECT_FALSE(submit("naive", "policy=lpt-seq").cache_hit);  // new solver: miss
  EXPECT_TRUE(submit("naive", "policy=lpt-seq").cache_hit);

  EXPECT_EQ(InstanceHandle::content_hashes(), before + 1)
      << "the submit path re-hashed profile bits after intern()";
}

TEST(SchedulerService, VectorSubmitIsAllOrNothingOnInvalidRequests) {
  ServiceOptions options;
  options.threads = 1;
  SchedulerService service(options);
  const auto handle = InstanceHandle::intern(small_instance(97));
  std::vector<SolveRequest> requests;
  requests.emplace_back("naive", SolverOptions::from_string("policy=lpt-seq"), handle);
  requests.push_back(SolveRequest{});  // empty handle: the whole batch must be rejected
  EXPECT_THROW(static_cast<void>(service.submit(std::move(requests))), std::invalid_argument);
  EXPECT_EQ(service.stats().submitted, 0u) << "no ticket may be issued from a rejected batch";
  service.drain();  // returns immediately: nothing was enqueued
}

TEST(SchedulerService, ProvenanceStampsWorkerAndServingPath) {
  ServiceOptions options;
  options.threads = 1;
  SchedulerService service(options);
  const auto handle = InstanceHandle::intern(small_instance(96));
  const SolveRequest request{"naive", SolverOptions::from_string("policy=lpt-seq"), handle};

  const auto solved = service.wait(service.submit(request));
  EXPECT_EQ(solved.worker, 0);  // one worker: index 0 produced it
  EXPECT_FALSE(solved.cache_hit);
  EXPECT_FALSE(solved.dedup_join);

  const auto hit = service.wait(service.submit(request));
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_FALSE(hit.dedup_join);
  EXPECT_EQ(hit.worker, -1) << "a submit-time cache hit is served inline, off-pool";
}

// ------------------------------------------------------- slot garbage collection

TEST(SchedulerService, GcSlotsReclaimsObservedDeliveredOutcomes) {
  ServiceOptions options;
  options.threads = 1;
  options.gc_slots = true;
  SchedulerService service(options);
  const auto handle = InstanceHandle::intern(small_instance(62));
  const auto first =
      service.submit(SolveRequest{"naive", SolverOptions::from_string("policy=lpt-seq"), handle});
  const auto second = service.submit(
      SolveRequest{"naive", SolverOptions::from_string("policy=half-speedup"), handle});

  EXPECT_EQ(service.wait(first).status, BatchItemStatus::kOk);  // observed
  service.drain();  // delivery frontier passes both tickets

  // Observed AND delivered -> reclaimed: the outcome is a take-once value.
  EXPECT_THROW(static_cast<void>(service.poll(first)), std::logic_error);
  EXPECT_THROW(static_cast<void>(service.wait(first)), std::logic_error);
  EXPECT_EQ(service.state(first), JobState::kDone);  // cheap state stays readable

  // Delivered but never observed -> intact until the first read...
  const auto outcome = service.poll(second);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->status, BatchItemStatus::kOk);
  // ... which reclaims it too.
  EXPECT_THROW(static_cast<void>(service.poll(second)), std::logic_error);

  EXPECT_EQ(service.stats().slots_reclaimed, 2u);
}

TEST(SchedulerService, GcOffKeepsOutcomesReadableForever) {
  SchedulerService service{ServiceOptions{}};  // gc_slots defaults off
  const auto handle = InstanceHandle::intern(small_instance(63));
  const auto ticket =
      service.submit(SolveRequest{"naive", SolverOptions::from_string("policy=lpt-seq"), handle});
  static_cast<void>(service.wait(ticket));
  service.drain();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(service.poll(ticket).has_value());
  }
  EXPECT_EQ(service.stats().slots_reclaimed, 0u);
}

// ------------------------------------------------- cancellation + shutdown

TEST(SchedulerService, CancellationMidStreamDeliversInOrder) {
  const auto gate = std::make_shared<Gate>();
  const auto registry = gated_registry(gate);
  ServiceOptions options;
  options.threads = 1;
  options.registry = &registry;
  SchedulerService service(options);
  std::vector<JobOutcome> streamed;
  service.on_result([&streamed](const JobOutcome& outcome) { streamed.push_back(outcome); });

  const auto running = service.submit({"gate", {}, small_instance(31)});
  const auto pending = service.submit({"seq", {}, small_instance(32)});
  const auto doomed = service.submit({"seq", {}, small_instance(33)});
  gate->wait_entered();

  EXPECT_TRUE(service.cancel(doomed));  // still queued: cancels
  // Running: the request is DELIVERED (true) -- but the gate solver never
  // polls its token, so its real kOk outcome stands below (cooperative
  // cancellation is best-effort by construction).
  EXPECT_TRUE(service.cancel(running));
  // Cancelled outcome is observable immediately via poll ...
  ASSERT_TRUE(service.poll(doomed).has_value());
  EXPECT_EQ(service.poll(doomed)->status, BatchItemStatus::kCancelled);
  // ... but enters the stream only in ticket order, after its predecessors.
  EXPECT_TRUE(streamed.empty());

  gate->release();
  service.drain();
  ASSERT_EQ(streamed.size(), 3u);
  EXPECT_EQ(streamed[0].ticket, running.id);
  EXPECT_EQ(streamed[0].status, BatchItemStatus::kOk);
  EXPECT_EQ(streamed[1].ticket, pending.id);
  EXPECT_EQ(streamed[1].status, BatchItemStatus::kOk);
  EXPECT_EQ(streamed[2].ticket, doomed.id);
  EXPECT_EQ(streamed[2].status, BatchItemStatus::kCancelled);

  EXPECT_FALSE(service.cancel(pending));  // terminal: refused
  EXPECT_EQ(service.stats().cancelled, 1u);
}

/// Cancellation-aware blocking solver for the dedup-cancel regressions:
/// spins on an atomic gate, polling the SolveContext cancel check, so a
/// fired CancelToken actually stops it (the CondVar Gate above never could).
SolverRegistry polling_registry(const std::shared_ptr<std::atomic<bool>>& entered,
                                const std::shared_ptr<std::atomic<bool>>& open) {
  SolverRegistry registry;
  registry.add_with_context(
      "block", "spins until released or cancelled",
      [entered, open](const Instance& instance, const SolverOptions&,
                      const SolveContext& context) -> SolverResult {
        const CancelCheck check(context.cancel, context.deadline_seconds);
        entered->store(true);
        while (!open->load()) {
          check.poll();  // throws CancelledError once cancel() fires
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return SolverResult{"", sequential_schedule(instance), 0, 0, 0, 0, {}};
      });
  return registry;
}

// Regression: cancelling a dedup LEADER must not strand its joiners -- the
// cancelled outcome fans out to every joined ticket through finish().
TEST(SchedulerService, CancelledLeaderDeliversCancelledOutcomesToJoiners) {
  const auto entered = std::make_shared<std::atomic<bool>>(false);
  const auto open = std::make_shared<std::atomic<bool>>(false);
  const auto registry = polling_registry(entered, open);
  ServiceOptions options;
  options.threads = 2;
  options.registry = &registry;
  SchedulerService service(options);

  const auto handle = InstanceHandle::intern(small_instance(44));
  const SolveRequest request{"block", {}, handle};
  const auto leader = service.submit(request);
  while (!entered->load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const auto joiner = service.submit(request);  // identical: coalesces
  while (service.stats().dedup_joins == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  EXPECT_TRUE(service.cancel(leader));  // fires the leader's token
  const JobOutcome leader_outcome = service.wait(leader);
  EXPECT_EQ(leader_outcome.status, BatchItemStatus::kCancelled);
  EXPECT_EQ(leader_outcome.error.code, SolveErrorCode::kCancelled);
  const JobOutcome joined_outcome = service.wait(joiner);
  EXPECT_EQ(joined_outcome.status, BatchItemStatus::kCancelled);
  EXPECT_TRUE(joined_outcome.dedup_join);  // coalesced, not stranded
  EXPECT_EQ(service.stats().cancelled, 2u);
  service.drain();
}

// The complementary direction: cancelling a JOINER detaches just that
// ticket; the leader keeps solving and completes normally.
TEST(SchedulerService, CancelDetachesAJoinerWithoutDisturbingTheLeader) {
  const auto entered = std::make_shared<std::atomic<bool>>(false);
  const auto open = std::make_shared<std::atomic<bool>>(false);
  const auto registry = polling_registry(entered, open);
  ServiceOptions options;
  options.threads = 2;
  options.registry = &registry;
  SchedulerService service(options);

  const auto handle = InstanceHandle::intern(small_instance(45));
  const SolveRequest request{"block", {}, handle};
  const auto leader = service.submit(request);
  while (!entered->load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const auto joiner = service.submit(request);
  while (service.stats().dedup_joins == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  EXPECT_TRUE(service.cancel(joiner));
  const JobOutcome joined_outcome = service.wait(joiner);  // terminal NOW
  EXPECT_EQ(joined_outcome.status, BatchItemStatus::kCancelled);
  open->store(true);  // release the (undisturbed) leader
  const JobOutcome leader_outcome = service.wait(leader);
  EXPECT_EQ(leader_outcome.status, BatchItemStatus::kOk);
  const auto stats = service.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.dedup_joins, 1u);
  service.drain();
}

// Regression for the shutdown/drain ordering contract: shutdown() must not
// return while an OFF-POOL deliverer (here: a submit-time cache hit on a
// caller thread) still has the last streamed callback in flight.
TEST(SchedulerService, ShutdownWaitsForAnOffPoolDelivererToFinishTheStream) {
  ServiceOptions options;
  options.threads = 1;
  SchedulerService service(options);
  std::atomic<bool> in_callback{false};
  std::atomic<int> streamed{0};
  service.on_result([&](const JobOutcome& outcome) {
    if (outcome.cache_hit) {
      in_callback.store(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ++streamed;
  });
  const auto handle = InstanceHandle::intern(small_instance(83));
  const SolveRequest request{"naive", SolverOptions::from_string("policy=lpt-seq"), handle};
  static_cast<void>(service.wait(service.submit(request)));
  service.drain();  // the real solve is delivered by the worker
  std::thread hitter([&service, &request] {
    // Submit-time cache hit: THIS thread becomes the deliverer and sleeps
    // inside the callback above.
    static_cast<void>(service.submit(request));
  });
  while (!in_callback.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  service.shutdown();
  // The contract: when shutdown() returns, the stream is complete -- even
  // though the deliverer was never a pool thread the shutdown join covers.
  EXPECT_EQ(streamed.load(), 2);
  EXPECT_EQ(service.stats().delivered, 2u);
  hitter.join();
}

// ServiceConfig::validate() must reject the robustness knobs' invalid
// combinations at construction, each with a readable message.
TEST(SchedulerService, ConfigRejectsBadRobustnessKnobs) {
  ServiceOptions negative_depth;
  negative_depth.max_queue_depth = -1;
  EXPECT_THROW(SchedulerService{negative_depth}, std::invalid_argument);

  ServiceOptions unknown_policy;
  unknown_policy.overload_policy = "drop_everything";
  EXPECT_THROW(SchedulerService{unknown_policy}, std::invalid_argument);

  ServiceOptions degrade_without_fallback;
  degrade_without_fallback.overload_policy = "degrade";
  EXPECT_THROW(SchedulerService{degrade_without_fallback}, std::invalid_argument);

  ServiceOptions unregistered_fallback;
  unregistered_fallback.fallback_solver = "definitely_not_registered";
  EXPECT_THROW(SchedulerService{unregistered_fallback}, std::invalid_argument);

  ServiceOptions good;
  good.max_queue_depth = 4;
  good.overload_policy = "degrade";
  good.fallback_solver = "two_phase";  // registered in the global registry
  EXPECT_NO_THROW(SchedulerService{good});
}

// The documented cancel-inside-the-callback case: delivery is re-entrant
// (rescan protocol), so cancelling a later queued ticket from the stream
// neither deadlocks nor breaks ticket order.
TEST(SchedulerService, CancelFromInsideTheCallbackDoesNotDeadlock) {
  ServiceOptions options;
  options.threads = 1;
  SchedulerService service(options);
  std::vector<std::pair<std::uint64_t, BatchItemStatus>> streamed;
  service.on_result([&](const JobOutcome& outcome) {
    streamed.emplace_back(outcome.ticket, outcome.status);
    if (outcome.ticket == 0) {
      // Tickets are dense in submission order, and the atomic three-job
      // submission below guarantees ticket 2 exists; with one worker (busy
      // delivering ticket 0 right now) it is still queued, so this cancels.
      EXPECT_TRUE(service.cancel(JobTicket{2}));
    }
  });
  const BatchJob job{"naive", SolverOptions::from_string("policy=lpt-seq"),
                     std::make_shared<const Instance>(small_instance(81))};
  static_cast<void>(service.submit({job, job, job}, SubmitOptions{false}));
  service.drain();
  ASSERT_EQ(streamed.size(), 3u);
  EXPECT_EQ(streamed[0], (std::pair<std::uint64_t, BatchItemStatus>{0, BatchItemStatus::kOk}));
  EXPECT_EQ(streamed[1], (std::pair<std::uint64_t, BatchItemStatus>{1, BatchItemStatus::kOk}));
  EXPECT_EQ(streamed[2],
            (std::pair<std::uint64_t, BatchItemStatus>{2, BatchItemStatus::kCancelled}));
}

TEST(SchedulerService, ShutdownWithPendingJobsCancelsThemAndJoins) {
  const auto gate = std::make_shared<Gate>();
  const auto registry = gated_registry(gate);
  ServiceOptions options;
  options.threads = 1;
  options.registry = &registry;
  SchedulerService service(options);
  std::vector<JobOutcome> streamed;
  service.on_result([&streamed](const JobOutcome& outcome) { streamed.push_back(outcome); });

  const auto running = service.submit({"gate", {}, small_instance(41)});
  std::vector<JobTicket> pending;
  for (std::uint64_t s = 0; s < 5; ++s) {
    pending.push_back(service.submit({"seq", {}, small_instance(42 + s)}));
  }
  gate->wait_entered();

  // Shutdown from another thread while a solve is in flight: it must wait
  // for the running job, cancel the queued ones, and join cleanly. The gate
  // is held shut until shutdown has visibly cancelled the queued jobs, so
  // none of them can sneak into the worker first.
  std::thread stopper([&service] { service.shutdown(); });
  while (service.stats().cancelled < pending.size()) {
    std::this_thread::yield();
  }
  gate->release();
  stopper.join();

  EXPECT_EQ(service.wait(running).status, BatchItemStatus::kOk);
  for (const auto ticket : pending) {
    const auto outcome = service.poll(ticket);
    ASSERT_TRUE(outcome.has_value());
    EXPECT_EQ(outcome->status, BatchItemStatus::kCancelled);
  }
  ASSERT_EQ(streamed.size(), 1u + pending.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) EXPECT_EQ(streamed[i].ticket, i);

  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 6u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.cancelled, 5u);
  EXPECT_EQ(stats.delivered, 6u);

  EXPECT_THROW(static_cast<void>(service.submit({"seq", {}, small_instance(50)})),
               std::runtime_error);
  service.shutdown();  // idempotent
}

TEST(SchedulerService, DrainCoversEverythingSubmittedBeforeTheCall) {
  SchedulerService service{ServiceOptions{}};
  const auto jobs = mixed_jobs_with_duplicates(8);
  const auto tickets = service.submit(jobs);
  service.drain();
  for (const auto ticket : tickets) {
    ASSERT_TRUE(service.poll(ticket).has_value());
  }
  EXPECT_EQ(service.stats().delivered, jobs.size());
  service.drain();  // idempotent on a quiet service
}

TEST(SchedulerService, OnResultAfterFirstSubmitThrows) {
  SchedulerService service{ServiceOptions{}};
  static_cast<void>(service.submit({"naive", SolverOptions::from_string("policy=lpt-seq"),
                                    small_instance(61)}));
  EXPECT_THROW(service.on_result([](const JobOutcome&) {}), std::logic_error);
  service.drain();
}

// --------------------------------------------------------------- SolveCache

TEST(SolveCache, ContentAddressingSurvivesRegenerationAndCatchesDifferences) {
  const auto base = std::make_shared<const Instance>(small_instance(71));
  const auto same_content = std::make_shared<const Instance>(small_instance(71));
  const auto different = std::make_shared<const Instance>(small_instance(72));
  const auto options = SolverOptions::from_string("epsilon=0.05");

  const auto key_a = SolveCache::make_key("mrt", options, base);
  const auto key_b = SolveCache::make_key("mrt", options, same_content);
  const auto key_c = SolveCache::make_key("mrt", options, different);
  const auto key_d = SolveCache::make_key("two_phase", options, base);
  EXPECT_EQ(key_a.fingerprint, key_b.fingerprint);
  EXPECT_NE(key_a.fingerprint, key_c.fingerprint);
  EXPECT_NE(key_a.fingerprint, key_d.fingerprint);

  SolveCache cache(4);
  const auto result = solve("mrt", *base, options);
  cache.insert(key_a, result);
  EXPECT_NE(cache.lookup(key_b), nullptr);  // same content, new object
  EXPECT_EQ(cache.lookup(key_c), nullptr);
  EXPECT_EQ(cache.lookup(key_d), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(SolveCache, KeyConstructionFromAHandleDoesNotRehashProfiles) {
  const auto handle = InstanceHandle::intern(small_instance(75));
  const auto before = InstanceHandle::content_hashes();
  const auto key_a = SolveCache::make_key("mrt", SolverOptions::from_string("epsilon=0.05"),
                                          handle);
  const auto key_b = SolveCache::make_key("mrt", SolverOptions::from_string("epsilon=0.02"),
                                          handle);
  EXPECT_EQ(InstanceHandle::content_hashes(), before);
  EXPECT_NE(key_a.fingerprint, key_b.fingerprint);  // options are part of the key
  // The legacy shared_ptr shim is the one that interns (and so hashes).
  const auto key_c = SolveCache::make_key("mrt", SolverOptions::from_string("epsilon=0.05"),
                                          handle.shared());
  EXPECT_EQ(InstanceHandle::content_hashes(), before + 1);
  EXPECT_EQ(key_c.fingerprint, key_a.fingerprint);
}

TEST(SolveCache, TtlExpiresEntriesAndCountsTheCause) {
  double fake_now = 0.0;
  SolveCacheConfig config;
  config.capacity = 8;
  config.ttl_seconds = 10.0;
  config.clock = [&fake_now] { return fake_now; };
  SolveCache cache(config);

  const auto handle = InstanceHandle::intern(small_instance(76));
  const auto key = SolveCache::make_key("mrt", {}, handle);
  const auto result = solve("mrt", handle.instance());
  cache.insert(key, result);

  fake_now = 5.0;
  EXPECT_NE(cache.lookup(key), nullptr);  // young enough: hit
  fake_now = 16.0;
  EXPECT_EQ(cache.lookup(key), nullptr);  // stale: expired on access
  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions_ttl, 1u);
  EXPECT_EQ(stats.evictions_capacity, 0u);
  EXPECT_EQ(stats.entries, 0u);

  // Re-inserting after expiry starts a fresh lifetime.
  cache.insert(key, result);
  fake_now = 20.0;
  EXPECT_NE(cache.lookup(key), nullptr);
}

TEST(SolveCache, TtlRefreshOfAnExpiredKeyReplacesTheEntry) {
  double fake_now = 0.0;
  SolveCacheConfig config;
  config.capacity = 4;
  config.ttl_seconds = 1.0;
  config.clock = [&fake_now] { return fake_now; };
  SolveCache cache(config);
  const auto handle = InstanceHandle::intern(small_instance(77));
  const auto key = SolveCache::make_key("mrt", {}, handle);
  const auto result = solve("mrt", handle.instance());
  cache.insert(key, result);
  fake_now = 5.0;
  cache.insert(key, result);  // idempotent path meets an expired entry
  auto stats = cache.stats();
  EXPECT_EQ(stats.evictions_ttl, 1u);
  EXPECT_EQ(stats.insertions, 2u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_NE(cache.lookup(key), nullptr);  // fresh lifetime from 5.0
}

TEST(SolveCache, ByteBudgetEvictsLruButKeepsASingleOversizedEntry) {
  const auto handle_a = InstanceHandle::intern(small_instance(78));
  const auto handle_b = InstanceHandle::intern(small_instance(79));
  const auto options = SolverOptions::from_string("policy=lpt-seq");
  const auto key_a = SolveCache::make_key("naive", options, handle_a);
  const auto key_b = SolveCache::make_key("naive", options, handle_b);
  const auto result_a = solve("naive", handle_a.instance(), options);
  const auto result_b = solve("naive", handle_b.instance(), options);

  // Measure one entry's approximate footprint with an unbounded cache.
  SolveCacheConfig probe_config;
  SolveCache probe(probe_config);
  probe.insert(key_a, result_a);
  const std::size_t one_entry = probe.stats().bytes;
  ASSERT_GT(one_entry, 0u);

  SolveCacheConfig config;
  config.max_bytes = one_entry + one_entry / 2;  // room for one, not two
  SolveCache cache(config);
  cache.insert(key_a, result_a);
  cache.insert(key_b, result_b);  // over budget: evicts LRU (key_a)
  auto stats = cache.stats();
  EXPECT_EQ(stats.evictions_bytes, 1u);
  EXPECT_EQ(stats.evictions_capacity, 0u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(cache.lookup(key_a), nullptr);
  EXPECT_NE(cache.lookup(key_b), nullptr);

  // A single entry larger than the whole budget stays resident: evicting
  // the entry an insert just paid for would make every oversized result
  // thrash.
  SolveCacheConfig tiny;
  tiny.max_bytes = 1;
  SolveCache small_cache(tiny);
  small_cache.insert(key_a, result_a);
  auto tiny_stats = small_cache.stats();
  EXPECT_EQ(tiny_stats.entries, 1u);
  EXPECT_EQ(tiny_stats.evictions_bytes, 0u);
  EXPECT_NE(small_cache.lookup(key_a), nullptr);
}

TEST(SchedulerService, CacheBudgetsPlumbThroughServiceOptions) {
  ServiceOptions options;
  options.threads = 1;
  options.cache_max_bytes = 1;  // every second entry exceeds the budget
  SchedulerService service(options);
  const auto submit_seed = [&](std::uint64_t seed) {
    return service.wait(service.submit(SolveRequest{
        "naive", SolverOptions::from_string("policy=lpt-seq"),
        InstanceHandle::intern(small_instance(seed))}));
  };
  static_cast<void>(submit_seed(83));
  static_cast<void>(submit_seed(84));
  const auto stats = service.stats();
  EXPECT_EQ(stats.cache_evictions_bytes, 1u);
  EXPECT_EQ(stats.cache_evictions, 1u);  // total == split sum
  EXPECT_EQ(stats.cache_entries, 1u);
  EXPECT_GT(stats.cache_bytes, 0u);
}

TEST(SolveCache, ZeroCapacityDisablesEverything) {
  SolveCache cache(0);
  EXPECT_FALSE(cache.enabled());
  const auto instance = std::make_shared<const Instance>(small_instance(73));
  const auto key = SolveCache::make_key("mrt", {}, instance);
  cache.insert(key, solve("mrt", *instance));
  EXPECT_EQ(cache.lookup(key), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);  // disabled lookups do not count
}

// --------------------------------------------------------------- WorkerPool

TEST(WorkerPool, RunsTasksInPostOrderPerThreadAndWaitsIdle) {
  WorkerPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    pool.post([&order, i] { order.push_back(i); });
  }
  pool.wait_idle();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(WorkerPool, CurrentWorkerIndexIsStampedOnPoolThreadsOnly) {
  EXPECT_EQ(WorkerPool::current_worker(), -1);  // the test thread is off-pool
  WorkerPool pool(2);
  Mutex mutex;
  std::vector<int> seen;
  for (int i = 0; i < 16; ++i) {
    pool.post([&] {
      const LockGuard lock(mutex);
      seen.push_back(WorkerPool::current_worker());
    });
  }
  pool.wait_idle();
  ASSERT_EQ(seen.size(), 16u);
  for (const int worker : seen) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, 2);
  }
}

TEST(WorkerPool, ShutdownDiscardsQueuedTasksAndRejectsNewOnes) {
  const auto gate = std::make_shared<Gate>();
  WorkerPool pool(1);
  std::atomic<int> ran{0};
  pool.post([&] {
    gate->enter_and_wait();
    ++ran;
  });
  gate->wait_entered();
  for (int i = 0; i < 5; ++i) {
    pool.post([&] { ++ran; });
  }
  // Release the gate only once shutdown has discarded the queue, so the
  // worker cannot race ahead and run a task that should have been dropped.
  std::thread stopper([&pool] { pool.shutdown(); });
  while (pool.queued() != 0) {
    std::this_thread::yield();
  }
  gate->release();
  stopper.join();
  EXPECT_EQ(ran.load(), 1) << "queued-but-unstarted tasks must be discarded";
  EXPECT_THROW(pool.post([] {}), std::runtime_error);
  pool.shutdown();  // idempotent
}

}  // namespace
}  // namespace malsched
