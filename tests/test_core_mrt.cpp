// End-to-end tests of the combined sqrt(3) scheduler (Theorem 3): guarantee,
// gap-freedom, option toggles, and the m_mu estimator.

#include <gtest/gtest.h>

#include <tuple>

#include "core/mmu.hpp"
#include "core/mrt_scheduler.hpp"
#include "model/lower_bounds.hpp"
#include "sched/validate.hpp"
#include "support/math_utils.hpp"
#include "support/statistics.hpp"
#include "workload/generators.hpp"
#include "workload/ocean.hpp"
#include "workload/trace.hpp"

namespace malsched {
namespace {

class MrtEndToEndTest
    : public ::testing::TestWithParam<std::tuple<WorkloadFamily, int, int>> {};

TEST_P(MrtEndToEndTest, GuaranteeHolds) {
  const auto [family, machines, seed] = GetParam();
  GeneratorOptions options;
  options.tasks = machines * 2;
  options.machines = machines;
  const auto instance = generate_instance(family, options, static_cast<std::uint64_t>(seed));

  MrtOptions mrt;
  mrt.search.epsilon = 0.02;
  const auto result = mrt_schedule(instance, mrt);

  const auto report = validate_schedule(result.schedule, instance);
  ASSERT_TRUE(report.ok) << report.str();
  EXPECT_EQ(result.gaps, 0) << "the paper's theorems rule out gaps";
  EXPECT_TRUE(geq(result.makespan, makespan_lower_bound(instance)));
  EXPECT_TRUE(leq(result.ratio, kSqrt3 * (1.0 + mrt.search.epsilon) + 1e-9))
      << "ratio " << result.ratio;
  // Branch accounting covers every dual iteration.
  int counted = 0;
  for (const int count : result.branch_counts) counted += count;
  EXPECT_EQ(counted, result.iterations);
}

INSTANTIATE_TEST_SUITE_P(
    Families, MrtEndToEndTest,
    ::testing::Combine(::testing::Values(WorkloadFamily::kUniform, WorkloadFamily::kBimodal,
                                         WorkloadFamily::kHeavyTail, WorkloadFamily::kStairs,
                                         WorkloadFamily::kPackedOpt1,
                                         WorkloadFamily::kSequentialOnly),
                       ::testing::Values(4, 16, 48), ::testing::Values(1, 2)));

TEST(MrtScheduler, SmallMachineCountsUseTheMalleableListSafetyNet) {
  // m <= 6: even alone, the malleable list branch certifies sqrt(3).
  for (const int machines : {1, 2, 3, 5, 6}) {
    GeneratorOptions options;
    options.tasks = 12;
    options.machines = machines;
    const auto instance = generate_instance(WorkloadFamily::kUniform, options, 9);
    MrtOptions mrt;
    mrt.enable_two_shelf = false;
    mrt.enable_canonical_list = false;
    const auto result = mrt_schedule(instance, mrt);
    EXPECT_EQ(result.gaps, 0);
    EXPECT_TRUE(leq(result.ratio, kSqrt3 * 1.02 + 1e-9));
  }
}

TEST(MrtScheduler, PackedInstancesStayNearOne) {
  // OPT <= 1 by construction, so the absolute makespan must be <= sqrt(3)
  // * (1 + eps) and the search's final guess must be close to 1 or below.
  Summary ratios;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const auto instance = packed_instance(16, seed);
    const auto result = mrt_schedule(instance);
    EXPECT_TRUE(leq(result.makespan, kSqrt3 * 1.02));
    ratios.add(result.makespan);  // vs the known OPT bound of 1
  }
  EXPECT_LE(ratios.max(), kSqrt3 * 1.02);
}

TEST(MrtScheduler, PickBestBranchNeverWorse) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    GeneratorOptions options;
    options.tasks = 24;
    options.machines = 12;
    const auto instance =
        generate_instance(WorkloadFamily::kUniform, options, seed);
    MrtOptions fast;
    MrtOptions best;
    best.pick_best_branch = true;
    const auto fast_result = mrt_schedule(instance, fast);
    const auto best_result = mrt_schedule(instance, best);
    EXPECT_TRUE(leq(best_result.makespan, fast_result.makespan * (1.0 + 1e-9)));
  }
}

TEST(MrtScheduler, CompactionNeverHurts) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    GeneratorOptions options;
    options.tasks = 30;
    options.machines = 16;
    const auto instance = generate_instance(WorkloadFamily::kBimodal, options, seed);
    MrtOptions with;
    MrtOptions without;
    without.use_compaction = false;
    const auto with_result = mrt_schedule(instance, with);
    const auto without_result = mrt_schedule(instance, without);
    EXPECT_TRUE(leq(with_result.makespan, without_result.makespan * (1.0 + 1e-9)));
  }
}

TEST(MrtScheduler, WorksOnOceanWorkload) {
  OceanOptions ocean;
  ocean.machines = 32;
  const auto instance = ocean_instance(ocean, 11);
  const auto result = mrt_schedule(instance);
  EXPECT_EQ(result.gaps, 0);
  EXPECT_TRUE(leq(result.ratio, kSqrt3 * 1.02 + 1e-9));
  EXPECT_TRUE(is_valid_schedule(result.schedule, instance));
}

TEST(MrtScheduler, WorksOnTraceWorkload) {
  TraceOptions trace;
  trace.machines = 64;
  trace.jobs = 50;
  const auto instance = trace_snapshot(trace, 13);
  const auto result = mrt_schedule(instance);
  EXPECT_EQ(result.gaps, 0);
  EXPECT_TRUE(leq(result.ratio, kSqrt3 * 1.02 + 1e-9));
}

TEST(MrtScheduler, SingleTaskInstance) {
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(std::vector<double>{4.0, 2.5, 2.0, 1.75}, "only");
  const Instance instance(4, std::move(tasks));
  const auto result = mrt_schedule(instance);
  // One task: optimum is t(m) (monotone) and the scheduler must find it.
  EXPECT_NEAR(result.makespan, 1.75, 1e-9);
}

TEST(MrtScheduler, BranchNamesAreDistinct) {
  for (int b = 0; b < kDualBranchCount; ++b) {
    for (int c = b + 1; c < kDualBranchCount; ++c) {
      EXPECT_NE(to_string(static_cast<DualBranch>(b)), to_string(static_cast<DualBranch>(c)));
    }
  }
}

// ------------------------------------------------------------------- m_mu

TEST(Mmu, EstimatorRunsAndStaysInRange) {
  MmuEstimateOptions options;
  options.trials_per_m = 25;
  options.scan_limit = 12;
  const InstanceFactory factory = [](int machines, std::uint64_t seed) {
    return packed_instance(machines, seed);
  };
  const auto point = estimate_mmu(kMu, factory, options);
  EXPECT_EQ(point.kstar, 6);
  EXPECT_EQ(point.reallocation_width, 4);
  EXPECT_GE(point.empirical_m, 2);
  EXPECT_LE(point.empirical_m, options.scan_limit + 1);
}

TEST(Mmu, CurveCoversGrid) {
  MmuEstimateOptions options;
  options.trials_per_m = 10;
  options.scan_limit = 8;
  const InstanceFactory factory = [](int machines, std::uint64_t seed) {
    return packed_instance(machines, seed);
  };
  const auto curve = mmu_curve({0.78, kMu, 0.95}, factory, options);
  ASSERT_EQ(curve.size(), 3u);
  for (const auto& point : curve) {
    EXPECT_GE(point.empirical_m, 2);
    EXPECT_GE(point.kstar, 1);
  }
}

}  // namespace
}  // namespace malsched
