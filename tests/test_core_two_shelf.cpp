// Tests for src/core/two_shelf: the Section 4 partition, the knapsack-based
// lambda-schedule, trivial solutions, and the FPTAS backend.

#include <gtest/gtest.h>

#include <tuple>

#include "core/canonical.hpp"
#include "core/two_shelf.hpp"
#include "model/speedup_models.hpp"
#include "sched/validate.hpp"
#include "support/math_utils.hpp"
#include "workload/generators.hpp"
#include "support/strings.hpp"

namespace malsched {
namespace {

/// Profile with canonical width exactly `width` at deadline 1 and canonical
/// time `height` (constant-work hyperbola).
std::vector<double> width_profile(int width, double height, int machines) {
  std::vector<double> profile(static_cast<std::size_t>(machines));
  for (int p = 1; p <= machines; ++p) {
    profile[static_cast<std::size_t>(p) - 1] =
        height * static_cast<double>(width) / static_cast<double>(p);
  }
  return profile;
}

TEST(TwoShelf, CertifiedRejectOnImpossibleGuess) {
  std::vector<MalleableTask> tasks;
  for (int i = 0; i < 12; ++i) tasks.emplace_back(sequential_profile(1.0, 2));
  const Instance instance(2, std::move(tasks));
  const auto outcome = two_shelf_schedule(instance, 1.0);
  EXPECT_TRUE(outcome.certified_reject);
  EXPECT_FALSE(outcome.schedule.has_value());
}

TEST(TwoShelf, PartitionCountsAndThresholds) {
  // Construct one task per class: tall (t = 0.9 > lambda), medium
  // (0.5 < t = 0.6 <= lambda), small sequential (t = 0.3).
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(width_profile(4, 0.9, 8), "tall");
  tasks.emplace_back(width_profile(2, 0.6, 8), "medium");
  tasks.emplace_back(sequential_profile(0.3, 8), "small");
  const Instance instance(8, std::move(tasks));
  const auto outcome = two_shelf_schedule(instance, 1.0);
  EXPECT_EQ(outcome.s1_count, 1);
  EXPECT_EQ(outcome.s2_count, 1);
  EXPECT_EQ(outcome.s3_count, 1);
  EXPECT_EQ(outcome.q1, 4 - 8);  // S1 procs minus m
  EXPECT_EQ(outcome.q2, 2);
  EXPECT_EQ(outcome.q3, 1);
  ASSERT_TRUE(outcome.schedule.has_value());
  EXPECT_TRUE(is_valid_schedule(*outcome.schedule, instance));
}

TEST(TwoShelf, LambdaScheduleStructure) {
  // Three canonical-width-3 tall tasks on m = 8: q1 = 9 - 8 = 1 forces a
  // migration, and the total work 3 * 3 * 0.75 = 6.75 stays below m so
  // Property 2 cannot reject. Verify the two-shelf shape: every task starts
  // at 0 (duration <= 1) or at 1 (finishing <= 1 + lambda).
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(width_profile(3, 0.75, 8), "t1");
  tasks.emplace_back(width_profile(3, 0.75, 8), "t2");
  tasks.emplace_back(width_profile(3, 0.75, 8), "t3");
  const Instance instance(8, std::move(tasks));
  const auto outcome = two_shelf_schedule(instance, 1.0);
  ASSERT_TRUE(outcome.schedule.has_value()) << "q1=" << outcome.q1;
  const auto& schedule = *outcome.schedule;
  EXPECT_TRUE(is_valid_schedule(schedule, instance));
  EXPECT_TRUE(leq(schedule.makespan(), kSqrt3));
  for (int i = 0; i < instance.size(); ++i) {
    const auto& assignment = schedule.of(i);
    if (approx_eq(assignment.start, 0.0)) {
      EXPECT_TRUE(leq(assignment.duration, 1.0));
    } else {
      EXPECT_TRUE(geq(assignment.start, 1.0));
      EXPECT_TRUE(leq(assignment.end(), 1.0 + kLambda));
    }
  }
  EXPECT_GE(outcome.knapsack_profit, outcome.q1);
}

TEST(TwoShelf, SmallTasksFirstFitPackedWithinLambda) {
  // Many small tasks plus one shelf-filling S1 task: S3 stacks on second-
  // shelf processors within lambda.
  // Work budget: 6 * 0.8 + 10 * 0.2 = 6.8 <= m = 8, so the guess survives
  // Property 2.
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(width_profile(6, 0.8, 8), "bulk");
  for (int i = 0; i < 10; ++i) {
    tasks.emplace_back(sequential_profile(0.2, 8), label("s", i));
  }
  const Instance instance(8, std::move(tasks));
  const auto outcome = two_shelf_schedule(instance, 1.0);
  ASSERT_TRUE(outcome.schedule.has_value());
  EXPECT_EQ(outcome.s3_count, 10);
  // 10 tasks of 0.2 at capacity lambda ~ 0.732 -> 3 per bin -> 4 bins.
  EXPECT_EQ(outcome.q3, 4);
  EXPECT_TRUE(leq(outcome.schedule->makespan(), kSqrt3));
}

TEST(TwoShelf, HugeTaskPlusUnshrinkableFillers) {
  // One shrinkable task of canonical width 6 (t(p) = 5.6/p: gamma = 6,
  // gamma_lambda = 8) plus three flat tall tasks (t = 0.8 > lambda at any
  // width) that can never reach the lambda deadline. Total work is exactly
  // m = 8 and q1 = (6+3) - 8 = 1, so someone must migrate; only the big
  // task can. Either the knapsack or the trivial route must deliver.
  const int machines = 8;
  std::vector<MalleableTask> tasks;
  std::vector<double> shrinkable(static_cast<std::size_t>(machines));
  for (int p = 1; p <= machines; ++p) {
    shrinkable[static_cast<std::size_t>(p) - 1] = 5.6 / static_cast<double>(p);
  }
  tasks.emplace_back(shrinkable, "huge");
  tasks.emplace_back(sequential_profile(0.8, machines), "flat1");
  tasks.emplace_back(sequential_profile(0.8, machines), "flat2");
  tasks.emplace_back(sequential_profile(0.8, machines), "flat3");
  const Instance instance(machines, std::move(tasks));
  const auto outcome = two_shelf_schedule(instance, 1.0);
  ASSERT_TRUE(outcome.schedule.has_value());
  EXPECT_TRUE(is_valid_schedule(*outcome.schedule, instance));
  EXPECT_TRUE(leq(outcome.schedule->makespan(), kSqrt3));
}

class TwoShelfPackedTest
    : public ::testing::TestWithParam<std::tuple<int, int, KnapsackMode>> {};

TEST_P(TwoShelfPackedTest, AcceptedSchedulesMeetTheSqrt3Bound) {
  const auto [machines, seed, mode] = GetParam();
  const auto instance = packed_instance(machines, static_cast<std::uint64_t>(seed));
  TwoShelfOptions options;
  options.knapsack = mode;
  const auto outcome = two_shelf_schedule(instance, 1.0, options);
  EXPECT_FALSE(outcome.certified_reject) << "OPT <= 1 by construction";
  EXPECT_EQ(outcome.s1_count + outcome.s2_count + outcome.s3_count, instance.size());
  if (outcome.schedule) {
    const auto report = validate_schedule(*outcome.schedule, instance);
    EXPECT_TRUE(report.ok) << report.str();
    EXPECT_TRUE(leq(outcome.schedule->makespan(), kSqrt3));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TwoShelfPackedTest,
    ::testing::Combine(::testing::Values(4, 8, 16, 32),
                       ::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(KnapsackMode::kExact, KnapsackMode::kFptas)));

TEST(TwoShelf, ExactKnapsackNeverWorseThanFptasOnProfit) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto instance = packed_instance(16, seed);
    TwoShelfOptions exact;
    exact.knapsack = KnapsackMode::kExact;
    TwoShelfOptions fptas;
    fptas.knapsack = KnapsackMode::kFptas;
    fptas.fptas_eps = 0.3;
    const auto exact_outcome = two_shelf_schedule(instance, 1.0, exact);
    const auto fptas_outcome = two_shelf_schedule(instance, 1.0, fptas);
    if (exact_outcome.knapsack_capacity >= 0 && !exact_outcome.used_trivial &&
        !fptas_outcome.used_trivial && !fptas_outcome.used_dual_knapsack) {
      EXPECT_GE(exact_outcome.knapsack_profit, fptas_outcome.knapsack_profit);
    }
  }
}

TEST(TwoShelf, ScalesWithDeadline) {
  // The construction must be scale-invariant: the engineered q1 = 1
  // instance accepted at d = 1 must also be accepted at d = 2 within
  // sqrt(3) * 2.
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(width_profile(3, 0.75, 8), "t1");
  tasks.emplace_back(width_profile(3, 0.75, 8), "t2");
  tasks.emplace_back(width_profile(3, 0.75, 8), "t3");
  const Instance instance(8, std::move(tasks));
  const auto at_one = two_shelf_schedule(instance, 1.0);
  ASSERT_TRUE(at_one.schedule.has_value());
  EXPECT_TRUE(leq(at_one.schedule->makespan(), kSqrt3));
  const auto at_two = two_shelf_schedule(instance, 2.0);
  ASSERT_TRUE(at_two.schedule.has_value());
  EXPECT_TRUE(leq(at_two.schedule->makespan(), kSqrt3 * 2.0));
}

}  // namespace
}  // namespace malsched
