// Cross-cutting property and fuzz tests: the solver pipeline under random
// (repaired) profiles, scale and permutation robustness, serialization
// round-trips through the solver, and composition with the post-passes.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/mrt_scheduler.hpp"
#include "model/instance_io.hpp"
#include "model/lower_bounds.hpp"
#include "model/monotonize.hpp"
#include "sched/compaction.hpp"
#include "sched/local_search.hpp"
#include "sched/validate.hpp"
#include "support/math_utils.hpp"
#include "support/rng.hpp"
#include "workload/generators.hpp"
#include "support/strings.hpp"

namespace malsched {
namespace {

/// Instance from completely random (repaired) profiles -- the roughest
/// input the model layer admits.
Instance fuzz_instance(Rng& rng) {
  const int machines = static_cast<int>(rng.uniform_int(1, 24));
  const int tasks = static_cast<int>(rng.uniform_int(1, 40));
  std::vector<MalleableTask> list;
  list.reserve(static_cast<std::size_t>(tasks));
  for (int i = 0; i < tasks; ++i) {
    std::vector<double> profile(static_cast<std::size_t>(machines));
    for (auto& t : profile) t = rng.log_uniform(0.01, 50.0);
    list.emplace_back(monotonize(std::move(profile)), label("f", i));
  }
  return Instance(machines, std::move(list));
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, SolverSurvivesArbitraryMonotoneProfiles) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int trial = 0; trial < 12; ++trial) {
    const auto instance = fuzz_instance(rng);
    MrtOptions options;
    options.search.epsilon = 0.05;
    const auto result = mrt_schedule(instance, options);
    const auto report = validate_schedule(result.schedule, instance);
    ASSERT_TRUE(report.ok) << report.str();
    EXPECT_EQ(result.gaps, 0);
    EXPECT_TRUE(leq(result.ratio, kSqrt3 * 1.05 + 1e-9)) << "ratio " << result.ratio;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Values(1, 2, 3, 4));

TEST(Properties, ScaleInvariance) {
  // Multiplying every time by c scales the solution by about c (dual search
  // grid effects bounded by eps).
  GeneratorOptions options;
  options.tasks = 30;
  options.machines = 12;
  const auto instance = generate_instance(WorkloadFamily::kUniform, options, 31);
  const double base = mrt_schedule(instance).makespan;

  const double c = 37.5;
  std::vector<MalleableTask> scaled_tasks;
  for (const auto& task : instance.tasks()) {
    auto profile = task.profile();
    for (auto& t : profile) t *= c;
    scaled_tasks.emplace_back(std::move(profile), task.name());
  }
  const Instance scaled(instance.machines(), std::move(scaled_tasks));
  const double scaled_makespan = mrt_schedule(scaled).makespan;
  EXPECT_NEAR(scaled_makespan / base, c, c * 0.03);
}

TEST(Properties, TaskOrderPermutationKeepsTheGuarantee) {
  GeneratorOptions options;
  options.tasks = 25;
  options.machines = 10;
  const auto instance = generate_instance(WorkloadFamily::kBimodal, options, 17);
  Rng rng(99);
  for (int shuffle = 0; shuffle < 5; ++shuffle) {
    const auto perm = rng.permutation(static_cast<std::size_t>(instance.size()));
    std::vector<MalleableTask> permuted;
    permuted.reserve(perm.size());
    for (const auto index : perm) permuted.push_back(instance.task(static_cast<int>(index)));
    const Instance shuffled(instance.machines(), std::move(permuted));
    const auto result = mrt_schedule(shuffled);
    EXPECT_EQ(result.gaps, 0);
    EXPECT_TRUE(leq(result.ratio, kSqrt3 * 1.02 + 1e-9));
  }
}

TEST(Properties, SerializationPreservesSolutions) {
  for (const auto family : all_workload_families()) {
    GeneratorOptions options;
    options.tasks = 20;
    options.machines = 8;
    const auto original = generate_instance(family, options, 23);
    const auto copy = instance_from_string(instance_to_string(original));
    const double a = mrt_schedule(original).makespan;
    const double b = mrt_schedule(copy).makespan;
    EXPECT_DOUBLE_EQ(a, b) << to_string(family);
  }
}

TEST(Properties, PostPassesComposeMonotonically) {
  GeneratorOptions options;
  options.tasks = 28;
  options.machines = 14;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto instance = generate_instance(WorkloadFamily::kHeavyTail, options, seed);
    const auto result = mrt_schedule(instance);
    const auto compacted = compact_schedule(result.schedule, instance);
    EXPECT_TRUE(leq(compacted.makespan(), result.makespan));
    const auto searched = improve_schedule(instance, compacted);
    EXPECT_TRUE(leq(searched.makespan, compacted.makespan()));
    EXPECT_TRUE(is_valid_schedule(searched.schedule, instance));
  }
}

TEST(Properties, LowerBoundNeverExceedsAnyAlgorithmsResult) {
  // The certified LB must sit below every feasible schedule we can build.
  GeneratorOptions options;
  options.tasks = 22;
  options.machines = 11;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto instance = generate_instance(WorkloadFamily::kStairs, options, seed);
    const auto result = mrt_schedule(instance);
    EXPECT_TRUE(leq(result.lower_bound, result.makespan));
    EXPECT_TRUE(leq(makespan_lower_bound(instance), result.lower_bound * (1 + 1e-9)));
  }
}

TEST(Properties, DualStepMonotoneInPractice) {
  // Acceptance is not theoretically monotone in the guess, but on these
  // families an accepted guess must stay accepted when multiplied by 2
  // (the same branch construction still fits with double the room).
  GeneratorOptions options;
  options.tasks = 24;
  options.machines = 12;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto instance = generate_instance(WorkloadFamily::kUniform, options, seed);
    const double lb = makespan_lower_bound(instance);
    for (const double factor : {1.0, 1.3, 1.7}) {
      const auto first = mrt_dual_step(instance, lb * factor);
      if (first.schedule) {
        const auto second = mrt_dual_step(instance, lb * factor * 2.0);
        EXPECT_TRUE(second.schedule.has_value())
            << "acceptance lost when doubling the guess (seed " << seed << ")";
      }
    }
  }
}

}  // namespace
}  // namespace malsched
