// Tests for src/model: the malleable task abstraction, monotonicity
// enforcement, speedup models, instances, serialization and lower bounds.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "model/instance.hpp"
#include "model/instance_handle.hpp"
#include "model/instance_io.hpp"
#include "model/lower_bounds.hpp"
#include "model/malleable_task.hpp"
#include "model/monotonize.hpp"
#include "model/speedup_models.hpp"
#include "support/math_utils.hpp"
#include "support/rng.hpp"

namespace malsched {
namespace {

// -------------------------------------------------------------- validation

TEST(MalleableTask, AcceptsMonotonicProfile) {
  EXPECT_NO_THROW(MalleableTask({4.0, 2.5, 2.0, 1.8}));
}

TEST(MalleableTask, RejectsEmptyProfile) {
  EXPECT_THROW(MalleableTask({}), std::invalid_argument);
}

TEST(MalleableTask, RejectsNonPositiveTimes) {
  EXPECT_THROW(MalleableTask({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(MalleableTask({-1.0}), std::invalid_argument);
}

TEST(MalleableTask, RejectsIncreasingTime) {
  // t(2) > t(1): more processors may never slow the task down.
  EXPECT_THROW(MalleableTask({1.0, 1.5}), std::invalid_argument);
}

TEST(MalleableTask, RejectsSuperLinearSpeedup) {
  // t = {4, 1}: work drops from 4 to 2 -- super-linear speedup.
  EXPECT_THROW(MalleableTask({4.0, 1.0}), std::invalid_argument);
}

TEST(MalleableTask, ValidateReportsProblemLocation) {
  const auto problem = MalleableTask::validate({4.0, 1.0});
  ASSERT_TRUE(problem.has_value());
  EXPECT_NE(problem->find("p=2"), std::string::npos);
}

TEST(MalleableTask, AccessorsAndBounds) {
  const MalleableTask task({6.0, 3.5, 3.0}, "t");
  EXPECT_EQ(task.max_procs(), 3);
  EXPECT_DOUBLE_EQ(task.seq_time(), 6.0);
  EXPECT_DOUBLE_EQ(task.time(2), 3.5);
  EXPECT_DOUBLE_EQ(task.work(2), 7.0);
  EXPECT_NEAR(task.speedup(3), 2.0, 1e-12);
  EXPECT_NEAR(task.efficiency(3), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(task.name(), "t");
  EXPECT_THROW(static_cast<void>(task.time(0)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(task.time(4)), std::out_of_range);
}

TEST(MalleableTask, MinProcsForMatchesLinearScan) {
  Rng rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(1, 40));
    std::vector<double> profile(static_cast<std::size_t>(m));
    double t = rng.uniform(5.0, 10.0);
    for (int p = 0; p < m; ++p) {
      profile[static_cast<std::size_t>(p)] = t;
      // keep work monotone: t(p+1) >= t(p)*p/(p+1)
      const double lo = t * static_cast<double>(p + 1) / static_cast<double>(p + 2);
      t = rng.uniform(lo, t);
    }
    const MalleableTask task(profile);
    const double deadline = rng.uniform(0.5, 12.0);
    const auto fast = task.min_procs_for(deadline);
    // Linear reference.
    std::optional<int> slow;
    for (int p = 1; p <= m; ++p) {
      if (leq(task.time(p), deadline)) {
        slow = p;
        break;
      }
    }
    EXPECT_EQ(fast, slow) << "deadline " << deadline;
  }
}

TEST(MalleableTask, MinProcsForUnreachableDeadline) {
  const MalleableTask task({4.0, 2.5});
  EXPECT_FALSE(task.min_procs_for(1.0).has_value());
  EXPECT_EQ(task.min_procs_for(2.5).value(), 2);
  EXPECT_EQ(task.min_procs_for(100.0).value(), 1);
}

// -------------------------------------------------------------- monotonize

TEST(Monotonize, OutputAlwaysValid) {
  Rng rng(202);
  for (int trial = 0; trial < 300; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(1, 32));
    std::vector<double> raw(static_cast<std::size_t>(m));
    for (auto& t : raw) t = rng.uniform(0.1, 10.0);
    const auto repaired = monotonize(raw);
    EXPECT_TRUE(is_monotonic_profile(repaired));
  }
}

TEST(Monotonize, FixedPointOnValidProfiles) {
  const std::vector<double> valid{8.0, 4.5, 3.2, 3.2};
  EXPECT_EQ(monotonize(valid), valid);
}

TEST(Monotonize, Idempotent) {
  Rng rng(203);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> raw(16);
    for (auto& t : raw) t = rng.uniform(0.1, 10.0);
    const auto once = monotonize(raw);
    EXPECT_EQ(monotonize(once), once);
  }
}

TEST(Monotonize, RepairsKnownShape) {
  // Super-linear dip at p=2 gets raised to keep work constant.
  const auto repaired = monotonize({4.0, 1.0});
  EXPECT_DOUBLE_EQ(repaired[0], 4.0);
  EXPECT_DOUBLE_EQ(repaired[1], 2.0);  // work 4 preserved
}

TEST(Monotonize, RejectsBadInput) {
  EXPECT_THROW(monotonize({}), std::invalid_argument);
  EXPECT_THROW(monotonize({1.0, -2.0}), std::invalid_argument);
}

// ---------------------------------------------------------- speedup models

struct ModelCase {
  SpeedupModel model;
  double shape;
};

class SpeedupModelTest : public ::testing::TestWithParam<ModelCase> {};

TEST_P(SpeedupModelTest, ProducesValidMonotonicProfiles) {
  const auto [model, shape] = GetParam();
  for (const int m : {1, 2, 7, 32, 100}) {
    for (const double seq : {0.5, 3.0, 40.0}) {
      const auto profile = make_profile(model, seq, shape, m);
      ASSERT_EQ(static_cast<int>(profile.size()), m);
      EXPECT_TRUE(is_monotonic_profile(profile)) << to_string(model) << " m=" << m;
      EXPECT_NEAR(profile.front(), seq, seq * 1e-9) << "t(1) must be the sequential time";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, SpeedupModelTest,
    ::testing::Values(ModelCase{SpeedupModel::kAmdahl, 0.0}, ModelCase{SpeedupModel::kAmdahl, 0.2},
                      ModelCase{SpeedupModel::kAmdahl, 1.0},
                      ModelCase{SpeedupModel::kPowerLaw, 0.0},
                      ModelCase{SpeedupModel::kPowerLaw, 0.5},
                      ModelCase{SpeedupModel::kPowerLaw, 1.0},
                      ModelCase{SpeedupModel::kCommOverhead, 0.0},
                      ModelCase{SpeedupModel::kCommOverhead, 0.05},
                      ModelCase{SpeedupModel::kCommOverhead, 1.0},
                      ModelCase{SpeedupModel::kStaircase, 0.0},
                      ModelCase{SpeedupModel::kLinear, 0.0},
                      ModelCase{SpeedupModel::kSequential, 0.0}));

TEST(SpeedupModels, AmdahlFormula) {
  const auto profile = amdahl_profile(10.0, 0.5, 4);
  EXPECT_NEAR(profile[3], 10.0 * (0.5 + 0.5 / 4.0), 1e-12);
}

TEST(SpeedupModels, LinearIsPerfect) {
  const auto profile = linear_profile(8.0, 8);
  EXPECT_DOUBLE_EQ(profile[7], 1.0);
}

TEST(SpeedupModels, SequentialIsFlat) {
  const auto profile = sequential_profile(3.0, 5);
  for (const double t : profile) EXPECT_DOUBLE_EQ(t, 3.0);
}

TEST(SpeedupModels, StaircasePlateausBetweenPowersOfTwo) {
  const auto profile = staircase_profile(8.0, 8);
  EXPECT_DOUBLE_EQ(profile[2], profile[1]);  // p=3 same as p=2
  EXPECT_LT(profile[3], profile[2]);         // p=4 improves
}

TEST(SpeedupModels, CommOverheadMonotonizedPastTurningPoint) {
  // With a large overhead the raw formula would increase; the profile
  // must stay non-increasing anyway.
  const auto profile = comm_overhead_profile(2.0, 0.5, 16);
  for (std::size_t p = 1; p < profile.size(); ++p) {
    EXPECT_LE(profile[p], profile[p - 1] * (1 + 1e-12));
  }
}

TEST(SpeedupModels, RejectsBadParameters) {
  EXPECT_THROW(amdahl_profile(1.0, -0.1, 4), std::invalid_argument);
  EXPECT_THROW(amdahl_profile(1.0, 1.1, 4), std::invalid_argument);
  EXPECT_THROW(power_law_profile(1.0, 2.0, 4), std::invalid_argument);
  EXPECT_THROW(comm_overhead_profile(1.0, -1.0, 4), std::invalid_argument);
  EXPECT_THROW(linear_profile(0.0, 4), std::invalid_argument);
  EXPECT_THROW(linear_profile(1.0, 0), std::invalid_argument);
}

TEST(SpeedupModels, Names) {
  EXPECT_EQ(to_string(SpeedupModel::kAmdahl), "amdahl");
  EXPECT_EQ(to_string(SpeedupModel::kStaircase), "staircase");
}

// ---------------------------------------------------------------- instance

TEST(Instance, ValidatesProfileCoverage) {
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(std::vector<double>{2.0, 1.5});
  EXPECT_THROW(Instance(3, std::move(tasks)), std::invalid_argument);
}

TEST(Instance, RejectsBadMachineCount) {
  EXPECT_THROW(Instance(0, {}), std::invalid_argument);
}

TEST(Instance, TotalSequentialWork) {
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(sequential_profile(2.0, 4));
  tasks.emplace_back(sequential_profile(3.0, 4));
  const Instance instance(4, std::move(tasks));
  EXPECT_DOUBLE_EQ(instance.total_sequential_work(), 5.0);
  EXPECT_EQ(instance.size(), 2);
  EXPECT_EQ(instance.machines(), 4);
}

// -------------------------------------------------------------- instance io

TEST(InstanceIo, RoundTripsExactly) {
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(amdahl_profile(3.14159, 0.123, 6), "alpha");
  tasks.emplace_back(power_law_profile(2.71828, 0.77, 6));
  const Instance original(6, std::move(tasks));

  const auto text = instance_to_string(original);
  const Instance copy = instance_from_string(text);

  ASSERT_EQ(copy.size(), original.size());
  ASSERT_EQ(copy.machines(), original.machines());
  for (int i = 0; i < original.size(); ++i) {
    EXPECT_EQ(copy.task(i).name(), original.task(i).name());
    for (int p = 1; p <= original.machines(); ++p) {
      EXPECT_DOUBLE_EQ(copy.task(i).time(p), original.task(i).time(p));
    }
  }
}

TEST(InstanceIo, RejectsMissingHeader) {
  std::istringstream in("not-a-header v1\nm 4\n");
  EXPECT_THROW(read_instance(in), std::runtime_error);
}

TEST(InstanceIo, RejectsShortTaskLine) {
  std::istringstream in("malsched-instance v1\nm 3\ntask a 1.0 0.9\n");
  EXPECT_THROW(read_instance(in), std::runtime_error);
}

TEST(InstanceIo, RejectsNonMonotoneProfile) {
  std::istringstream in("malsched-instance v1\nm 2\ntask a 1.0 2.0\n");
  EXPECT_THROW(read_instance(in), std::runtime_error);
}

// ------------------------------------------------------------- lower bounds

TEST(LowerBounds, AreaAndCriticalPath) {
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(sequential_profile(6.0, 2));           // crit 6, work 6
  tasks.emplace_back(std::vector<double>{4.0, 2.0});        // crit 2, work 4
  const Instance instance(2, std::move(tasks));
  EXPECT_DOUBLE_EQ(area_lower_bound(instance), 5.0);
  EXPECT_DOUBLE_EQ(critical_path_lower_bound(instance), 6.0);
  EXPECT_DOUBLE_EQ(makespan_lower_bound(instance), 6.0);
}

TEST(LowerBounds, AreaDominatesWhenLoadIsHigh) {
  std::vector<MalleableTask> tasks;
  for (int i = 0; i < 10; ++i) tasks.emplace_back(sequential_profile(1.0, 2));
  const Instance instance(2, std::move(tasks));
  EXPECT_DOUBLE_EQ(makespan_lower_bound(instance), 5.0);
}

// ---------------------------------------------------------- InstanceHandle

namespace {

Instance handle_instance(double scale = 1.0) {
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(std::vector<double>{4.0 * scale, 2.5 * scale, 2.0 * scale}, "a");
  tasks.emplace_back(std::vector<double>{3.0 * scale, 1.6 * scale, 1.2 * scale}, "b");
  return Instance(3, std::move(tasks));
}

}  // namespace

TEST(InstanceHandle, InternComputesFingerprintAndBoundExactlyOnce) {
  const auto before = InstanceHandle::content_hashes();
  const auto handle = InstanceHandle::intern(handle_instance());
  EXPECT_EQ(InstanceHandle::content_hashes(), before + 1);

  EXPECT_TRUE(handle.valid());
  EXPECT_NE(handle.fingerprint(), 0u);
  EXPECT_DOUBLE_EQ(handle.static_lower_bound(), makespan_lower_bound(handle.instance()));

  // Reading identity off the handle never re-hashes; copies share it.
  const InstanceHandle copy = handle;
  EXPECT_EQ(copy.fingerprint(), handle.fingerprint());
  EXPECT_EQ(copy.shared().get(), handle.shared().get());
  EXPECT_EQ(InstanceHandle::content_hashes(), before + 1);
}

TEST(InstanceHandle, ContentIdentitySurvivesSeparateInterns) {
  const auto hits_before = InstanceHandle::intern_table_hits();
  const auto a = InstanceHandle::intern(handle_instance());
  const auto b = InstanceHandle::intern(handle_instance());       // same content
  const auto c = InstanceHandle::intern(handle_instance(2.0));    // different
  // v2.1 process-wide intern table: the second intern of live equal content
  // shares the first allocation instead of making its own.
  EXPECT_EQ(a.shared().get(), b.shared().get());
  EXPECT_GE(InstanceHandle::intern_table_hits(), hits_before + 1);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_TRUE(a == b);
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  EXPECT_FALSE(a == c);
}

TEST(InstanceHandle, InternTableHoldsWeakReferencesOnly) {
  // Entries die with their last handle: a re-intern after the handles are
  // gone is a MISS (fresh allocation), and intern_table_size() prunes.
  Instance probe = handle_instance(3.5);
  const void* first_allocation = nullptr;
  {
    const auto a = InstanceHandle::intern(probe);
    first_allocation = a.shared().get();
    EXPECT_GE(InstanceHandle::intern_table_size(), 1u);
  }
  const auto hits_before = InstanceHandle::intern_table_hits();
  const auto b = InstanceHandle::intern(probe);
  EXPECT_EQ(InstanceHandle::intern_table_hits(), hits_before)
      << "a dead entry must not count as a hit";
  EXPECT_TRUE(b.valid());
  static_cast<void>(first_allocation);  // dead; only proves the scope ended
}

TEST(InstanceHandle, TaskNamesContributeToTheFingerprint) {
  // Bit-pattern hashing: renaming a task changes the fingerprint even when
  // every number is identical.
  std::vector<MalleableTask> renamed;
  renamed.emplace_back(std::vector<double>{4.0, 2.5, 2.0}, "a2");
  renamed.emplace_back(std::vector<double>{3.0, 1.6, 1.2}, "b");
  const auto base = InstanceHandle::intern(handle_instance());
  const auto other = InstanceHandle::intern(Instance(3, std::move(renamed)));
  EXPECT_NE(base.fingerprint(), other.fingerprint());
  EXPECT_FALSE(base == other);
}

TEST(InstanceHandle, EmptyHandleAndNullInternAreRejected) {
  const InstanceHandle empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_FALSE(static_cast<bool>(empty));
  EXPECT_EQ(empty.fingerprint(), 0u);
  EXPECT_THROW(static_cast<void>(empty.instance()), std::logic_error);
  EXPECT_THROW(static_cast<void>(InstanceHandle::intern(std::shared_ptr<const Instance>{})),
               std::invalid_argument);

  // Two empties are the same (no) content; an empty equals nothing real.
  EXPECT_TRUE(empty == InstanceHandle{});
  EXPECT_FALSE(empty == InstanceHandle::intern(handle_instance()));
}

}  // namespace
}  // namespace malsched
