// Unit and property tests for src/support: rng, statistics, table,
// parallel_for, json, math utilities.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "support/json.hpp"
#include "support/math_utils.hpp"
#include "support/parallel_for.hpp"
#include "support/rng.hpp"
#include "support/statistics.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace malsched {
namespace {

// ---------------------------------------------------------------- math_utils

TEST(MathUtils, LeqToleratesRelativeNoise) {
  EXPECT_TRUE(leq(1.0, 1.0));
  EXPECT_TRUE(leq(1.0 + 1e-12, 1.0));
  EXPECT_FALSE(leq(1.0 + 1e-6, 1.0));
  EXPECT_TRUE(leq(0.999999999, 1.0));
}

TEST(MathUtils, LeqScalesWithMagnitude) {
  EXPECT_TRUE(leq(1e12 + 1.0, 1e12));   // 1 part in 1e12 is below tolerance
  EXPECT_FALSE(leq(1e12 * 1.001, 1e12));
}

TEST(MathUtils, GeqAndApproxEqAgreeWithLeq) {
  EXPECT_TRUE(geq(2.0, 1.0));
  EXPECT_FALSE(geq(1.0, 2.0));
  EXPECT_TRUE(approx_eq(3.0, 3.0 + 1e-13));
  EXPECT_FALSE(approx_eq(3.0, 3.01));
}

TEST(MathUtils, LtStrictRejectsNearEqual) {
  EXPECT_TRUE(lt_strict(1.0, 2.0));
  EXPECT_FALSE(lt_strict(1.0, 1.0 + 1e-13));
}

TEST(MathUtils, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(1, 7), 1);
}

TEST(MathUtils, PaperConstantsAreConsistent) {
  EXPECT_NEAR(kSqrt3, std::sqrt(3.0), 1e-15);
  EXPECT_NEAR(kLambda + 1.0, kSqrt3, 1e-15);   // two shelves 1 + lambda
  EXPECT_NEAR(2.0 * kMu, kSqrt3, 1e-15);       // list bound 2*mu
}

// ----------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.uniform(2.5, 3.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 3.5);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2'000; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, NormalHasRoughMoments) {
  Rng rng(13);
  Summary summary;
  for (int i = 0; i < 50'000; ++i) summary.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(summary.mean(), 5.0, 0.05);
  EXPECT_NEAR(summary.stddev(), 2.0, 0.05);
}

TEST(Rng, LogUniformStaysInRange) {
  Rng rng(17);
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.log_uniform(0.1, 10.0);
    EXPECT_GE(x, 0.1 * (1 - 1e-12));
    EXPECT_LE(x, 10.0 * (1 + 1e-12));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 20'000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / 20'000.0, 0.3, 0.02);
}

TEST(Rng, WeightedIndexProportional) {
  Rng rng(23);
  const std::vector<double> weights{1.0, 3.0};
  int ones = 0;
  for (int i = 0; i < 20'000; ++i) ones += rng.weighted_index(weights) == 1;
  EXPECT_NEAR(static_cast<double>(ones) / 20'000.0, 0.75, 0.02);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(29);
  for (int trial = 0; trial < 20; ++trial) {
    const auto perm = rng.permutation(50);
    std::set<std::size_t> unique(perm.begin(), perm.end());
    EXPECT_EQ(unique.size(), 50u);
    EXPECT_EQ(*unique.rbegin(), 49u);
  }
}

TEST(Rng, PermutationNotIdentityUsually) {
  Rng rng(31);
  const auto perm = rng.permutation(64);
  int fixed = 0;
  for (std::size_t i = 0; i < perm.size(); ++i) fixed += perm[i] == i;
  EXPECT_LT(fixed, 10);
}

// ------------------------------------------------------------------ summary

TEST(Summary, KnownValues) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, MergeMatchesSequential) {
  Rng rng(37);
  Summary all;
  Summary left;
  Summary right;
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a;
  a.add(1.0);
  Summary empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Summary, StrMentionsCount) {
  Summary s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_NE(s.str().find("n=2"), std::string::npos);
}

TEST(Statistics, PercentileInterpolates) {
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(values, 50.0), 2.5);
}

TEST(Statistics, PercentileHandlesEmptyAndSingle) {
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  const std::vector<double> one{3.0};
  EXPECT_DOUBLE_EQ(percentile(one, 99.0), 3.0);
}

TEST(Statistics, Means) {
  const std::vector<double> values{1.0, 4.0, 16.0};
  EXPECT_DOUBLE_EQ(mean_of(values), 7.0);
  EXPECT_NEAR(geometric_mean(values), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

// -------------------------------------------------------------------- table

TEST(Table, AlignsAndPrintsRows) {
  Table table({"algo", "ratio"});
  table.add_row({"mrt", cell(1.23, 2)});
  table.add_row({"ludwig-ffdh", cell(1.9, 2)});
  std::ostringstream out;
  table.print(out);
  const auto text = out.str();
  EXPECT_NE(text.find("algo"), std::string::npos);
  EXPECT_NE(text.find("1.23"), std::string::npos);
  EXPECT_NE(text.find("ludwig-ffdh"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, RejectsWrongArity) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(cell(1.23456, 2), "1.23");
  EXPECT_EQ(cell(7), "7");
  EXPECT_EQ(cell(static_cast<std::size_t>(9)), "9");
}

// ------------------------------------------------------------- parallel_for

TEST(ParallelFor, ComputesEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(500);
  parallel_for(500, [&](std::size_t i) { ++hits[i]; }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; }, 4);
}

TEST(ParallelFor, SingleThreadFallback) {
  std::atomic<int> total{0};
  parallel_for(100, [&](std::size_t) { ++total; }, 1);
  EXPECT_EQ(total.load(), 100);
}

TEST(ParallelFor, PropagatesException) {
  EXPECT_THROW(
      parallel_for(64, [](std::size_t i) {
        if (i == 13) throw std::runtime_error("boom");
      }, 4),
      std::runtime_error);
}

// --------------------------------------------------------------------- json

TEST(Json, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
  EXPECT_EQ(json_escape("utf8 \xc3\xa9 ok"), "utf8 \xc3\xa9 ok");
}

TEST(Json, WritesNestedObjectsAndArrays) {
  JsonWriter writer;
  writer.begin_object();
  writer.kv("name", "bench");
  writer.kv("count", 3);
  writer.kv("enabled", true);
  writer.key("values");
  writer.begin_array();
  writer.value(1.5);
  writer.null_value();
  writer.begin_object();
  writer.kv("nested", std::size_t{7});
  writer.end_object();
  writer.end_array();
  writer.end_object();
  EXPECT_EQ(writer.str(),
            R"({"name":"bench","count":3,"enabled":true,"values":[1.5,null,{"nested":7}]})");
}

TEST(Json, NumberRenderingIsDeterministicAndRoundTrips) {
  JsonWriter writer;
  writer.begin_array();
  writer.value(64.0);             // integral double: no fraction
  writer.value(0.1);              // needs full round-trip precision
  writer.value(-2.5);
  writer.value(std::numeric_limits<double>::infinity());  // JSON has no inf
  writer.value(std::nan(""));
  writer.end_array();
  EXPECT_EQ(writer.str(), "[64,0.10000000000000001,-2.5,null,null]");
}

TEST(Json, MisuseThrowsInsteadOfEmittingGarbage) {
  {
    JsonWriter writer;
    writer.begin_object();
    EXPECT_THROW(writer.value(1), std::logic_error);  // value without key()
  }
  {
    JsonWriter writer;
    writer.begin_array();
    EXPECT_THROW(writer.key("k"), std::logic_error);  // key inside an array
    EXPECT_THROW(writer.end_object(), std::logic_error);
    EXPECT_THROW(static_cast<void>(writer.str()), std::logic_error);  // unclosed
  }
  {
    JsonWriter writer;
    EXPECT_THROW(static_cast<void>(writer.str()), std::logic_error);  // empty
    writer.value("top-level scalar");
    EXPECT_EQ(writer.str(), "\"top-level scalar\"");
    EXPECT_THROW(writer.value(2), std::logic_error);  // second top-level value
  }
  {
    JsonWriter writer;
    EXPECT_THROW(writer.value(static_cast<const char*>(nullptr)), std::logic_error);
  }
}

// ---------------------------------------------------------------- stopwatch

TEST(Stopwatch, MeasuresNonNegativeAndResets) {
  Stopwatch sw;
  volatile double sink = 0.0;
  // Plain assignment: compound assignment to a volatile is deprecated in
  // C++20 (-Wvolatile).
  for (int i = 0; i < 100'000; ++i) sink = sink + static_cast<double>(i);
  const double first = sw.seconds();
  EXPECT_GE(first, 0.0);
  sw.reset();
  EXPECT_LE(sw.seconds(), first + 1.0);
  EXPECT_GE(sw.millis(), 0.0);
}

}  // namespace
}  // namespace malsched
