// Tests for src/workload: every generator family yields valid monotonic
// instances, the packed family certifies OPT <= 1, and the domain workloads
// (ocean, trace) are deterministic per seed.

#include <gtest/gtest.h>

#include <tuple>

#include "core/canonical.hpp"
#include "model/instance_io.hpp"
#include "model/lower_bounds.hpp"
#include "model/monotonize.hpp"
#include "support/math_utils.hpp"
#include "workload/generators.hpp"
#include "workload/ocean.hpp"
#include "workload/trace.hpp"

namespace malsched {
namespace {

class GeneratorFamilyTest
    : public ::testing::TestWithParam<std::tuple<WorkloadFamily, int, int, int>> {};

TEST_P(GeneratorFamilyTest, ProducesValidInstances) {
  const auto [family, tasks, machines, seed] = GetParam();
  GeneratorOptions options;
  options.tasks = tasks;
  options.machines = machines;
  const auto instance = generate_instance(family, options, static_cast<std::uint64_t>(seed));
  EXPECT_EQ(instance.machines(), machines);
  EXPECT_GT(instance.size(), 0);
  if (family != WorkloadFamily::kPackedOpt1) {
    EXPECT_EQ(instance.size(), tasks);
  }
  for (const auto& task : instance.tasks()) {
    EXPECT_TRUE(is_monotonic_profile(task.profile()));
    EXPECT_FALSE(task.name().empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneratorFamilyTest,
    ::testing::Combine(::testing::Values(WorkloadFamily::kUniform, WorkloadFamily::kBimodal,
                                         WorkloadFamily::kHeavyTail, WorkloadFamily::kStairs,
                                         WorkloadFamily::kPackedOpt1,
                                         WorkloadFamily::kSequentialOnly),
                       ::testing::Values(5, 40), ::testing::Values(4, 32),
                       ::testing::Values(1, 2)));

TEST(Generators, DeterministicPerSeed) {
  GeneratorOptions options;
  for (const auto family : all_workload_families()) {
    const auto a = generate_instance(family, options, 123);
    const auto b = generate_instance(family, options, 123);
    const auto c = generate_instance(family, options, 124);
    EXPECT_EQ(instance_to_string(a), instance_to_string(b)) << to_string(family);
    EXPECT_NE(instance_to_string(a), instance_to_string(c)) << to_string(family);
  }
}

TEST(Generators, FamilyNamesDistinct) {
  const auto families = all_workload_families();
  for (std::size_t a = 0; a < families.size(); ++a) {
    for (std::size_t b = a + 1; b < families.size(); ++b) {
      EXPECT_NE(to_string(families[a]), to_string(families[b]));
    }
  }
}

TEST(PackedInstance, CertifiesOptAtMostOne) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    for (const int machines : {2, 5, 16, 33}) {
      const auto instance = packed_instance(machines, seed);
      // Lower bounds cannot exceed the built-in schedule of length 1.
      EXPECT_TRUE(leq(makespan_lower_bound(instance), 1.0)) << "m=" << machines;
      // Property 2 at deadline 1 must pass (necessary for OPT <= 1).
      const auto allotment = canonical_allotment(instance, 1.0);
      ASSERT_TRUE(allotment.feasible);
      EXPECT_TRUE(leq(allotment.total_work, static_cast<double>(machines)));
    }
  }
}

TEST(PackedInstance, CoversTheWholeMachine) {
  // The guillotine cells partition the m x 1 rectangle exactly. Each cell's
  // native work is h * width, and the profile's work is non-decreasing in
  // p, so at full width w_i(m) >= h * width; summing over cells gives
  // sum_i w_i(m) >= m * 1. (The canonical work can be *smaller* than m --
  // beta < 1 lets cells shrink below their native width -- so the full-
  // width work is the right invariant to pin the coverage.)
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const int machines = 12;
    const auto instance = packed_instance(machines, seed);
    double full_width_work = 0.0;
    for (const auto& task : instance.tasks()) full_width_work += task.work(machines);
    EXPECT_TRUE(geq(full_width_work, static_cast<double>(machines)));
  }
}

TEST(PackedInstance, TargetTaskCountHonoredApproximately) {
  const auto instance = packed_instance(16, 3, 24);
  EXPECT_GE(instance.size(), 12);
  EXPECT_LE(instance.size(), 25);
  EXPECT_THROW(packed_instance(0, 1), std::invalid_argument);
}

// -------------------------------------------------------------------- ocean

TEST(Ocean, ValidAndStructured) {
  OceanOptions options;
  options.machines = 32;
  const auto instance = ocean_instance(options, 7);
  EXPECT_GE(instance.size(), options.base_grid * options.base_grid);
  for (const auto& task : instance.tasks()) {
    EXPECT_TRUE(is_monotonic_profile(task.profile()));
    EXPECT_EQ(task.name().rfind("blk-", 0), 0u) << task.name();
  }
}

TEST(Ocean, RefinementGrowsTaskCount) {
  OceanOptions none;
  none.machines = 16;
  none.refine_prob = 0.0;
  OceanOptions lots;
  lots.machines = 16;
  lots.refine_prob = 0.9;
  const auto flat = ocean_instance(none, 5);
  const auto refined = ocean_instance(lots, 5);
  EXPECT_EQ(flat.size(), none.base_grid * none.base_grid);
  EXPECT_GT(refined.size(), flat.size());
}

TEST(Ocean, DeterministicPerSeed) {
  OceanOptions options;
  EXPECT_EQ(instance_to_string(ocean_instance(options, 9)),
            instance_to_string(ocean_instance(options, 9)));
}

// -------------------------------------------------------------------- trace

TEST(Trace, ValidJobsWithPlateaus) {
  TraceOptions options;
  options.machines = 32;
  options.jobs = 40;
  const auto instance = trace_snapshot(options, 21);
  EXPECT_EQ(instance.size(), 40);
  for (const auto& task : instance.tasks()) {
    EXPECT_TRUE(is_monotonic_profile(task.profile()));
  }
}

TEST(Trace, ParallelismCapRespected) {
  TraceOptions options;
  options.machines = 32;
  options.jobs = 30;
  options.max_parallelism_cap = 4;
  const auto instance = trace_snapshot(options, 22);
  for (const auto& task : instance.tasks()) {
    // Beyond the cap the profile must be flat.
    EXPECT_NEAR(task.time(5), task.time(32), task.time(5) * 1e-9);
  }
}

TEST(Trace, DeterministicPerSeed) {
  TraceOptions options;
  EXPECT_EQ(instance_to_string(trace_snapshot(options, 4)),
            instance_to_string(trace_snapshot(options, 4)));
  EXPECT_NE(instance_to_string(trace_snapshot(options, 4)),
            instance_to_string(trace_snapshot(options, 5)));
}

}  // namespace
}  // namespace malsched
