// Tests for src/core/canonical: canonical allotments, Properties 1 and 2,
// the canonical area W of Definition 1, and the regime threshold.

#include <gtest/gtest.h>

#include <tuple>

#include "core/canonical.hpp"
#include "core/inefficiency.hpp"
#include "model/lower_bounds.hpp"
#include "model/speedup_models.hpp"
#include "support/math_utils.hpp"
#include "workload/generators.hpp"

namespace malsched {
namespace {

TEST(Canonical, MinimalityOnKnownProfile) {
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(std::vector<double>{4.0, 2.2, 1.8, 1.5});
  const Instance instance(4, std::move(tasks));
  const auto allotment = canonical_allotment(instance, 2.0);
  ASSERT_TRUE(allotment.feasible);
  EXPECT_EQ(allotment.procs[0], 3);  // t(2)=2.2 > 2.0, t(3)=1.8 <= 2.0
  EXPECT_DOUBLE_EQ(allotment.total_work, 3 * 1.8);
  EXPECT_EQ(allotment.total_procs, 3);
}

TEST(Canonical, InfeasibleWhenDeadlineUnreachable) {
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(std::vector<double>{4.0, 2.2});
  const Instance instance(2, std::move(tasks));
  const auto allotment = canonical_allotment(instance, 1.0);
  EXPECT_FALSE(allotment.feasible);
  EXPECT_TRUE(certified_infeasible(instance, allotment));
}

TEST(Canonical, CertifiedInfeasibleByArea) {
  // Ten unit sequential tasks on 2 machines: canonical work 10 > 2 * 2.
  std::vector<MalleableTask> tasks;
  for (int i = 0; i < 10; ++i) tasks.emplace_back(sequential_profile(1.0, 2));
  const Instance instance(2, std::move(tasks));
  const auto allotment = canonical_allotment(instance, 2.0);
  ASSERT_TRUE(allotment.feasible);
  EXPECT_TRUE(certified_infeasible(instance, allotment));
  // At deadline 5 the area bound passes.
  EXPECT_FALSE(certified_infeasible(instance, canonical_allotment(instance, 5.0)));
}

// The sweep parameter is a *multiplier* on the instance's combined lower
// bound, not an absolute deadline: any deadline >= the critical-path bound
// is canonically feasible, so multipliers >= 1 keep every (family, seed)
// combination live instead of skipping the families whose scale a fixed
// constant undershoots.
class CanonicalPropertyTest
    : public ::testing::TestWithParam<std::tuple<WorkloadFamily, int, double>> {
 protected:
  [[nodiscard]] static double sweep_deadline(const Instance& instance, double multiplier) {
    return multiplier * makespan_lower_bound(instance);
  }
};

TEST_P(CanonicalPropertyTest, Property1HoldsForAllTasks) {
  const auto [family, seed, multiplier] = GetParam();
  GeneratorOptions options;
  options.tasks = 40;
  options.machines = 24;
  const auto instance = generate_instance(family, options, static_cast<std::uint64_t>(seed));
  const double deadline = sweep_deadline(instance, multiplier);
  const auto allotment = canonical_allotment(instance, deadline);
  ASSERT_TRUE(allotment.feasible) << "deadline " << deadline << " below the critical path?";
  for (int i = 0; i < instance.size(); ++i) {
    const int gamma = allotment.procs[static_cast<std::size_t>(i)];
    EXPECT_TRUE(property1_holds(instance.task(i), gamma, deadline))
        << "task " << i << " gamma " << gamma;
    // Minimality re-checked directly.
    EXPECT_TRUE(leq(instance.task(i).time(gamma), deadline));
    if (gamma > 1) {
      EXPECT_FALSE(leq(instance.task(i).time(gamma - 1), deadline));
    }
  }
}

TEST_P(CanonicalPropertyTest, CanonicalAreaIsBoundedAndConsistent) {
  const auto [family, seed, multiplier] = GetParam();
  GeneratorOptions options;
  options.tasks = 40;
  options.machines = 24;
  const auto instance = generate_instance(family, options, static_cast<std::uint64_t>(seed));
  const auto allotment = canonical_allotment(instance, sweep_deadline(instance, multiplier));
  ASSERT_TRUE(allotment.feasible);
  const double area = canonical_area(instance, allotment);
  EXPECT_TRUE(geq(area, 0.0));
  EXPECT_TRUE(leq(area, allotment.total_work));
  // The stacked prefix never exceeds the full m x (max canonical time) box.
  double tallest = 0.0;
  for (int i = 0; i < instance.size(); ++i) {
    tallest = std::max(tallest,
                       instance.task(i).time(allotment.procs[static_cast<std::size_t>(i)]));
  }
  EXPECT_TRUE(leq(area, tallest * instance.machines()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CanonicalPropertyTest,
    ::testing::Combine(::testing::Values(WorkloadFamily::kUniform, WorkloadFamily::kBimodal,
                                         WorkloadFamily::kHeavyTail,
                                         WorkloadFamily::kPackedOpt1),
                       ::testing::Values(1, 2),
                       ::testing::Values(1.0, 1.5, 3.0)));

TEST(Canonical, Property2OnPackedInstances) {
  // Packed instances admit a schedule of length 1 by construction, so the
  // canonical work at deadline 1 may not exceed m (Property 2).
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    for (const int machines : {4, 8, 16}) {
      const auto instance = packed_instance(machines, seed);
      const auto allotment = canonical_allotment(instance, 1.0);
      ASSERT_TRUE(allotment.feasible) << "seed " << seed;
      EXPECT_TRUE(leq(allotment.total_work, static_cast<double>(machines)))
          << "Property 2 violated at seed " << seed << " m " << machines;
      EXPECT_FALSE(certified_infeasible(instance, allotment));
    }
  }
}

TEST(Canonical, AreaOfExactFitStacking) {
  // Two tasks of canonical width 2 on m=4: stacking fills exactly the first
  // 4 processors, so W equals the total canonical work.
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(std::vector<double>{3.0, 1.9, 1.9, 1.9});
  tasks.emplace_back(std::vector<double>{3.0, 1.8, 1.8, 1.8});
  const Instance instance(4, std::move(tasks));
  const auto allotment = canonical_allotment(instance, 2.0);
  ASSERT_TRUE(allotment.feasible);
  EXPECT_EQ(allotment.total_procs, 4);
  EXPECT_NEAR(canonical_area(instance, allotment), 2 * 1.9 + 2 * 1.8, 1e-12);
}

TEST(Canonical, AreaTruncatesOverflowingTask) {
  // Widths 2 then 3 on m=4: the second task contributes only 2 of its 3
  // processors to the first-m area (Definition 1's fractional slice).
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(std::vector<double>{3.0, 1.9, 1.9, 1.9});
  tasks.emplace_back(std::vector<double>{5.2, 2.7, 1.8, 1.8});
  const Instance instance(4, std::move(tasks));
  const auto allotment = canonical_allotment(instance, 2.0);
  ASSERT_TRUE(allotment.feasible);
  ASSERT_EQ(allotment.procs[0], 2);
  ASSERT_EQ(allotment.procs[1], 3);
  EXPECT_NEAR(canonical_area(instance, allotment), 2 * 1.9 + 2 * 1.8, 1e-12);
}

TEST(Canonical, AreaWhenMachineNeverFills) {
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(sequential_profile(0.5, 8));
  const Instance instance(8, std::move(tasks));
  const auto allotment = canonical_allotment(instance, 1.0);
  EXPECT_NEAR(canonical_area(instance, allotment), 0.5, 1e-12);
}

TEST(Canonical, ThresholdUsesMu) {
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(sequential_profile(1.0, 10));
  const Instance instance(10, std::move(tasks));
  EXPECT_NEAR(area_threshold(instance, 2.0), kMu * 10 * 2.0, 1e-12);
}

// ------------------------------------------------------------- inefficiency

TEST(Inefficiency, AtLeastOneUnderMonotonicity) {
  const MalleableTask task(power_law_profile(8.0, 0.8, 16));
  for (int gamma = 1; gamma <= 16; ++gamma) {
    for (int procs = gamma; procs <= 16; ++procs) {
      EXPECT_TRUE(geq(inefficiency_factor(task, procs, gamma), 1.0));
    }
  }
}

TEST(Inefficiency, ExactValueOnKnownProfile) {
  const MalleableTask task(std::vector<double>{4.0, 2.5});
  EXPECT_NEAR(inefficiency_factor(task, 2, 1), 5.0 / 4.0, 1e-12);
  EXPECT_THROW(static_cast<void>(inefficiency_factor(task, 1, 2)), std::invalid_argument);
}

TEST(Inefficiency, SetAggregation) {
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(std::vector<double>{4.0, 2.5});
  tasks.emplace_back(std::vector<double>{2.0, 1.5});
  const Instance instance(2, std::move(tasks));
  const std::vector<int> ids{0, 1};
  const std::vector<int> procs{2, 2};
  const std::vector<int> gamma{1, 1};
  EXPECT_NEAR(set_inefficiency(instance, ids, procs, gamma), (5.0 + 3.0) / (4.0 + 2.0), 1e-12);
}

}  // namespace
}  // namespace malsched
