// Tests for the two list algorithms of Section 3: the Malleable List
// Algorithm (Theorem 1) and the Canonical List Algorithm (Theorem 2 with the
// appendix's reallocation rule).

#include <gtest/gtest.h>

#include <tuple>

#include "core/canonical.hpp"
#include "core/canonical_list.hpp"
#include "core/malleable_list.hpp"
#include "model/speedup_models.hpp"
#include "sched/validate.hpp"
#include "support/math_utils.hpp"
#include "workload/generators.hpp"

namespace malsched {
namespace {

// ------------------------------------------------------- malleable list 3.1

TEST(MalleableList, GuaranteeFormula) {
  EXPECT_NEAR(malleable_list_guarantee(1), 1.0, 1e-12);
  EXPECT_NEAR(malleable_list_guarantee(3), 1.5, 1e-12);
  EXPECT_NEAR(malleable_list_guarantee(6), 2.0 - 2.0 / 7.0, 1e-12);
  // Below sqrt(3) up to m = 6, above from m = 7 (the paper's small-m regime).
  EXPECT_TRUE(leq(malleable_list_guarantee(6), kSqrt3));
  EXPECT_FALSE(leq(malleable_list_guarantee(7), kSqrt3));
}

TEST(MalleableList, RejectsWithCertificateOnly) {
  // Overloaded instance: rejection must fire (area certificate).
  std::vector<MalleableTask> tasks;
  for (int i = 0; i < 12; ++i) tasks.emplace_back(sequential_profile(1.0, 2));
  const Instance instance(2, std::move(tasks));
  EXPECT_FALSE(malleable_list_schedule(instance, 1.0).has_value());
  EXPECT_TRUE(malleable_list_schedule(instance, 6.0).has_value());
}

class MalleableListPackedTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MalleableListPackedTest, Theorem1BoundOnPackedInstances) {
  // Packed instances admit a schedule of length 1, so the algorithm at
  // deadline 1 must not reject and must deliver <= (2 - 2/(m+1)) * 1.
  const auto [machines, seed] = GetParam();
  const auto instance = packed_instance(machines, static_cast<std::uint64_t>(seed));
  const auto schedule = malleable_list_schedule(instance, 1.0);
  ASSERT_TRUE(schedule.has_value()) << "Property 2 cannot reject an OPT<=1 instance";
  const auto report = validate_schedule(*schedule, instance);
  ASSERT_TRUE(report.ok) << report.str();
  EXPECT_TRUE(leq(schedule->makespan(), malleable_list_guarantee(machines)))
      << "makespan " << schedule->makespan() << " m " << machines;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MalleableListPackedTest,
                         ::testing::Combine(::testing::Values(2, 3, 4, 6, 8, 12, 16),
                                            ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8)));

TEST(MalleableList, ParallelTasksAllStartAtZero) {
  // Theorem 1's structural property on OPT<=1 instances: every task alloted
  // >= 2 processors starts at time 0, and they fit side by side.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const int machines = 10;
    const auto instance = packed_instance(machines, seed);
    const auto schedule = malleable_list_schedule(instance, 1.0);
    ASSERT_TRUE(schedule.has_value());
    long long parallel_procs = 0;
    for (int i = 0; i < instance.size(); ++i) {
      const auto& assignment = schedule->of(i);
      if (assignment.procs() >= 2) {
        EXPECT_NEAR(assignment.start, 0.0, 1e-12) << "seed " << seed << " task " << i;
        parallel_procs += assignment.procs();
      }
    }
    EXPECT_LE(parallel_procs, machines);
  }
}

// ------------------------------------------------------- canonical list 3.2

TEST(CanonicalList, KstarValues) {
  // k/(k+1) < mu: at mu = sqrt(3)/2 ~ 0.866, k* = 6 (6/7 ~ .857, 7/8 = .875).
  EXPECT_EQ(kstar(kMu), 6);
  EXPECT_EQ(kstar(0.75), 2);   // 2/3 < .75, 3/4 = .75 not strictly below
  EXPECT_EQ(kstar(0.8), 3);    // 3/4 < .8, 4/5 = .8 not below
  EXPECT_EQ(kstar(0.95), 18);  // 18/19 ~ .947 < .95, 19/20 = .95 not below
  EXPECT_THROW(static_cast<void>(kstar(0.5)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(kstar(1.0)), std::invalid_argument);
}

TEST(CanonicalList, ReallocationWidth) {
  EXPECT_EQ(reallocation_width(kMu), 4);  // ceil((6+1)/2)
  EXPECT_EQ(reallocation_width(0.8), 2);  // ceil((3+1)/2)
}

TEST(CanonicalList, RejectsOnlyWithCertificate) {
  std::vector<MalleableTask> tasks;
  for (int i = 0; i < 12; ++i) tasks.emplace_back(sequential_profile(1.0, 2));
  const Instance instance(2, std::move(tasks));
  EXPECT_FALSE(canonical_list_schedule(instance, 1.0).schedule.has_value());
}

class CanonicalListPackedTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CanonicalListPackedTest, AlwaysFeasibleAndTheorem2BoundWhenApplicable) {
  const auto [machines, seed] = GetParam();
  const auto instance = packed_instance(machines, static_cast<std::uint64_t>(seed));
  const auto outcome = canonical_list_schedule(instance, 1.0);
  ASSERT_TRUE(outcome.schedule.has_value());
  const auto report = validate_schedule(*outcome.schedule, instance);
  ASSERT_TRUE(report.ok) << report.str();
  // Theorem 2: with the area hypothesis and m >= m_mu = 8, the bound is
  // 2*mu = sqrt(3).
  if (outcome.area_condition && machines >= 8) {
    EXPECT_TRUE(leq(outcome.schedule->makespan(), kSqrt3))
        << "W=" << outcome.canonical_area << " m=" << machines << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CanonicalListPackedTest,
                         ::testing::Combine(::testing::Values(8, 10, 12, 16, 24),
                                            ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)));

TEST(CanonicalList, OutcomeDiagnosticsConsistent) {
  const auto instance = packed_instance(12, 5);
  const auto outcome = canonical_list_schedule(instance, 1.0);
  ASSERT_TRUE(outcome.schedule.has_value());
  const auto allotment = canonical_allotment(instance, 1.0);
  EXPECT_NEAR(outcome.canonical_area, canonical_area(instance, allotment), 1e-12);
  EXPECT_EQ(outcome.area_condition,
            leq(outcome.canonical_area, kMu * 12.0));
}

TEST(CanonicalList, WithoutReallocationStillValid) {
  CanonicalListOptions options;
  options.use_reallocation = false;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto instance = packed_instance(12, seed);
    const auto outcome = canonical_list_schedule(instance, 1.0, options);
    ASSERT_TRUE(outcome.schedule.has_value());
    EXPECT_TRUE(is_valid_schedule(*outcome.schedule, instance));
    EXPECT_FALSE(outcome.reallocated);
  }
}

TEST(CanonicalList, ReallocationFiresOnEngineeredInstance) {
  // m = 12: two canonical-width-4 tall tasks occupy processors 0..7 at time
  // 0, leaving 4 idle; the next task has canonical width 6, so it cannot
  // start at 0 -- the reallocation rule must squeeze it onto the 4 idle
  // processors (khat = 4 at mu = sqrt(3)/2) instead of stacking it on top.
  const auto width_profile = [](int width, double height, int machines) {
    // t(p) = height * width / p for p >= width (work constant), and strictly
    // above 1 for p < width so the canonical allotment is exactly `width`.
    std::vector<double> profile(static_cast<std::size_t>(machines));
    for (int p = 1; p <= machines; ++p) {
      profile[static_cast<std::size_t>(p) - 1] =
          height * static_cast<double>(width) / static_cast<double>(p);
    }
    return profile;
  };

  // Heights keep the total canonical work (4*.86 + 4*.85 + 6*.84 = 11.88)
  // below m = 12 so Property 2 does not reject, while the sort order places
  // the two width-4 tasks first and leaves exactly 4 idle processors --
  // fewer than the wide task's 6, triggering the reallocation.
  std::vector<MalleableTask> engineered;
  engineered.emplace_back(width_profile(4, 0.86, 12), "tall1");
  engineered.emplace_back(width_profile(4, 0.85, 12), "tall2");
  engineered.emplace_back(width_profile(6, 0.84, 12), "wide");
  const Instance instance(12, std::move(engineered));
  const auto outcome = canonical_list_schedule(instance, 1.0);
  ASSERT_TRUE(outcome.schedule.has_value());
  EXPECT_TRUE(outcome.reallocated);
  // The squeezed task still meets the sqrt(3) bound.
  EXPECT_TRUE(leq(outcome.schedule->makespan(), kSqrt3));
}

}  // namespace
}  // namespace malsched
