// Tests for the DualWorkspace hot path: breakpoint lookups, canonical
// allotments, areas, full mrt solves, and the batch pipeline must be
// byte-identical to the naive recomputation they replace; the scratch reuse
// must be allocation-free after warm-up; and the breakpoint-snapped dual
// search must stay sound (certified bounds never contradict brute force).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>
#include <vector>

#include "api/solve_batch.hpp"
#include "registry/solver_registry.hpp"
#include "core/canonical.hpp"
#include "core/dual_workspace.hpp"
#include "core/mrt_scheduler.hpp"
#include "model/lower_bounds.hpp"
#include "sched/exact_small.hpp"
#include "sched/validate.hpp"
#include "support/math_utils.hpp"
#include "support/rng.hpp"
#include "workload/generators.hpp"

namespace malsched {
namespace {

void expect_same_schedule(const Schedule& a, const Schedule& b, const std::string& what) {
  ASSERT_EQ(a.num_tasks(), b.num_tasks()) << what;
  ASSERT_EQ(a.machines(), b.machines()) << what;
  for (int t = 0; t < a.num_tasks(); ++t) {
    ASSERT_EQ(a.is_assigned(t), b.is_assigned(t)) << what << " task " << t;
    if (!a.is_assigned(t)) continue;
    const auto& x = a.of(t);
    const auto& y = b.of(t);
    EXPECT_EQ(x.start, y.start) << what << " task " << t;
    EXPECT_EQ(x.duration, y.duration) << what << " task " << t;
    EXPECT_EQ(x.first_proc, y.first_proc) << what << " task " << t;
    EXPECT_EQ(x.num_procs, y.num_procs) << what << " task " << t;
    EXPECT_EQ(x.scattered, y.scattered) << what << " task " << t;
  }
}

// ------------------------------------------------------- breakpoint lookups

class WorkspaceFamilyTest
    : public ::testing::TestWithParam<std::tuple<WorkloadFamily, int>> {};

TEST_P(WorkspaceFamilyTest, GammaLookupMatchesProfileBinarySearch) {
  const auto [family, seed] = GetParam();
  GeneratorOptions options;
  options.tasks = 24;
  options.machines = 12;
  const auto instance = generate_instance(family, options, static_cast<std::uint64_t>(seed));
  DualWorkspace workspace(instance);

  // Deadlines probing every breakpoint exactly, one ulp to each side, and a
  // few scales in between: the workspace must agree with the naive binary
  // search everywhere, including at the tolerance boundary.
  std::vector<double> deadlines{0.0};
  for (const auto& task : instance.tasks()) {
    for (const double t : task.profile()) {
      deadlines.push_back(t);
      deadlines.push_back(std::nextafter(t, 0.0));
      deadlines.push_back(std::nextafter(t, 1e300));
      deadlines.push_back(t * 0.5);
      deadlines.push_back(t * (1.0 - 1e-9));
      deadlines.push_back(t * (1.0 + 1e-9));
      deadlines.push_back(t * 2.0);
    }
  }
  for (const double d : deadlines) {
    for (int i = 0; i < instance.size(); ++i) {
      const auto naive = instance.task(i).min_procs_for(d);
      const auto fast = workspace.min_procs_for(i, d);
      ASSERT_EQ(naive.has_value(), fast.has_value()) << "task " << i << " d " << d;
      if (naive) {
        EXPECT_EQ(*naive, *fast) << "task " << i << " d " << d;
      }
    }
  }
}

TEST_P(WorkspaceFamilyTest, CanonicalAllotmentAndAreaAreByteIdentical) {
  const auto [family, seed] = GetParam();
  GeneratorOptions options;
  options.tasks = 32;
  options.machines = 16;
  const auto instance = generate_instance(family, options, static_cast<std::uint64_t>(seed));
  DualWorkspace workspace(instance);

  const double lb = makespan_lower_bound(instance);
  for (const double factor : {0.3, 0.7, 0.95, 1.0, 1.1, 1.5, 2.5, 6.0}) {
    const double d = lb * factor;
    const auto naive = canonical_allotment(instance, d);
    const auto& fast = workspace.canonical(d);
    ASSERT_EQ(naive.feasible, fast.feasible) << "d " << d;
    EXPECT_EQ(naive.procs, fast.procs) << "d " << d;
    EXPECT_EQ(naive.total_work, fast.total_work) << "d " << d;
    EXPECT_EQ(naive.total_procs, fast.total_procs) << "d " << d;
    if (naive.feasible) {
      EXPECT_EQ(canonical_area(instance, naive), canonical_area(workspace, fast)) << "d " << d;
    }
  }
}

TEST_P(WorkspaceFamilyTest, MrtSolveIsByteIdenticalToLegacyPath) {
  const auto [family, seed] = GetParam();
  GeneratorOptions options;
  options.tasks = 28;
  options.machines = 14;
  const auto instance = generate_instance(family, options, static_cast<std::uint64_t>(seed));

  MrtOptions legacy;
  legacy.use_workspace = false;
  MrtOptions fast;
  fast.use_workspace = true;

  const auto a = mrt_schedule(instance, legacy);
  const auto b = mrt_schedule(instance, fast);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.lower_bound, b.lower_bound);
  EXPECT_EQ(a.ratio, b.ratio);
  EXPECT_EQ(a.final_guess, b.final_guess);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.gaps, b.gaps);
  EXPECT_EQ(a.branch_counts, b.branch_counts);
  expect_same_schedule(a.schedule, b.schedule, to_string(family));
}

INSTANTIATE_TEST_SUITE_P(
    Families, WorkspaceFamilyTest,
    ::testing::Combine(::testing::Values(WorkloadFamily::kUniform, WorkloadFamily::kBimodal,
                                         WorkloadFamily::kHeavyTail, WorkloadFamily::kStairs,
                                         WorkloadFamily::kPackedOpt1,
                                         WorkloadFamily::kSequentialOnly),
                       ::testing::Values(1, 2, 3)));

TEST(DualWorkspace, HandlesPlateauProfilesAtToleranceBoundaries) {
  // Flat and plateaued profiles put many breakpoints on the same deadline;
  // the segment table must still reproduce the naive search exactly.
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(std::vector<double>{4.0, 4.0, 4.0, 4.0}, "flat");
  tasks.emplace_back(std::vector<double>{8.0, 4.0, 4.0, 4.0}, "plateau");
  tasks.emplace_back(std::vector<double>{1.0 + 1e-10, 1.0, 1.0 - 1e-13, 0.75}, "near-ties");
  const Instance instance(4, std::move(tasks));
  DualWorkspace workspace(instance);
  for (int i = 0; i < instance.size(); ++i) {
    for (const double base : {0.25, 0.5, 1.0 - 1e-13, 1.0, 1.0 + 1e-10, 2.0, 4.0, 8.0, 16.0}) {
      for (const double d : {std::nextafter(base, 0.0), base, std::nextafter(base, 100.0)}) {
        const auto naive = instance.task(i).min_procs_for(d);
        const auto fast = workspace.min_procs_for(i, d);
        ASSERT_EQ(naive.has_value(), fast.has_value()) << "task " << i << " d " << d;
        if (naive) {
          EXPECT_EQ(*naive, *fast) << "task " << i << " d " << d;
        }
      }
    }
  }
}

// ------------------------------------------------------------- batch solves

TEST(DualWorkspace, BatchResultsMatchNaiveAcrossThreadCounts) {
  // The production fan-out: the default (workspace) mrt config must produce
  // the same schedules and bounds as the workspace=0 recomputation, on every
  // thread count.
  std::vector<std::shared_ptr<const Instance>> instances;
  Rng rng(4242);
  for (const auto family : all_workload_families()) {
    GeneratorOptions options;
    options.tasks = 20;
    options.machines = 10;
    instances.push_back(
        std::make_shared<const Instance>(generate_instance(family, options, rng.fork_seed())));
  }

  std::vector<BatchJob> jobs;
  for (const auto& instance : instances) {
    jobs.push_back({"mrt", SolverOptions::from_string(""), instance});
    jobs.push_back({"mrt", SolverOptions::from_string("workspace=0"), instance});
  }

  std::vector<BatchReport> reports;
  for (const unsigned threads : {1u, 2u, 8u}) {
    BatchRunnerOptions options;
    options.threads = threads;
    reports.push_back(solve_batch(jobs, options));
  }
  for (const auto& report : reports) {
    ASSERT_EQ(report.errors, 0);
    for (std::size_t i = 0; i < jobs.size(); i += 2) {
      const auto& fast = report.items[i].result;
      const auto& naive = report.items[i + 1].result;
      ASSERT_TRUE(fast && naive);
      EXPECT_EQ(fast->makespan, naive->makespan) << "job " << i;
      EXPECT_EQ(fast->lower_bound, naive->lower_bound) << "job " << i;
      EXPECT_EQ(fast->ratio, naive->ratio) << "job " << i;
      expect_same_schedule(fast->schedule, naive->schedule, "batch job " + std::to_string(i));
    }
    // Byte-identical across thread counts as well (the exec guarantee).
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_EQ(report.items[i].result->makespan, reports[0].items[i].result->makespan);
    }
  }
}

// ------------------------------------------------------- allocation audit

TEST(DualWorkspace, DualStepsAreAllocationFreeAfterWarmUp) {
  GeneratorOptions options;
  options.tasks = 40;
  options.machines = 24;
  const auto instance = generate_instance(WorkloadFamily::kUniform, options, 7);
  DualWorkspace workspace(instance);
  MrtOptions mrt;

  const double lb = makespan_lower_bound(instance);
  const auto sweep = [&] {
    for (const double factor : {0.6, 0.9, 1.0, 1.05, 1.2, 1.6, 2.4, 4.0}) {
      (void)mrt_dual_step(workspace, lb * factor, mrt);
    }
  };
  sweep();  // warm-up populates every scratch buffer
  const auto warmed = workspace.stats();
  sweep();
  sweep();
  const auto after = workspace.stats();
  EXPECT_EQ(after.alloc_events, warmed.alloc_events)
      << "scratch buffers grew after warm-up";
  EXPECT_GT(after.canonical_hits, warmed.canonical_hits);  // branches shared the step's allotment
}

TEST(DualWorkspace, HintPointerServesNarrowingBisection) {
  GeneratorOptions options;
  options.tasks = 30;
  options.machines = 16;
  const auto instance = generate_instance(WorkloadFamily::kUniform, options, 11);
  DualWorkspace workspace(instance);
  // A bisection-like narrowing sequence: after the first probes the hinted
  // segment should answer nearly every lookup.
  const double lb = makespan_lower_bound(instance);
  double lo = lb;
  double hi = 4.0 * lb;
  for (int i = 0; i < 24; ++i) {
    const double mid = std::sqrt(lo * hi);
    (void)workspace.canonical(mid);
    ((i % 2 == 0) ? hi : lo) = mid;
  }
  const auto stats = workspace.stats();
  ASSERT_GT(stats.lookup_probes, 0);
  EXPECT_GT(stats.lookup_hits * 10, stats.lookup_probes * 5)
      << "hint hit rate below 50%: " << stats.lookup_hits << "/" << stats.lookup_probes;
}

// ------------------------------------------------------------ snapped search

class SnappedSearchTest : public ::testing::TestWithParam<int> {};

TEST_P(SnappedSearchTest, StaysSoundAndWithinTheGuarantee) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131);
  long long default_iterations = 0;
  long long snapped_iterations = 0;
  for (int trial = 0; trial < 8; ++trial) {
    GeneratorOptions options;
    options.tasks = 18;
    options.machines = 10;
    const auto instance =
        generate_instance(WorkloadFamily::kUniform, options, rng.fork_seed());

    MrtOptions plain;
    MrtOptions snapped;
    snapped.snap_to_breakpoints = true;
    const auto a = mrt_schedule(instance, plain);
    const auto b = mrt_schedule(instance, snapped);
    default_iterations += a.iterations;
    snapped_iterations += b.iterations;

    const auto report = validate_schedule(b.schedule, instance);
    ASSERT_TRUE(report.ok) << report.str();
    EXPECT_GE(b.lower_bound, makespan_lower_bound(instance) - 1e-12);
    EXPECT_TRUE(leq(b.makespan, kSqrt3 * (1.0 + plain.search.epsilon) * b.lower_bound * 1.02))
        << "ratio " << b.ratio;
    EXPECT_EQ(b.gaps, 0);
    // Both searches bracket the same optimum within (1+eps) of each other.
    EXPECT_TRUE(leq(b.final_guess, a.final_guess * (1.0 + plain.search.epsilon) * 1.01));
  }
  // The analytic Property-2 prefilter skips the ramp's certified rejections;
  // across a batch the snapped search must not need more dual steps.
  EXPECT_LE(snapped_iterations, default_iterations + 4);
}

TEST_P(SnappedSearchTest, CertifiedBoundNeverContradictsBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
  for (int trial = 0; trial < 6; ++trial) {
    GeneratorOptions options;
    options.tasks = 4;
    options.machines = 4;
    options.seq_time_lo = 0.5;
    options.seq_time_hi = 4.0;
    const auto instance =
        generate_instance(WorkloadFamily::kUniform, options, rng.fork_seed());
    const auto brute = brute_force_schedule(instance);
    ASSERT_TRUE(brute.has_value());

    MrtOptions snapped;
    snapped.snap_to_breakpoints = true;
    const auto result = mrt_schedule(instance, snapped);
    // The certified bound claims OPT >= lower_bound; brute force exhibits a
    // schedule of length brute->makespan, so the claim must stay below it.
    EXPECT_TRUE(leq(result.lower_bound, brute->makespan))
        << "certified " << result.lower_bound << " vs OPT " << brute->makespan;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnappedSearchTest, ::testing::Values(1, 2, 3));

// ------------------------------------------------------------ registry keys

TEST(DualWorkspace, RegistryExposesWorkspaceCounters) {
  GeneratorOptions options;
  options.tasks = 16;
  options.machines = 8;
  const auto instance = generate_instance(WorkloadFamily::kBimodal, options, 3);
  const auto fast = solve("mrt", instance);
  EXPECT_GE(fast.stat("workspace.canonical_evals", -1.0), 1.0);
  EXPECT_GE(fast.stat("workspace.allocations", -1.0), 0.0);
  const auto legacy = solve("mrt", instance, SolverOptions::from_string("workspace=0"));
  EXPECT_EQ(legacy.stat("workspace.canonical_evals", -1.0), -1.0);
  EXPECT_EQ(fast.makespan, legacy.makespan);
  EXPECT_EQ(fast.lower_bound, legacy.lower_bound);
}

}  // namespace
}  // namespace malsched
