// Tests for src/packing: First Fit with deadlines, shelf allocation, and the
// level strip-packing algorithms used by the baselines.

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <tuple>

#include "packing/first_fit.hpp"
#include "packing/shelf.hpp"
#include "packing/strip_packing.hpp"
#include "support/math_utils.hpp"
#include "support/rng.hpp"

namespace malsched {
namespace {

// ---------------------------------------------------------------- first fit

TEST(FirstFit, PacksKnownExample) {
  // capacity 1: {0.6, 0.5, 0.4, 0.3} -> FF bins {0.6,0.4}, {0.5,0.3}? No:
  // FF puts 0.5 into a new bin, 0.4 joins 0.6's bin (1.0), 0.3 joins 0.5's.
  const std::vector<double> sizes{0.6, 0.5, 0.4, 0.3};
  const auto packing = first_fit(sizes, 1.0);
  EXPECT_EQ(packing.bin_count(), 2);
  EXPECT_NEAR(packing.loads[0], 1.0, 1e-12);
  EXPECT_NEAR(packing.loads[1], 0.8, 1e-12);
}

TEST(FirstFit, RespectsCapacity) {
  Rng rng(404);
  for (int trial = 0; trial < 100; ++trial) {
    const double capacity = rng.uniform(0.5, 2.0);
    std::vector<double> sizes(static_cast<std::size_t>(rng.uniform_int(1, 60)));
    for (auto& s : sizes) s = rng.uniform(0.01, capacity);
    const auto packing = first_fit(sizes, capacity);
    for (const double load : packing.loads) EXPECT_TRUE(leq(load, capacity));
    // Every item placed exactly once.
    std::size_t placed = 0;
    for (const auto& bin : packing.bins) placed += bin.size();
    EXPECT_EQ(placed, sizes.size());
  }
}

TEST(FirstFit, OversizedItemThrows) {
  EXPECT_THROW(first_fit(std::vector<double>{1.5}, 1.0), std::invalid_argument);
  EXPECT_THROW(first_fit(std::vector<double>{0.0}, 1.0), std::invalid_argument);
}

TEST(FirstFit, HalfFullPropertyThePaperReliesOn) {
  // (paper Section 4.1: if FF(S,d) > 1 the total size exceeds d*(k-1)/2)
  Rng rng(405);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> sizes(static_cast<std::size_t>(rng.uniform_int(1, 40)));
    for (auto& s : sizes) s = rng.uniform(0.05, 1.0);
    const auto packing = first_fit(sizes, 1.0);
    EXPECT_TRUE(first_fit_half_full_bound(packing, 1.0));
  }
}

TEST(FirstFitDecreasing, NeverWorseOnSeedSweep) {
  // FFD is not pointwise better than FF in general, but both must be valid;
  // check validity and that FFD meets the same half-full property.
  Rng rng(406);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> sizes(static_cast<std::size_t>(rng.uniform_int(1, 40)));
    for (auto& s : sizes) s = rng.uniform(0.05, 1.0);
    const auto ffd = first_fit_decreasing(sizes, 1.0);
    for (const double load : ffd.loads) EXPECT_TRUE(leq(load, 1.0));
    std::size_t placed = 0;
    for (const auto& bin : ffd.bins) placed += bin.size();
    EXPECT_EQ(placed, sizes.size());
  }
}

TEST(FirstFit, BinCountMatchesPacking) {
  const std::vector<double> sizes{0.9, 0.9, 0.9};
  EXPECT_EQ(first_fit_bin_count(sizes, 1.0), 3);
}

// -------------------------------------------------------------------- shelf

TEST(ShelfAllocator, HandsOutContiguousIntervals) {
  ShelfAllocator shelf(10);
  EXPECT_EQ(shelf.allocate(4).value(), 0);
  EXPECT_EQ(shelf.allocate(3).value(), 4);
  EXPECT_EQ(shelf.used(), 7);
  EXPECT_EQ(shelf.remaining(), 3);
  EXPECT_FALSE(shelf.allocate(4).has_value());
  EXPECT_EQ(shelf.allocate(3).value(), 7);
  EXPECT_FALSE(shelf.allocate(1).has_value());
}

TEST(ShelfAllocator, RejectsNonPositiveWidth) {
  ShelfAllocator shelf(4);
  EXPECT_FALSE(shelf.allocate(0).has_value());
  EXPECT_FALSE(shelf.allocate(-2).has_value());
}

// ----------------------------------------------------------- strip packing

class StripPackingTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(StripPackingTest, NfdhAndFfdhProduceValidPackings) {
  const auto [seed, count, width] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  std::vector<Rect> rects(static_cast<std::size_t>(count));
  for (auto& rect : rects) {
    rect.width = static_cast<int>(rng.uniform_int(1, width));
    rect.height = rng.uniform(0.1, 4.0);
  }
  for (const auto* name : {"nfdh", "ffdh"}) {
    const auto packing =
        name[0] == 'n' ? nfdh(rects, width) : ffdh(rects, width);
    EXPECT_TRUE(is_valid_packing(packing, rects, width)) << name;
    EXPECT_EQ(packing.placements.size(), rects.size()) << name;

    // Classical level-algorithm quality: height <= 2*area/W + hmax.
    double area = 0.0;
    double hmax = 0.0;
    for (const auto& rect : rects) {
      area += static_cast<double>(rect.width) * rect.height;
      hmax = std::max(hmax, rect.height);
    }
    EXPECT_TRUE(leq(packing.height, 2.0 * area / width + hmax + 1e-9)) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomRects, StripPackingTest,
                         ::testing::Values(std::tuple{1, 1, 4}, std::tuple{2, 10, 4},
                                           std::tuple{3, 30, 8}, std::tuple{4, 80, 16},
                                           std::tuple{5, 50, 5}, std::tuple{6, 120, 32},
                                           std::tuple{7, 25, 3}, std::tuple{8, 60, 64}));

TEST(StripPacking, FfdhNeverTallerThanNfdhOnSweep) {
  // FFDH reuses earlier levels, so its height is at most NFDH's.
  Rng rng(501);
  for (int trial = 0; trial < 60; ++trial) {
    const int width = static_cast<int>(rng.uniform_int(2, 24));
    std::vector<Rect> rects(static_cast<std::size_t>(rng.uniform_int(1, 70)));
    for (auto& rect : rects) {
      rect.width = static_cast<int>(rng.uniform_int(1, width));
      rect.height = rng.uniform(0.05, 3.0);
    }
    EXPECT_TRUE(leq(ffdh(rects, width).height, nfdh(rects, width).height));
  }
}

TEST(StripPacking, SingleRectangle) {
  const std::vector<Rect> rects{{3, 2.0}};
  const auto packing = nfdh(rects, 4);
  EXPECT_DOUBLE_EQ(packing.height, 2.0);
  EXPECT_EQ(packing.levels, 1);
  EXPECT_EQ(packing.placements[0].x, 0);
  EXPECT_DOUBLE_EQ(packing.placements[0].y, 0.0);
}

TEST(StripPacking, RejectsOversizedRectangles) {
  const std::vector<Rect> wide{{5, 1.0}};
  EXPECT_THROW(nfdh(wide, 4), std::invalid_argument);
  const std::vector<Rect> flat{{1, 0.0}};
  EXPECT_THROW(ffdh(flat, 4), std::invalid_argument);
}

TEST(StripPacking, ValidityCheckerCatchesOverlap) {
  const std::vector<Rect> rects{{2, 1.0}, {2, 1.0}};
  StripPacking bogus;
  bogus.placements = {{0, 0, 0.0}, {1, 1, 0.5}};  // overlaps on column 1
  bogus.height = 2.0;
  EXPECT_FALSE(is_valid_packing(bogus, rects, 4));
}

}  // namespace
}  // namespace malsched
