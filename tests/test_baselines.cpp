// Tests for src/baselines: the Turek/Ludwig two-phase family, the naive
// anchors, and the 3/2-style two-shelf extension.

#include <gtest/gtest.h>

#include <tuple>

#include "baselines/naive.hpp"
#include "baselines/two_phase.hpp"
#include "baselines/two_shelves_32.hpp"
#include "core/mrt_scheduler.hpp"
#include "model/lower_bounds.hpp"
#include "model/speedup_models.hpp"
#include "sched/validate.hpp"
#include "support/math_utils.hpp"
#include "workload/generators.hpp"
#include "support/strings.hpp"

namespace malsched {
namespace {

class TwoPhaseTest
    : public ::testing::TestWithParam<std::tuple<WorkloadFamily, RigidAlgo, int>> {};

TEST_P(TwoPhaseTest, ProducesValidSchedulesAboveTheLowerBound) {
  const auto [family, rigid, seed] = GetParam();
  GeneratorOptions options;
  options.tasks = 30;
  options.machines = 16;
  const auto instance = generate_instance(family, options, static_cast<std::uint64_t>(seed));
  TwoPhaseOptions two_phase;
  two_phase.rigid = rigid;
  const auto result = two_phase_schedule(instance, two_phase);
  const auto report = validate_schedule(result.schedule, instance);
  EXPECT_TRUE(report.ok) << report.str();
  EXPECT_TRUE(geq(result.makespan, makespan_lower_bound(instance)));
  EXPECT_GT(result.candidates_tried, 0);
  EXPECT_GT(result.best_threshold, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TwoPhaseTest,
    ::testing::Combine(::testing::Values(WorkloadFamily::kUniform, WorkloadFamily::kBimodal,
                                         WorkloadFamily::kHeavyTail),
                       ::testing::Values(RigidAlgo::kNfdh, RigidAlgo::kFfdh,
                                         RigidAlgo::kListSchedule),
                       ::testing::Values(1, 2)));

TEST(TwoPhase, FullCandidateSetAtLeastAsGoodAsSampled) {
  GeneratorOptions options;
  options.tasks = 15;
  options.machines = 8;
  const auto instance = generate_instance(WorkloadFamily::kUniform, options, 5);
  TwoPhaseOptions sampled;
  sampled.max_candidates = 8;
  TwoPhaseOptions full;
  full.max_candidates = 0;
  const auto sampled_result = two_phase_schedule(instance, sampled);
  const auto full_result = two_phase_schedule(instance, full);
  EXPECT_TRUE(leq(full_result.makespan, sampled_result.makespan * (1.0 + 1e-9)));
  EXPECT_GE(full_result.candidates_tried, sampled_result.candidates_tried);
}

TEST(TwoPhase, RigidAlgoNames) {
  EXPECT_EQ(to_string(RigidAlgo::kNfdh), "nfdh");
  EXPECT_EQ(to_string(RigidAlgo::kFfdh), "ffdh");
  EXPECT_EQ(to_string(RigidAlgo::kListSchedule), "list");
}

// -------------------------------------------------------------------- naive

TEST(Naive, LptSequentialValid) {
  GeneratorOptions options;
  options.tasks = 25;
  options.machines = 8;
  const auto instance = generate_instance(WorkloadFamily::kUniform, options, 3);
  const auto schedule = lpt_sequential_schedule(instance);
  EXPECT_TRUE(is_valid_schedule(schedule, instance));
  for (int i = 0; i < instance.size(); ++i) EXPECT_EQ(schedule.of(i).procs(), 1);
}

TEST(Naive, GangSerializesEverything) {
  GeneratorOptions options;
  options.tasks = 10;
  options.machines = 8;
  const auto instance = generate_instance(WorkloadFamily::kUniform, options, 4);
  const auto schedule = gang_schedule(instance);
  EXPECT_TRUE(is_valid_schedule(schedule, instance));
  double expected = 0.0;
  for (const auto& task : instance.tasks()) expected += task.time(8);
  EXPECT_NEAR(schedule.makespan(), expected, 1e-9);
}

TEST(Naive, HalfMaxSpeedupValid) {
  GeneratorOptions options;
  options.tasks = 25;
  options.machines = 16;
  const auto instance = generate_instance(WorkloadFamily::kBimodal, options, 5);
  const auto schedule = half_max_speedup_schedule(instance);
  EXPECT_TRUE(is_valid_schedule(schedule, instance));
}

TEST(Naive, MrtBeatsOrMatchesNaiveOnAdversarialShapes) {
  // A single huge parallel task plus filler: LPT-sequential is terrible,
  // gang wastes the filler's parallelism -- MRT should beat both clearly.
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(power_law_profile(40.0, 0.95, 16), "huge");
  for (int i = 0; i < 16; ++i) {
    tasks.emplace_back(sequential_profile(1.0, 16), label("f", i));
  }
  const Instance instance(16, std::move(tasks));
  const auto mrt = mrt_schedule(instance);
  const auto lpt = lpt_sequential_schedule(instance);
  const auto gang = gang_schedule(instance);
  EXPECT_TRUE(lt_strict(mrt.makespan, lpt.makespan()));
  EXPECT_TRUE(leq(mrt.makespan, gang.makespan() * (1.0 + 1e-9)));
}

// -------------------------------------------------------- 3/2-style shelves

TEST(ThreeHalves, DualStepAcceptsOnlyValidatedSchedules) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto instance = packed_instance(12, seed);
    const auto outcome = three_halves_dual_step(instance, 1.0);
    EXPECT_FALSE(outcome.certified_reject) << "OPT <= 1 by construction";
    if (outcome.schedule) {
      EXPECT_TRUE(is_valid_schedule(*outcome.schedule, instance));
      EXPECT_TRUE(leq(outcome.schedule->makespan(), 1.5));
    }
  }
}

TEST(ThreeHalves, FullSolveStaysWithinSqrt3Envelope) {
  // The solver falls back to the malleable list step, so even when the 3/2
  // heuristic misses, the end-to-end ratio stays within the sqrt(3) world.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    GeneratorOptions options;
    options.tasks = 20;
    options.machines = 12;
    const auto instance = generate_instance(WorkloadFamily::kUniform, options, seed);
    const auto result = three_halves_schedule(instance, 0.02);
    EXPECT_TRUE(is_valid_schedule(result.schedule, instance));
    EXPECT_TRUE(geq(result.makespan, result.lower_bound));
    EXPECT_LT(result.ratio, 2.0);
  }
}

TEST(ThreeHalves, AcceptsWhenEverythingFitsTheShortShelf) {
  // All tasks meet d/2 on one processor and there are fewer tasks than
  // machines: the step must accept with a schedule no longer than 1.5 d
  // (after compaction, in fact no longer than d/2).
  std::vector<MalleableTask> tasks;
  for (int i = 0; i < 6; ++i) tasks.emplace_back(sequential_profile(0.4, 8));
  const Instance instance(8, std::move(tasks));
  const auto outcome = three_halves_dual_step(instance, 1.0);
  ASSERT_TRUE(outcome.schedule.has_value());
  EXPECT_TRUE(leq(outcome.schedule->makespan(), 0.5));
}

TEST(ThreeHalves, AcceptsAboveTheOptimumOnPackedInstances) {
  // At the exact optimum the rigid 3/2 structure may not exist; slightly
  // above it (guess 1.5) the heuristic should land some acceptances, each
  // within 1.5 * guess.
  int accepted = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto instance = packed_instance(16, seed);
    const auto outcome = three_halves_dual_step(instance, 1.5);
    if (outcome.schedule) {
      ++accepted;
      EXPECT_TRUE(leq(outcome.schedule->makespan(), 1.5 * 1.5));
    }
  }
  EXPECT_GT(accepted, 0);
}

}  // namespace
}  // namespace malsched
