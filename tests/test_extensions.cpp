// Tests for the extension features: branch-and-bound knapsack, Best Fit
// packing, the makespan local search, and end-to-end edge cases (empty
// instances, single machines).

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "core/mrt_scheduler.hpp"
#include "knapsack/knapsack.hpp"
#include "model/speedup_models.hpp"
#include "packing/first_fit.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/local_search.hpp"
#include "sched/validate.hpp"
#include "support/math_utils.hpp"
#include "support/rng.hpp"
#include "workload/generators.hpp"

namespace malsched {
namespace {

// -------------------------------------------------------- branch and bound

class BranchAndBoundTest : public ::testing::TestWithParam<int> {};

TEST_P(BranchAndBoundTest, MatchesExactDp) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 4200);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(0, 18));
    std::vector<KnapsackItem> items(static_cast<std::size_t>(n));
    for (auto& item : items) {
      item.weight = rng.uniform_int(0, 30);
      item.profit = rng.uniform_int(0, 50);
    }
    const long long capacity = rng.uniform_int(0, 120);
    const auto bb = knapsack_branch_and_bound(items, capacity);
    const auto dp = knapsack_exact(items, capacity);
    EXPECT_EQ(bb.profit, dp.profit);
    EXPECT_LE(bb.weight, capacity);
    // Totals consistent with the selection.
    long long weight = 0;
    long long profit = 0;
    for (const int i : bb.items) {
      weight += items[static_cast<std::size_t>(i)].weight;
      profit += items[static_cast<std::size_t>(i)].profit;
    }
    EXPECT_EQ(weight, bb.weight);
    EXPECT_EQ(profit, bb.profit);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BranchAndBoundTest, ::testing::Values(1, 2, 3));

TEST(BranchAndBound, HandlesHugeCapacityWhereDpCannot) {
  // Capacity beyond the DP memory guard: B&B is O(n) memory.
  std::vector<KnapsackItem> items;
  Rng rng(77);
  for (int i = 0; i < 30; ++i) {
    items.push_back({rng.uniform_int(1, 1LL << 33), rng.uniform_int(1, 100)});
  }
  const long long capacity = 1LL << 34;
  EXPECT_THROW(knapsack_exact(items, capacity), std::length_error);
  const auto bb = knapsack_branch_and_bound(items, capacity);
  EXPECT_LE(bb.weight, capacity);
  EXPECT_GT(bb.profit, 0);
}

TEST(BranchAndBound, NodeBudgetEnforced) {
  // Dense correlated instance with a tiny budget must trip the guard.
  std::vector<KnapsackItem> items;
  for (int i = 0; i < 40; ++i) items.push_back({100 + i, 100 + i});
  EXPECT_THROW(knapsack_branch_and_bound(items, 2000, /*node_budget=*/10),
               std::runtime_error);
}

TEST(BranchAndBound, EmptyAndZeroCapacity) {
  EXPECT_EQ(knapsack_branch_and_bound({}, 10).profit, 0);
  const std::vector<KnapsackItem> items{{5, 7}};
  EXPECT_EQ(knapsack_branch_and_bound(items, 0).profit, 0);
}

// ----------------------------------------------------------------- best fit

TEST(BestFit, KnownExample) {
  // capacity 1: {0.6, 0.5, 0.3}: BF puts 0.3 with 0.6 (fuller bin), FF would
  // also -- distinguish with {0.5, 0.6, 0.38}: FF puts 0.38 with 0.5
  // (first), BF with 0.6 (fullest).
  const std::vector<double> sizes{0.5, 0.6, 0.38};
  const auto ff = first_fit(sizes, 1.0);
  const auto bf = best_fit(sizes, 1.0);
  ASSERT_EQ(ff.bin_count(), 2);
  ASSERT_EQ(bf.bin_count(), 2);
  EXPECT_NEAR(ff.loads[0], 0.88, 1e-12);
  EXPECT_NEAR(bf.loads[1], 0.98, 1e-12);
}

TEST(BestFit, ValidOnRandomSweep) {
  Rng rng(505);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> sizes(static_cast<std::size_t>(rng.uniform_int(1, 50)));
    for (auto& s : sizes) s = rng.uniform(0.05, 1.0);
    for (const auto* which : {"bf", "bfd"}) {
      const auto packing =
          which[1] == 'f' ? best_fit(sizes, 1.0) : best_fit_decreasing(sizes, 1.0);
      std::size_t placed = 0;
      for (const auto& bin : packing.bins) placed += bin.size();
      EXPECT_EQ(placed, sizes.size());
      for (const double load : packing.loads) EXPECT_TRUE(leq(load, 1.0));
    }
  }
}

TEST(BestFit, OversizedItemThrows) {
  EXPECT_THROW(best_fit(std::vector<double>{1.5}, 1.0), std::invalid_argument);
}

// -------------------------------------------------------------- local search

TEST(LocalSearch, NeverWorseAndValid) {
  Rng rng(606);
  for (int trial = 0; trial < 15; ++trial) {
    GeneratorOptions options;
    options.tasks = 20;
    options.machines = 10;
    const auto instance =
        generate_instance(WorkloadFamily::kUniform, options, rng.fork_seed());
    // Deliberately bad seed schedule: random allotments, random order.
    std::vector<int> allotment(static_cast<std::size_t>(instance.size()));
    for (auto& p : allotment) p = static_cast<int>(rng.uniform_int(1, instance.machines()));
    std::vector<int> order(static_cast<std::size_t>(instance.size()));
    std::iota(order.begin(), order.end(), 0);
    const auto seed_schedule = list_schedule(instance, allotment, order);

    const auto result = improve_schedule(instance, seed_schedule);
    EXPECT_TRUE(is_valid_schedule(result.schedule, instance));
    EXPECT_TRUE(leq(result.makespan, seed_schedule.makespan()));
    EXPECT_EQ(result.improved, result.makespan < seed_schedule.makespan() - kAbsEps);
  }
}

TEST(LocalSearch, FixesPathologicalAllotment) {
  // One perfectly parallel task forced to width 1 dominates the makespan;
  // the search must widen it.
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(linear_profile(8.0, 8), "wide");
  for (int i = 0; i < 4; ++i) tasks.emplace_back(sequential_profile(0.5, 8));
  const Instance instance(8, std::move(tasks));
  const std::vector<int> allotment{1, 1, 1, 1, 1};
  const std::vector<int> order{0, 1, 2, 3, 4};
  const auto seed_schedule = list_schedule(instance, allotment, order);
  ASSERT_NEAR(seed_schedule.makespan(), 8.0, 1e-9);
  const auto result = improve_schedule(instance, seed_schedule);
  EXPECT_TRUE(result.improved);
  EXPECT_LT(result.makespan, 4.0);
}

TEST(LocalSearch, RespectsRoundBudget) {
  GeneratorOptions options;
  options.tasks = 24;
  options.machines = 12;
  const auto instance = generate_instance(WorkloadFamily::kBimodal, options, 3);
  std::vector<int> allotment(static_cast<std::size_t>(instance.size()), 1);
  std::vector<int> order(static_cast<std::size_t>(instance.size()));
  std::iota(order.begin(), order.end(), 0);
  const auto seed_schedule = list_schedule(instance, allotment, order);
  LocalSearchOptions budget;
  budget.max_rounds = 1;
  const auto result = improve_schedule(instance, seed_schedule, budget);
  EXPECT_LE(result.rounds, 1);
}

// ------------------------------------------------------------ edge cases

TEST(EdgeCases, EmptyInstanceSolves) {
  const Instance instance(4, {});
  const auto result = mrt_schedule(instance);
  EXPECT_DOUBLE_EQ(result.makespan, 0.0);
  EXPECT_EQ(result.gaps, 0);
  EXPECT_TRUE(is_valid_schedule(result.schedule, instance));
}

TEST(EdgeCases, SingleMachine) {
  GeneratorOptions options;
  options.tasks = 10;
  options.machines = 1;
  const auto instance = generate_instance(WorkloadFamily::kUniform, options, 5);
  const auto result = mrt_schedule(instance);
  // On one machine the optimum is the total sequential time.
  EXPECT_NEAR(result.makespan, instance.total_sequential_work(), 1e-9);
  EXPECT_EQ(result.gaps, 0);
}

TEST(EdgeCases, IdenticalTasksSaturateCleanly) {
  std::vector<MalleableTask> tasks;
  for (int i = 0; i < 16; ++i) tasks.emplace_back(sequential_profile(1.0, 16));
  const Instance instance(16, std::move(tasks));
  const auto result = mrt_schedule(instance);
  EXPECT_NEAR(result.makespan, 1.0, 1e-9);  // one task per processor
  EXPECT_NEAR(result.ratio, 1.0, 0.02);
}

TEST(EdgeCases, VeryWideMachineFewTasks) {
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(power_law_profile(10.0, 0.9, 512), "a");
  tasks.emplace_back(power_law_profile(8.0, 0.9, 512), "b");
  const Instance instance(512, std::move(tasks));
  const auto result = mrt_schedule(instance);
  EXPECT_EQ(result.gaps, 0);
  EXPECT_TRUE(leq(result.ratio, kSqrt3 * 1.02 + 1e-9));
}

}  // namespace
}  // namespace malsched
