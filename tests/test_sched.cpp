// Tests for src/sched: schedule representation, the validator (including
// negative cases), the contiguous list scheduler with the paper's tie rule,
// LPT, compaction, the Gantt renderer and the brute-force oracle.

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "model/speedup_models.hpp"
#include "sched/compaction.hpp"
#include "sched/exact_small.hpp"
#include "sched/gantt.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/lpt.hpp"
#include "sched/schedule.hpp"
#include "sched/sliding.hpp"
#include "sched/validate.hpp"
#include "support/math_utils.hpp"
#include "support/rng.hpp"
#include "workload/generators.hpp"

namespace malsched {
namespace {

Instance tiny_instance() {
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(std::vector<double>{4.0, 2.0, 1.5}, "a");
  tasks.emplace_back(std::vector<double>{3.0, 1.6, 1.2}, "b");
  tasks.emplace_back(sequential_profile(1.0, 3), "c");
  return Instance(3, std::move(tasks));
}

// ----------------------------------------------------------------- schedule

TEST(Schedule, AssignAndQuery) {
  Schedule schedule(4, 2);
  schedule.assign(0, 0.0, 2.0, 1, 2);
  EXPECT_TRUE(schedule.is_assigned(0));
  EXPECT_FALSE(schedule.is_assigned(1));
  EXPECT_FALSE(schedule.complete());
  schedule.assign(1, 2.0, 1.0, 0, 1);
  EXPECT_TRUE(schedule.complete());
  EXPECT_DOUBLE_EQ(schedule.makespan(), 3.0);
  EXPECT_EQ(schedule.of(0).procs(), 2);
  EXPECT_EQ(schedule.of(0).processor_list(), (std::vector<int>{1, 2}));
}

TEST(Schedule, RejectsDoubleAssignment) {
  Schedule schedule(2, 1);
  schedule.assign(0, 0.0, 1.0, 0, 1);
  EXPECT_THROW(schedule.assign(0, 1.0, 1.0, 0, 1), std::logic_error);
}

TEST(Schedule, RejectsBadGeometry) {
  Schedule schedule(2, 1);
  EXPECT_THROW(schedule.assign(0, 0.0, 1.0, 1, 2), std::logic_error);   // spills over
  EXPECT_THROW(schedule.assign(0, -0.1, 1.0, 0, 1), std::logic_error);  // negative start
  EXPECT_THROW(schedule.assign(0, 0.0, 0.0, 0, 1), std::logic_error);   // zero duration
  EXPECT_THROW(schedule.assign(5, 0.0, 1.0, 0, 1), std::logic_error);   // bad task id
}

TEST(Schedule, ScatteredAssignment) {
  Schedule schedule(4, 1);
  schedule.assign_scattered(0, 0.0, 1.0, {3, 0});
  const auto& assignment = schedule.of(0);
  EXPECT_FALSE(assignment.contiguous());
  EXPECT_EQ(assignment.procs(), 2);
  EXPECT_EQ(assignment.processor_list(), (std::vector<int>{0, 3}));
}

TEST(Schedule, ScatteredRejectsDuplicates) {
  Schedule schedule(4, 1);
  EXPECT_THROW(schedule.assign_scattered(0, 0.0, 1.0, {1, 1}), std::logic_error);
  EXPECT_THROW(schedule.assign_scattered(0, 0.0, 1.0, {}), std::logic_error);
  EXPECT_THROW(schedule.assign_scattered(0, 0.0, 1.0, {4}), std::logic_error);
}

// ---------------------------------------------------------------- validator

TEST(Validator, AcceptsFeasibleSchedule) {
  const auto instance = tiny_instance();
  Schedule schedule(3, 3);
  schedule.assign(0, 0.0, 2.0, 0, 2);
  schedule.assign(1, 0.0, 3.0, 2, 1);
  schedule.assign(2, 2.0, 1.0, 0, 1);
  EXPECT_TRUE(is_valid_schedule(schedule, instance));
}

TEST(Validator, DetectsMissingTask) {
  const auto instance = tiny_instance();
  Schedule schedule(3, 3);
  schedule.assign(0, 0.0, 2.0, 0, 2);
  const auto report = validate_schedule(schedule, instance);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.str().find("not scheduled"), std::string::npos);
}

TEST(Validator, DetectsProcessorOverlap) {
  const auto instance = tiny_instance();
  Schedule schedule(3, 3);
  schedule.assign(0, 0.0, 2.0, 0, 2);
  schedule.assign(1, 1.0, 1.6, 1, 2);  // overlaps task 0 on processor 1
  schedule.assign(2, 4.0, 1.0, 0, 1);
  const auto report = validate_schedule(schedule, instance);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.str().find("overlap"), std::string::npos);
}

TEST(Validator, DetectsDurationMismatch) {
  const auto instance = tiny_instance();
  Schedule schedule(3, 3);
  schedule.assign(0, 0.0, 9.0, 0, 2);  // t_0(2) is 2.0, not 9.0
  schedule.assign(1, 0.0, 3.0, 2, 1);
  schedule.assign(2, 3.0, 1.0, 2, 1);
  const auto report = validate_schedule(schedule, instance);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.str().find("duration"), std::string::npos);
}

TEST(Validator, FlagsScatteredWhenContiguityRequired) {
  const auto instance = tiny_instance();
  Schedule schedule(3, 3);
  schedule.assign_scattered(0, 0.0, 2.0, {0, 2});
  schedule.assign(1, 2.0, 3.0, 0, 1);
  schedule.assign(2, 2.0, 1.0, 1, 1);
  EXPECT_FALSE(validate_schedule(schedule, instance).ok);
  ValidationOptions relaxed;
  relaxed.require_contiguous = false;
  EXPECT_TRUE(validate_schedule(schedule, instance, relaxed).ok);
}

TEST(Validator, EnforcesMakespanBound) {
  const auto instance = tiny_instance();
  Schedule schedule(3, 3);
  schedule.assign(0, 0.0, 2.0, 0, 2);
  schedule.assign(1, 0.0, 3.0, 2, 1);
  schedule.assign(2, 2.0, 1.0, 0, 1);
  ValidationOptions bounded;
  bounded.makespan_bound = 2.5;
  EXPECT_FALSE(validate_schedule(schedule, instance, bounded).ok);
  bounded.makespan_bound = 3.0;
  EXPECT_TRUE(validate_schedule(schedule, instance, bounded).ok);
}

TEST(Validator, MachineCountMismatch) {
  const auto instance = tiny_instance();
  Schedule schedule(4, 3);
  EXPECT_FALSE(validate_schedule(schedule, instance).ok);
}

// ------------------------------------------------------------------ sliding

TEST(Sliding, WindowMaxKnownCase) {
  const std::vector<double> values{1.0, 3.0, 2.0, 5.0, 4.0};
  const auto maxima = sliding_window_max(values, 2);
  EXPECT_EQ(maxima, (std::vector<double>{3.0, 3.0, 5.0, 5.0}));
  const auto full = sliding_window_max(values, 5);
  EXPECT_EQ(full, (std::vector<double>{5.0}));
}

// ----------------------------------------------------------- list scheduler

TEST(ListScheduler, PaperTieRuleLeftmostAtZeroRightmostLater) {
  // Two 1-proc tasks of equal length on 3 processors, then a third: the
  // first two start at 0 on the leftmost free columns; the third starts
  // later and must go to the rightmost tied column.
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(sequential_profile(2.0, 3));
  tasks.emplace_back(sequential_profile(2.0, 3));
  tasks.emplace_back(sequential_profile(2.0, 3));
  tasks.emplace_back(sequential_profile(1.0, 3));
  const Instance instance(3, std::move(tasks));
  const std::vector<int> allotment{1, 1, 1, 1};
  const std::vector<int> order{0, 1, 2, 3};
  const auto schedule = list_schedule(instance, allotment, order);
  EXPECT_EQ(schedule.of(0).first_proc, 0);
  EXPECT_EQ(schedule.of(1).first_proc, 1);
  EXPECT_EQ(schedule.of(2).first_proc, 2);
  // Task 3 ties on all three processors at t=2 -> rightmost.
  EXPECT_DOUBLE_EQ(schedule.of(3).start, 2.0);
  EXPECT_EQ(schedule.of(3).first_proc, 2);
}

TEST(ListScheduler, LeftmostPlacementOption) {
  std::vector<MalleableTask> tasks;
  for (int i = 0; i < 4; ++i) tasks.emplace_back(sequential_profile(1.0, 3));
  const Instance instance(3, std::move(tasks));
  const std::vector<int> allotment{1, 1, 1, 1};
  const std::vector<int> order{0, 1, 2, 3};
  const auto schedule =
      list_schedule(instance, allotment, order, Placement::kContiguousLeftmost);
  EXPECT_EQ(schedule.of(3).first_proc, 0);  // leftmost even when starting late
}

TEST(ListScheduler, ValidatesInputs) {
  const auto instance = tiny_instance();
  const std::vector<int> bad_allotment{0, 1, 1};
  const std::vector<int> order{0, 1, 2};
  EXPECT_THROW(list_schedule(instance, bad_allotment, order), std::invalid_argument);
  const std::vector<int> allotment{1, 1, 1};
  const std::vector<int> bad_order{0, 0, 2};
  EXPECT_THROW(list_schedule(instance, allotment, bad_order), std::invalid_argument);
  const std::vector<int> short_order{0, 1};
  EXPECT_THROW(list_schedule(instance, allotment, short_order), std::invalid_argument);
}

class ListSchedulerRandomTest
    : public ::testing::TestWithParam<std::tuple<WorkloadFamily, int>> {};

TEST_P(ListSchedulerRandomTest, RandomAllotmentsAlwaysFeasible) {
  const auto [family, seed] = GetParam();
  GeneratorOptions options;
  options.tasks = 25;
  options.machines = 12;
  const auto instance = generate_instance(family, options, static_cast<std::uint64_t>(seed));
  Rng rng(static_cast<std::uint64_t>(seed) * 31 + 7);

  std::vector<int> allotment(static_cast<std::size_t>(instance.size()));
  for (auto& p : allotment) p = static_cast<int>(rng.uniform_int(1, instance.machines()));
  std::vector<int> order(static_cast<std::size_t>(instance.size()));
  const auto perm = rng.permutation(order.size());
  for (std::size_t i = 0; i < perm.size(); ++i) order[i] = static_cast<int>(perm[i]);

  for (const auto placement :
       {Placement::kContiguousPaperRule, Placement::kContiguousLeftmost, Placement::kScattered}) {
    const auto schedule = list_schedule(instance, allotment, order, placement);
    ValidationOptions validation;
    validation.require_contiguous = placement != Placement::kScattered;
    const auto report = validate_schedule(schedule, instance, validation);
    EXPECT_TRUE(report.ok) << report.str();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, ListSchedulerRandomTest,
    ::testing::Combine(::testing::Values(WorkloadFamily::kUniform, WorkloadFamily::kBimodal,
                                         WorkloadFamily::kHeavyTail, WorkloadFamily::kStairs),
                       ::testing::Values(1, 2, 3)));

TEST(ListScheduler, OrderHelpers) {
  const auto instance = tiny_instance();
  const auto by_seq = order_by_decreasing_seq_time(instance);
  EXPECT_EQ(by_seq, (std::vector<int>{0, 1, 2}));
  const std::vector<int> allotment{3, 1, 1};  // t0(3)=1.5, t1(1)=3, t2(1)=1
  const auto by_alloted = order_by_decreasing_alloted_time(instance, allotment);
  EXPECT_EQ(by_alloted, (std::vector<int>{1, 0, 2}));
}

// ---------------------------------------------------------------------- lpt

TEST(Lpt, KnownExample) {
  // Graham's tightness example on 3 machines: LPT yields 11 while OPT = 9,
  // meeting the 4/3 - 1/(3m) = 11/9 bound exactly.
  const std::vector<double> jobs{5, 5, 4, 4, 3, 3, 3};
  EXPECT_DOUBLE_EQ(lpt_makespan(jobs, 3), 11.0);
  EXPECT_NEAR(11.0 / 9.0, lpt_guarantee(3), 1e-12);
}

TEST(Lpt, SingleMachineIsSum) {
  const std::vector<double> jobs{1, 2, 3};
  EXPECT_DOUBLE_EQ(lpt_makespan(jobs, 1), 6.0);
}

TEST(Lpt, TwoLowerBoundsHold) {
  Rng rng(606);
  for (int trial = 0; trial < 100; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(1, 12));
    std::vector<double> jobs(static_cast<std::size_t>(rng.uniform_int(1, 40)));
    double total = 0.0;
    double longest = 0.0;
    for (auto& d : jobs) {
      d = rng.uniform(0.1, 5.0);
      total += d;
      longest = std::max(longest, d);
    }
    const double lb = std::max(longest, total / m);
    const double makespan = lpt_makespan(jobs, m);
    EXPECT_TRUE(geq(makespan, lb));
    // Any list schedule is below avg load + longest job <= 2 * lb.
    EXPECT_TRUE(leq(makespan, total / m + longest));
  }
}

TEST(Lpt, GuaranteeFormula) {
  EXPECT_NEAR(lpt_guarantee(1), 1.0, 1e-12);
  EXPECT_NEAR(lpt_guarantee(3), 4.0 / 3.0 - 1.0 / 9.0, 1e-12);
}

TEST(Lpt, RejectsBadInput) {
  // The void casts keep [[nodiscard]] quiet on the paths that must throw.
  EXPECT_THROW(static_cast<void>(lpt_makespan(std::vector<double>{1.0}, 0)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(lpt_makespan(std::vector<double>{0.0}, 2)),
               std::invalid_argument);
}

// --------------------------------------------------------------- compaction

TEST(Compaction, NeverIncreasesMakespanAndStaysValid) {
  Rng rng(707);
  GeneratorOptions options;
  options.tasks = 30;
  options.machines = 10;
  for (int seed = 0; seed < 10; ++seed) {
    const auto instance =
        generate_instance(WorkloadFamily::kUniform, options, static_cast<std::uint64_t>(seed));
    std::vector<int> allotment(static_cast<std::size_t>(instance.size()));
    for (auto& p : allotment) p = static_cast<int>(rng.uniform_int(1, instance.machines()));
    std::vector<int> order(static_cast<std::size_t>(instance.size()));
    const auto perm = rng.permutation(order.size());
    for (std::size_t i = 0; i < perm.size(); ++i) order[i] = static_cast<int>(perm[i]);
    const auto schedule = list_schedule(instance, allotment, order);
    const auto compacted = compact_schedule(schedule, instance);
    EXPECT_TRUE(is_valid_schedule(compacted, instance));
    EXPECT_TRUE(leq(compacted.makespan(), schedule.makespan()));
  }
}

TEST(Compaction, ClosesArtificialGap) {
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(sequential_profile(1.0, 2), "a");
  tasks.emplace_back(sequential_profile(1.0, 2), "b");
  const Instance instance(2, std::move(tasks));
  Schedule loose(2, 2);
  loose.assign(0, 0.0, 1.0, 0, 1);
  loose.assign(1, 5.0, 1.0, 0, 1);  // pointless idle gap
  const auto tight = compact_schedule(loose, instance);
  EXPECT_DOUBLE_EQ(tight.makespan(), 2.0);
}

// -------------------------------------------------------------------- gantt

TEST(Gantt, RendersGridAndLegend) {
  const auto instance = tiny_instance();
  Schedule schedule(3, 3);
  schedule.assign(0, 0.0, 2.0, 0, 2);
  schedule.assign(1, 0.0, 3.0, 2, 1);
  schedule.assign(2, 2.0, 1.0, 0, 1);
  const auto text = gantt_to_string(schedule, instance);
  EXPECT_NE(text.find("P0"), std::string::npos);
  EXPECT_NE(text.find("legend:"), std::string::npos);
  EXPECT_NE(text.find('A'), std::string::npos);
}

TEST(Gantt, EmptyScheduleDoesNotCrash) {
  const auto instance = tiny_instance();
  const Schedule schedule(3, 3);
  EXPECT_NE(gantt_to_string(schedule, instance).find("empty"), std::string::npos);
}

// -------------------------------------------------------------- brute force

TEST(BruteForce, FindsOptimumOnTinyInstance) {
  // One big malleable task + two unit tasks on 2 machines.
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(std::vector<double>{2.0, 1.0});
  tasks.emplace_back(sequential_profile(1.0, 2));
  tasks.emplace_back(sequential_profile(1.0, 2));
  const Instance instance(2, std::move(tasks));
  const auto result = brute_force_schedule(instance);
  ASSERT_TRUE(result.has_value());
  // OPT = 2: run the big task on both procs (1.0), then the two units.
  EXPECT_NEAR(result->makespan, 2.0, 1e-12);
  EXPECT_TRUE(is_valid_schedule(result->schedule, instance));
}

TEST(BruteForce, RespectsBudget) {
  GeneratorOptions options;
  options.tasks = 8;
  options.machines = 16;
  const auto instance = generate_instance(WorkloadFamily::kUniform, options, 1);
  EXPECT_FALSE(brute_force_schedule(instance, 1000).has_value());
}

TEST(BruteForce, EmptyInstance) {
  const Instance instance(2, {});
  const auto result = brute_force_schedule(instance);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->makespan, 0.0);
}

}  // namespace
}  // namespace malsched
