// Tests for src/api: the SolverOptions key=value bag and the SolverRegistry
// facade every front end dispatches through.

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "registry/solver_registry.hpp"
#include "model/lower_bounds.hpp"
#include "sched/validate.hpp"
#include "support/math_utils.hpp"
#include "workload/generators.hpp"

namespace malsched {
namespace {

Instance small_instance(std::uint64_t seed = 3) {
  GeneratorOptions options;
  options.tasks = 24;
  options.machines = 12;
  return generate_instance(WorkloadFamily::kUniform, options, seed);
}

// ------------------------------------------------------------ SolverOptions

TEST(SolverOptions, ParsesTokensAndTypes) {
  const auto options = SolverOptions::from_tokens({"epsilon=0.05", "rigid=nfdh", "local_search"});
  EXPECT_DOUBLE_EQ(options.get_double("epsilon", 0.0), 0.05);
  EXPECT_EQ(options.get_string("rigid"), "nfdh");
  EXPECT_TRUE(options.get_bool("local_search", false));  // bare key means =1
  EXPECT_EQ(options.get_int("absent", 7), 7);
}

TEST(SolverOptions, ParsesSpecStringWithMixedSeparators) {
  const auto options = SolverOptions::from_string("epsilon=0.02,rigid=ffdh max_candidates=8");
  EXPECT_DOUBLE_EQ(options.get_double("epsilon", 0.0), 0.02);
  EXPECT_EQ(options.get_int("max_candidates", 0), 8);
  EXPECT_EQ(options.str(), "epsilon=0.02,max_candidates=8,rigid=ffdh");
}

TEST(SolverOptions, ThrowsOnMalformedValuesNotMissingOnes) {
  const auto options = SolverOptions::from_string("epsilon=fast,flag=maybe");
  EXPECT_THROW(static_cast<void>(options.get_double("epsilon", 0.0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(options.get_bool("flag", true)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(SolverOptions::from_string("=3")), std::invalid_argument);
  EXPECT_DOUBLE_EQ(options.get_double("missing", 1.5), 1.5);
}

// The pinned parser edge cases (previously implementation-defined).

TEST(SolverOptions, DuplicateKeysLastWins) {
  const auto options = SolverOptions::from_string("epsilon=0.1,epsilon=0.2 epsilon=0.3");
  EXPECT_DOUBLE_EQ(options.get_double("epsilon", 0.0), 0.3);
  EXPECT_EQ(options.entries().size(), 1u);
}

TEST(SolverOptions, StraySeparatorsAreSkipped) {
  const auto options = SolverOptions::from_string(" ,,  a=1 ,\t, b=2,, ");
  EXPECT_EQ(options.get_int("a", 0), 1);
  EXPECT_EQ(options.get_int("b", 0), 2);
  EXPECT_EQ(options.entries().size(), 2u);
  EXPECT_TRUE(SolverOptions::from_string(", ,\t,").entries().empty());
}

TEST(SolverOptions, EmptyValueIsAValidStringButNotANumber) {
  const auto options = SolverOptions::from_string("name=");
  EXPECT_TRUE(options.has("name"));
  EXPECT_EQ(options.get_string("name", "fallback"), "");
  EXPECT_THROW(static_cast<void>(options.get_double("name", 0.0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(options.get_bool("name", true)), std::invalid_argument);
}

TEST(SolverOptions, OnlyTheFirstEqualsSplits) {
  const auto options = SolverOptions::from_string("a==b,path=x=y");
  EXPECT_EQ(options.get_string("a"), "=b");
  EXPECT_EQ(options.get_string("path"), "x=y");
}

// ------------------------------------------------- OptionSpec validation

std::vector<OptionSpec> demo_specs() {
  return {
      OptionSpec::real("epsilon", 0.01, 1e-9, 10.0, "termination threshold"),
      OptionSpec::integer("rounds", 4, 1, 64, "iteration budget"),
      OptionSpec::enumeration("rigid", "ffdh", {"ffdh", "nfdh", "list"}, "packing algo"),
      OptionSpec::boolean("strict", true, "reject unknown keys"),
  };
}

TEST(OptionSpec, ValidatePassesDeclaredWellTypedOptions) {
  const auto options = SolverOptions::from_string("epsilon=0.5,rounds=8,rigid=nfdh");
  EXPECT_NO_THROW(options.validate(demo_specs()));
}

TEST(OptionSpec, UnknownKeyFailsFastWithDidYouMean) {
  const auto options = SolverOptions::from_string("epsilom=0.02");
  try {
    options.validate(demo_specs());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    const std::string message = err.what();
    EXPECT_NE(message.find("unknown option 'epsilom'"), std::string::npos) << message;
    EXPECT_NE(message.find("did you mean 'epsilon'?"), std::string::npos) << message;
    EXPECT_NE(message.find("strict=0"), std::string::npos) << message;
  }
}

TEST(OptionSpec, UnknownKeyWithoutACloseNameListsTheDeclaredOnes) {
  const auto options = SolverOptions::from_string("warp_factor=9");
  try {
    options.validate(demo_specs());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    const std::string message = err.what();
    EXPECT_EQ(message.find("did you mean"), std::string::npos) << message;
    EXPECT_NE(message.find("epsilon"), std::string::npos) << message;
  }
}

TEST(OptionSpec, StrictZeroTunnelsUnknownKeysButStillTypesKnownOnes) {
  EXPECT_NO_THROW(SolverOptions::from_string("epsilom=0.02,strict=0").validate(demo_specs()));
  // Declared keys are still checked even in non-strict mode.
  EXPECT_THROW(SolverOptions::from_string("epsilon=fast,strict=0").validate(demo_specs()),
               std::invalid_argument);
}

TEST(OptionSpec, OutOfRangeAndBadEnumValuesAreRejectedReadably) {
  EXPECT_THROW(SolverOptions::from_string("epsilon=-1").validate(demo_specs()),
               std::invalid_argument);
  EXPECT_THROW(SolverOptions::from_string("epsilon=11").validate(demo_specs()),
               std::invalid_argument);
  // NaN compares false to every bound; the range check must still reject it.
  EXPECT_THROW(SolverOptions::from_string("epsilon=nan").validate(demo_specs()),
               std::invalid_argument);
  EXPECT_THROW(SolverOptions::from_string("rounds=0").validate(demo_specs()),
               std::invalid_argument);
  try {
    SolverOptions::from_string("rigid=best").validate(demo_specs());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find("ffdh|nfdh|list"), std::string::npos) << err.what();
  }
}

TEST(OptionSpec, EditDistanceAndSuggestionThreshold) {
  EXPECT_EQ(edit_distance("epsilon", "epsilon"), 0);
  EXPECT_EQ(edit_distance("epsilom", "epsilon"), 1);
  EXPECT_EQ(edit_distance("eplison", "epsilon"), 2);
  EXPECT_EQ(closest_option_name("epsilom", demo_specs()), "epsilon");
  EXPECT_EQ(closest_option_name("warp_factor", demo_specs()), "");
}

TEST(OptionSpec, OptionTableRendersNameTypeDefaultAndHelp) {
  const auto table = option_table(demo_specs());
  EXPECT_NE(table.find("epsilon"), std::string::npos);
  EXPECT_NE(table.find("double in [1e-09, 10]"), std::string::npos);
  EXPECT_NE(table.find("ffdh|nfdh|list"), std::string::npos);
  EXPECT_NE(table.find("termination threshold"), std::string::npos);
  EXPECT_TRUE(option_table({}).empty());
}

// ----------------------------------------------------------- SolverRegistry

TEST(SolverRegistry, GlobalRegistersTheFiveSolvers) {
  const auto names = SolverRegistry::global().names();
  const std::vector<std::string> expected{"graph", "mrt", "naive", "two_phase",
                                          "two_shelves_32"};
  EXPECT_EQ(names, expected);
  for (const auto& name : expected) {
    EXPECT_TRUE(SolverRegistry::global().contains(name));
    EXPECT_FALSE(SolverRegistry::global().description(name).empty());
  }
}

TEST(SolverRegistry, UnknownSolverNameThrows) {
  const auto instance = small_instance();
  EXPECT_THROW(static_cast<void>(solve("mrt-typo", instance)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(SolverRegistry::global().description("nope")),
               std::invalid_argument);
}

TEST(SolverRegistry, RejectsDuplicateAndDegenerateRegistrations) {
  SolverRegistry registry;
  const auto fn = [](const Instance& instance, const SolverOptions&) {
    return SolverResult{"", Schedule(instance.machines(), instance.size()), 0, 0, 0, 0, {}};
  };
  registry.add("custom", "test solver", fn);
  EXPECT_THROW(registry.add("custom", "again", fn), std::invalid_argument);
  EXPECT_THROW(registry.add("", "unnamed", fn), std::invalid_argument);
  EXPECT_THROW(registry.add("null", "no fn", nullptr), std::invalid_argument);
}

TEST(SolverRegistry, ContiguityEnforcementMatchesRegistration) {
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(std::vector<double>{2.0, 1.5, 1.2});
  const Instance instance(3, std::move(tasks));
  // Feasible but scattered: processors {0, 2} of 3.
  const auto scattered_fn = [](const Instance& inst, const SolverOptions&) {
    Schedule schedule(inst.machines(), inst.size());
    schedule.assign_scattered(0, 0.0, inst.task(0).time(2), {0, 2});
    return SolverResult{"", std::move(schedule), 0, 0, 0, 0, {}};
  };
  SolverRegistry registry;
  registry.add("strict", "scattered solver registered as contiguous", scattered_fn);
  registry.add("relaxed", "scattered solver registered as such", scattered_fn,
               /*options=*/{}, /*contiguous=*/false);
  EXPECT_THROW(static_cast<void>(registry.solve("strict", instance)), std::runtime_error);
  const auto result = registry.solve("relaxed", instance);
  EXPECT_TRUE(result.schedule.complete());
}

TEST(SolverRegistry, SolveRequestPathMatchesLegacyPathByteForByte) {
  // API v2: the interned handle carries the static lower bound, and the
  // request-path dispatch must be indistinguishable from the legacy
  // instance-path dispatch -- schedule, certified bound, ratio, and stats.
  const auto instance = small_instance(17);
  const auto handle = InstanceHandle::intern(instance);

  const std::vector<std::pair<std::string, std::string>> configs{
      {"mrt", "epsilon=0.05"},
      {"two_phase", "rigid=ffdh"},
      {"naive", "policy=lpt-seq"},
      {"two_shelves_32", "epsilon=0.05"},
  };
  for (const auto& [name, spec] : configs) {
    const auto options = SolverOptions::from_string(spec);
    const auto legacy = SolverRegistry::global().solve(name, instance, options);
    const auto v2 = SolverRegistry::global().solve(SolveRequest{name, options, handle});
    EXPECT_EQ(v2.solver, legacy.solver);
    EXPECT_EQ(v2.makespan, legacy.makespan);
    EXPECT_EQ(v2.lower_bound, legacy.lower_bound);
    EXPECT_EQ(v2.ratio, legacy.ratio);
    EXPECT_EQ(v2.stats, legacy.stats);
    ASSERT_EQ(v2.schedule.assignments().size(), legacy.schedule.assignments().size());
    for (std::size_t i = 0; i < v2.schedule.assignments().size(); ++i) {
      const auto& a = v2.schedule.assignments()[i];
      const auto& b = legacy.schedule.assignments()[i];
      EXPECT_EQ(a.start, b.start);
      EXPECT_EQ(a.duration, b.duration);
      EXPECT_EQ(a.first_proc, b.first_proc);
      EXPECT_EQ(a.num_procs, b.num_procs);
      EXPECT_EQ(a.scattered, b.scattered);
    }
  }
}

TEST(SolverRegistry, SolveRequestWithEmptyHandleThrows) {
  EXPECT_THROW(static_cast<void>(SolverRegistry::global().solve(SolveRequest{})),
               std::invalid_argument);
}

TEST(SolverRegistry, IncompleteScheduleFromSolverIsRejected) {
  SolverRegistry registry;
  registry.add("broken", "leaves every task unassigned",
               [](const Instance& instance, const SolverOptions&) {
                 return SolverResult{"", Schedule(instance.machines(), instance.size()),
                                     0, 0, 0, 0, {}};
               });
  EXPECT_THROW(static_cast<void>(registry.solve("broken", small_instance())),
               std::runtime_error);
}

/// Every registered solver, with the option bags the front ends use.
class RegistrySolveTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(RegistrySolveTest, ReturnsValidatedScheduleWithCertifiedBound) {
  const auto& [name, spec] = GetParam();
  const auto options = SolverOptions::from_string(spec);
  for (const auto family :
       {WorkloadFamily::kUniform, WorkloadFamily::kBimodal, WorkloadFamily::kSequentialOnly}) {
    GeneratorOptions generator;
    generator.tasks = 20;
    generator.machines = 10;
    const auto instance = generate_instance(family, generator, 11);
    const auto result = solve(name, instance, options);

    EXPECT_EQ(result.solver, name);
    EXPECT_TRUE(result.schedule.complete());
    // All five built-in solvers promise contiguous processor intervals (the
    // paper's setting), so the full default validation must hold.
    const auto report = validate_schedule(result.schedule, instance);
    EXPECT_TRUE(report.ok) << report.str();

    // The certified bound is a real lower bound and at least the
    // area/critical-path bound; makespan and ratio are consistent with it.
    EXPECT_TRUE(geq(result.lower_bound, makespan_lower_bound(instance)));
    EXPECT_TRUE(geq(result.makespan, result.lower_bound));
    EXPECT_NEAR(result.ratio, result.makespan / result.lower_bound, 1e-12);
    EXPECT_DOUBLE_EQ(result.makespan, result.schedule.makespan());
    EXPECT_GE(result.wall_seconds, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSolvers, RegistrySolveTest,
    ::testing::Values(std::make_tuple("mrt", ""), std::make_tuple("mrt", "epsilon=0.05"),
                      std::make_tuple("two_phase", "rigid=ffdh"),
                      std::make_tuple("two_phase", "rigid=nfdh"),
                      std::make_tuple("two_phase", "rigid=list"),
                      std::make_tuple("naive", "policy=half-speedup"),
                      std::make_tuple("naive", "policy=lpt-seq"),
                      std::make_tuple("naive", "policy=gang"),
                      std::make_tuple("two_shelves_32", ""),
                      std::make_tuple("graph", "strategy=layered"),
                      std::make_tuple("graph", "strategy=ready-list")));

TEST(SolverRegistry, MrtReportsBranchStatsAndIterations) {
  const auto result = solve("mrt", small_instance());
  EXPECT_GE(result.stat("iterations"), 1.0);
  // At least one construction branch fired across the search.
  double branch_total = 0.0;
  for (const auto& [key, value] : result.stats) {
    if (key.rfind("branch.", 0) == 0) branch_total += value;
  }
  EXPECT_GE(branch_total, 1.0);
  EXPECT_GT(result.stat("final_guess"), 0.0);
}

TEST(SolverRegistry, BadSolverOptionValuesThrow) {
  const auto instance = small_instance();
  EXPECT_THROW(
      static_cast<void>(solve("two_phase", instance, SolverOptions::from_string("rigid=best"))),
      std::invalid_argument);
  EXPECT_THROW(
      static_cast<void>(solve("naive", instance, SolverOptions::from_string("policy=magic"))),
      std::invalid_argument);
  EXPECT_THROW(
      static_cast<void>(solve("graph", instance, SolverOptions::from_string("strategy=x"))),
      std::invalid_argument);
  EXPECT_THROW(
      static_cast<void>(solve("mrt", instance, SolverOptions::from_string("epsilon=tiny"))),
      std::invalid_argument);
}

TEST(SolverRegistry, TypodKeyFailsFastInsteadOfSolvingWithTheDefault) {
  const auto instance = small_instance();
  // The original bug: epsilom=0.02 used to solve silently with the default
  // epsilon. Now it fails fast, with the fix spelled out.
  try {
    static_cast<void>(solve("mrt", instance, SolverOptions::from_string("epsilom=0.02")));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find("did you mean 'epsilon'?"), std::string::npos)
        << err.what();
  }
  // strict=0 restores the old pass-through behavior: the typo is ignored and
  // the solve equals the default-option one.
  const auto escaped =
      solve("mrt", instance, SolverOptions::from_string("epsilom=0.02,strict=0"));
  const auto plain = solve("mrt", instance);
  EXPECT_DOUBLE_EQ(escaped.makespan, plain.makespan);
  EXPECT_DOUBLE_EQ(escaped.lower_bound, plain.lower_bound);
}

TEST(SolverRegistry, OutOfRangeValuesAreRejectedBeforeDispatch) {
  const auto instance = small_instance();
  EXPECT_THROW(
      static_cast<void>(solve("mrt", instance, SolverOptions::from_string("epsilon=-0.5"))),
      std::invalid_argument);
  EXPECT_THROW(static_cast<void>(
                   solve("two_phase", instance, SolverOptions::from_string("max_candidates=0"))),
               std::invalid_argument);
}

TEST(SolverRegistry, DescriptionsDeriveTheirOptionListFromTheSpecs) {
  const auto& registry = SolverRegistry::global();
  for (const auto& name : registry.names()) {
    const auto& description = registry.description(name);
    EXPECT_NE(description.find("(options: "), std::string::npos) << name;
    // Every declared option appears in the one-liner; none can go stale.
    for (const auto& spec : registry.option_specs(name)) {
      EXPECT_NE(description.find(spec.name), std::string::npos)
          << name << " description misses option " << spec.name;
    }
  }
  // The facade-level keys are declared everywhere without being repeated in
  // each registration table.
  EXPECT_NE(registry.description("naive").find("local_search"), std::string::npos);
  EXPECT_NE(registry.description("naive").find("strict"), std::string::npos);
}

TEST(SolverRegistry, OptionHelpRendersTheSpecTable) {
  const auto& registry = SolverRegistry::global();
  const auto help = registry.option_help("mrt");
  EXPECT_NE(help.find("epsilon"), std::string::npos);
  EXPECT_NE(help.find("0.01"), std::string::npos);  // default from MrtOptions
  EXPECT_NE(help.find("snap"), std::string::npos);
  // Free-form custom solvers render no table.
  SolverRegistry custom;
  custom.add("freeform", "no declared schema",
             [](const Instance& instance, const SolverOptions&) {
               return SolverResult{"", Schedule(instance.machines(), instance.size()),
                                   0, 0, 0, 0, {}};
             });
  EXPECT_TRUE(custom.option_help("freeform").empty());
  EXPECT_EQ(custom.description("freeform").find("(options:"), std::string::npos);
}

TEST(SolverRegistry, FreeFormSolversSkipValidation) {
  SolverRegistry registry;
  registry.add("echo", "accepts anything", [](const Instance& instance, const SolverOptions&) {
    Schedule schedule(instance.machines(), instance.size());
    double t = 0.0;
    for (int i = 0; i < instance.size(); ++i) {
      schedule.assign(i, t, instance.task(i).time(1), 0, 1);
      t += instance.task(i).time(1);
    }
    return SolverResult{"", std::move(schedule), 0, 0, 0, 0, {}};
  });
  const auto result = registry.solve(
      "echo", small_instance(), SolverOptions::from_string("whatever=really,epsilom=1"));
  EXPECT_TRUE(result.schedule.complete());
}

TEST(SolverRegistry, LocalSearchPostPassNeverDegrades) {
  const auto instance = small_instance(17);
  const auto base = solve("naive", instance, SolverOptions::from_string("policy=lpt-seq"));
  const auto improved =
      solve("naive", instance, SolverOptions::from_string("policy=lpt-seq,local_search=1"));
  EXPECT_TRUE(leq(improved.makespan, base.makespan));
  EXPECT_GE(improved.stat("local_search.rounds", -1.0), 0.0);
}

TEST(SolverRegistry, ResultSummaryMentionsSolverAndNumbers) {
  const auto result = solve("mrt", small_instance());
  const auto text = result.summary();
  EXPECT_NE(text.find("mrt"), std::string::npos);
  EXPECT_NE(text.find("makespan"), std::string::npos);
  EXPECT_NE(text.find("lower bound"), std::string::npos);
}

}  // namespace
}  // namespace malsched
