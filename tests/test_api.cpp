// Tests for src/api: the SolverOptions key=value bag and the SolverRegistry
// facade every front end dispatches through.

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "api/solver_registry.hpp"
#include "model/lower_bounds.hpp"
#include "sched/validate.hpp"
#include "support/math_utils.hpp"
#include "workload/generators.hpp"

namespace malsched {
namespace {

Instance small_instance(std::uint64_t seed = 3) {
  GeneratorOptions options;
  options.tasks = 24;
  options.machines = 12;
  return generate_instance(WorkloadFamily::kUniform, options, seed);
}

// ------------------------------------------------------------ SolverOptions

TEST(SolverOptions, ParsesTokensAndTypes) {
  const auto options = SolverOptions::from_tokens({"epsilon=0.05", "rigid=nfdh", "local_search"});
  EXPECT_DOUBLE_EQ(options.get_double("epsilon", 0.0), 0.05);
  EXPECT_EQ(options.get_string("rigid"), "nfdh");
  EXPECT_TRUE(options.get_bool("local_search", false));  // bare key means =1
  EXPECT_EQ(options.get_int("absent", 7), 7);
}

TEST(SolverOptions, ParsesSpecStringWithMixedSeparators) {
  const auto options = SolverOptions::from_string("epsilon=0.02,rigid=ffdh max_candidates=8");
  EXPECT_DOUBLE_EQ(options.get_double("epsilon", 0.0), 0.02);
  EXPECT_EQ(options.get_int("max_candidates", 0), 8);
  EXPECT_EQ(options.str(), "epsilon=0.02,max_candidates=8,rigid=ffdh");
}

TEST(SolverOptions, ThrowsOnMalformedValuesNotMissingOnes) {
  const auto options = SolverOptions::from_string("epsilon=fast,flag=maybe");
  EXPECT_THROW(static_cast<void>(options.get_double("epsilon", 0.0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(options.get_bool("flag", true)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(SolverOptions::from_string("=3")), std::invalid_argument);
  EXPECT_DOUBLE_EQ(options.get_double("missing", 1.5), 1.5);
}

// ----------------------------------------------------------- SolverRegistry

TEST(SolverRegistry, GlobalRegistersTheFiveSolvers) {
  const auto names = SolverRegistry::global().names();
  const std::vector<std::string> expected{"graph", "mrt", "naive", "two_phase",
                                          "two_shelves_32"};
  EXPECT_EQ(names, expected);
  for (const auto& name : expected) {
    EXPECT_TRUE(SolverRegistry::global().contains(name));
    EXPECT_FALSE(SolverRegistry::global().description(name).empty());
  }
}

TEST(SolverRegistry, UnknownSolverNameThrows) {
  const auto instance = small_instance();
  EXPECT_THROW(static_cast<void>(solve("mrt-typo", instance)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(SolverRegistry::global().description("nope")),
               std::invalid_argument);
}

TEST(SolverRegistry, RejectsDuplicateAndDegenerateRegistrations) {
  SolverRegistry registry;
  const auto fn = [](const Instance& instance, const SolverOptions&) {
    return SolverResult{"", Schedule(instance.machines(), instance.size()), 0, 0, 0, 0, {}};
  };
  registry.add("custom", "test solver", fn);
  EXPECT_THROW(registry.add("custom", "again", fn), std::invalid_argument);
  EXPECT_THROW(registry.add("", "unnamed", fn), std::invalid_argument);
  EXPECT_THROW(registry.add("null", "no fn", nullptr), std::invalid_argument);
}

TEST(SolverRegistry, ContiguityEnforcementMatchesRegistration) {
  std::vector<MalleableTask> tasks;
  tasks.emplace_back(std::vector<double>{2.0, 1.5, 1.2});
  const Instance instance(3, std::move(tasks));
  // Feasible but scattered: processors {0, 2} of 3.
  const auto scattered_fn = [](const Instance& inst, const SolverOptions&) {
    Schedule schedule(inst.machines(), inst.size());
    schedule.assign_scattered(0, 0.0, inst.task(0).time(2), {0, 2});
    return SolverResult{"", std::move(schedule), 0, 0, 0, 0, {}};
  };
  SolverRegistry registry;
  registry.add("strict", "scattered solver registered as contiguous", scattered_fn);
  registry.add("relaxed", "scattered solver registered as such", scattered_fn,
               /*contiguous=*/false);
  EXPECT_THROW(static_cast<void>(registry.solve("strict", instance)), std::runtime_error);
  const auto result = registry.solve("relaxed", instance);
  EXPECT_TRUE(result.schedule.complete());
}

TEST(SolverRegistry, IncompleteScheduleFromSolverIsRejected) {
  SolverRegistry registry;
  registry.add("broken", "leaves every task unassigned",
               [](const Instance& instance, const SolverOptions&) {
                 return SolverResult{"", Schedule(instance.machines(), instance.size()),
                                     0, 0, 0, 0, {}};
               });
  EXPECT_THROW(static_cast<void>(registry.solve("broken", small_instance())),
               std::runtime_error);
}

/// Every registered solver, with the option bags the front ends use.
class RegistrySolveTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(RegistrySolveTest, ReturnsValidatedScheduleWithCertifiedBound) {
  const auto& [name, spec] = GetParam();
  const auto options = SolverOptions::from_string(spec);
  for (const auto family :
       {WorkloadFamily::kUniform, WorkloadFamily::kBimodal, WorkloadFamily::kSequentialOnly}) {
    GeneratorOptions generator;
    generator.tasks = 20;
    generator.machines = 10;
    const auto instance = generate_instance(family, generator, 11);
    const auto result = solve(name, instance, options);

    EXPECT_EQ(result.solver, name);
    EXPECT_TRUE(result.schedule.complete());
    // All five built-in solvers promise contiguous processor intervals (the
    // paper's setting), so the full default validation must hold.
    const auto report = validate_schedule(result.schedule, instance);
    EXPECT_TRUE(report.ok) << report.str();

    // The certified bound is a real lower bound and at least the
    // area/critical-path bound; makespan and ratio are consistent with it.
    EXPECT_TRUE(geq(result.lower_bound, makespan_lower_bound(instance)));
    EXPECT_TRUE(geq(result.makespan, result.lower_bound));
    EXPECT_NEAR(result.ratio, result.makespan / result.lower_bound, 1e-12);
    EXPECT_DOUBLE_EQ(result.makespan, result.schedule.makespan());
    EXPECT_GE(result.wall_seconds, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSolvers, RegistrySolveTest,
    ::testing::Values(std::make_tuple("mrt", ""), std::make_tuple("mrt", "epsilon=0.05"),
                      std::make_tuple("two_phase", "rigid=ffdh"),
                      std::make_tuple("two_phase", "rigid=nfdh"),
                      std::make_tuple("two_phase", "rigid=list"),
                      std::make_tuple("naive", "policy=half-speedup"),
                      std::make_tuple("naive", "policy=lpt-seq"),
                      std::make_tuple("naive", "policy=gang"),
                      std::make_tuple("two_shelves_32", ""),
                      std::make_tuple("graph", "strategy=layered"),
                      std::make_tuple("graph", "strategy=ready-list")));

TEST(SolverRegistry, MrtReportsBranchStatsAndIterations) {
  const auto result = solve("mrt", small_instance());
  EXPECT_GE(result.stat("iterations"), 1.0);
  // At least one construction branch fired across the search.
  double branch_total = 0.0;
  for (const auto& [key, value] : result.stats) {
    if (key.rfind("branch.", 0) == 0) branch_total += value;
  }
  EXPECT_GE(branch_total, 1.0);
  EXPECT_GT(result.stat("final_guess"), 0.0);
}

TEST(SolverRegistry, BadSolverOptionValuesThrow) {
  const auto instance = small_instance();
  EXPECT_THROW(
      static_cast<void>(solve("two_phase", instance, SolverOptions::from_string("rigid=best"))),
      std::invalid_argument);
  EXPECT_THROW(
      static_cast<void>(solve("naive", instance, SolverOptions::from_string("policy=magic"))),
      std::invalid_argument);
  EXPECT_THROW(
      static_cast<void>(solve("graph", instance, SolverOptions::from_string("strategy=x"))),
      std::invalid_argument);
  EXPECT_THROW(
      static_cast<void>(solve("mrt", instance, SolverOptions::from_string("epsilon=tiny"))),
      std::invalid_argument);
}

TEST(SolverRegistry, LocalSearchPostPassNeverDegrades) {
  const auto instance = small_instance(17);
  const auto base = solve("naive", instance, SolverOptions::from_string("policy=lpt-seq"));
  const auto improved =
      solve("naive", instance, SolverOptions::from_string("policy=lpt-seq,local_search=1"));
  EXPECT_TRUE(leq(improved.makespan, base.makespan));
  EXPECT_GE(improved.stat("local_search.rounds", -1.0), 0.0);
}

TEST(SolverRegistry, ResultSummaryMentionsSolverAndNumbers) {
  const auto result = solve("mrt", small_instance());
  const auto text = result.summary();
  EXPECT_NE(text.find("mrt"), std::string::npos);
  EXPECT_NE(text.find("makespan"), std::string::npos);
  EXPECT_NE(text.find("lower bound"), std::string::npos);
}

}  // namespace
}  // namespace malsched
