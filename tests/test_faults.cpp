// Robustness tests: the deterministic fault-injection harness
// (support/failpoint.*), cooperative cancellation and deadlines threaded
// through running solves, admission control under overload
// (reject/shed_oldest/degrade), and graceful degradation when the cache or a
// solver fails -- no hangs, no leaks, exact stats and error taxonomy.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/scheduler_service.hpp"
#include "api/sharded_service.hpp"
#include "registry/solver_registry.hpp"
#include "support/cancellation.hpp"
#include "support/failpoint.hpp"
#include "workload/generators.hpp"

namespace malsched {
namespace {

Instance small_instance(std::uint64_t seed, int tasks = 16, int machines = 8) {
  GeneratorOptions options;
  options.tasks = tasks;
  options.machines = machines;
  const auto families = all_workload_families();
  return generate_instance(families[seed % families.size()], options, seed);
}

Schedule sequential_schedule(const Instance& instance) {
  Schedule schedule(instance.machines(), instance.size());
  double t = 0.0;
  for (int i = 0; i < instance.size(); ++i) {
    schedule.assign(i, t, instance.task(i).time(1), 0, 1);
    t += instance.task(i).time(1);
  }
  return schedule;
}

/// Atomic two-way latch for blocking test solvers that must ALSO observe
/// cancellation: the solver spins on open/cancel instead of parking in a
/// CondVar a CancelToken could never wake.
struct PollGate {
  std::atomic<bool> entered{false};
  std::atomic<bool> open{false};

  void wait_entered() const {
    while (!entered.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
};

/// Registry for the robustness tests: a fast fallback ("seq"), a
/// cancellation/deadline-aware blocking solver ("pollgate"), and a slow
/// cooperative solver ("slowpoll") that runs ~10 s unless a check fires.
SolverRegistry robustness_registry(const std::shared_ptr<PollGate>& gate) {
  SolverRegistry registry;
  registry.add("seq", "sequential on processor 0",
               [](const Instance& instance, const SolverOptions&) {
                 return SolverResult{"", sequential_schedule(instance), 0, 0, 0, 0, {}};
               });
  registry.add_with_context(
      "pollgate", "blocks until released, polling the cancel check",
      [gate](const Instance& instance, const SolverOptions&,
             const SolveContext& context) -> SolverResult {
        const CancelCheck check(context.cancel, context.deadline_seconds);
        gate->entered.store(true);
        while (!gate->open.load()) {
          check.poll();  // throws CancelledError / DeadlineExceededError
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return SolverResult{"", sequential_schedule(instance), 0, 0, 0, 0, {}};
      });
  registry.add_with_context(
      "slowpoll", "cooperative ~10 s busy solver",
      [](const Instance& instance, const SolverOptions&,
         const SolveContext& context) -> SolverResult {
        const CancelCheck check(context.cancel, context.deadline_seconds);
        for (int i = 0; i < 10'000; ++i) {
          check.poll();
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return SolverResult{"", sequential_schedule(instance), 0, 0, 0, 0, {}};
      });
  return registry;
}

/// Every test leaves the process-global failpoint registry clean.
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoints::disarm_all(); }
};

using FailpointRegistry = FaultTest;
using ServiceFaults = FaultTest;
using Deadlines = FaultTest;
using Admission = FaultTest;

// ---------------------------------------------------- failpoint registry

TEST_F(FailpointRegistry, CompiledInForThisBuild) {
  // CMake defaults MALSCHED_FAILPOINTS=ON; the CI sanitizer jobs assert the
  // same explicitly. Everything below is gated on this.
  EXPECT_TRUE(failpoints::compiled_in());
}

TEST_F(FailpointRegistry, SkipAndFireWindowsAreExact) {
  if (!failpoints::compiled_in()) GTEST_SKIP();
  failpoints::ArmSpec spec;
  spec.skip = 2;
  spec.fire = 1;
  failpoints::arm("test.window", spec);
  EXPECT_NO_THROW(failpoints::hit("test.window"));  // hit 0: skipped
  EXPECT_NO_THROW(failpoints::hit("test.window"));  // hit 1: skipped
  EXPECT_THROW(failpoints::hit("test.window"), failpoints::FailpointError);
  EXPECT_NO_THROW(failpoints::hit("test.window"));  // fire budget exhausted
  EXPECT_EQ(failpoints::hits("test.window"), 4u);
}

TEST_F(FailpointRegistry, SeededProbabilityIsDeterministic) {
  if (!failpoints::compiled_in()) GTEST_SKIP();
  const auto pattern = [](std::uint64_t seed) {
    failpoints::disarm_all();
    failpoints::ArmSpec spec;
    spec.probability = 0.5;
    spec.seed = seed;
    failpoints::arm("test.seeded", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 128; ++i) {
      try {
        failpoints::hit("test.seeded");
        fired.push_back(false);
      } catch (const failpoints::FailpointError&) {
        fired.push_back(true);
      }
    }
    return fired;
  };
  const auto first = pattern(42);
  EXPECT_EQ(first, pattern(42));  // same seed, same run -- deterministic
  const auto count = static_cast<std::size_t>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(count, 0u);    // p=0.5 over 128 draws: both outcomes occur
  EXPECT_LT(count, 128u);
  EXPECT_NE(first, pattern(7));  // and the seed actually matters
}

TEST_F(FailpointRegistry, ArmRejectsBadProbability) {
  if (!failpoints::compiled_in()) GTEST_SKIP();
  failpoints::ArmSpec spec;
  spec.probability = 1.5;
  EXPECT_THROW(failpoints::arm("test.bad", spec), std::invalid_argument);
  spec.probability = -0.1;
  EXPECT_THROW(failpoints::arm("test.bad", spec), std::invalid_argument);
}

TEST_F(FailpointRegistry, DisarmKeepsHitCounters) {
  if (!failpoints::compiled_in()) GTEST_SKIP();
  failpoints::arm("test.disarm", {});
  EXPECT_THROW(failpoints::hit("test.disarm"), failpoints::FailpointError);
  failpoints::disarm("test.disarm");
  EXPECT_NO_THROW(failpoints::hit("test.disarm"));  // inert now
  EXPECT_EQ(failpoints::hits("test.disarm"), 2u);   // but still counted
}

// ----------------------------------------------- injected service faults

TEST_F(ServiceFaults, SolverEntryFailureHasExactTaxonomy) {
  if (!failpoints::compiled_in()) GTEST_SKIP();
  failpoints::ArmSpec spec;
  spec.skip = 1;
  spec.fire = 1;
  failpoints::arm("solver.entry", spec);

  ServiceConfig config;
  config.threads = 1;  // dispatch order == ticket order
  SchedulerService service(config);
  std::vector<JobTicket> tickets;
  for (int i = 0; i < 3; ++i) {
    tickets.push_back(service.submit(
        SolveRequest{"naive", SolverOptions::from_string("policy=lpt-seq"),
                     InstanceHandle::intern(small_instance(700 + i)), /*consult_cache=*/false}));
  }
  service.drain();

  EXPECT_EQ(service.wait(tickets[0]).status, SolveStatus::kOk);
  const SolveOutcome failed = service.wait(tickets[1]);
  EXPECT_EQ(failed.status, SolveStatus::kError);
  EXPECT_EQ(failed.error.code, SolveErrorCode::kSolverFailure);
  EXPECT_NE(failed.error.detail.find("failpoint fired: solver.entry"), std::string::npos);
  EXPECT_EQ(service.wait(tickets[2]).status, SolveStatus::kOk);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.delivered, 3u);
  EXPECT_EQ(stats.cancelled, 0u);
}

TEST_F(ServiceFaults, DispatchFaultsUnderSeededProbabilityStayAccounted) {
  if (!failpoints::compiled_in()) GTEST_SKIP();
  failpoints::ArmSpec spec;
  spec.probability = 0.5;
  spec.seed = 2026;
  failpoints::arm("service.dispatch", spec);

  ServiceConfig config;
  config.threads = 4;
  SchedulerService service(config);
  constexpr int kJobs = 48;
  std::vector<JobTicket> tickets;
  for (int i = 0; i < kJobs; ++i) {
    tickets.push_back(service.submit(
        SolveRequest{"naive", SolverOptions::from_string("policy=lpt-seq"),
                     InstanceHandle::intern(small_instance(800 + i)), /*consult_cache=*/false}));
  }
  service.drain();

  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  for (const auto ticket : tickets) {
    const SolveOutcome outcome = service.wait(ticket);
    if (outcome.status == SolveStatus::kOk) {
      ++ok;
    } else {
      ++failed;
      EXPECT_EQ(outcome.error.code, SolveErrorCode::kSolverFailure);
      EXPECT_NE(outcome.error.detail.find("service.dispatch"), std::string::npos);
    }
  }
  EXPECT_GT(failed, 0u);  // p=0.5 over 48 dispatches: both outcomes occur
  EXPECT_GT(ok, 0u);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, ok);
  EXPECT_EQ(stats.failed, failed);
  EXPECT_EQ(stats.completed + stats.failed, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(stats.delivered, static_cast<std::uint64_t>(kJobs));
}

TEST_F(ServiceFaults, CacheLookupFailuresDegradeToMisses) {
  if (!failpoints::compiled_in()) GTEST_SKIP();
  failpoints::arm("cache.lookup", {});  // every lookup throws

  SchedulerService service;  // cache on by default
  const auto handle = InstanceHandle::intern(small_instance(90));
  const SolveRequest request{"naive", SolverOptions::from_string("policy=lpt-seq"), handle};
  EXPECT_EQ(service.wait(service.submit(request)).status, SolveStatus::kOk);
  const SolveOutcome second = service.wait(service.submit(request));
  EXPECT_EQ(second.status, SolveStatus::kOk);
  EXPECT_FALSE(second.cache_hit);  // the identical request had to re-solve

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.failed, 0u);
  // Each request fails two lookups: the submit-time peek and the
  // dispatch-time (usually authoritative) one.
  EXPECT_EQ(stats.cache_failures, 4u);
  EXPECT_EQ(stats.cache_hits, 0u);
}

TEST_F(ServiceFaults, CacheInsertFailuresOnlyLoseTheMemo) {
  if (!failpoints::compiled_in()) GTEST_SKIP();
  failpoints::arm("cache.insert", {});  // every insert throws

  SchedulerService service;
  const auto handle = InstanceHandle::intern(small_instance(91));
  const SolveRequest request{"naive", SolverOptions::from_string("policy=lpt-seq"), handle};
  EXPECT_EQ(service.wait(service.submit(request)).status, SolveStatus::kOk);
  const SolveOutcome second = service.wait(service.submit(request));
  EXPECT_EQ(second.status, SolveStatus::kOk);
  EXPECT_FALSE(second.cache_hit);  // nothing was ever memoized

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.cache_failures, 2u);  // one failed insert per real solve
  EXPECT_EQ(stats.cache_entries, 0u);
}

TEST_F(ServiceFaults, ShutdownMidDrainLeavesNoHangAndExactCounts) {
  const auto gate = std::make_shared<PollGate>();
  const auto registry = robustness_registry(gate);
  ServiceConfig config;
  config.threads = 1;
  config.registry = &registry;
  SchedulerService service(config);

  const auto running = service.submit({"pollgate", {}, small_instance(40)});
  std::vector<JobTicket> queued;
  for (int i = 0; i < 4; ++i) {
    queued.push_back(service.submit({"seq", {}, small_instance(41 + i)}));
  }
  gate->wait_entered();

  // drain() blocks on the gated leader; shutdown() races it from another
  // thread. Neither may hang, and both must observe the complete stream.
  std::thread drainer([&service] { service.drain(); });
  std::thread stopper([&service, &gate] {
    // Cancel the queued tail, then release the gate so the running solve
    // (which shutdown waits on) can finish.
    std::thread release([&gate] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      gate->open.store(true);
    });
    service.shutdown();
    release.join();
  });
  drainer.join();
  stopper.join();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.delivered, 5u);  // shutdown() returned => stream complete
  EXPECT_EQ(stats.completed, 1u);  // the released gate solve
  EXPECT_EQ(stats.cancelled, 4u);  // the queued tail, kShutdown
  EXPECT_EQ(service.wait(running).status, SolveStatus::kOk);
  for (const auto ticket : queued) {
    const SolveOutcome outcome = service.wait(ticket);
    EXPECT_EQ(outcome.status, SolveStatus::kCancelled);
    EXPECT_EQ(outcome.error.code, SolveErrorCode::kShutdown);
  }
}

// -------------------------------------------- deadlines and cancellation

TEST_F(Deadlines, CancelStopsARunningSolve) {
  const auto gate = std::make_shared<PollGate>();
  const auto registry = robustness_registry(gate);
  ServiceConfig config;
  config.threads = 1;
  config.registry = &registry;
  SchedulerService service(config);

  const auto ticket = service.submit({"pollgate", {}, small_instance(50)});
  gate->wait_entered();
  EXPECT_TRUE(service.cancel(ticket));  // running: fires the token
  const SolveOutcome outcome = service.wait(ticket);
  EXPECT_EQ(outcome.status, SolveStatus::kCancelled);
  EXPECT_EQ(outcome.error.code, SolveErrorCode::kCancelled);
  EXPECT_EQ(service.stats().cancelled, 1u);
  service.drain();
}

TEST_F(Deadlines, BudgetStopsARunningSolveCooperatively) {
  const auto gate = std::make_shared<PollGate>();
  const auto registry = robustness_registry(gate);
  ServiceConfig config;
  config.threads = 1;
  config.registry = &registry;
  SchedulerService service(config);

  SolveRequest request{"slowpoll", {}, InstanceHandle::intern(small_instance(51))};
  request.budget_seconds = 0.05;  // the solver alone would run ~10 s
  const auto ticket = service.submit(std::move(request));
  const SolveOutcome outcome = service.wait(ticket);
  EXPECT_EQ(outcome.status, SolveStatus::kError);
  EXPECT_EQ(outcome.error.code, SolveErrorCode::kDeadlineExceeded);
  EXPECT_LT(outcome.wall_seconds, 5.0);  // stopped mid-solve, not at the end
  EXPECT_EQ(service.stats().deadline_misses, 1u);
}

TEST_F(Deadlines, QueueWaitCountsAgainstTheBudget) {
  const auto gate = std::make_shared<PollGate>();
  const auto registry = robustness_registry(gate);
  ServiceConfig config;
  config.threads = 1;
  config.registry = &registry;
  SchedulerService service(config);

  const auto blocker = service.submit({"pollgate", {}, small_instance(52)});
  gate->wait_entered();
  SolveRequest request{"seq", {}, InstanceHandle::intern(small_instance(53))};
  request.budget_seconds = 0.01;
  const auto doomed = service.submit(std::move(request));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));  // expire in queue
  gate->open.store(true);

  const SolveOutcome outcome = service.wait(doomed);
  EXPECT_EQ(outcome.status, SolveStatus::kError);
  EXPECT_EQ(outcome.error.code, SolveErrorCode::kDeadlineExceeded);
  EXPECT_NE(outcome.error.detail.find("while queued"), std::string::npos);
  EXPECT_EQ(service.wait(blocker).status, SolveStatus::kOk);
  EXPECT_EQ(service.stats().deadline_misses, 1u);
}

// The acceptance check: a 10k-task mrt solve under a 50 ms budget returns
// deadline_exceeded well before normal completion. The stairs family on a
// wide machine count is the slowest point of the generator grid for mrt
// (~300 ms uncancelled here, measured at 6x the budget).
TEST_F(Deadlines, LargeMrtSolveHonorsA50msBudget) {
  SchedulerService service;  // global registry, real mrt
  GeneratorOptions generator;
  generator.tasks = 10'000;
  generator.machines = 1024;
  SolveRequest request{"mrt", {},
                       InstanceHandle::intern(generate_instance(
                           WorkloadFamily::kStairs, generator, /*seed=*/54))};
  request.budget_seconds = 0.05;
  request.use_cache = false;
  const auto ticket = service.submit(std::move(request));
  const SolveOutcome outcome = service.wait(ticket);
  EXPECT_EQ(outcome.status, SolveStatus::kError);
  EXPECT_EQ(outcome.error.code, SolveErrorCode::kDeadlineExceeded);
  // "Well before normal completion": the stop lands within one check
  // stride of the 50 ms mark, far from the full solve's wall time.
  EXPECT_LT(outcome.wall_seconds, 2.0);
  EXPECT_EQ(service.stats().deadline_misses, 1u);
}

TEST_F(Deadlines, UndisturbedRequestsAreByteIdenticalWithAndWithoutBudget) {
  // An armed-but-never-firing check must not perturb the result: same
  // instance, same solver, one run with a generous budget, one without.
  const auto handle = InstanceHandle::intern(small_instance(55, /*tasks=*/120));
  SolveRequest plain{"mrt", {}, handle};
  SolveRequest budgeted{"mrt", {}, handle};
  budgeted.budget_seconds = 3600.0;
  const SolverResult a = SolverRegistry::global().solve(plain);
  const SolverResult b = SolverRegistry::global().solve(budgeted);
  EXPECT_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.schedule.assignments().size(), b.schedule.assignments().size());
  for (std::size_t i = 0; i < a.schedule.assignments().size(); ++i) {
    EXPECT_EQ(a.schedule.assignments()[i].start, b.schedule.assignments()[i].start);
    EXPECT_EQ(a.schedule.assignments()[i].first_proc, b.schedule.assignments()[i].first_proc);
    EXPECT_EQ(a.schedule.assignments()[i].num_procs, b.schedule.assignments()[i].num_procs);
  }
}

// --------------------------------------------------- admission + degrade

TEST_F(Admission, RejectTurnsOverflowTerminalImmediately) {
  const auto gate = std::make_shared<PollGate>();
  const auto registry = robustness_registry(gate);
  ServiceConfig config;
  config.threads = 1;
  config.registry = &registry;
  config.max_queue_depth = 2;
  config.overload_policy = "reject";
  SchedulerService service(config);

  const auto running = service.submit({"pollgate", {}, small_instance(60)});
  gate->wait_entered();  // worker busy; the queue is empty again
  const auto queued_a = service.submit({"seq", {}, small_instance(61)});
  const auto queued_b = service.submit({"seq", {}, small_instance(62)});
  const auto refused = service.submit({"seq", {}, small_instance(63)});

  const auto outcome = service.poll(refused);  // terminal without dispatch
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->status, SolveStatus::kError);
  EXPECT_EQ(outcome->error.code, SolveErrorCode::kRejected);
  EXPECT_EQ(outcome->worker, -1);

  gate->open.store(true);
  service.drain();
  EXPECT_EQ(service.wait(queued_a).status, SolveStatus::kOk);
  EXPECT_EQ(service.wait(queued_b).status, SolveStatus::kOk);
  EXPECT_EQ(service.wait(running).status, SolveStatus::kOk);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.failed, 1u);  // the rejection is the only error
  EXPECT_EQ(stats.completed, 3u);
}

TEST_F(Admission, ShedOldestEvictsTheOldestQueuedJob) {
  const auto gate = std::make_shared<PollGate>();
  const auto registry = robustness_registry(gate);
  ServiceConfig config;
  config.threads = 1;
  config.registry = &registry;
  config.max_queue_depth = 2;
  config.overload_policy = "shed_oldest";
  SchedulerService service(config);

  const auto running = service.submit({"pollgate", {}, small_instance(64)});
  gate->wait_entered();
  const auto oldest = service.submit({"seq", {}, small_instance(65)});
  const auto kept = service.submit({"seq", {}, small_instance(66)});
  const auto admitted = service.submit({"seq", {}, small_instance(67)});

  const auto shed = service.poll(oldest);  // evicted in favor of `admitted`
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->status, SolveStatus::kError);
  EXPECT_EQ(shed->error.code, SolveErrorCode::kRejected);
  EXPECT_NE(shed->error.detail.find("shed"), std::string::npos);

  gate->open.store(true);
  service.drain();
  EXPECT_EQ(service.wait(kept).status, SolveStatus::kOk);
  EXPECT_EQ(service.wait(admitted).status, SolveStatus::kOk);
  EXPECT_EQ(service.wait(running).status, SolveStatus::kOk);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST_F(Admission, DegradeAnswersOverflowWithTheFallbackSolver) {
  const auto gate = std::make_shared<PollGate>();
  const auto registry = robustness_registry(gate);
  ServiceConfig config;
  config.threads = 1;
  config.registry = &registry;
  config.max_queue_depth = 1;
  config.overload_policy = "degrade";
  config.fallback_solver = "seq";
  SchedulerService service(config);

  const auto running = service.submit({"pollgate", {}, small_instance(68)});
  gate->wait_entered();
  const auto normal = service.submit({"slowpoll", {}, small_instance(69)});
  // Past the watermark: admitted, but flagged to run "seq" instead of the
  // 10 s "slowpoll" it asked for.
  const auto degraded = service.submit({"slowpoll", {}, small_instance(70)});
  // Unblock: cancel the honest slowpoll (it would run 10 s) and release.
  EXPECT_TRUE(service.cancel(normal));
  gate->open.store(true);

  const SolveOutcome outcome = service.wait(degraded);
  EXPECT_EQ(outcome.status, SolveStatus::kOk);
  EXPECT_TRUE(outcome.fallback_used);
  EXPECT_FALSE(outcome.cache_hit);
  service.drain();
  EXPECT_EQ(service.wait(running).status, SolveStatus::kOk);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.fallbacks, 1u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.shed, 0u);
}

TEST_F(Admission, DegradeRetriesADeadlineMissOnTheFallback) {
  const auto gate = std::make_shared<PollGate>();
  const auto registry = robustness_registry(gate);
  ServiceConfig config;
  config.threads = 1;
  config.registry = &registry;
  config.max_queue_depth = 8;  // never overloaded; degrade only via deadline
  config.overload_policy = "degrade";
  config.fallback_solver = "seq";
  SchedulerService service(config);

  SolveRequest request{"slowpoll", {}, InstanceHandle::intern(small_instance(71))};
  request.budget_seconds = 0.05;
  const auto ticket = service.submit(std::move(request));
  const SolveOutcome outcome = service.wait(ticket);
  // The primary missed its deadline; the fast fallback answered instead of
  // surfacing the error.
  EXPECT_EQ(outcome.status, SolveStatus::kOk);
  EXPECT_TRUE(outcome.fallback_used);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.fallbacks, 1u);
  EXPECT_EQ(stats.deadline_misses, 1u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST_F(Admission, ShardedTierAppliesPerShardAdmission) {
  const auto gate = std::make_shared<PollGate>();
  const auto registry = robustness_registry(gate);
  ServiceConfig config;
  config.threads = 1;
  config.registry = &registry;
  config.max_queue_depth = 8;
  config.overload_policy = "degrade";
  config.fallback_solver = "seq";
  ShardedSchedulerService service(config, 2);

  SolveRequest request{"slowpoll", {}, InstanceHandle::intern(small_instance(72))};
  request.budget_seconds = 0.05;
  const auto ticket = service.submit(std::move(request));
  const SolveOutcome outcome = service.wait(ticket);
  EXPECT_EQ(outcome.status, SolveStatus::kOk);
  EXPECT_TRUE(outcome.fallback_used);
  EXPECT_GE(outcome.shard, 0);  // served and rewritten by a shard
  const ServiceStats stats = service.stats();  // accumulate() covers new fields
  EXPECT_EQ(stats.fallbacks, 1u);
  EXPECT_EQ(stats.deadline_misses, 1u);
}

}  // namespace
}  // namespace malsched
