#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "knapsack/knapsack.hpp"

namespace malsched {

namespace detail {
void validate_items(std::span<const KnapsackItem> items);
}

namespace {

struct SearchState {
  std::span<const KnapsackItem> items;  ///< sorted by profit density
  long long capacity;
  long long node_budget;
  const CancelCheck* cancel;  ///< nullable; ticked once per explored node
  long long nodes{0};
  std::vector<char> chosen;
  std::vector<char> best_chosen;
  long long best_profit{0};
};

/// Dantzig bound: take remaining items greedily, last one fractionally.
double fractional_bound(const SearchState& state, std::size_t index, long long weight,
                        long long profit) {
  double bound = static_cast<double>(profit);
  long long room = state.capacity - weight;
  for (std::size_t i = index; i < state.items.size() && room > 0; ++i) {
    const auto& item = state.items[i];
    if (item.weight <= room) {
      bound += static_cast<double>(item.profit);
      room -= item.weight;
    } else {
      bound += static_cast<double>(item.profit) * static_cast<double>(room) /
               static_cast<double>(item.weight);
      room = 0;
    }
  }
  return bound;
}

void search(SearchState& state, std::size_t index, long long weight, long long profit) {
  if (++state.nodes > state.node_budget) {
    throw std::runtime_error("knapsack_branch_and_bound: node budget exceeded");
  }
  if (state.cancel != nullptr) state.cancel->tick();
  if (profit > state.best_profit) {
    state.best_profit = profit;
    state.best_chosen = state.chosen;
  }
  if (index == state.items.size()) return;
  if (fractional_bound(state, index, weight, profit) <=
      static_cast<double>(state.best_profit)) {
    return;  // cannot beat the incumbent
  }
  const auto& item = state.items[index];
  if (weight + item.weight <= state.capacity) {
    state.chosen[index] = 1;
    search(state, index + 1, weight + item.weight, profit + item.profit);
    state.chosen[index] = 0;
  }
  search(state, index + 1, weight, profit);
}

}  // namespace

KnapsackSelection knapsack_branch_and_bound(std::span<const KnapsackItem> items,
                                            long long capacity, long long node_budget,
                                            const CancelCheck* cancel) {
  detail::validate_items(items);
  KnapsackSelection result;
  if (capacity < 0 || items.empty()) return result;

  // Zero-weight items are free profit: select them outright. (They would
  // also break the Dantzig bound, which fills by density and stops when the
  // capacity is exhausted -- a later zero-weight item must never be cut.)
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].weight == 0 && items[i].profit > 0) {
      result.items.push_back(static_cast<int>(i));
      result.profit += items[i].profit;
    }
  }

  // Sort the weighted items by non-increasing profit density so the
  // fractional bound is tight and good incumbents appear early.
  std::vector<int> order;
  order.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].weight > 0) order.push_back(static_cast<int>(i));
  }
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const auto& ia = items[static_cast<std::size_t>(a)];
    const auto& ib = items[static_cast<std::size_t>(b)];
    return ia.profit * ib.weight > ib.profit * ia.weight;
  });
  std::vector<KnapsackItem> sorted(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    sorted[i] = items[static_cast<std::size_t>(order[i])];
  }

  SearchState state{sorted, capacity, node_budget, cancel, 0,
                    std::vector<char>(order.size(), 0),
                    std::vector<char>(order.size(), 0), 0};
  search(state, 0, 0, 0);

  for (std::size_t i = 0; i < order.size(); ++i) {
    if (state.best_chosen[i]) {
      const int original = order[i];
      result.items.push_back(original);
      result.weight += items[static_cast<std::size_t>(original)].weight;
      result.profit += items[static_cast<std::size_t>(original)].profit;
    }
  }
  std::sort(result.items.begin(), result.items.end());
  return result;
}

}  // namespace malsched
