#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "knapsack/knapsack.hpp"

namespace malsched {

namespace detail {
void validate_items(std::span<const KnapsackItem> items);
}

KnapsackSelection knapsack_fptas(std::span<const KnapsackItem> items, long long capacity,
                                 double eps) {
  detail::validate_items(items);
  if (!(eps > 0.0) || eps >= 1.0) {
    throw std::invalid_argument("knapsack_fptas: eps must lie in (0, 1)");
  }
  KnapsackSelection result;
  if (capacity < 0 || items.empty()) return result;

  long long max_profit = 0;
  for (const auto& item : items) {
    if (item.weight <= capacity) max_profit = std::max(max_profit, item.profit);
  }
  if (max_profit == 0) return result;  // nothing valuable fits

  // Classical profit scaling: rounding profits down by K keeps the optimal
  // set's scaled profit within n of optimal, i.e. a (1 - eps) factor.
  const auto n = items.size();
  const double k_scale =
      std::max(1.0, eps * static_cast<double>(max_profit) / static_cast<double>(n));

  std::vector<long long> scaled(n, 0);
  long long scaled_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = static_cast<long long>(std::floor(static_cast<double>(items[i].profit) / k_scale));
    scaled_total += scaled[i];
  }

  // min_weight[q] = least weight achieving scaled profit exactly q.
  constexpr long long kInf = std::numeric_limits<long long>::max() / 4;
  const auto q_max = static_cast<std::size_t>(scaled_total);
  std::vector<long long> min_weight(q_max + 1, kInf);
  min_weight[0] = 0;
  std::vector<std::vector<char>> take(n, std::vector<char>(q_max + 1, 0));
  for (std::size_t i = 0; i < n; ++i) {
    const auto q_i = static_cast<std::size_t>(scaled[i]);
    const long long w = items[i].weight;
    if (w > capacity) continue;
    for (std::size_t q = q_max + 1; q-- > q_i;) {
      if (min_weight[q - q_i] >= kInf) continue;
      const long long candidate = min_weight[q - q_i] + w;
      if (candidate < min_weight[q]) {
        min_weight[q] = candidate;
        take[i][q] = 1;
      }
    }
  }

  std::size_t best_q = 0;
  for (std::size_t q = 0; q <= q_max; ++q) {
    if (min_weight[q] <= capacity) best_q = q;
  }

  std::size_t q = best_q;
  for (std::size_t i = n; i-- > 0;) {
    if (take[i][q]) {
      result.items.push_back(static_cast<int>(i));
      result.weight += items[i].weight;
      result.profit += items[i].profit;
      q -= static_cast<std::size_t>(scaled[i]);
    }
  }
  std::reverse(result.items.begin(), result.items.end());
  return result;
}

}  // namespace malsched
