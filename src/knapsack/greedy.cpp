#include <algorithm>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "knapsack/knapsack.hpp"

namespace malsched {

namespace detail {
void validate_items(std::span<const KnapsackItem> items);
}

KnapsackSelection knapsack_greedy(std::span<const KnapsackItem> items, long long capacity) {
  detail::validate_items(items);
  KnapsackSelection greedy;
  if (capacity < 0 || items.empty()) return greedy;

  std::vector<int> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  // Dantzig order: non-increasing profit density, zero-weight items first.
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const auto& ia = items[static_cast<std::size_t>(a)];
    const auto& ib = items[static_cast<std::size_t>(b)];
    // Compare p_a/w_a > p_b/w_b without division: cross-multiply.
    return ia.profit * std::max<long long>(ib.weight, 1) >
           ib.profit * std::max<long long>(ia.weight, 1);
  });

  for (const int idx : order) {
    const auto& item = items[static_cast<std::size_t>(idx)];
    if (greedy.weight + item.weight <= capacity) {
      greedy.items.push_back(idx);
      greedy.weight += item.weight;
      greedy.profit += item.profit;
    }
  }
  std::sort(greedy.items.begin(), greedy.items.end());

  // Classical fix-up: greedy alone is unbounded, greedy vs best single item
  // is a 1/2-approximation.
  KnapsackSelection best_single;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].weight <= capacity && items[i].profit > best_single.profit) {
      best_single.items = {static_cast<int>(i)};
      best_single.weight = items[i].weight;
      best_single.profit = items[i].profit;
    }
  }
  return best_single.profit > greedy.profit ? best_single : greedy;
}

KnapsackSelection knapsack_brute_force(std::span<const KnapsackItem> items, long long capacity) {
  detail::validate_items(items);
  if (items.size() > 24) {
    throw std::invalid_argument("knapsack_brute_force: limited to 24 items");
  }
  KnapsackSelection best;
  if (capacity < 0) return best;
  const auto n = items.size();
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    long long weight = 0;
    long long profit = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::uint64_t{1} << i)) {
        weight += items[i].weight;
        profit += items[i].profit;
      }
    }
    if (weight <= capacity && profit > best.profit) {
      best.items.clear();
      for (std::size_t i = 0; i < n; ++i) {
        if (mask & (std::uint64_t{1} << i)) best.items.push_back(static_cast<int>(i));
      }
      best.weight = weight;
      best.profit = profit;
    }
  }
  return best;
}

}  // namespace malsched
