#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "knapsack/knapsack.hpp"

namespace malsched {

namespace detail {
void validate_items(std::span<const KnapsackItem> items);
}

namespace {

constexpr long long kInf = std::numeric_limits<long long>::max() / 4;

// Shared DP core: minimize weight subject to (rounded) profit >= demand.
// Profits are pre-divided by `scale` (rounded down) which preserves the hard
// constraint because the caller rounds the demand up by the same factor.
std::optional<KnapsackSelection> solve_min(std::span<const KnapsackItem> items,
                                           std::span<const long long> profits,
                                           long long demand) {
  KnapsackSelection result;
  if (demand <= 0) return result;  // empty set already satisfies the demand

  const auto n = items.size();
  const auto q_max = static_cast<std::size_t>(demand);
  // dp[q] = min weight achieving profit >= q (profit clipped at demand).
  std::vector<long long> dp(q_max + 1, kInf);
  dp[0] = 0;
  std::vector<std::vector<char>> take(n, std::vector<char>(q_max + 1, 0));
  for (std::size_t i = 0; i < n; ++i) {
    const long long p = profits[i];
    const long long w = items[i].weight;
    if (p <= 0) continue;
    for (std::size_t q = q_max + 1; q-- > 0;) {
      if (q == 0) continue;
      const auto q_prev =
          static_cast<std::size_t>(std::max<long long>(0, static_cast<long long>(q) - p));
      if (dp[q_prev] >= kInf) continue;
      const long long candidate = dp[q_prev] + w;
      if (candidate < dp[q]) {
        dp[q] = candidate;
        take[i][q] = 1;
      }
    }
  }
  if (dp[q_max] >= kInf) return std::nullopt;

  std::size_t q = q_max;
  for (std::size_t i = n; i-- > 0;) {
    if (q > 0 && take[i][q]) {
      result.items.push_back(static_cast<int>(i));
      result.weight += items[i].weight;
      result.profit += items[i].profit;
      q = static_cast<std::size_t>(
          std::max<long long>(0, static_cast<long long>(q) - profits[i]));
    }
  }
  std::reverse(result.items.begin(), result.items.end());
  return result;
}

}  // namespace

std::optional<KnapsackSelection> min_knapsack_exact(std::span<const KnapsackItem> items,
                                                    long long demand) {
  detail::validate_items(items);
  if (demand > 0 &&
      items.size() * (static_cast<std::size_t>(demand) + 1) > (std::size_t{1} << 29)) {
    throw std::length_error("min_knapsack_exact: DP table exceeds memory guard");
  }
  std::vector<long long> profits(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) profits[i] = items[i].profit;
  return solve_min(items, profits, demand);
}

std::optional<KnapsackSelection> min_knapsack_approx(std::span<const KnapsackItem> items,
                                                     long long demand, double eps) {
  detail::validate_items(items);
  if (!(eps > 0.0) || eps >= 1.0) {
    throw std::invalid_argument("min_knapsack_approx: eps must lie in (0, 1)");
  }
  if (demand <= 0) return KnapsackSelection{};

  // Below the guard the exact DP is affordable; above it, scale profits down
  // (and the demand up) so the DP stays O(n^2 / eps). Rounding the demand up
  // preserves the hard profit constraint; the weight objective is then
  // optimal for the rounded instance (a (1+eps)-style relaxation in the
  // spirit of Lemma 2's scheme).
  const std::size_t budget = std::size_t{1} << 26;
  if (items.size() * (static_cast<std::size_t>(demand) + 1) <= budget) {
    return min_knapsack_exact(items, demand);
  }
  const double k_scale =
      std::max(1.0, eps * static_cast<double>(demand) / static_cast<double>(items.size()));
  std::vector<long long> profits(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    profits[i] =
        static_cast<long long>(std::floor(static_cast<double>(items[i].profit) / k_scale));
  }
  const auto scaled_demand =
      static_cast<long long>(std::ceil(static_cast<double>(demand) / k_scale));
  auto selection = solve_min(items, profits, scaled_demand);
  if (!selection) return std::nullopt;
  // The rounded solve guarantees sum(floor(p/K)) >= ceil(demand/K), hence the
  // true profit also covers the demand.
  return selection;
}

}  // namespace malsched
