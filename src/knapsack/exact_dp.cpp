#include <algorithm>
#include <stdexcept>
#include <vector>

#include "knapsack/knapsack.hpp"

namespace malsched {

namespace detail {

void validate_items(std::span<const KnapsackItem> items) {
  for (const auto& item : items) {
    if (item.weight < 0 || item.profit < 0) {
      throw std::invalid_argument("knapsack: weights and profits must be non-negative");
    }
  }
}

// Memory guard for DP choice tables (bytes).
inline constexpr std::size_t kDpCellGuard = std::size_t{1} << 29;  // 512 MB

}  // namespace detail

bool knapsack_exact_exceeds_guard(std::span<const KnapsackItem> items, long long capacity) {
  if (capacity < 0 || items.empty()) return false;
  return items.size() * (static_cast<std::size_t>(capacity) + 1) > detail::kDpCellGuard;
}

KnapsackSelection knapsack_exact(std::span<const KnapsackItem> items, long long capacity,
                                 KnapsackScratch& scratch) {
  detail::validate_items(items);
  KnapsackSelection result;
  if (capacity < 0 || items.empty()) return result;

  const auto n = items.size();
  const auto cap = static_cast<std::size_t>(capacity);
  if (knapsack_exact_exceeds_guard(items, capacity)) {
    throw std::length_error("knapsack_exact: DP table exceeds memory guard; use knapsack_fptas");
  }

  // best[c] = max profit using a prefix of items within capacity c;
  // take[i * (cap+1) + c] records whether item i was used at residual
  // capacity c (flattened row-per-item layout so the scratch is one buffer).
  auto& best = scratch.best;
  auto& take = scratch.take;
  if (best.capacity() < cap + 1) ++scratch.alloc_events;
  best.assign(cap + 1, 0);
  if (take.capacity() < n * (cap + 1)) ++scratch.alloc_events;
  take.assign(n * (cap + 1), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto w = static_cast<std::size_t>(items[i].weight);
    const long long p = items[i].profit;
    if (w > cap) continue;
    char* const take_row = take.data() + i * (cap + 1);
    for (std::size_t c = cap + 1; c-- > w;) {
      const long long candidate = best[c - w] + p;
      if (candidate > best[c]) {
        best[c] = candidate;
        take_row[c] = 1;
      }
    }
  }

  std::size_t c = cap;
  for (std::size_t i = n; i-- > 0;) {
    if (take[i * (cap + 1) + c]) {
      result.items.push_back(static_cast<int>(i));
      result.weight += items[i].weight;
      result.profit += items[i].profit;
      c -= static_cast<std::size_t>(items[i].weight);
    }
  }
  std::reverse(result.items.begin(), result.items.end());
  return result;
}

KnapsackSelection knapsack_exact(std::span<const KnapsackItem> items, long long capacity) {
  KnapsackScratch scratch;
  return knapsack_exact(items, capacity, scratch);
}

KnapsackSelection knapsack_exact_auto(std::span<const KnapsackItem> items, long long capacity,
                                      KnapsackScratch& scratch, const CancelCheck* cancel) {
  if (knapsack_exact_exceeds_guard(items, capacity)) {
    // Same optimum, O(n) memory; only the tie-broken subset may differ from
    // the DP's choice, and only on inputs the DP would have refused. The
    // cancel probe matters exactly here -- the branch-and-bound fallback is
    // the unbounded-time corner; the in-guard DP below is memory-capped.
    return knapsack_branch_and_bound(items, capacity, 50'000'000, cancel);
  }
  return knapsack_exact(items, capacity, scratch);
}

KnapsackSelection knapsack_exact_auto(std::span<const KnapsackItem> items, long long capacity) {
  KnapsackScratch scratch;
  return knapsack_exact_auto(items, capacity, scratch);
}

}  // namespace malsched
