#include <algorithm>
#include <stdexcept>
#include <vector>

#include "knapsack/knapsack.hpp"

namespace malsched {

namespace detail {

void validate_items(std::span<const KnapsackItem> items) {
  for (const auto& item : items) {
    if (item.weight < 0 || item.profit < 0) {
      throw std::invalid_argument("knapsack: weights and profits must be non-negative");
    }
  }
}

// Memory guard for DP choice tables (bytes).
inline constexpr std::size_t kDpCellGuard = std::size_t{1} << 29;  // 512 MB

}  // namespace detail

KnapsackSelection knapsack_exact(std::span<const KnapsackItem> items, long long capacity) {
  detail::validate_items(items);
  KnapsackSelection result;
  if (capacity < 0 || items.empty()) return result;

  const auto n = items.size();
  const auto cap = static_cast<std::size_t>(capacity);
  if (n * (cap + 1) > detail::kDpCellGuard) {
    throw std::length_error("knapsack_exact: DP table exceeds memory guard; use knapsack_fptas");
  }

  // best[c] = max profit using a prefix of items within capacity c;
  // take[i][c] records whether item i was used at residual capacity c.
  std::vector<long long> best(cap + 1, 0);
  std::vector<std::vector<char>> take(n, std::vector<char>(cap + 1, 0));
  for (std::size_t i = 0; i < n; ++i) {
    const auto w = static_cast<std::size_t>(items[i].weight);
    const long long p = items[i].profit;
    if (w > cap) continue;
    for (std::size_t c = cap + 1; c-- > w;) {
      const long long candidate = best[c - w] + p;
      if (candidate > best[c]) {
        best[c] = candidate;
        take[i][c] = 1;
      }
    }
  }

  std::size_t c = cap;
  for (std::size_t i = n; i-- > 0;) {
    if (take[i][c]) {
      result.items.push_back(static_cast<int>(i));
      result.weight += items[i].weight;
      result.profit += items[i].profit;
      c -= static_cast<std::size_t>(items[i].weight);
    }
  }
  std::reverse(result.items.begin(), result.items.end());
  return result;
}

}  // namespace malsched
