#pragma once

#include <optional>
#include <span>
#include <vector>

#include "support/cancellation.hpp"

/// Knapsack solvers backing the paper's allotment selection (Section 4).
///
/// The two-shelf construction chooses which tasks of S1 migrate to the
/// second shelf by solving
///
///   (P)  maximize sum of profits  s.t.  sum of weights <= capacity
///
/// where profit_i = canonical processors gamma_i and weight_i = processors
/// needed to finish within the short shelf. The paper also uses the dual
///
///   (P') minimize sum of weights  s.t.  sum of profits >= demand
///
/// so that a (1+eps)-approximation of either problem still yields a feasible
/// shelf assignment (Lemma 2). Both weights and profits are processor counts,
/// hence non-negative integers; solvers below exploit that.
namespace malsched {

struct KnapsackItem {
  long long weight{0};  ///< must be >= 0
  long long profit{0};  ///< must be >= 0
};

/// A chosen subset with its totals. `items` holds indices into the input span
/// in increasing order.
struct KnapsackSelection {
  std::vector<int> items;
  long long weight{0};
  long long profit{0};
};

/// Reusable DP buffers for the exact solver: profit row + flattened choice
/// table. Callers that solve many knapsacks (the two-shelf dual loop) keep
/// one scratch alive so the per-call heap allocations disappear after
/// warm-up; `alloc_events` counts the growths that did happen.
struct KnapsackScratch {
  std::vector<long long> best;
  std::vector<char> take;
  long long alloc_events{0};
};

/// Exact pseudo-polynomial DP, O(n * capacity) time and memory [13].
/// Throws std::invalid_argument on negative inputs and std::length_error when
/// the DP table would exceed an internal memory guard (~512 MB).
[[nodiscard]] KnapsackSelection knapsack_exact(std::span<const KnapsackItem> items,
                                               long long capacity);

/// As above, with caller-owned scratch (identical selection, no per-call
/// allocation once the scratch has warmed up).
[[nodiscard]] KnapsackSelection knapsack_exact(std::span<const KnapsackItem> items,
                                               long long capacity, KnapsackScratch& scratch);

/// True when knapsack_exact would refuse `items` x `capacity` because the DP
/// choice table would exceed the ~512 MB memory guard.
[[nodiscard]] bool knapsack_exact_exceeds_guard(std::span<const KnapsackItem> items,
                                                long long capacity);

/// Exact solve that never trips the memory guard: the pseudo-polynomial DP
/// when the table fits, depth-first branch and bound (O(n) memory) when the
/// capacity is too large -- so a huge-capacity instance degrades to a slower
/// exact search instead of a std::length_error.
[[nodiscard]] KnapsackSelection knapsack_exact_auto(std::span<const KnapsackItem> items,
                                                    long long capacity);

/// As above, with caller-owned DP scratch for the in-guard path, and an
/// optional borrowed cancellation probe forwarded to the branch-and-bound
/// fallback (ticked per explored node; nullptr or unarmed changes nothing).
[[nodiscard]] KnapsackSelection knapsack_exact_auto(std::span<const KnapsackItem> items,
                                                    long long capacity,
                                                    KnapsackScratch& scratch,
                                                    const CancelCheck* cancel = nullptr);

/// Fully polynomial approximation scheme: profit within (1 - eps) of optimal,
/// weight within capacity, O(n^2 * n/eps) time via profit scaling [13].
[[nodiscard]] KnapsackSelection knapsack_fptas(std::span<const KnapsackItem> items,
                                               long long capacity, double eps);

/// Dantzig greedy by profit density plus best-single-item; guarantees at
/// least half the optimal profit. Cheap upper stage for tests and warm
/// starts.
[[nodiscard]] KnapsackSelection knapsack_greedy(std::span<const KnapsackItem> items,
                                                long long capacity);

/// Exhaustive search for n <= 24 (test oracle).
[[nodiscard]] KnapsackSelection knapsack_brute_force(std::span<const KnapsackItem> items,
                                                     long long capacity);

/// Exact depth-first branch and bound with the Dantzig fractional upper
/// bound. Memory is O(n) (no DP table), so it complements the pseudo-
/// polynomial DP when the capacity is huge; exponential worst-case time,
/// bounded by `node_budget` explored nodes (throws std::runtime_error when
/// exceeded). `cancel`, when non-null and armed, is ticked once per explored
/// node (strided -- see CancelCheck) so a deep search also stops on
/// cancellation or deadline expiry.
[[nodiscard]] KnapsackSelection knapsack_branch_and_bound(std::span<const KnapsackItem> items,
                                                          long long capacity,
                                                          long long node_budget = 50'000'000,
                                                          const CancelCheck* cancel = nullptr);

/// Exact solver for the dual problem (P'): minimum total weight subset with
/// profit >= demand. Returns std::nullopt when even all items together fall
/// short of `demand`. DP over profit, O(n * demand).
[[nodiscard]] std::optional<KnapsackSelection> min_knapsack_exact(
    std::span<const KnapsackItem> items, long long demand);

/// (1+eps)-approximation of (P'): returns a subset with profit >= demand and
/// weight <= (1+eps) * optimal weight, or std::nullopt when infeasible.
[[nodiscard]] std::optional<KnapsackSelection> min_knapsack_approx(
    std::span<const KnapsackItem> items, long long demand, double eps);

}  // namespace malsched
