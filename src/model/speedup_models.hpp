#pragma once

#include <string>
#include <vector>

#include "model/malleable_task.hpp"

/// Parametric speedup models used to synthesize malleable tasks.
///
/// Each builder returns a full time profile t(1..m). All profiles are run
/// through `monotonize`, so they satisfy the paper's assumptions even where
/// the raw formula would not (e.g. communication overhead dominating at
/// large p).
namespace malsched {

/// Amdahl's law: t(p) = seq * (serial_fraction + (1 - serial_fraction)/p).
/// serial_fraction in [0, 1]; 0 is perfectly parallel, 1 purely sequential.
[[nodiscard]] std::vector<double> amdahl_profile(double seq_time, double serial_fraction,
                                                 int max_procs);

/// Power-law (Downey-style) speedup: t(p) = seq / p^alpha, alpha in [0, 1].
/// alpha = 1 is linear speedup; alpha = 0 no speedup.
[[nodiscard]] std::vector<double> power_law_profile(double seq_time, double alpha, int max_procs);

/// Communication-overhead model: t(p) = seq/p + overhead * (p - 1).
/// Mirrors the paper's view of malleable tasks as "parallel time plus a
/// penalty for managing parallelism"; monotonized past the turning point
/// (surplus processors are simply left idle by the task).
[[nodiscard]] std::vector<double> comm_overhead_profile(double seq_time, double overhead,
                                                        int max_procs);

/// Staircase profile: speedup improves only at power-of-two processor counts
/// (typical of fixed-decomposition codes).
[[nodiscard]] std::vector<double> staircase_profile(double seq_time, int max_procs);

/// Perfectly parallel task: t(p) = seq / p.
[[nodiscard]] std::vector<double> linear_profile(double seq_time, int max_procs);

/// Task that cannot use more than one processor: t(p) = seq.
[[nodiscard]] std::vector<double> sequential_profile(double seq_time, int max_procs);

/// Identifier for the family of a generated profile.
enum class SpeedupModel {
  kAmdahl,
  kPowerLaw,
  kCommOverhead,
  kStaircase,
  kLinear,
  kSequential,
};

/// Human-readable model name (for tables and Gantt labels).
[[nodiscard]] std::string to_string(SpeedupModel model);

/// Dispatches to the matching builder. `shape` is the model's free parameter:
/// serial fraction (Amdahl), alpha (power law), overhead (comm), unused
/// otherwise.
[[nodiscard]] std::vector<double> make_profile(SpeedupModel model, double seq_time, double shape,
                                               int max_procs);

}  // namespace malsched
