#include "model/monotonize.hpp"

#include <algorithm>
#include <stdexcept>

#include "model/malleable_task.hpp"

namespace malsched {

std::vector<double> monotonize(std::vector<double> times) {
  if (times.empty()) throw std::invalid_argument("monotonize: empty profile");
  for (const double t : times) {
    if (!(t > 0.0)) throw std::invalid_argument("monotonize: non-positive time");
  }
  // Pass 1: ignore surplus processors -> running minimum.
  for (std::size_t p = 1; p < times.size(); ++p) times[p] = std::min(times[p], times[p - 1]);
  // Pass 2: forbid super-linear speedup -> work must not decrease.
  for (std::size_t p = 1; p < times.size(); ++p) {
    const double work_prev = static_cast<double>(p) * times[p - 1];
    const double min_time = work_prev / static_cast<double>(p + 1);
    times[p] = std::max(times[p], min_time);
  }
  return times;
}

bool is_monotonic_profile(const std::vector<double>& times) {
  return !MalleableTask::validate(times).has_value();
}

}  // namespace malsched
