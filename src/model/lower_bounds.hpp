#pragma once

#include "model/instance.hpp"

/// Makespan lower bounds valid even against preemptive, non-contiguous
/// optimal schedules (the reference the paper measures against, Section 2).
namespace malsched {

/// Area bound: OPT >= (1/m) * sum_i w_i(1). Work is non-decreasing in p, so
/// each task contributes at least its sequential work.
[[nodiscard]] double area_lower_bound(const Instance& instance);

/// Critical-path bound: OPT >= max_i t_i(m); even all m processors cannot
/// finish task i sooner.
[[nodiscard]] double critical_path_lower_bound(const Instance& instance);

/// max(area, critical path) -- the standard combined bound.
[[nodiscard]] double makespan_lower_bound(const Instance& instance);

}  // namespace malsched
