#include "model/instance_io.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace malsched {

namespace {
constexpr const char* kMagic = "malsched-instance";
}

void write_instance(std::ostream& out, const Instance& instance) {
  out << kMagic << " v1\n";
  out << "m " << instance.machines() << "\n";
  out << std::setprecision(17);
  for (const auto& task : instance.tasks()) {
    out << "task " << (task.name().empty() ? "-" : task.name());
    for (int p = 1; p <= instance.machines(); ++p) out << ' ' << task.time(p);
    out << "\n";
  }
}

Instance read_instance(std::istream& in) {
  std::string magic;
  std::string version;
  if (!(in >> magic >> version) || magic != kMagic || version != "v1") {
    throw std::runtime_error("read_instance: missing 'malsched-instance v1' header");
  }
  std::string key;
  int machines = 0;
  if (!(in >> key >> machines) || key != "m" || machines < 1) {
    throw std::runtime_error("read_instance: expected 'm <machines>' line");
  }
  std::vector<MalleableTask> tasks;
  std::string tag;
  int line = 0;
  while (in >> tag) {
    ++line;
    if (tag != "task") throw std::runtime_error("read_instance: expected 'task', got '" + tag + "'");
    std::string name;
    if (!(in >> name)) throw std::runtime_error("read_instance: task name missing");
    if (name == "-") name.clear();
    std::vector<double> times(static_cast<std::size_t>(machines));
    for (auto& t : times) {
      if (!(in >> t)) {
        throw std::runtime_error("read_instance: task " + std::to_string(line) +
                                 " has fewer than m time entries");
      }
    }
    try {
      tasks.emplace_back(std::move(times), std::move(name));
    } catch (const std::invalid_argument& err) {
      throw std::runtime_error("read_instance: task " + std::to_string(line) + ": " + err.what());
    }
  }
  return Instance(machines, std::move(tasks));
}

std::string instance_to_string(const Instance& instance) {
  std::ostringstream out;
  write_instance(out, instance);
  return out.str();
}

Instance instance_from_string(const std::string& text) {
  std::istringstream in(text);
  return read_instance(in);
}

}  // namespace malsched
