#pragma once

#include <vector>

/// Repairing arbitrary time profiles into valid monotonic ones.
///
/// Real measured speedup curves frequently violate the paper's assumptions
/// locally (cache effects, Graham anomalies -- see the paper's Section 2.1
/// discussion). `monotonize` is the canonical repair used by the workload
/// generators: it returns the closest-from-above profile satisfying both
/// monotonicity conditions.
namespace malsched {

/// Returns a profile with t(p) non-increasing and p*t(p) non-decreasing.
///
/// Two realizability-preserving passes:
///   1. t(p) <- min(t(p), t(p-1)): a time promised for p-1 processors is
///      achievable with p by leaving one idle, so clamping down is safe;
///   2. t(p) <- max(t(p), w(p-1)/p): super-linear dips are raised until the
///      work is non-decreasing. The raise keeps pass 1 valid because
///      w(p-1)/p <= t(p-1).
/// Idempotent; input must be non-empty with positive entries.
[[nodiscard]] std::vector<double> monotonize(std::vector<double> times);

/// True when the profile already satisfies both monotonicity conditions.
[[nodiscard]] bool is_monotonic_profile(const std::vector<double>& times);

}  // namespace malsched
