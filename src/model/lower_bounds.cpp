#include "model/lower_bounds.hpp"

#include <algorithm>

namespace malsched {

double area_lower_bound(const Instance& instance) {
  return instance.total_sequential_work() / static_cast<double>(instance.machines());
}

double critical_path_lower_bound(const Instance& instance) {
  double bound = 0.0;
  for (const auto& task : instance.tasks()) {
    bound = std::max(bound, task.time(instance.machines()));
  }
  return bound;
}

double makespan_lower_bound(const Instance& instance) {
  return std::max(area_lower_bound(instance), critical_path_lower_bound(instance));
}

}  // namespace malsched
