#pragma once

#include <vector>

#include "model/malleable_task.hpp"

/// A scheduling problem instance: n independent monotonic malleable tasks to
/// be run on m identical processors (the paper's Section 2 setting).
namespace malsched {

class Instance {
 public:
  /// Builds an instance; every task profile must cover at least `machines`
  /// processor counts (throws std::invalid_argument otherwise).
  Instance(int machines, std::vector<MalleableTask> tasks);

  /// Number of identical processors m.
  [[nodiscard]] int machines() const noexcept { return machines_; }

  /// Number of tasks n.
  [[nodiscard]] int size() const noexcept { return static_cast<int>(tasks_.size()); }

  /// Task by index (0-based).
  [[nodiscard]] const MalleableTask& task(int index) const { return tasks_.at(static_cast<std::size_t>(index)); }

  [[nodiscard]] const std::vector<MalleableTask>& tasks() const noexcept { return tasks_; }

  /// Sum of sequential works (the minimal possible total work under
  /// monotonicity since w(p) is non-decreasing in p).
  [[nodiscard]] double total_sequential_work() const;

 private:
  int machines_;
  std::vector<MalleableTask> tasks_;
};

}  // namespace malsched
