#include "model/instance.hpp"

#include <stdexcept>

namespace malsched {

Instance::Instance(int machines, std::vector<MalleableTask> tasks)
    : machines_(machines), tasks_(std::move(tasks)) {
  if (machines_ < 1) throw std::invalid_argument("Instance: machines must be >= 1");
  for (const auto& task : tasks_) {
    if (task.max_procs() < machines_) {
      throw std::invalid_argument("Instance: task profile shorter than machine count" +
                                  (task.name().empty() ? std::string{}
                                                       : " (task " + task.name() + ")"));
    }
  }
}

double Instance::total_sequential_work() const {
  double total = 0.0;
  for (const auto& task : tasks_) total += task.seq_time();
  return total;
}

}  // namespace malsched
