#include "model/instance_handle.hpp"

#include <atomic>
#include <bit>
#include <stdexcept>
#include <utility>

#include "model/lower_bounds.hpp"
#include "support/fnv.hpp"

namespace malsched {

namespace {

using fnv::mix_bytes;
using fnv::mix_u64;

/// One intern() == one tick; the submit-path "zero re-hash" contract is
/// asserted against this counter in the tests. Atomic rather than
/// mutex-guarded (nothing for thread-safety annotations to see): it is a
/// monotone audit counter with no invariant linking it to other state, so
/// relaxed increments are exactly as strong as the read-read deltas the
/// tests take.
std::atomic<std::uint64_t> hash_count{0};

/// Canonical content fingerprint. Field order is fixed; every double
/// contributes its BIT pattern (std::bit_cast -- the serving stack promises
/// byte-identical results, so 0.0 and -0.0 must not alias), and strings
/// contribute length + bytes so "ab"+"c" cannot alias "a"+"bc".
std::uint64_t content_fingerprint(const Instance& instance) {
  hash_count.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t hash = fnv::kOffset;
  mix_u64(hash, static_cast<std::uint64_t>(instance.machines()));
  mix_u64(hash, static_cast<std::uint64_t>(instance.size()));
  for (const auto& task : instance.tasks()) {
    const auto& profile = task.profile();
    mix_u64(hash, profile.size());
    for (const double time : profile) {
      mix_u64(hash, std::bit_cast<std::uint64_t>(time));
    }
    mix_u64(hash, task.name().size());
    mix_bytes(hash, task.name().data(), task.name().size());
  }
  return hash;
}

/// Exact content equality (profiles compared bit for bit, names included):
/// the deep half of handle equality behind a fingerprint match.
bool same_instance_content(const Instance& a, const Instance& b) {
  if (a.machines() != b.machines() || a.size() != b.size()) return false;
  for (int i = 0; i < a.size(); ++i) {
    const auto& ta = a.task(i);
    const auto& tb = b.task(i);
    if (ta.name() != tb.name()) return false;
    const auto& pa = ta.profile();
    const auto& pb = tb.profile();
    if (pa.size() != pb.size()) return false;
    for (std::size_t p = 0; p < pa.size(); ++p) {
      if (std::bit_cast<std::uint64_t>(pa[p]) != std::bit_cast<std::uint64_t>(pb[p])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

InstanceHandle InstanceHandle::intern(Instance instance) {
  return intern(std::make_shared<const Instance>(std::move(instance)));
}

InstanceHandle InstanceHandle::intern(std::shared_ptr<const Instance> instance) {
  if (!instance) throw std::invalid_argument("InstanceHandle: null instance");
  InstanceHandle handle;
  handle.fingerprint_ = content_fingerprint(*instance);
  handle.static_lower_bound_ = makespan_lower_bound(*instance);
  handle.instance_ = std::move(instance);
  return handle;
}

const Instance& InstanceHandle::instance() const {
  if (!instance_) throw std::logic_error("InstanceHandle: empty handle");
  return *instance_;
}

bool operator==(const InstanceHandle& a, const InstanceHandle& b) {
  if (a.instance_.get() == b.instance_.get()) return true;  // covers both empty
  if (!a.instance_ || !b.instance_) return false;
  if (a.fingerprint_ != b.fingerprint_) return false;
  return same_instance_content(*a.instance_, *b.instance_);
}

std::uint64_t InstanceHandle::content_hashes() noexcept {
  return hash_count.load(std::memory_order_relaxed);
}

}  // namespace malsched
