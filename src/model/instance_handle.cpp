#include "model/instance_handle.hpp"

#include <atomic>
#include <bit>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "model/lower_bounds.hpp"
#include "support/fnv.hpp"
#include "support/mutex.hpp"

namespace malsched {

namespace {

using fnv::mix_bytes;
using fnv::mix_u64;

/// One intern() == one tick; the submit-path "zero re-hash" contract is
/// asserted against this counter in the tests. Atomic rather than
/// mutex-guarded (nothing for thread-safety annotations to see): it is a
/// monotone audit counter with no invariant linking it to other state, so
/// relaxed increments are exactly as strong as the read-read deltas the
/// tests take.
std::atomic<std::uint64_t> hash_count{0};

/// Canonical content fingerprint. Field order is fixed; every double
/// contributes its BIT pattern (std::bit_cast -- the serving stack promises
/// byte-identical results, so 0.0 and -0.0 must not alias), and strings
/// contribute length + bytes so "ab"+"c" cannot alias "a"+"bc".
std::uint64_t content_fingerprint(const Instance& instance) {
  hash_count.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t hash = fnv::kOffset;
  mix_u64(hash, static_cast<std::uint64_t>(instance.machines()));
  mix_u64(hash, static_cast<std::uint64_t>(instance.size()));
  for (const auto& task : instance.tasks()) {
    const auto& profile = task.profile();
    mix_u64(hash, profile.size());
    for (const double time : profile) {
      mix_u64(hash, std::bit_cast<std::uint64_t>(time));
    }
    mix_u64(hash, task.name().size());
    mix_bytes(hash, task.name().data(), task.name().size());
  }
  return hash;
}

/// Exact content equality (profiles compared bit for bit, names included):
/// the deep half of handle equality behind a fingerprint match.
bool same_instance_content(const Instance& a, const Instance& b) {
  if (a.machines() != b.machines() || a.size() != b.size()) return false;
  for (int i = 0; i < a.size(); ++i) {
    const auto& ta = a.task(i);
    const auto& tb = b.task(i);
    if (ta.name() != tb.name()) return false;
    const auto& pa = ta.profile();
    const auto& pb = tb.profile();
    if (pa.size() != pb.size()) return false;
    for (std::size_t p = 0; p < pa.size(); ++p) {
      if (std::bit_cast<std::uint64_t>(pa[p]) != std::bit_cast<std::uint64_t>(pb[p])) {
        return false;
      }
    }
  }
  return true;
}

/// Interns served by an existing live table entry; audit counter, same
/// relaxed-delta discipline as hash_count.
std::atomic<std::uint64_t> intern_hits{0};

/// The process-wide intern table. Buckets are keyed by fingerprint and hold
/// weak references: the table never keeps an instance alive, it only lets a
/// later equal-content intern() find a still-live allocation. Dead entries
/// are pruned as their bucket is revisited (and wholesale by
/// intern_table_size()).
struct InternEntry {
  std::weak_ptr<const Instance> instance;
  double lower_bound;  ///< makespan_lower_bound, cached so hits skip it
};

struct InternTable {
  Mutex mutex;
  std::unordered_map<std::uint64_t, std::vector<InternEntry>> buckets
      MALSCHED_GUARDED_BY(mutex);
};

InternTable& intern_table() {
  static InternTable table;
  return table;
}

struct InternOutcome {
  std::shared_ptr<const Instance> instance;
  double lower_bound;
};

/// Probe-or-insert, atomically (probe and insert under one lock, so two
/// concurrent equal-content interns always converge on ONE allocation).
/// `materialize` is called only on a miss and produces the shared instance
/// to insert -- equal to `content` by construction at both call sites.
template <typename Materialize>
InternOutcome intern_or_insert(std::uint64_t fingerprint, const Instance& content,
                               Materialize&& materialize) {
  auto& table = intern_table();
  LockGuard lock(table.mutex);
  auto& bucket = table.buckets[fingerprint];
  for (auto it = bucket.begin(); it != bucket.end();) {
    if (auto live = it->instance.lock()) {
      if (same_instance_content(*live, content)) {
        intern_hits.fetch_add(1, std::memory_order_relaxed);
        return {std::move(live), it->lower_bound};
      }
      ++it;
    } else {
      it = bucket.erase(it);
    }
  }
  std::shared_ptr<const Instance> shared = materialize();
  const double lower_bound = makespan_lower_bound(*shared);
  bucket.push_back({shared, lower_bound});
  return {std::move(shared), lower_bound};
}

}  // namespace

InstanceHandle InstanceHandle::intern(Instance instance) {
  const std::uint64_t fingerprint = content_fingerprint(instance);
  // The instance is moved into the allocation only on a table miss; a hit
  // drops the caller's copy and shares the live allocation.
  InternOutcome interned = intern_or_insert(fingerprint, instance, [&instance] {
    return std::make_shared<const Instance>(std::move(instance));
  });
  InstanceHandle handle;
  handle.fingerprint_ = fingerprint;
  handle.static_lower_bound_ = interned.lower_bound;
  handle.instance_ = std::move(interned.instance);
  return handle;
}

InstanceHandle InstanceHandle::intern(std::shared_ptr<const Instance> instance) {
  if (!instance) throw std::invalid_argument("InstanceHandle: null instance");
  const std::uint64_t fingerprint = content_fingerprint(*instance);
  InternOutcome interned =
      intern_or_insert(fingerprint, *instance, [&instance] { return std::move(instance); });
  InstanceHandle handle;
  handle.fingerprint_ = fingerprint;
  handle.static_lower_bound_ = interned.lower_bound;
  handle.instance_ = std::move(interned.instance);
  return handle;
}

const Instance& InstanceHandle::instance() const {
  if (!instance_) throw std::logic_error("InstanceHandle: empty handle");
  return *instance_;
}

bool operator==(const InstanceHandle& a, const InstanceHandle& b) {
  if (a.instance_.get() == b.instance_.get()) return true;  // covers both empty
  if (!a.instance_ || !b.instance_) return false;
  if (a.fingerprint_ != b.fingerprint_) return false;
  return same_instance_content(*a.instance_, *b.instance_);
}

std::uint64_t InstanceHandle::content_hashes() noexcept {
  return hash_count.load(std::memory_order_relaxed);
}

std::uint64_t InstanceHandle::intern_table_hits() noexcept {
  return intern_hits.load(std::memory_order_relaxed);
}

std::size_t InstanceHandle::intern_table_size() {
  auto& table = intern_table();
  LockGuard lock(table.mutex);
  std::size_t live = 0;
  for (auto bucket_it = table.buckets.begin(); bucket_it != table.buckets.end();) {
    auto& bucket = bucket_it->second;
    for (auto it = bucket.begin(); it != bucket.end();) {
      if (it->instance.expired()) {
        it = bucket.erase(it);
      } else {
        ++live;
        ++it;
      }
    }
    bucket_it = bucket.empty() ? table.buckets.erase(bucket_it) : std::next(bucket_it);
  }
  return live;
}

}  // namespace malsched
