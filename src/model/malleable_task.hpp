#pragma once

#include <optional>
#include <string>
#include <vector>

/// The malleable-task model of Section 2 of the paper.
namespace malsched {

/// A computational unit that may run on any number p of processors, with an
/// execution time t(p) fixed for the whole (non-preemptive) run.
///
/// The paper's *monotonic* assumption (Section 2.1) is enforced at
/// construction:
///   * t(p) is non-increasing in p      -- more processors never hurt, and
///   * w(p) = p * t(p) is non-decreasing -- no super-linear speedup
///     (Brent's lemma; the parallel overhead only grows with p).
///
/// Processor counts are 1-based: `time(1)` is the sequential time and
/// `time(max_procs())` the fully parallel one.
class MalleableTask {
 public:
  /// Builds a task from `times[p-1] = t(p)`; throws std::invalid_argument if
  /// the profile is empty, non-positive, or violates monotonicity.
  explicit MalleableTask(std::vector<double> times, std::string name = {});

  /// Validates a raw profile; returns a diagnostic instead of throwing.
  /// std::nullopt means the profile is a valid monotonic task.
  [[nodiscard]] static std::optional<std::string> validate(const std::vector<double>& times);

  /// Execution time on p processors (1 <= p <= max_procs()).
  [[nodiscard]] double time(int procs) const;

  /// Computational area (work) w(p) = p * t(p).
  [[nodiscard]] double work(int procs) const;

  /// Sequential execution time t(1).
  [[nodiscard]] double seq_time() const { return times_.front(); }

  /// Largest processor count the profile is defined for.
  [[nodiscard]] int max_procs() const { return static_cast<int>(times_.size()); }

  /// Speedup t(1) / t(p).
  [[nodiscard]] double speedup(int procs) const { return seq_time() / time(procs); }

  /// Efficiency speedup(p) / p, in (0, 1] under monotonicity.
  [[nodiscard]] double efficiency(int procs) const {
    return speedup(procs) / static_cast<double>(procs);
  }

  /// Smallest p with t(p) <= deadline, or std::nullopt when even max_procs()
  /// processors cannot meet it. This is the *canonical number of processors*
  /// of the paper when deadline is the dual guess.
  [[nodiscard]] std::optional<int> min_procs_for(double deadline) const;

  /// Optional human-readable label (used by the Gantt renderer).
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Full time profile, index p-1 -> t(p).
  [[nodiscard]] const std::vector<double>& profile() const noexcept { return times_; }

 private:
  std::vector<double> times_;
  std::string name_;
};

}  // namespace malsched
