#pragma once

#include <iosfwd>
#include <string>

#include "model/instance.hpp"

/// Plain-text serialization of instances so experiments can be archived and
/// replayed outside the generator.
///
/// Format (one task per line, whitespace separated):
///
///     malsched-instance v1
///     m <machines>
///     task <name-or-dash> t(1) t(2) ... t(m)
///     ...
namespace malsched {

/// Writes `instance` to `out` in the format above.
void write_instance(std::ostream& out, const Instance& instance);

/// Parses an instance; throws std::runtime_error with a line diagnostic on
/// malformed input (including monotonicity violations).
[[nodiscard]] Instance read_instance(std::istream& in);

/// Convenience round-trips through strings.
[[nodiscard]] std::string instance_to_string(const Instance& instance);
[[nodiscard]] Instance instance_from_string(const std::string& text);

}  // namespace malsched
