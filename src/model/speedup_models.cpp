#include "model/speedup_models.hpp"

#include <cmath>
#include <stdexcept>

#include "model/monotonize.hpp"

namespace malsched {

namespace {

void check_args(double seq_time, int max_procs) {
  if (!(seq_time > 0.0)) throw std::invalid_argument("speedup model: seq_time must be positive");
  if (max_procs < 1) throw std::invalid_argument("speedup model: max_procs must be >= 1");
}

}  // namespace

std::vector<double> amdahl_profile(double seq_time, double serial_fraction, int max_procs) {
  check_args(seq_time, max_procs);
  if (serial_fraction < 0.0 || serial_fraction > 1.0) {
    throw std::invalid_argument("amdahl_profile: serial_fraction outside [0, 1]");
  }
  std::vector<double> times(static_cast<std::size_t>(max_procs));
  for (int p = 1; p <= max_procs; ++p) {
    times[static_cast<std::size_t>(p) - 1] =
        seq_time * (serial_fraction + (1.0 - serial_fraction) / static_cast<double>(p));
  }
  return monotonize(std::move(times));
}

std::vector<double> power_law_profile(double seq_time, double alpha, int max_procs) {
  check_args(seq_time, max_procs);
  if (alpha < 0.0 || alpha > 1.0) {
    throw std::invalid_argument("power_law_profile: alpha outside [0, 1]");
  }
  std::vector<double> times(static_cast<std::size_t>(max_procs));
  for (int p = 1; p <= max_procs; ++p) {
    times[static_cast<std::size_t>(p) - 1] = seq_time / std::pow(static_cast<double>(p), alpha);
  }
  return monotonize(std::move(times));
}

std::vector<double> comm_overhead_profile(double seq_time, double overhead, int max_procs) {
  check_args(seq_time, max_procs);
  if (overhead < 0.0) throw std::invalid_argument("comm_overhead_profile: negative overhead");
  std::vector<double> times(static_cast<std::size_t>(max_procs));
  for (int p = 1; p <= max_procs; ++p) {
    times[static_cast<std::size_t>(p) - 1] =
        seq_time / static_cast<double>(p) + overhead * static_cast<double>(p - 1);
  }
  return monotonize(std::move(times));
}

std::vector<double> staircase_profile(double seq_time, int max_procs) {
  check_args(seq_time, max_procs);
  std::vector<double> times(static_cast<std::size_t>(max_procs));
  for (int p = 1; p <= max_procs; ++p) {
    // Largest power of two not exceeding p actually contributes.
    int used = 1;
    while (used * 2 <= p) used *= 2;
    times[static_cast<std::size_t>(p) - 1] = seq_time / static_cast<double>(used);
  }
  return monotonize(std::move(times));
}

std::vector<double> linear_profile(double seq_time, int max_procs) {
  check_args(seq_time, max_procs);
  std::vector<double> times(static_cast<std::size_t>(max_procs));
  for (int p = 1; p <= max_procs; ++p) {
    times[static_cast<std::size_t>(p) - 1] = seq_time / static_cast<double>(p);
  }
  return times;  // already monotonic by construction
}

std::vector<double> sequential_profile(double seq_time, int max_procs) {
  check_args(seq_time, max_procs);
  return std::vector<double>(static_cast<std::size_t>(max_procs), seq_time);
}

std::string to_string(SpeedupModel model) {
  switch (model) {
    case SpeedupModel::kAmdahl:
      return "amdahl";
    case SpeedupModel::kPowerLaw:
      return "power-law";
    case SpeedupModel::kCommOverhead:
      return "comm-overhead";
    case SpeedupModel::kStaircase:
      return "staircase";
    case SpeedupModel::kLinear:
      return "linear";
    case SpeedupModel::kSequential:
      return "sequential";
  }
  return "unknown";
}

std::vector<double> make_profile(SpeedupModel model, double seq_time, double shape,
                                 int max_procs) {
  switch (model) {
    case SpeedupModel::kAmdahl:
      return amdahl_profile(seq_time, shape, max_procs);
    case SpeedupModel::kPowerLaw:
      return power_law_profile(seq_time, shape, max_procs);
    case SpeedupModel::kCommOverhead:
      return comm_overhead_profile(seq_time, shape, max_procs);
    case SpeedupModel::kStaircase:
      return staircase_profile(seq_time, max_procs);
    case SpeedupModel::kLinear:
      return linear_profile(seq_time, max_procs);
    case SpeedupModel::kSequential:
      return sequential_profile(seq_time, max_procs);
  }
  throw std::invalid_argument("make_profile: unknown model");
}

}  // namespace malsched
