#pragma once

#include <cstdint>
#include <memory>

#include "model/instance.hpp"

/// Content-addressed identity for instances entering the serving stack.
///
/// Every layer above the model (registry, cache, batch engine, service)
/// needs three things from an instance besides its tasks: a stable identity
/// ("is this the same problem I already solved?"), a content fingerprint to
/// key caches and dedup maps, and the static makespan lower bound the facade
/// folds into every result. Before API v2 each layer derived those on its
/// own schedule -- the cache re-hashed every profile bit on every submit,
/// and identity meant "same Instance object". InstanceHandle computes all
/// three EXACTLY ONCE, at intern() time, and hands out a cheap copyable
/// handle (one shared_ptr + two scalars):
///
///  * **Frozen content.** The handle owns the instance as
///    `shared_ptr<const Instance>`; nothing downstream can mutate it, so the
///    fingerprint and lower bound stay valid for the handle's lifetime.
///  * **Content fingerprint.** 64-bit FNV-1a over machines, every task
///    profile BIT pattern (0.0 and -0.0 must not alias -- the serving stack
///    promises byte-identical results), and task names. Two handles interned
///    from separately built but identical instances carry the same
///    fingerprint; operator== confirms with a deep compare behind it
///    (collision safety), short-circuited by pointer equality for handles
///    sharing one intern.
///  * **Static lower bound.** makespan_lower_bound(instance), computed once;
///    SolveRequest-path registry dispatch reuses it instead of re-deriving
///    it per solve (bit-identical -- same function, same frozen instance).
///
/// A default-constructed handle is EMPTY (valid() == false): it exists so
/// request/slot types stay default-constructible; every API that consumes a
/// request rejects empty handles up front. intern() never returns one.
///
/// **Process-wide intern table (v2.1).** intern() consults a global table
/// keyed by fingerprint: interning content that is already live anywhere in
/// the process returns a handle sharing THAT allocation (and its cached
/// lower bound -- no recompute), so equal-content handles are
/// pointer-identical across threads and across ShardedSchedulerService
/// shards, and operator== takes its pointer fast path. The table holds weak
/// references only: it never extends an instance's lifetime, and dead
/// entries are pruned as their buckets are revisited. Each intern() still
/// hashes the incoming content exactly once (the probe needs the
/// fingerprint), so the content_hashes() audit contract is unchanged: +1 per
/// intern(), zero after.
///
/// Auditing: content_hashes() counts fingerprint computations process-wide.
/// The submit-path contract ("zero profile re-hashing after intern") is a
/// test assertion on this counter, not a comment. intern_table_hits()
/// counts interns served by an existing live entry.
namespace malsched {

class InstanceHandle {
 public:
  /// Empty handle (valid() == false); see the class comment.
  InstanceHandle() = default;

  /// Freezes `instance` and computes its fingerprint + static lower bound.
  [[nodiscard]] static InstanceHandle intern(Instance instance);

  /// As above for an already-shared instance (no copy; the handle pins it).
  /// Throws std::invalid_argument on null. The instance must not be mutated
  /// through other aliases afterwards -- it is `const` here for a reason.
  [[nodiscard]] static InstanceHandle intern(std::shared_ptr<const Instance> instance);

  [[nodiscard]] bool valid() const noexcept { return static_cast<bool>(instance_); }
  explicit operator bool() const noexcept { return valid(); }

  /// The frozen instance; throws std::logic_error on an empty handle.
  [[nodiscard]] const Instance& instance() const;

  /// The owning pointer (null for an empty handle) -- for code that needs to
  /// extend the instance's lifetime beyond the handle (worker keepalives).
  [[nodiscard]] const std::shared_ptr<const Instance>& shared() const noexcept {
    return instance_;
  }

  /// Content fingerprint, computed once at intern(); 0 for an empty handle.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept { return fingerprint_; }

  /// makespan_lower_bound(instance()), computed once at intern().
  [[nodiscard]] double static_lower_bound() const noexcept { return static_lower_bound_; }

  /// Content identity: equal fingerprints AND equal content (deep compare,
  /// short-circuited by shared-pointer equality). Two empty handles are
  /// equal; an empty handle equals nothing else.
  friend bool operator==(const InstanceHandle& a, const InstanceHandle& b);

  /// Process-wide count of content-fingerprint computations (one per
  /// intern()) -- the hash-count audit hook. Monotone; read-read deltas are
  /// meaningful, absolute values are not.
  [[nodiscard]] static std::uint64_t content_hashes() noexcept;

  /// Process-wide count of intern() calls served by an existing live intern
  /// table entry (same allocation handed back, lower bound reused). Monotone
  /// audit counter like content_hashes(): take deltas.
  [[nodiscard]] static std::uint64_t intern_table_hits() noexcept;

  /// Live (still-referenced) entries in the process-wide intern table; prunes
  /// dead entries as a side effect. For tests and introspection.
  [[nodiscard]] static std::size_t intern_table_size();

 private:
  std::shared_ptr<const Instance> instance_;
  std::uint64_t fingerprint_{0};
  double static_lower_bound_{0.0};
};

}  // namespace malsched
