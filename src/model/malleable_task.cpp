#include "model/malleable_task.hpp"

#include <cmath>
#include <stdexcept>

#include "support/math_utils.hpp"

namespace malsched {

namespace {

// Monotonicity is checked with a small relative slack so that profiles
// produced by floating-point formulas (e.g. Amdahl curves) are not rejected
// for last-bit noise.
bool non_increasing(double previous, double current) noexcept {
  return current <= previous * (1.0 + kRelEps) + kAbsEps;
}

}  // namespace

std::optional<std::string> MalleableTask::validate(const std::vector<double>& times) {
  if (times.empty()) return "profile is empty";
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (!(times[i] > 0.0) || !std::isfinite(times[i])) {
      return "t(" + std::to_string(i + 1) + ") is not a positive finite number";
    }
  }
  for (std::size_t p = 1; p < times.size(); ++p) {
    if (!non_increasing(times[p - 1], times[p])) {
      return "t(p) increases at p=" + std::to_string(p + 1);
    }
    const double work_prev = static_cast<double>(p) * times[p - 1];
    const double work_cur = static_cast<double>(p + 1) * times[p];
    if (!non_increasing(work_cur, work_prev)) {  // i.e. work_prev <= work_cur required
      return "work p*t(p) decreases at p=" + std::to_string(p + 1) +
             " (super-linear speedup violates monotonicity)";
    }
  }
  return std::nullopt;
}

MalleableTask::MalleableTask(std::vector<double> times, std::string name)
    : times_(std::move(times)), name_(std::move(name)) {
  if (const auto problem = validate(times_)) {
    throw std::invalid_argument("MalleableTask: " + *problem +
                                (name_.empty() ? std::string{} : " (task " + name_ + ")"));
  }
}

double MalleableTask::time(int procs) const {
  if (procs < 1 || procs > max_procs()) {
    throw std::out_of_range("MalleableTask::time: procs=" + std::to_string(procs) +
                            " outside [1, " + std::to_string(max_procs()) + "]");
  }
  return times_[static_cast<std::size_t>(procs) - 1];
}

double MalleableTask::work(int procs) const { return static_cast<double>(procs) * time(procs); }

std::optional<int> MalleableTask::min_procs_for(double deadline) const {
  // t is non-increasing, so the feasible processor counts form a suffix;
  // binary search the first p with t(p) <= deadline.
  if (!leq(times_.back(), deadline)) return std::nullopt;
  int lo = 1;
  int hi = max_procs();
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (leq(times_[static_cast<std::size_t>(mid) - 1], deadline)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace malsched
