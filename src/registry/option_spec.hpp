#pragma once

#include <limits>
#include <string>
#include <vector>

/// Declared option schemas for the solver registry.
///
/// Every registered solver publishes one OptionSpec per option it reads:
/// name, type, range (for numbers) or value set (for enums), rendered
/// default, and one line of help. The same table drives three things so none
/// of them can drift apart:
///
///   * validation -- SolverOptions::validate() rejects unknown keys (with a
///     did-you-mean suggestion) and out-of-range or mistyped values before a
///     solver ever runs,
///   * help text -- option_table() renders the per-solver option help the
///     CLI (`solve_file --list-algos`), `bench_suite --list`, and the README
///     tables all print, and
///   * the registry's description() one-liners, whose option portion is
///     derived from the spec names at registration time.
namespace malsched {

enum class OptionType {
  kBool,    ///< 1/0, true/false, yes/no, on/off
  kInt,     ///< integer within [min_value, max_value]
  kDouble,  ///< real number within [min_value, max_value]
  kEnum,    ///< one of enum_values
  kString,  ///< free-form text
};

[[nodiscard]] std::string to_string(OptionType type);

struct OptionSpec {
  std::string name;
  OptionType type{OptionType::kString};
  std::string help;
  /// Rendered default (what the solver uses when the key is absent); empty
  /// means "no default" (the option is purely optional).
  std::string default_value;
  /// Inclusive numeric range for kInt/kDouble; ignored otherwise.
  double min_value{-std::numeric_limits<double>::infinity()};
  double max_value{std::numeric_limits<double>::infinity()};
  /// Allowed values for kEnum; ignored otherwise.
  std::vector<std::string> enum_values;

  // Named constructors keep registration sites readable (and render the
  // default from the same typed value the solver actually falls back to, so
  // help text cannot drift from code).
  [[nodiscard]] static OptionSpec boolean(std::string name, bool default_value,
                                          std::string help);
  [[nodiscard]] static OptionSpec integer(std::string name, int default_value, int min_value,
                                          int max_value, std::string help);
  [[nodiscard]] static OptionSpec real(std::string name, double default_value, double min_value,
                                       double max_value, std::string help);
  [[nodiscard]] static OptionSpec enumeration(std::string name, std::string default_value,
                                              std::vector<std::string> values, std::string help);
  [[nodiscard]] static OptionSpec text(std::string name, std::string default_value,
                                       std::string help);

  /// "bool", "int in [1, 96]", "ffdh|nfdh|list", ... -- the type column of
  /// the rendered help table.
  [[nodiscard]] std::string type_label() const;
};

/// Renders a fixed-width help table ("name  type  default  help"), one line
/// per spec, each line prefixed with `indent`. Empty specs render to "".
[[nodiscard]] std::string option_table(const std::vector<OptionSpec>& specs,
                                       const std::string& indent = "  ");

/// Case-sensitive Levenshtein distance (insert/delete/substitute, unit
/// costs) -- the did-you-mean metric for unknown option keys.
[[nodiscard]] int edit_distance(const std::string& a, const std::string& b);

/// The closest spec name within edit distance 2 of `key`, or "" when nothing
/// is close enough to suggest.
[[nodiscard]] std::string closest_option_name(const std::string& key,
                                              const std::vector<OptionSpec>& specs);

}  // namespace malsched
