#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "registry/option_spec.hpp"
#include "registry/request.hpp"
#include "registry/solver_options.hpp"
#include "registry/solver_result.hpp"
#include "model/instance.hpp"
#include "support/cancellation.hpp"

/// The production entry point of the library: one name-keyed facade over
/// every scheduling algorithm, so front ends (CLI, batch drivers, benches,
/// services) dispatch by string instead of hand-wiring per-algorithm structs.
///
/// Registered out of the box (run `solve_file --list-algos` or
/// `bench_suite --list` for the full per-option help, rendered from the
/// same OptionSpec tables validation uses):
///
///   name              algorithm                              key options
///   ----------------  -------------------------------------  -----------------------------
///   mrt               sqrt(3) dual approximation (MRT '99)   epsilon, compaction,
///                                                            pick_best_branch, two_shelf,
///                                                            canonical_list, malleable_list,
///                                                            workspace (default 1), snap
///   two_phase         Turek/Ludwig two-phase baseline        rigid=ffdh|nfdh|list,
///                                                            max_candidates
///   naive             practitioner anchors                   policy=half-speedup|lpt-seq|gang
///   two_shelves_32    heuristic 3/2 two-shelf dual search    epsilon
///   graph             layered DAG scheduler on the flat      epsilon, strategy=layered|
///                     instance (no precedence edges)         ready-list
///
/// Every solver additionally honors `local_search=1` (the makespan local
/// search post-pass, applied by the facade) and `strict=0` (downgrade
/// unknown-key rejection to pass-through). Option bags are validated against
/// the solver's declared OptionSpec table before dispatch: unknown keys fail
/// fast with a did-you-mean suggestion, mistyped or out-of-range values with
/// a readable error. solve() always validates the schedule before
/// returning -- a result is never handed out unchecked -- and stamps the
/// wall time of the whole dispatch.
///
/// Thread safety (audited for the exec/BatchRunner fan-out and the
/// SchedulerService workers): construction of global() is safe under C++11
/// magic statics; solve(), contains(), names(), description(),
/// option_specs(), and option_help() are const reads of an immutable entry
/// map and safe to call concurrently, provided no add() races with them. The
/// built-in solver functions are stateless (pure functions of instance +
/// options; any SolveContext scratch is caller-owned and per-thread), so
/// concurrent solve() calls on distinct or even the same instance are safe.
/// add() is NOT synchronized: finish registering custom solvers before
/// sharing a registry across threads (the global registry is fully populated
/// on first use).
namespace malsched {

class DualWorkspace;  // core/dual_workspace.hpp

/// Optional per-call state a long-lived front end threads into
/// context-aware solvers: a per-thread DualWorkspace provider (so
/// same-instance mrt solves on one service worker reuse the breakpoint
/// index instead of rebuilding it) and the cooperative cancellation pair --
/// a borrowed CancelToken plus an absolute deadline -- that the dispatch
/// turns into the CancelCheck the solver hot loops carry.
struct SolveContext {
  /// Returns a workspace built for exactly `instance` (building or reusing
  /// as the provider sees fit), or nullptr to decline. Called lazily -- only
  /// by solvers that declare `reuses_workspace`, and only when their options
  /// actually enable the workspace path -- so non-workspace solves never pay
  /// for a build. The returned workspace must outlive the solve and must not
  /// be shared across threads.
  std::function<DualWorkspace*(const Instance&)> workspace_provider;
  /// Borrowed cancellation flag (must outlive the solve); nullptr = none.
  /// Firing it makes the running solve throw CancelledError within one
  /// check stride.
  const CancelToken* cancel{nullptr};
  /// Absolute steady-clock deadline (steady_now_seconds()); 0 = none.
  /// Merged with the request's own budget/deadline on the SolveRequest
  /// path; expiry throws DeadlineExceededError.
  double deadline_seconds{0.0};
};

class SolverRegistry {
 public:
  /// A solver fills `solver` (optional -- the facade overwrites it),
  /// `schedule`, `lower_bound`, and `stats`; the facade computes makespan and
  /// ratio, runs the optional post-pass, validates, and stamps wall time.
  using SolverFn = std::function<SolverResult(const Instance&, const SolverOptions&)>;

  /// As SolverFn, with the per-call SolveContext (borrowed scratch hooks).
  using ContextSolverFn =
      std::function<SolverResult(const Instance&, const SolverOptions&, const SolveContext&)>;

  struct Entry {
    std::string name;
    /// The prose half of the one-liner, as passed to add().
    std::string summary;
    /// summary + " (options: ...)" derived from `options` at registration
    /// time, so the help text cannot drift from the declared specs.
    std::string description;
    ContextSolverFn fn;
    /// Declared option schema. Non-empty tables get strict validation (plus
    /// the facade-level `local_search`/`strict` keys, appended
    /// automatically); an EMPTY table means free-form options -- no
    /// validation, for custom solvers that have not declared a schema.
    std::vector<OptionSpec> options;
    /// Whether the solver guarantees contiguous processor intervals (the
    /// paper's setting); validation enforces exactly what is promised.
    bool contiguous{true};
    /// Whether the solver consults SolveContext::workspace_provider (only
    /// mrt today); lets front ends skip offering scratch to solvers that
    /// would never use it.
    bool reuses_workspace{false};
  };

  /// The process-wide registry, pre-populated with the built-in solvers.
  [[nodiscard]] static SolverRegistry& global();

  /// Creates an empty registry (tests compose their own).
  SolverRegistry() = default;

  /// Registers a solver; throws std::invalid_argument on an empty or
  /// duplicate name. `options` declares the solver's schema (empty =
  /// free-form, see Entry::options). Pass contiguous=false only for solvers
  /// that may place tasks on non-consecutive processors (their schedules are
  /// then validated without the contiguity requirement).
  void add(std::string name, std::string summary, SolverFn fn,
           std::vector<OptionSpec> options = {}, bool contiguous = true);

  /// As add(), for context-aware solvers; `reuses_workspace` marks solvers
  /// that consult SolveContext::workspace_provider.
  void add_with_context(std::string name, std::string summary, ContextSolverFn fn,
                        std::vector<OptionSpec> options = {}, bool contiguous = true,
                        bool reuses_workspace = false);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Registered names in lexicographic order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Human-readable one-liner: the registration summary plus the
  /// spec-derived option list; throws on unknown names.
  [[nodiscard]] const std::string& description(const std::string& name) const;

  /// The declared option schema (facade keys included); empty for free-form
  /// solvers. Throws on unknown names.
  [[nodiscard]] const std::vector<OptionSpec>& option_specs(const std::string& name) const;

  /// Rendered per-option help table (name, type/range, default, help line),
  /// or "" for free-form solvers. Throws on unknown names.
  [[nodiscard]] std::string option_help(const std::string& name,
                                        const std::string& indent = "  ") const;

  /// Whether the named solver consults SolveContext::workspace_provider.
  [[nodiscard]] bool reuses_workspace(const std::string& name) const;

  /// API v2 entry point: dispatches `request.solver` on the interned
  /// instance, reusing the handle's precomputed static lower bound instead
  /// of re-deriving it (bit-identical -- same function, same frozen
  /// instance). Throws std::invalid_argument on an empty handle, an unknown
  /// name, or an option bag that fails the declared schema, and
  /// std::runtime_error if a solver ever emits a schedule that fails
  /// validation. `request.use_cache` is a serving-layer flag and ignored
  /// here (the registry memoizes nothing).
  [[nodiscard]] SolverResult solve(const SolveRequest& request) const;

  /// As above with caller-provided per-call context (workspace reuse).
  [[nodiscard]] SolverResult solve(const SolveRequest& request,
                                   const SolveContext& context) const;

  /// Pre-v2 entry point, kept as a thin shim: dispatches directly on a raw
  /// instance, deriving the static lower bound per call. Prefer the
  /// SolveRequest overloads -- an interned handle derives it once and is
  /// what every serving layer (cache, dedup, batch) keys on.
  [[nodiscard]] SolverResult solve(const std::string& name, const Instance& instance,
                                   const SolverOptions& options = {}) const;

  /// As above with caller-provided per-call context (workspace reuse).
  [[nodiscard]] SolverResult solve(const std::string& name, const Instance& instance,
                                   const SolverOptions& options,
                                   const SolveContext& context) const;

 private:
  [[nodiscard]] const Entry& entry(const std::string& name) const;
  [[nodiscard]] SolverResult solve_impl(const Entry& solver, const Instance& instance,
                                        const SolverOptions& options,
                                        const SolveContext& context, double static_lb) const;

  std::map<std::string, Entry> entries_;
};

/// Convenience: dispatch through the global registry.
[[nodiscard]] SolverResult solve(const std::string& solver, const Instance& instance,
                                 const SolverOptions& options = {});

}  // namespace malsched
