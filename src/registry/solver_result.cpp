#include "registry/solver_result.hpp"

#include <sstream>

namespace malsched {

double SolverResult::stat(const std::string& key, double fallback) const {
  for (const auto& [name, value] : stats) {
    if (name == key) return value;
  }
  return fallback;
}

std::string SolverResult::summary() const {
  std::ostringstream out;
  out << solver << ": makespan " << makespan << " (lower bound " << lower_bound << ", ratio "
      << ratio << ", " << wall_seconds * 1e3 << " ms)";
  return out.str();
}

}  // namespace malsched
