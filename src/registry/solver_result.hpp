#pragma once

#include <string>
#include <utility>
#include <vector>

#include "sched/schedule.hpp"

/// The uniform result type of the SolverRegistry facade.
namespace malsched {

/// What every registered solver returns: a validated schedule, a certified
/// lower bound on OPT (at worst the instance's area/critical-path bound, for
/// the dual-search solvers the tighter certified rejection bound), the
/// solver's search statistics (branch counts, iterations, candidates), and
/// the wall time of the solve.
struct SolverResult {
  std::string solver;     ///< registry name that produced this result
  Schedule schedule;      ///< complete and validate()-clean
  double makespan{0.0};
  double lower_bound{0.0};  ///< certified: OPT >= lower_bound
  double ratio{0.0};        ///< makespan / lower_bound
  double wall_seconds{0.0};
  /// Solver-specific counters in insertion order, e.g. ("iterations", 12) or
  /// ("branch.two-shelf-knapsack", 5).
  std::vector<std::pair<std::string, double>> stats;

  /// Looks up one counter; `fallback` when the solver did not record it.
  [[nodiscard]] double stat(const std::string& key, double fallback = 0.0) const;

  /// One-line human-readable report.
  [[nodiscard]] std::string summary() const;
};

}  // namespace malsched
