#pragma once

#include <map>
#include <string>
#include <vector>

#include "registry/option_spec.hpp"

/// Generic key=value option bag for the solver registry.
///
/// Every solver behind the SolverRegistry facade is configured through the
/// same string-keyed interface so callers (CLI front ends, batch drivers,
/// benches) need no per-algorithm structs. Keys are validated against the
/// solver's declared OptionSpec table at dispatch time (see validate());
/// typed getters convert on access and throw std::invalid_argument on
/// malformed values, never on missing ones (the fallback applies).
namespace malsched {

class SolverOptions {
 public:
  SolverOptions() = default;

  /// Parses a list of "key=value" tokens (a bare "key" means "key=1", the
  /// conventional boolean shorthand). Throws std::invalid_argument on an
  /// empty key. Pinned edge cases:
  ///   * duplicate keys: the last occurrence wins ("a=1,a=2" -> a=2),
  ///   * "key=" sets the empty-string value ("" -- valid for string options;
  ///     the numeric/boolean getters throw on it like any unparsable text),
  ///   * only the FIRST '=' splits, so values may contain '=' ("a==b" ->
  ///     a="=b").
  static SolverOptions from_tokens(const std::vector<std::string>& tokens);

  /// Parses a single spec string: tokens separated by commas and/or
  /// whitespace, e.g. "epsilon=0.02,rigid=ffdh local_search". Stray
  /// separators (leading, trailing, or repeated ",,"/", ") produce empty
  /// tokens, which are skipped; the edge cases of from_tokens apply
  /// otherwise.
  static SolverOptions from_string(const std::string& spec);

  /// Sets (or overwrites) one option.
  SolverOptions& set(std::string key, std::string value);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Raw string value, or `fallback` when absent.
  [[nodiscard]] std::string get_string(const std::string& key, const std::string& fallback = {}) const;

  /// Numeric value; throws std::invalid_argument when present but unparsable.
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] int get_int(const std::string& key, int fallback) const;

  /// Booleans accept 1/0, true/false, yes/no, on/off (case-insensitive).
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Checks every entry against a declared spec table; throws
  /// std::invalid_argument on the first violation:
  ///   * an unknown key (message carries a did-you-mean suggestion when a
  ///     declared name is within edit distance 2, plus the declared list),
  ///   * a value that fails its declared type (bool/int/double parse, or an
  ///     enum value outside the allowed set), or
  ///   * a numeric value outside the declared inclusive range.
  ///
  /// `strict=0` in the bag downgrades the unknown-key check to pass-through
  /// (forward-compat escape hatch); declared keys are still type- and
  /// range-checked. The `strict` key itself must appear in `specs` (the
  /// registry appends it to every declared table).
  void validate(const std::vector<OptionSpec>& specs) const;

  /// All options in key order (for logging and round-tripping).
  [[nodiscard]] const std::map<std::string, std::string>& entries() const noexcept {
    return entries_;
  }

  /// "k1=v1,k2=v2" rendering of the bag in key order (empty string when
  /// empty) -- canonical: equal bags render to equal strings, which is what
  /// the solve cache keys on.
  [[nodiscard]] std::string str() const;

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace malsched
