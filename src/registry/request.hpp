#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "registry/solver_options.hpp"
#include "registry/solver_result.hpp"
#include "model/instance_handle.hpp"

/// API v2: the typed unit of work every front end speaks.
///
/// One SolveRequest describes one job -- WHICH solver, HOW configured, on
/// WHAT instance (by interned InstanceHandle, so the content fingerprint and
/// static lower bound travel with the request instead of being re-derived by
/// each layer) -- plus per-request serving flags. One SolveOutcome is its
/// terminal result plus provenance: how the answer was produced (fresh
/// solve, cache hit, or dedup join), by which worker, and what it cost the
/// serving path.
///
/// Registry (`SolverRegistry::solve(request)`), closed batches
/// (`solve_batch(requests)`), and the long-lived service
/// (`SchedulerService::submit(request)`) all accept SolveRequest directly;
/// the pre-v2 `Instance`/`BatchJob` entry points remain as thin interning
/// shims (each shim call re-fingerprints -- intern once and reuse the handle
/// to stay on the zero-re-hash path).
namespace malsched {

/// Terminal status of one request, shared by batch items and service
/// outcomes so the two compare directly.
enum class SolveStatus {
  kOk,         ///< solved and validated
  kError,      ///< the solve threw; `error` holds the message
  kCancelled,  ///< skipped: cancellation (or stop_on_error) fired first
};

[[nodiscard]] std::string to_string(SolveStatus status);

/// Why a request failed to produce a result. Machine-readable so callers can
/// branch (retry vs. fix-the-request vs. give-up) without parsing message
/// text; the human-readable specifics live in SolveError::detail.
enum class SolveErrorCode {
  kNone,           ///< no error (status == kOk)
  kInvalidOption,  ///< rejected before dispatch: unknown solver, unknown
                   ///< option key, or a value outside its declared spec
  kCancelled,      ///< cancelled by the caller (cancel(), CancelToken,
                   ///< stop_on_error) before or during the solve
  kSolverFailure,  ///< the dispatched solver threw
  kShutdown,       ///< cancelled because the service shut down with the
                   ///< request still pending
  kDeadlineExceeded,  ///< the request's deadline/budget expired (in queue or
                      ///< mid-solve -- running solves stop cooperatively)
  kRejected,       ///< refused by admission control (queue over
                   ///< max_queue_depth, or shed as the oldest queued job)
};

/// "none", "invalid_option", "cancelled", "solver_failure", "shutdown",
/// "deadline_exceeded", "rejected" -- the spellings batch_json serializes as
/// `error_code`.
[[nodiscard]] std::string to_string(SolveErrorCode code);

/// Typed error attached to a terminal SolveOutcome / BatchItem. `detail`
/// carries the exception text (or is empty for plain cancellations); it is
/// what the pre-v2.1 string-only `error` field used to hold.
struct SolveError {
  SolveErrorCode code{SolveErrorCode::kNone};
  std::string detail;

  [[nodiscard]] bool empty() const noexcept {
    return code == SolveErrorCode::kNone && detail.empty();
  }
};

/// Maps a caught exception to the taxonomy: CancelledError becomes
/// kCancelled, DeadlineExceededError kDeadlineExceeded (both from
/// support/cancellation.hpp -- the cooperative checks inside running solves
/// throw them), std::invalid_argument (the registry's rejection type for
/// unknown solvers/options and the option validators' for bad values)
/// kInvalidOption, anything else kSolverFailure. Shared by the batch engine
/// and the service so equal failures classify identically everywhere.
[[nodiscard]] SolveError classify_solve_exception(const std::exception& err);

struct SolveRequest {
  /// Default = empty request (invalid handle); exists so containers and
  /// slots stay default-constructible. Every consuming API rejects it.
  SolveRequest() = default;

  SolveRequest(std::string solver_name, SolverOptions solver_options, InstanceHandle handle,
               bool consult_cache = true)
      : instance(std::move(handle)),
        solver(std::move(solver_name)),
        options(std::move(solver_options)),
        use_cache(consult_cache) {}

  InstanceHandle instance;  ///< interned identity; must be valid() when submitted
  std::string solver;       ///< registry name to dispatch to
  SolverOptions options;    ///< validated against the solver's OptionSpec table
  /// Consult/populate the solve cache and join in-flight duplicates (no-op
  /// for layers without a cache). Off for jobs that must measure a real
  /// solve.
  bool use_cache{true};
  /// Relative latency budget in seconds, anchored when the consuming layer
  /// first sees the request (service submit(), or registry solve() entry);
  /// 0 = none. Expiry surfaces as SolveErrorCode::kDeadlineExceeded --
  /// running solves stop cooperatively within one check stride (see
  /// support/cancellation.hpp).
  double budget_seconds{0.0};
  /// Absolute steady-clock deadline (steady_now_seconds()); 0 = none. When
  /// both are set the tighter one wins (merge_deadlines).
  double deadline_seconds{0.0};
};

/// Terminal outcome of one request: the result (engaged iff kOk) plus the
/// provenance of how it was served.
struct SolveOutcome {
  std::uint64_t ticket{0};  ///< service ticket / batch index that produced it
  SolveStatus status{SolveStatus::kCancelled};
  std::optional<SolverResult> result;  ///< engaged iff status == kOk
  /// Typed error; code != kNone iff status != kOk. `error.detail` holds the
  /// message text the pre-v2.1 string field carried.
  SolveError error;

  // ------------------------------------------------------------ provenance
  bool cache_hit{false};   ///< served from the solve cache, no dispatch
  bool dedup_join{false};  ///< coalesced onto a concurrent identical solve
  /// The result came from the configured fallback solver, not the requested
  /// one (overload_policy = "degrade": queue past the watermark, or the
  /// primary solve's deadline expired and the fast fallback answered).
  bool fallback_used{false};
  /// Solved inline on the submitting thread by the small-instance fast path
  /// (ServiceConfig::fast_path_max_tasks): the request never entered the
  /// queue or touched a worker. Mutually exclusive with cache_hit and
  /// dedup_join -- a fast-path probe that hits the cache reports cache_hit.
  bool fast_path{false};
  /// Pool worker that produced (or served) the result; -1 when the outcome
  /// was produced off-pool (cancellation, shutdown, or a submit-time cache
  /// hit served inline on the submitting thread).
  int worker{-1};
  /// ShardedSchedulerService shard that served the request; -1 when the
  /// outcome came from an unsharded tier (plain service, closed batch).
  int shard{-1};
  /// Worker-observed seconds from dequeue to completion (steady clock);
  /// near-zero for cache hits, and for dedup joins the time spent waiting on
  /// the leader -- the serving-path latency, as opposed to
  /// result->wall_seconds, which is the original solve's cost.
  double wall_seconds{0.0};
};

}  // namespace malsched
