#include "registry/option_spec.hpp"

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <utility>

namespace malsched {

namespace {

/// Shortest decimal rendering that round-trips the defaults we register
/// (0.01 -> "0.01", 96 -> "96"); ostream default precision is enough and
/// avoids std::to_string's trailing zeros.
std::string render_number(double value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

}  // namespace

std::string to_string(OptionType type) {
  switch (type) {
    case OptionType::kBool: return "bool";
    case OptionType::kInt: return "int";
    case OptionType::kDouble: return "double";
    case OptionType::kEnum: return "enum";
    case OptionType::kString: return "string";
  }
  return "unknown";
}

OptionSpec OptionSpec::boolean(std::string name, bool default_value, std::string help) {
  OptionSpec spec;
  spec.name = std::move(name);
  spec.type = OptionType::kBool;
  // push_back, not ="1": gcc 12 -Wrestrict misfires on literal assignment
  // here under -O3 (GCC PR 105651), same workaround as support/strings.hpp.
  spec.default_value.push_back(default_value ? '1' : '0');
  spec.help = std::move(help);
  return spec;
}

OptionSpec OptionSpec::integer(std::string name, int default_value, int min_value, int max_value,
                               std::string help) {
  OptionSpec spec;
  spec.name = std::move(name);
  spec.type = OptionType::kInt;
  spec.default_value = std::to_string(default_value);
  spec.min_value = min_value;
  spec.max_value = max_value;
  spec.help = std::move(help);
  return spec;
}

OptionSpec OptionSpec::real(std::string name, double default_value, double min_value,
                            double max_value, std::string help) {
  OptionSpec spec;
  spec.name = std::move(name);
  spec.type = OptionType::kDouble;
  spec.default_value = render_number(default_value);
  spec.min_value = min_value;
  spec.max_value = max_value;
  spec.help = std::move(help);
  return spec;
}

OptionSpec OptionSpec::enumeration(std::string name, std::string default_value,
                                   std::vector<std::string> values, std::string help) {
  OptionSpec spec;
  spec.name = std::move(name);
  spec.type = OptionType::kEnum;
  spec.default_value = std::move(default_value);
  spec.enum_values = std::move(values);
  spec.help = std::move(help);
  return spec;
}

OptionSpec OptionSpec::text(std::string name, std::string default_value, std::string help) {
  OptionSpec spec;
  spec.name = std::move(name);
  spec.type = OptionType::kString;
  spec.default_value = std::move(default_value);
  spec.help = std::move(help);
  return spec;
}

std::string OptionSpec::type_label() const {
  switch (type) {
    case OptionType::kBool:
    case OptionType::kString:
      return to_string(type);
    case OptionType::kInt:
    case OptionType::kDouble: {
      std::string out = to_string(type);
      const bool bounded_below = min_value > -std::numeric_limits<double>::infinity();
      const bool bounded_above = max_value < std::numeric_limits<double>::infinity();
      // Integer bounds render exactly (1048576, not 1.04858e+06): the bound
      // in an out-of-range error must be the number the user can type.
      const auto bound = [this](double value) {
        return type == OptionType::kInt ? std::to_string(static_cast<long long>(value))
                                        : render_number(value);
      };
      if (bounded_below || bounded_above) {
        out += " in [";
        out += bounded_below ? bound(min_value) : "-inf";
        out += ", ";
        out += bounded_above ? bound(max_value) : "inf";
        out += "]";
      }
      return out;
    }
    case OptionType::kEnum: {
      std::string out;
      for (const auto& value : enum_values) {
        if (!out.empty()) out.push_back('|');
        out += value;
      }
      return out;
    }
  }
  return "unknown";
}

std::string option_table(const std::vector<OptionSpec>& specs, const std::string& indent) {
  if (specs.empty()) return {};
  std::size_t name_width = 0;
  std::size_t type_width = 0;
  std::size_t default_width = 0;
  for (const auto& spec : specs) {
    name_width = std::max(name_width, spec.name.size());
    type_width = std::max(type_width, spec.type_label().size());
    default_width = std::max(default_width, std::max<std::size_t>(spec.default_value.size(), 1));
  }
  std::string out;
  for (const auto& spec : specs) {
    std::string line = indent;
    const auto pad = [&line](const std::string& text, std::size_t width) {
      line += text;
      line.append(width - text.size() + 2, ' ');
    };
    pad(spec.name, name_width);
    pad(spec.type_label(), type_width);
    pad(spec.default_value.empty() ? "-" : spec.default_value, default_width);
    line += spec.help;
    out += line;
    out.push_back('\n');
  }
  return out;
}

int edit_distance(const std::string& a, const std::string& b) {
  // Single-row DP; the strings here are option keys (tens of characters).
  std::vector<int> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = static_cast<int>(j);
  for (std::size_t i = 1; i <= a.size(); ++i) {
    int diagonal = row[0];
    row[0] = static_cast<int>(i);
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const int substitute = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitute});
    }
  }
  return row[b.size()];
}

std::string closest_option_name(const std::string& key, const std::vector<OptionSpec>& specs) {
  constexpr int kMaxSuggestDistance = 2;
  std::string best;
  int best_distance = kMaxSuggestDistance + 1;
  for (const auto& spec : specs) {
    const int distance = edit_distance(key, spec.name);
    if (distance < best_distance) {
      best_distance = distance;
      best = spec.name;
    }
  }
  return best;
}

}  // namespace malsched
