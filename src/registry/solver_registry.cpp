#include "registry/solver_registry.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "baselines/naive.hpp"
#include "baselines/two_phase.hpp"
#include "baselines/two_shelves_32.hpp"
#include "core/dual_workspace.hpp"
#include "core/mrt_scheduler.hpp"
#include "graph/graph_scheduler.hpp"
#include "graph/task_graph.hpp"
#include "model/lower_bounds.hpp"
#include "sched/local_search.hpp"
#include "sched/validate.hpp"
#include "support/failpoint.hpp"
#include "support/stopwatch.hpp"

namespace malsched {

namespace {

SolverResult solve_mrt(const Instance& instance, const SolverOptions& options,
                       const SolveContext& context) {
  MrtOptions mrt;
  mrt.search.epsilon = options.get_double("epsilon", mrt.search.epsilon);
  mrt.use_compaction = options.get_bool("compaction", mrt.use_compaction);
  mrt.pick_best_branch = options.get_bool("pick_best_branch", mrt.pick_best_branch);
  mrt.enable_two_shelf = options.get_bool("two_shelf", mrt.enable_two_shelf);
  mrt.enable_canonical_list = options.get_bool("canonical_list", mrt.enable_canonical_list);
  mrt.enable_malleable_list = options.get_bool("malleable_list", mrt.enable_malleable_list);
  mrt.use_workspace = options.get_bool("workspace", mrt.use_workspace);
  mrt.snap_to_breakpoints = options.get_bool("snap", mrt.snap_to_breakpoints);

  // One CancelCheck copied into every branch's options: the dual loop polls
  // per guess, the canonical-list placement and knapsack branch-and-bound
  // tick per task/node, so cancel() and deadline expiry stop a running mrt
  // solve within one check stride. Unarmed (the default) every check is a
  // no-op and the solve is byte-identical to the pre-deadline tree.
  const CancelCheck check(context.cancel, context.deadline_seconds);
  mrt.search.cancel = check;
  mrt.canonical_list.cancel = check;
  mrt.two_shelf.cancel = check;

  // The PR 3 reuse hook: a long-lived front end (SchedulerService worker)
  // may offer a per-thread workspace already built for this instance; the
  // provider is only consulted when the workspace path is on, so legacy
  // (workspace=0) solves never pay for a build.
  DualWorkspace* reuse = nullptr;
  if (mrt.use_workspace && context.workspace_provider) {
    reuse = context.workspace_provider(instance);
  }
  auto result = mrt_schedule(instance, mrt, reuse);

  SolverResult out{"", std::move(result.schedule), 0.0, result.lower_bound, 0.0, 0.0, {}};
  out.stats.emplace_back("iterations", result.iterations);
  out.stats.emplace_back("gaps", result.gaps);
  out.stats.emplace_back("final_guess", result.final_guess);
  if (mrt.use_workspace) {
    out.stats.emplace_back("workspace.allocations",
                           static_cast<double>(result.workspace_allocations));
    out.stats.emplace_back("workspace.canonical_evals",
                           static_cast<double>(result.canonical_evals));
  }
  for (int b = 0; b < kDualBranchCount; ++b) {
    const int count = result.branch_counts[static_cast<std::size_t>(b)];
    if (count > 0) {
      out.stats.emplace_back("branch." + to_string(static_cast<DualBranch>(b)), count);
    }
  }
  return out;
}

// Defaults shared between each solver body and its spec table, so the
// rendered help cannot drift from what the solver actually falls back to
// (struct-carried defaults -- MrtOptions, TwoPhaseOptions -- are read from
// the structs directly; these cover the parameters passed as plain
// function arguments).
constexpr const char* kDefaultRigid = "ffdh";
constexpr const char* kDefaultPolicy = "half-speedup";
constexpr const char* kDefaultStrategy = "layered";
constexpr double kTwoShelves32DefaultEpsilon = 0.01;
constexpr double kGraphDefaultEpsilon = 0.02;

SolverResult solve_two_phase(const Instance& instance, const SolverOptions& options) {
  TwoPhaseOptions two_phase;
  const std::string rigid = options.get_string("rigid", kDefaultRigid);
  if (rigid == "ffdh") {
    two_phase.rigid = RigidAlgo::kFfdh;
  } else if (rigid == "nfdh") {
    two_phase.rigid = RigidAlgo::kNfdh;
  } else if (rigid == "list") {
    two_phase.rigid = RigidAlgo::kListSchedule;
  } else {
    throw std::invalid_argument("two_phase: unknown rigid algorithm '" + rigid +
                                "' (expected ffdh, nfdh, or list)");
  }
  two_phase.max_candidates = options.get_int("max_candidates", two_phase.max_candidates);
  auto result = two_phase_schedule(instance, two_phase);

  SolverResult out{"", std::move(result.schedule), 0.0, 0.0, 0.0, 0.0, {}};
  out.stats.emplace_back("candidates_tried", result.candidates_tried);
  out.stats.emplace_back("best_threshold", result.best_threshold);
  return out;
}

SolverResult solve_naive(const Instance& instance, const SolverOptions& options) {
  const std::string policy = options.get_string("policy", kDefaultPolicy);
  Schedule schedule = [&] {
    if (policy == "half-speedup") return half_max_speedup_schedule(instance);
    if (policy == "lpt-seq") return lpt_sequential_schedule(instance);
    if (policy == "gang") return gang_schedule(instance);
    throw std::invalid_argument("naive: unknown policy '" + policy +
                                "' (expected half-speedup, lpt-seq, or gang)");
  }();
  return SolverResult{"", std::move(schedule), 0.0, 0.0, 0.0, 0.0, {}};
}

SolverResult solve_two_shelves_32(const Instance& instance, const SolverOptions& options) {
  auto result = three_halves_schedule(
      instance, options.get_double("epsilon", kTwoShelves32DefaultEpsilon));
  return SolverResult{"", std::move(result.schedule), 0.0, result.lower_bound, 0.0, 0.0, {}};
}

SolverResult solve_graph(const Instance& instance, const SolverOptions& options) {
  // The registry interface is instance-based; viewed as a DAG with no edges
  // the graph schedulers apply directly (front ends with real precedence
  // graphs call them natively).
  const TaskGraph graph(instance.machines(), instance.tasks(), {});
  const std::string strategy = options.get_string("strategy", kDefaultStrategy);
  auto result = [&] {
    if (strategy == "layered") {
      return layered_graph_schedule(graph, options.get_double("epsilon", kGraphDefaultEpsilon));
    }
    if (strategy == "ready-list") return ready_list_graph_schedule(graph);
    throw std::invalid_argument("graph: unknown strategy '" + strategy +
                                "' (expected layered or ready-list)");
  }();
  SolverResult out{"", std::move(result.schedule), 0.0, result.lower_bound, 0.0, 0.0, {}};
  out.stats.emplace_back("levels", graph.level_count());
  return out;
}

/// Declared schemas. Defaults are rendered from the same values the
/// solvers fall back to (option structs or the shared constants above), so
/// the help text tracks the code.
std::vector<OptionSpec> mrt_specs() {
  const MrtOptions defaults;
  return {
      OptionSpec::real("epsilon", defaults.search.epsilon, 1e-9, 10.0,
                       "dual-search termination: stop when hi <= (1+epsilon)*lo"),
      OptionSpec::boolean("compaction", defaults.use_compaction,
                          "slide tasks earlier after construction (never hurts the bound)"),
      OptionSpec::boolean("pick_best_branch", defaults.pick_best_branch,
                          "evaluate every branch per step, keep the shortest schedule"),
      OptionSpec::boolean("two_shelf", defaults.enable_two_shelf,
                          "enable the Section 4 knapsack two-shelf branch"),
      OptionSpec::boolean("canonical_list", defaults.enable_canonical_list,
                          "enable the Section 3.2 canonical list branch"),
      OptionSpec::boolean("malleable_list", defaults.enable_malleable_list,
                          "enable the Section 3.1 malleable list fallback branch"),
      OptionSpec::boolean("workspace", defaults.use_workspace,
                          "run through the breakpoint-indexed DualWorkspace hot path"),
      OptionSpec::boolean("snap", defaults.snap_to_breakpoints,
                          "breakpoint-snapped dual search (needs workspace=1)"),
  };
}

std::vector<OptionSpec> two_phase_specs() {
  const TwoPhaseOptions defaults;
  return {
      OptionSpec::enumeration("rigid", kDefaultRigid, {"ffdh", "nfdh", "list"},
                              "rigid-packing algorithm for the second phase"),
      OptionSpec::integer("max_candidates", defaults.max_candidates, 1, 1 << 20,
                          "allotment thresholds tried in the first phase"),
  };
}

std::vector<OptionSpec> naive_specs() {
  return {
      OptionSpec::enumeration("policy", kDefaultPolicy, {"half-speedup", "lpt-seq", "gang"},
                              "which practitioner anchor to run"),
  };
}

std::vector<OptionSpec> two_shelves_32_specs() {
  return {
      OptionSpec::real("epsilon", kTwoShelves32DefaultEpsilon, 1e-9, 10.0,
                       "dual-search termination: stop when hi <= (1+epsilon)*lo"),
  };
}

std::vector<OptionSpec> graph_specs() {
  return {
      OptionSpec::enumeration("strategy", kDefaultStrategy, {"layered", "ready-list"},
                              "layered sqrt(3) levels vs precedence-aware ready list"),
      OptionSpec::real("epsilon", kGraphDefaultEpsilon, 1e-9, 10.0,
                       "per-layer dual-search termination (layered strategy)"),
  };
}

SolverRegistry make_global_registry() {
  SolverRegistry registry;
  registry.add_with_context("mrt",
                            "sqrt(3)(1+eps) dual approximation of Mounie-Rapine-Trystram",
                            solve_mrt, mrt_specs(), /*contiguous=*/true,
                            /*reuses_workspace=*/true);
  registry.add("two_phase", "Turek/Ludwig two-phase baseline (allotment selection + packing)",
               solve_two_phase, two_phase_specs());
  registry.add("naive", "practitioner anchors: half-speedup, lpt-seq, or gang", solve_naive,
               naive_specs());
  registry.add("two_shelves_32", "heuristic 3/2 two-shelf dual search", solve_two_shelves_32,
               two_shelves_32_specs());
  registry.add("graph", "layered/ready-list DAG scheduler on the flat instance", solve_graph,
               graph_specs());
  return registry;
}

}  // namespace

SolverRegistry& SolverRegistry::global() {
  static SolverRegistry registry = make_global_registry();
  return registry;
}

void SolverRegistry::add(std::string name, std::string summary, SolverFn fn,
                         std::vector<OptionSpec> options, bool contiguous) {
  if (!fn) throw std::invalid_argument("SolverRegistry: null solver for '" + name + "'");
  add_with_context(
      std::move(name), std::move(summary),
      [fn = std::move(fn)](const Instance& instance, const SolverOptions& solver_options,
                           const SolveContext&) { return fn(instance, solver_options); },
      std::move(options), contiguous, /*reuses_workspace=*/false);
}

void SolverRegistry::add_with_context(std::string name, std::string summary, ContextSolverFn fn,
                                      std::vector<OptionSpec> options, bool contiguous,
                                      bool reuses_workspace) {
  if (name.empty()) throw std::invalid_argument("SolverRegistry: empty solver name");
  if (!fn) throw std::invalid_argument("SolverRegistry: null solver for '" + name + "'");
  if (entries_.count(name) > 0) {
    throw std::invalid_argument("SolverRegistry: duplicate solver '" + name + "'");
  }

  // Declared tables get the facade-level keys appended (unless the solver
  // already declared them), so `local_search=1`/`strict=0` validate for
  // every schema'd solver without each table repeating them.
  if (!options.empty()) {
    const auto declares = [&options](const char* key) {
      return std::any_of(options.begin(), options.end(),
                         [key](const OptionSpec& spec) { return spec.name == key; });
    };
    if (!declares("local_search")) {
      options.push_back(OptionSpec::boolean(
          "local_search", false, "makespan local-search post-pass (facade-level)"));
    }
    if (!declares("strict")) {
      options.push_back(OptionSpec::boolean(
          "strict", true, "reject unknown option keys (0 = ignore them)"));
    }
  }

  Entry entry{name, std::move(summary), "", std::move(fn), std::move(options), contiguous,
              reuses_workspace};

  // The option portion of the one-liner is derived, never hand-written, so
  // description() cannot drift from the declared schema.
  entry.description = entry.summary;
  if (!entry.options.empty()) {
    entry.description += " (options: ";
    for (std::size_t i = 0; i < entry.options.size(); ++i) {
      if (i > 0) entry.description += ", ";
      entry.description += entry.options[i].name;
    }
    entry.description += ")";
  }

  entries_.emplace(std::move(name), std::move(entry));
}

bool SolverRegistry::contains(const std::string& name) const { return entries_.count(name) > 0; }

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

const std::string& SolverRegistry::description(const std::string& name) const {
  return entry(name).description;
}

const std::vector<OptionSpec>& SolverRegistry::option_specs(const std::string& name) const {
  return entry(name).options;
}

std::string SolverRegistry::option_help(const std::string& name, const std::string& indent) const {
  return option_table(entry(name).options, indent);
}

bool SolverRegistry::reuses_workspace(const std::string& name) const {
  return entry(name).reuses_workspace;
}

const SolverRegistry::Entry& SolverRegistry::entry(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& n : names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("SolverRegistry: unknown solver '" + name + "' (registered: " +
                                known + ")");
  }
  return it->second;
}

SolverResult SolverRegistry::solve(const SolveRequest& request) const {
  return solve(request, SolveContext{});
}

SolverResult SolverRegistry::solve(const SolveRequest& request,
                                   const SolveContext& context) const {
  if (!request.instance.valid()) {
    throw std::invalid_argument("SolverRegistry: solve() on an empty InstanceHandle");
  }
  // Fold the request's own deadline knobs into the caller's context: the
  // budget anchors here (registry entry) for direct callers -- the service
  // anchors it earlier, at submit(), and passes the result through
  // context.deadline_seconds, so a queued wait counts against the budget.
  SolveContext merged = context;
  merged.deadline_seconds =
      merge_deadlines(merge_deadlines(request.deadline_seconds,
                                      budget_deadline(request.budget_seconds)),
                      context.deadline_seconds);
  return solve_impl(entry(request.solver), request.instance.instance(), request.options,
                    merged, request.instance.static_lower_bound());
}

SolverResult SolverRegistry::solve(const std::string& name, const Instance& instance,
                                   const SolverOptions& options) const {
  return solve(name, instance, options, SolveContext{});
}

SolverResult SolverRegistry::solve(const std::string& name, const Instance& instance,
                                   const SolverOptions& options,
                                   const SolveContext& context) const {
  return solve_impl(entry(name), instance, options, context, makespan_lower_bound(instance));
}

SolverResult SolverRegistry::solve_impl(const Entry& solver, const Instance& instance,
                                        const SolverOptions& options,
                                        const SolveContext& context, double static_lb) const {
  const Stopwatch stopwatch;
  MALSCHED_FAILPOINT("solver.entry");

  // An already-cancelled or already-expired request fails here, before any
  // work -- the cheap exit that makes tiny solves honor deadlines too (their
  // hot loops may finish inside one check stride).
  const CancelCheck check(context.cancel, context.deadline_seconds);
  check.poll();

  // Free-form solvers (empty declared table) skip schema validation -- the
  // forward-compat path for custom registrations without a spec.
  if (!solver.options.empty()) options.validate(solver.options);

  SolverResult result = solver.fn(instance, options, context);
  result.solver = solver.name;

  if (options.get_bool("local_search", false)) {
    auto improved = improve_schedule(instance, result.schedule);
    result.stats.emplace_back("local_search.rounds", improved.rounds);
    result.schedule = std::move(improved.schedule);
  }

  // Every solver-specific bound is certified; the area/critical-path bound
  // always is, so the facade reports the tighter of the two. `static_lb` is
  // that bound -- precomputed at intern() on the SolveRequest path, derived
  // per call on the legacy one.
  result.lower_bound = std::max(result.lower_bound, static_lb);
  result.makespan = result.schedule.makespan();
  result.ratio = result.lower_bound > 0.0 ? result.makespan / result.lower_bound : 1.0;

  ValidationOptions validation;
  validation.require_contiguous = solver.contiguous;
  const auto report = validate_schedule(result.schedule, instance, validation);
  if (!report.ok) {
    throw std::runtime_error("SolverRegistry: solver '" + solver.name +
                             "' produced an invalid schedule:\n" + report.str());
  }

  result.wall_seconds = stopwatch.seconds();
  return result;
}

SolverResult solve(const std::string& solver, const Instance& instance,
                   const SolverOptions& options) {
  return SolverRegistry::global().solve(solver, instance, options);
}

}  // namespace malsched
