#include "registry/request.hpp"

#include <stdexcept>

#include "support/cancellation.hpp"

namespace malsched {

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOk: return "ok";
    case SolveStatus::kError: return "error";
    case SolveStatus::kCancelled: return "cancelled";
  }
  return "unknown";
}

std::string to_string(SolveErrorCode code) {
  switch (code) {
    case SolveErrorCode::kNone: return "none";
    case SolveErrorCode::kInvalidOption: return "invalid_option";
    case SolveErrorCode::kCancelled: return "cancelled";
    case SolveErrorCode::kSolverFailure: return "solver_failure";
    case SolveErrorCode::kShutdown: return "shutdown";
    case SolveErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case SolveErrorCode::kRejected: return "rejected";
  }
  return "unknown";
}

SolveError classify_solve_exception(const std::exception& err) {
  // The cancellation types first: both derive from std::runtime_error, so
  // they must not fall through to the generic solver-failure bucket.
  if (dynamic_cast<const CancelledError*>(&err) != nullptr) {
    return {SolveErrorCode::kCancelled, err.what()};
  }
  if (dynamic_cast<const DeadlineExceededError*>(&err) != nullptr) {
    return {SolveErrorCode::kDeadlineExceeded, err.what()};
  }
  if (dynamic_cast<const std::invalid_argument*>(&err) != nullptr) {
    return {SolveErrorCode::kInvalidOption, err.what()};
  }
  return {SolveErrorCode::kSolverFailure, err.what()};
}

}  // namespace malsched
