#include "registry/solver_options.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace malsched {

namespace {

std::string lowercase(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return text;
}

}  // namespace

SolverOptions SolverOptions::from_tokens(const std::vector<std::string>& tokens) {
  SolverOptions options;
  for (const auto& token : tokens) {
    if (token.empty()) continue;
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      options.set(token, "1");
      continue;
    }
    if (eq == 0) throw std::invalid_argument("SolverOptions: empty key in '" + token + "'");
    options.set(token.substr(0, eq), token.substr(eq + 1));
  }
  return options;
}

SolverOptions SolverOptions::from_string(const std::string& spec) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : spec) {
    if (c == ',' || c == ' ' || c == '\t') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return from_tokens(tokens);
}

SolverOptions& SolverOptions::set(std::string key, std::string value) {
  if (key.empty()) throw std::invalid_argument("SolverOptions: empty key");
  entries_[std::move(key)] = std::move(value);
  return *this;
}

bool SolverOptions::has(const std::string& key) const { return entries_.count(key) > 0; }

std::string SolverOptions::get_string(const std::string& key, const std::string& fallback) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? fallback : it->second;
}

double SolverOptions::get_double(const std::string& key, double fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument("trailing characters");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("SolverOptions: option '" + key + "' expects a number, got '" +
                                it->second + "'");
  }
}

int SolverOptions::get_int(const std::string& key, int fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const int value = std::stoi(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument("trailing characters");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("SolverOptions: option '" + key + "' expects an integer, got '" +
                                it->second + "'");
  }
}

namespace {

/// One readable line naming every declared key, for unknown-key errors.
std::string known_keys(const std::vector<OptionSpec>& specs) {
  std::string out;
  for (const auto& spec : specs) {
    if (!out.empty()) out += ", ";
    out += spec.name;
  }
  return out;
}

}  // namespace

void SolverOptions::validate(const std::vector<OptionSpec>& specs) const {
  const bool strict = get_bool("strict", true);
  for (const auto& [key, value] : entries_) {
    const OptionSpec* spec = nullptr;
    for (const auto& candidate : specs) {
      if (candidate.name == key) {
        spec = &candidate;
        break;
      }
    }
    if (spec == nullptr) {
      if (!strict) continue;
      std::string message = "SolverOptions: unknown option '" + key + "'";
      const std::string suggestion = closest_option_name(key, specs);
      if (!suggestion.empty()) message += " (did you mean '" + suggestion + "'?)";
      message += "; declared options: " + known_keys(specs) +
                 " -- pass strict=0 to ignore undeclared keys";
      throw std::invalid_argument(message);
    }
    switch (spec->type) {
      case OptionType::kBool:
        static_cast<void>(get_bool(key, false));
        break;
      case OptionType::kInt: {
        const int parsed = get_int(key, 0);
        if (!(parsed >= spec->min_value && parsed <= spec->max_value)) {
          throw std::invalid_argument("SolverOptions: option '" + key + "' = " + value +
                                      " out of range (expected " + spec->type_label() + ")");
        }
        break;
      }
      case OptionType::kDouble: {
        // Negated conjunction, not disjoined comparisons: NaN compares
        // false to everything, so `< min || > max` would wave it through.
        const double parsed = get_double(key, 0.0);
        if (!(parsed >= spec->min_value && parsed <= spec->max_value)) {
          throw std::invalid_argument("SolverOptions: option '" + key + "' = " + value +
                                      " out of range (expected " + spec->type_label() + ")");
        }
        break;
      }
      case OptionType::kEnum: {
        const bool allowed = std::find(spec->enum_values.begin(), spec->enum_values.end(),
                                       value) != spec->enum_values.end();
        if (!allowed) {
          throw std::invalid_argument("SolverOptions: option '" + key + "' = '" + value +
                                      "' is not one of " + spec->type_label());
        }
        break;
      }
      case OptionType::kString:
        break;
    }
  }
}

bool SolverOptions::get_bool(const std::string& key, bool fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  const std::string value = lowercase(it->second);
  if (value == "1" || value == "true" || value == "yes" || value == "on") return true;
  if (value == "0" || value == "false" || value == "no" || value == "off") return false;
  throw std::invalid_argument("SolverOptions: option '" + key + "' expects a boolean, got '" +
                              it->second + "'");
}

std::string SolverOptions::str() const {
  std::string out;
  for (const auto& [key, value] : entries_) {
    if (!out.empty()) out.push_back(',');
    out += key;
    out.push_back('=');
    out += value;
  }
  return out;
}

}  // namespace malsched
