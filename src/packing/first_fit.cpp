#include "packing/first_fit.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "support/math_utils.hpp"

namespace malsched {

namespace {

/// The First Fit placement rule, shared by every first-fit entry point so
/// the feasibility test (and with it q3 = FF(S3) accounting in the
/// two-shelf construction) cannot drift between copies: lowest-index bin
/// whose load still admits `size`, or -1 to open a new bin.
int first_fit_bin_for(const std::vector<double>& loads, double size, double capacity) {
  for (std::size_t b = 0; b < loads.size(); ++b) {
    if (leq(loads[b] + size, capacity)) return static_cast<int>(b);
  }
  return -1;
}

BinPacking pack_in_order(std::span<const double> sizes, std::span<const int> order,
                         double capacity) {
  BinPacking packing;
  for (const int item : order) {
    const double size = sizes[static_cast<std::size_t>(item)];
    if (!(size > 0.0)) throw std::invalid_argument("first_fit: item sizes must be positive");
    if (!leq(size, capacity)) {
      throw std::invalid_argument("first_fit: item larger than bin capacity");
    }
    const int bin = first_fit_bin_for(packing.loads, size, capacity);
    if (bin >= 0) {
      packing.bins[static_cast<std::size_t>(bin)].push_back(item);
      packing.loads[static_cast<std::size_t>(bin)] += size;
    } else {
      packing.bins.push_back({item});
      packing.loads.push_back(size);
    }
  }
  return packing;
}

}  // namespace

BinPacking pack_best_fit_in_order(std::span<const double> sizes, std::span<const int> order,
                                  double capacity) {
  BinPacking packing;
  for (const int item : order) {
    const double size = sizes[static_cast<std::size_t>(item)];
    if (!(size > 0.0)) throw std::invalid_argument("best_fit: item sizes must be positive");
    if (!leq(size, capacity)) {
      throw std::invalid_argument("best_fit: item larger than bin capacity");
    }
    int best_bin = -1;
    double best_load = -1.0;
    for (std::size_t b = 0; b < packing.bins.size(); ++b) {
      if (leq(packing.loads[b] + size, capacity) && packing.loads[b] > best_load) {
        best_bin = static_cast<int>(b);
        best_load = packing.loads[b];
      }
    }
    if (best_bin < 0) {
      packing.bins.push_back({item});
      packing.loads.push_back(size);
    } else {
      packing.bins[static_cast<std::size_t>(best_bin)].push_back(item);
      packing.loads[static_cast<std::size_t>(best_bin)] += size;
    }
  }
  return packing;
}

void first_fit_into(std::span<const double> sizes, double capacity, BinPacking& out) {
  out.loads.clear();
  std::size_t used = 0;  // bins [0, used) are live; the rest keep capacity
  for (std::size_t item = 0; item < sizes.size(); ++item) {
    const double size = sizes[item];
    if (!(size > 0.0)) throw std::invalid_argument("first_fit: item sizes must be positive");
    if (!leq(size, capacity)) {
      throw std::invalid_argument("first_fit: item larger than bin capacity");
    }
    const int bin = first_fit_bin_for(out.loads, size, capacity);
    if (bin >= 0) {
      out.bins[static_cast<std::size_t>(bin)].push_back(static_cast<int>(item));
      out.loads[static_cast<std::size_t>(bin)] += size;
    } else {
      if (used == out.bins.size()) out.bins.emplace_back();
      out.bins[used].clear();
      out.bins[used].push_back(static_cast<int>(item));
      ++used;
      out.loads.push_back(size);
    }
  }
  // Spare slots past `used` are cleared but kept (bin_count() reads loads),
  // so a reused packing never re-allocates inner vectors it already owned.
  for (std::size_t b = used; b < out.bins.size(); ++b) out.bins[b].clear();
}

BinPacking first_fit(std::span<const double> sizes, double capacity) {
  BinPacking packing;
  first_fit_into(sizes, capacity, packing);
  return packing;
}

BinPacking best_fit(std::span<const double> sizes, double capacity) {
  std::vector<int> order(sizes.size());
  std::iota(order.begin(), order.end(), 0);
  return pack_best_fit_in_order(sizes, order, capacity);
}

BinPacking best_fit_decreasing(std::span<const double> sizes, double capacity) {
  std::vector<int> order(sizes.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return sizes[static_cast<std::size_t>(a)] > sizes[static_cast<std::size_t>(b)];
  });
  return pack_best_fit_in_order(sizes, order, capacity);
}

BinPacking first_fit_decreasing(std::span<const double> sizes, double capacity) {
  std::vector<int> order(sizes.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return sizes[static_cast<std::size_t>(a)] > sizes[static_cast<std::size_t>(b)];
  });
  return pack_in_order(sizes, order, capacity);
}

int first_fit_bin_count(std::span<const double> sizes, double capacity) {
  return first_fit(sizes, capacity).bin_count();
}

int first_fit_bin_count_reusing(std::span<const double> sizes, double capacity,
                                std::vector<double>& loads) {
  // Same placement rule and load accumulation order as first_fit_into (both
  // go through first_fit_bin_for), so the count is byte-identical; only the
  // bin membership lists are not materialized.
  loads.clear();
  for (const double size : sizes) {
    if (!(size > 0.0)) throw std::invalid_argument("first_fit: item sizes must be positive");
    if (!leq(size, capacity)) {
      throw std::invalid_argument("first_fit: item larger than bin capacity");
    }
    const int bin = first_fit_bin_for(loads, size, capacity);
    if (bin >= 0) {
      loads[static_cast<std::size_t>(bin)] += size;
    } else {
      loads.push_back(size);
    }
  }
  return static_cast<int>(loads.size());
}

bool first_fit_half_full_bound(const BinPacking& packing, double capacity) {
  const int k = packing.bin_count();
  if (k <= 1) return true;
  const double total = std::accumulate(packing.loads.begin(), packing.loads.end(), 0.0);
  return total > capacity * static_cast<double>(k - 1) / 2.0 - kAbsEps;
}

}  // namespace malsched
