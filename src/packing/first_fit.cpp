#include "packing/first_fit.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "support/math_utils.hpp"

namespace malsched {

namespace {

BinPacking pack_in_order(std::span<const double> sizes, std::span<const int> order,
                         double capacity) {
  BinPacking packing;
  for (const int item : order) {
    const double size = sizes[static_cast<std::size_t>(item)];
    if (!(size > 0.0)) throw std::invalid_argument("first_fit: item sizes must be positive");
    if (!leq(size, capacity)) {
      throw std::invalid_argument("first_fit: item larger than bin capacity");
    }
    bool placed = false;
    for (std::size_t b = 0; b < packing.bins.size(); ++b) {
      if (leq(packing.loads[b] + size, capacity)) {
        packing.bins[b].push_back(item);
        packing.loads[b] += size;
        placed = true;
        break;
      }
    }
    if (!placed) {
      packing.bins.push_back({item});
      packing.loads.push_back(size);
    }
  }
  return packing;
}

}  // namespace

BinPacking pack_best_fit_in_order(std::span<const double> sizes, std::span<const int> order,
                                  double capacity) {
  BinPacking packing;
  for (const int item : order) {
    const double size = sizes[static_cast<std::size_t>(item)];
    if (!(size > 0.0)) throw std::invalid_argument("best_fit: item sizes must be positive");
    if (!leq(size, capacity)) {
      throw std::invalid_argument("best_fit: item larger than bin capacity");
    }
    int best_bin = -1;
    double best_load = -1.0;
    for (std::size_t b = 0; b < packing.bins.size(); ++b) {
      if (leq(packing.loads[b] + size, capacity) && packing.loads[b] > best_load) {
        best_bin = static_cast<int>(b);
        best_load = packing.loads[b];
      }
    }
    if (best_bin < 0) {
      packing.bins.push_back({item});
      packing.loads.push_back(size);
    } else {
      packing.bins[static_cast<std::size_t>(best_bin)].push_back(item);
      packing.loads[static_cast<std::size_t>(best_bin)] += size;
    }
  }
  return packing;
}

BinPacking first_fit(std::span<const double> sizes, double capacity) {
  std::vector<int> order(sizes.size());
  std::iota(order.begin(), order.end(), 0);
  return pack_in_order(sizes, order, capacity);
}

BinPacking best_fit(std::span<const double> sizes, double capacity) {
  std::vector<int> order(sizes.size());
  std::iota(order.begin(), order.end(), 0);
  return pack_best_fit_in_order(sizes, order, capacity);
}

BinPacking best_fit_decreasing(std::span<const double> sizes, double capacity) {
  std::vector<int> order(sizes.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return sizes[static_cast<std::size_t>(a)] > sizes[static_cast<std::size_t>(b)];
  });
  return pack_best_fit_in_order(sizes, order, capacity);
}

BinPacking first_fit_decreasing(std::span<const double> sizes, double capacity) {
  std::vector<int> order(sizes.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return sizes[static_cast<std::size_t>(a)] > sizes[static_cast<std::size_t>(b)];
  });
  return pack_in_order(sizes, order, capacity);
}

int first_fit_bin_count(std::span<const double> sizes, double capacity) {
  return first_fit(sizes, capacity).bin_count();
}

bool first_fit_half_full_bound(const BinPacking& packing, double capacity) {
  const int k = packing.bin_count();
  if (k <= 1) return true;
  const double total = std::accumulate(packing.loads.begin(), packing.loads.end(), 0.0);
  return total > capacity * static_cast<double>(k - 1) / 2.0 - kAbsEps;
}

}  // namespace malsched
