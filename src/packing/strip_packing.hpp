#pragma once

#include <span>
#include <vector>

/// Level-oriented 2-dimensional strip packing.
///
/// The paper's related work (Turek/Wolf/Yu, Ludwig) reduces non-malleable
/// parallel-task scheduling to strip packing: rectangles of integer width
/// (processors) and real height (time) packed into a strip of width m.
/// We implement the two classical level algorithms analyzed by Coffman,
/// Garey, Johnson and Tarjan [5]:
///   * NFDH (Next Fit Decreasing Height):  NFDH(L) <= 2 OPT + h_max
///   * FFDH (First Fit Decreasing Height): FFDH(L) <= 1.7 OPT + h_max
/// Both produce *contiguous* placements, which is what the baselines need.
namespace malsched {

/// A rectangle to pack: `width` processors for `height` time.
struct Rect {
  int width{1};
  double height{0.0};
};

/// Placement of rectangle `item` at processor column `x`, time `y`.
struct RectPlacement {
  int item{0};
  int x{0};
  double y{0.0};
};

/// Result of a strip packing run.
struct StripPacking {
  std::vector<RectPlacement> placements;
  double height{0.0};  ///< makespan of the packing
  int levels{0};       ///< number of levels (shelves) opened
};

/// Next Fit Decreasing Height into a strip of width `strip_width`.
/// Throws std::invalid_argument if any rectangle is wider than the strip.
[[nodiscard]] StripPacking nfdh(std::span<const Rect> rects, int strip_width);

/// First Fit Decreasing Height into a strip of width `strip_width`.
[[nodiscard]] StripPacking ffdh(std::span<const Rect> rects, int strip_width);

/// Validity check used by the tests: placements within the strip, pairwise
/// non-overlapping, heights consistent with `height`.
[[nodiscard]] bool is_valid_packing(const StripPacking& packing, std::span<const Rect> rects,
                                    int strip_width);

}  // namespace malsched
