#pragma once

#include <span>
#include <vector>

/// One-dimensional First Fit packing.
///
/// Section 4.1 of the paper packs the "small" sequential tasks (canonical
/// time <= 1/2) onto shelf processors with the First Fit rule; FF(S, d)
/// denotes the number of processors First Fit needs to pack the set S under
/// time deadline d. The paper only relies on the elementary property that if
/// FF(S, d) > 1 then the total size of S exceeds d * FF(S, d) / 2 (every bin
/// but possibly one is more than half full); `first_fit_half_full_bound`
/// exposes that check for the tests.
namespace malsched {

/// Result of a 1-D packing: bin b holds item indices `bins[b]` whose sizes
/// sum to `loads[b] <= capacity`. `bins` may keep cleared spare slots past
/// bin_count() (first_fit_into retains them so reused packings keep their
/// inner capacity); `loads` always has exactly bin_count() entries.
struct BinPacking {
  std::vector<std::vector<int>> bins;
  std::vector<double> loads;

  [[nodiscard]] int bin_count() const noexcept { return static_cast<int>(loads.size()); }
};

/// First Fit: items in the given order, each into the lowest-index bin that
/// still has room. Throws std::invalid_argument if an item exceeds the
/// capacity (up to tolerance).
[[nodiscard]] BinPacking first_fit(std::span<const double> sizes, double capacity);

/// First Fit into caller-owned storage -- identical packing, but the bin and
/// load vectors (and the inner per-bin vectors, up to shrinkage) retain
/// their capacity across calls, so hot loops repack without fresh heap
/// allocation after warm-up. This is the implementation first_fit()
/// delegates to, so the two can never drift.
void first_fit_into(std::span<const double> sizes, double capacity, BinPacking& out);

/// First Fit Decreasing: sorts by non-increasing size first (the classical
/// 11/9 OPT + 4 bound, Johnson et al. [11] in the paper's references).
[[nodiscard]] BinPacking first_fit_decreasing(std::span<const double> sizes, double capacity);

/// Best Fit: each item into the *fullest* bin that still has room.
[[nodiscard]] BinPacking best_fit(std::span<const double> sizes, double capacity);

/// Best Fit Decreasing.
[[nodiscard]] BinPacking best_fit_decreasing(std::span<const double> sizes, double capacity);

/// FF(S, d) of the paper: number of bins First Fit opens.
[[nodiscard]] int first_fit_bin_count(std::span<const double> sizes, double capacity);

/// Identical count, but the bin loads live in a caller-owned buffer so hot
/// loops (the two-shelf partition recomputed at every dual guess) open no
/// heap allocation after warm-up.
[[nodiscard]] int first_fit_bin_count_reusing(std::span<const double> sizes, double capacity,
                                              std::vector<double>& loads);

/// The property the paper quotes: with k = FF(S, d) bins, total size
/// > d * (k - 1) / 2 (all bins except possibly the last are pairwise
/// incompatible). Returns true when the packing satisfies it.
[[nodiscard]] bool first_fit_half_full_bound(const BinPacking& packing, double capacity);

}  // namespace malsched
