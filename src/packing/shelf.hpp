#pragma once

#include <optional>

/// Contiguous processor allocation within a single shelf.
///
/// A shelf is a horizontal band of the Gantt chart in which tasks are placed
/// side by side; processors are a row 0..m-1 and each task takes a contiguous
/// interval. This tiny allocator hands out intervals left to right and is
/// shared by the two-shelf construction (core/two_shelf) and the baselines.
namespace malsched {

class ShelfAllocator {
 public:
  explicit ShelfAllocator(int machines) noexcept : machines_(machines) {}

  /// Reserves `width` contiguous processors; returns the first index, or
  /// std::nullopt when fewer than `width` remain.
  [[nodiscard]] std::optional<int> allocate(int width) noexcept {
    if (width < 1 || next_ + width > machines_) return std::nullopt;
    const int first = next_;
    next_ += width;
    return first;
  }

  /// Processors handed out so far.
  [[nodiscard]] int used() const noexcept { return next_; }

  /// Processors still free.
  [[nodiscard]] int remaining() const noexcept { return machines_ - next_; }

 private:
  int machines_;
  int next_{0};
};

}  // namespace malsched
