#include "packing/strip_packing.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "support/math_utils.hpp"

namespace malsched {

namespace {

struct Level {
  double y{0.0};
  double height{0.0};
  int used_width{0};
};

std::vector<int> by_decreasing_height(std::span<const Rect> rects) {
  std::vector<int> order(rects.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return rects[static_cast<std::size_t>(a)].height > rects[static_cast<std::size_t>(b)].height;
  });
  return order;
}

void check_widths(std::span<const Rect> rects, int strip_width) {
  for (const auto& rect : rects) {
    if (rect.width < 1 || rect.width > strip_width) {
      throw std::invalid_argument("strip packing: rectangle width outside [1, strip_width]");
    }
    if (!(rect.height > 0.0)) {
      throw std::invalid_argument("strip packing: rectangle height must be positive");
    }
  }
}

}  // namespace

StripPacking nfdh(std::span<const Rect> rects, int strip_width) {
  check_widths(rects, strip_width);
  StripPacking result;
  const auto order = by_decreasing_height(rects);
  Level current;
  bool open = false;
  for (const int item : order) {
    const auto& rect = rects[static_cast<std::size_t>(item)];
    if (!open || current.used_width + rect.width > strip_width) {
      // Close the level and open the next one on top of it.
      const double next_y = open ? current.y + current.height : 0.0;
      current = Level{next_y, rect.height, 0};
      open = true;
      ++result.levels;
    }
    result.placements.push_back({item, current.used_width, current.y});
    current.used_width += rect.width;
    result.height = std::max(result.height, current.y + rect.height);
  }
  return result;
}

StripPacking ffdh(std::span<const Rect> rects, int strip_width) {
  check_widths(rects, strip_width);
  StripPacking result;
  const auto order = by_decreasing_height(rects);
  std::vector<Level> levels;
  for (const int item : order) {
    const auto& rect = rects[static_cast<std::size_t>(item)];
    Level* home = nullptr;
    for (auto& level : levels) {
      if (level.used_width + rect.width <= strip_width) {
        home = &level;
        break;
      }
    }
    if (home == nullptr) {
      const double next_y = levels.empty() ? 0.0 : levels.back().y + levels.back().height;
      levels.push_back(Level{next_y, rect.height, 0});
      home = &levels.back();
      ++result.levels;
    }
    result.placements.push_back({item, home->used_width, home->y});
    home->used_width += rect.width;
    result.height = std::max(result.height, home->y + rect.height);
  }
  return result;
}

bool is_valid_packing(const StripPacking& packing, std::span<const Rect> rects, int strip_width) {
  for (const auto& place : packing.placements) {
    const auto& rect = rects[static_cast<std::size_t>(place.item)];
    if (place.x < 0 || place.x + rect.width > strip_width) return false;
    if (place.y < -kAbsEps) return false;
    if (!leq(place.y + rect.height, packing.height)) return false;
  }
  for (std::size_t a = 0; a < packing.placements.size(); ++a) {
    for (std::size_t b = a + 1; b < packing.placements.size(); ++b) {
      const auto& pa = packing.placements[a];
      const auto& pb = packing.placements[b];
      const auto& ra = rects[static_cast<std::size_t>(pa.item)];
      const auto& rb = rects[static_cast<std::size_t>(pb.item)];
      const bool x_disjoint = pa.x + ra.width <= pb.x || pb.x + rb.width <= pa.x;
      const bool y_disjoint =
          leq(pa.y + ra.height, pb.y + kAbsEps) || leq(pb.y + rb.height, pa.y + kAbsEps);
      if (!x_disjoint && !y_disjoint) return false;
    }
  }
  return true;
}

}  // namespace malsched
