#pragma once

#include <string>
#include <vector>

#include "graph/task_graph.hpp"
#include "sched/schedule.hpp"

/// Schedulers for malleable tasks under precedence constraints (the paper's
/// Section 5 future work, implemented here as an extension).
///
/// Two strategies are provided:
///
///  * **Layered** -- partition the DAG by precedence depth; each layer is a
///    set of *independent* malleable tasks and is solved by the paper's
///    sqrt(3) scheduler; layers run back to back. Per layer the guarantee is
///    sqrt(3)(1+eps) against that layer's optimal, so the whole schedule is
///    within sqrt(3)(1+eps) of the best layered schedule (and is measured
///    honestly against the DAG lower bound).
///
///  * **Ready-list** -- event-driven greedy: whenever processors free up,
///    start ready tasks, allotting each the smallest processor count that
///    achieves half its maximal speedup (a robust moldable heuristic).
///    Serves as the baseline the layered scheduler is compared against.
namespace malsched {

/// Checks precedence feasibility on top of the machine-level validator:
/// every edge (u, v) must satisfy end(u) <= start(v).
[[nodiscard]] bool respects_precedence(const Schedule& schedule, const TaskGraph& graph);

struct GraphScheduleResult {
  Schedule schedule;
  double makespan;
  double lower_bound;  ///< DAG-aware bound: max(area, weighted critical path)
  double ratio;
};

/// Layered scheduling via the sqrt(3) algorithm per precedence level.
[[nodiscard]] GraphScheduleResult layered_graph_schedule(const TaskGraph& graph,
                                                         double epsilon = 0.02);

/// Event-driven ready-list baseline.
[[nodiscard]] GraphScheduleResult ready_list_graph_schedule(const TaskGraph& graph);

}  // namespace malsched
