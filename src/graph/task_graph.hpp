#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/instance.hpp"

/// Malleable tasks under precedence constraints -- the paper's announced
/// future work (Section 5: "the natural continuation of this work is to
/// study the scheduling of precedence graphs structures", with tree
/// structures from the ocean application as the first target).
namespace malsched {

/// A directed acyclic graph of malleable tasks on m identical processors.
/// Node indices are task indices; edges run predecessor -> successor.
class TaskGraph {
 public:
  /// Builds and validates: profiles cover m processors, edges in range,
  /// graph acyclic. Throws std::invalid_argument otherwise.
  TaskGraph(int machines, std::vector<MalleableTask> tasks,
            std::vector<std::pair<int, int>> edges);

  [[nodiscard]] int machines() const noexcept { return instance_.machines(); }
  [[nodiscard]] int size() const noexcept { return instance_.size(); }
  [[nodiscard]] const MalleableTask& task(int index) const { return instance_.task(index); }

  /// The node set viewed as an independent-task instance (for bounds).
  [[nodiscard]] const Instance& instance() const noexcept { return instance_; }

  [[nodiscard]] const std::vector<int>& predecessors(int task) const {
    return predecessors_.at(static_cast<std::size_t>(task));
  }
  [[nodiscard]] const std::vector<int>& successors(int task) const {
    return successors_.at(static_cast<std::size_t>(task));
  }

  /// A topological order (stable: ties by index).
  [[nodiscard]] const std::vector<int>& topological_order() const noexcept { return topo_; }

  /// Precedence depth: level(v) = 1 + max level over predecessors, roots 0.
  [[nodiscard]] const std::vector<int>& levels() const noexcept { return levels_; }
  [[nodiscard]] int level_count() const noexcept { return level_count_; }

  /// Longest path through the graph with node weights t_v(m) -- a makespan
  /// lower bound even with all processors devoted to the chain.
  [[nodiscard]] double critical_path_lower_bound() const;

  /// max(area bound, critical path bound).
  [[nodiscard]] double makespan_lower_bound() const;

 private:
  Instance instance_;
  std::vector<std::vector<int>> predecessors_;
  std::vector<std::vector<int>> successors_;
  std::vector<int> topo_;
  std::vector<int> levels_;
  int level_count_{0};
};

/// Random out-tree (root spawns children recursively) of malleable tasks --
/// the tree shape the paper cites from the ocean application.
struct TreeWorkloadOptions {
  int machines{32};
  int tasks{40};
  int max_children{3};
  double seq_time_lo{0.5};
  double seq_time_hi{6.0};
};
[[nodiscard]] TaskGraph random_out_tree(const TreeWorkloadOptions& options, std::uint64_t seed);

/// Random layered DAG (series-parallel-ish): `layers` layers, edges only
/// between consecutive layers, each node picking 1..3 predecessors.
struct LayeredDagOptions {
  int machines{32};
  int layers{5};
  int width{8};
  double seq_time_lo{0.5};
  double seq_time_hi{6.0};
};
[[nodiscard]] TaskGraph random_layered_dag(const LayeredDagOptions& options, std::uint64_t seed);

}  // namespace malsched
