#include "graph/graph_scheduler.hpp"

#include <algorithm>
#include <limits>

#include "core/mrt_scheduler.hpp"
#include "sched/sliding.hpp"
#include "support/math_utils.hpp"

namespace malsched {

bool respects_precedence(const Schedule& schedule, const TaskGraph& graph) {
  for (int v = 0; v < graph.size(); ++v) {
    if (!schedule.is_assigned(v)) return false;
    for (const int pred : graph.predecessors(v)) {
      if (!schedule.is_assigned(pred)) return false;
      if (!leq(schedule.of(pred).end(), schedule.of(v).start)) return false;
    }
  }
  return true;
}

GraphScheduleResult layered_graph_schedule(const TaskGraph& graph, double epsilon) {
  Schedule schedule(graph.machines(), graph.size());
  double clock = 0.0;

  for (int level = 0; level < graph.level_count(); ++level) {
    std::vector<int> members;
    for (int v = 0; v < graph.size(); ++v) {
      if (graph.levels()[static_cast<std::size_t>(v)] == level) members.push_back(v);
    }
    if (members.empty()) continue;

    std::vector<MalleableTask> layer_tasks;
    layer_tasks.reserve(members.size());
    for (const int v : members) layer_tasks.push_back(graph.task(v));
    const Instance layer(graph.machines(), std::move(layer_tasks));

    MrtOptions options;
    options.search.epsilon = epsilon;
    const auto result = mrt_schedule(layer, options);

    for (std::size_t k = 0; k < members.size(); ++k) {
      const auto& assignment = result.schedule.of(static_cast<int>(k));
      schedule.assign(members[k], clock + assignment.start, assignment.duration,
                      assignment.first_proc, assignment.num_procs);
    }
    clock += result.makespan;
  }

  const double lb = graph.makespan_lower_bound();
  const double makespan = schedule.makespan();
  return GraphScheduleResult{std::move(schedule), makespan, lb,
                             lb > 0.0 ? makespan / lb : 1.0};
}

GraphScheduleResult ready_list_graph_schedule(const TaskGraph& graph) {
  const int machines = graph.machines();
  Schedule schedule(machines, graph.size());
  std::vector<double> avail(static_cast<std::size_t>(machines), 0.0);

  for (const int v : graph.topological_order()) {
    // Smallest processor count reaching half the task's maximal speedup.
    const auto& task = graph.task(v);
    const double target = task.speedup(machines) / 2.0;
    int procs = 1;
    while (procs < machines && task.speedup(procs) < target) ++procs;
    const double duration = task.time(procs);

    double ready = 0.0;
    for (const int pred : graph.predecessors(v)) {
      ready = std::max(ready, schedule.of(pred).end());
    }

    const auto window_ready = sliding_window_max(avail, procs);
    double best_start = std::numeric_limits<double>::infinity();
    int column = 0;
    for (std::size_t s = 0; s < window_ready.size(); ++s) {
      const double start = std::max(window_ready[s], ready);
      if (start < best_start - kAbsEps) {
        best_start = start;
        column = static_cast<int>(s);
      }
    }
    schedule.assign(v, best_start, duration, column, procs);
    for (int j = column; j < column + procs; ++j) {
      avail[static_cast<std::size_t>(j)] = best_start + duration;
    }
  }

  const double lb = graph.makespan_lower_bound();
  const double makespan = schedule.makespan();
  return GraphScheduleResult{std::move(schedule), makespan, lb,
                             lb > 0.0 ? makespan / lb : 1.0};
}

}  // namespace malsched
