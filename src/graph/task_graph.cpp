#include "graph/task_graph.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "model/lower_bounds.hpp"
#include "model/speedup_models.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace malsched {

TaskGraph::TaskGraph(int machines, std::vector<MalleableTask> tasks,
                     std::vector<std::pair<int, int>> edges)
    : instance_(machines, std::move(tasks)),
      predecessors_(static_cast<std::size_t>(instance_.size())),
      successors_(static_cast<std::size_t>(instance_.size())) {
  const int n = instance_.size();
  for (const auto& [from, to] : edges) {
    if (from < 0 || from >= n || to < 0 || to >= n || from == to) {
      throw std::invalid_argument("TaskGraph: edge endpoint out of range");
    }
    successors_[static_cast<std::size_t>(from)].push_back(to);
    predecessors_[static_cast<std::size_t>(to)].push_back(from);
  }
  for (auto& list : successors_) std::sort(list.begin(), list.end());
  for (auto& list : predecessors_) std::sort(list.begin(), list.end());

  // Kahn's algorithm: stable topological order + cycle detection + levels.
  std::vector<int> in_degree(static_cast<std::size_t>(n), 0);
  for (int v = 0; v < n; ++v) {
    in_degree[static_cast<std::size_t>(v)] =
        static_cast<int>(predecessors_[static_cast<std::size_t>(v)].size());
  }
  levels_.assign(static_cast<std::size_t>(n), 0);
  std::priority_queue<int, std::vector<int>, std::greater<>> ready;
  for (int v = 0; v < n; ++v) {
    if (in_degree[static_cast<std::size_t>(v)] == 0) ready.push(v);
  }
  topo_.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const int v = ready.top();
    ready.pop();
    topo_.push_back(v);
    for (const int succ : successors_[static_cast<std::size_t>(v)]) {
      levels_[static_cast<std::size_t>(succ)] =
          std::max(levels_[static_cast<std::size_t>(succ)],
                   levels_[static_cast<std::size_t>(v)] + 1);
      if (--in_degree[static_cast<std::size_t>(succ)] == 0) ready.push(succ);
    }
  }
  if (static_cast<int>(topo_.size()) != n) {
    throw std::invalid_argument("TaskGraph: precedence graph contains a cycle");
  }
  for (const int level : levels_) level_count_ = std::max(level_count_, level + 1);
  if (n == 0) level_count_ = 0;
}

double TaskGraph::critical_path_lower_bound() const {
  // Longest path with node weight t_v(m), computed along the topo order.
  std::vector<double> longest(static_cast<std::size_t>(size()), 0.0);
  double best = 0.0;
  for (const int v : topo_) {
    double through = 0.0;
    for (const int pred : predecessors_[static_cast<std::size_t>(v)]) {
      through = std::max(through, longest[static_cast<std::size_t>(pred)]);
    }
    longest[static_cast<std::size_t>(v)] = through + task(v).time(machines());
    best = std::max(best, longest[static_cast<std::size_t>(v)]);
  }
  return best;
}

double TaskGraph::makespan_lower_bound() const {
  return std::max(area_lower_bound(instance_), critical_path_lower_bound());
}

TaskGraph random_out_tree(const TreeWorkloadOptions& options, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<MalleableTask> tasks;
  std::vector<std::pair<int, int>> edges;
  tasks.reserve(static_cast<std::size_t>(options.tasks));
  for (int v = 0; v < options.tasks; ++v) {
    const double seq = rng.log_uniform(options.seq_time_lo, options.seq_time_hi);
    tasks.emplace_back(power_law_profile(seq, rng.uniform(0.6, 0.95), options.machines),
                       label("node", v));
    if (v > 0) {
      // Attach to a random earlier node with spare child slots; preferring
      // recent nodes keeps the tree deep enough to have a real critical path.
      const int hi = v - 1;
      const int lo = std::max(0, v - 1 - options.max_children * 2);
      const int parent = static_cast<int>(rng.uniform_int(lo, hi));
      edges.emplace_back(parent, v);
    }
  }
  return TaskGraph(options.machines, std::move(tasks), std::move(edges));
}

TaskGraph random_layered_dag(const LayeredDagOptions& options, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<MalleableTask> tasks;
  std::vector<std::pair<int, int>> edges;
  for (int layer = 0; layer < options.layers; ++layer) {
    for (int slot = 0; slot < options.width; ++slot) {
      const int v = layer * options.width + slot;
      const double seq = rng.log_uniform(options.seq_time_lo, options.seq_time_hi);
      tasks.emplace_back(
          amdahl_profile(seq, rng.uniform(0.02, 0.3), options.machines),
          label("L", layer, ".", slot));
      if (layer > 0) {
        const auto fan_in = static_cast<int>(rng.uniform_int(1, 3));
        for (int e = 0; e < fan_in; ++e) {
          const int pred =
              (layer - 1) * options.width + static_cast<int>(rng.uniform_int(0, options.width - 1));
          edges.emplace_back(pred, v);
        }
      }
      (void)v;
    }
  }
  // Deduplicate multi-edges.
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return TaskGraph(options.machines, std::move(tasks), std::move(edges));
}

}  // namespace malsched
