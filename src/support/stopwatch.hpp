#pragma once

#include <chrono>

/// Wall-clock timing for the benchmark harness.
///
/// Convention (enforced below): every duration in the library -- solver
/// wall times, batch runs, bench JSON -- is measured with this class, i.e.
/// with std::chrono::steady_clock. system_clock and C `clock()` are banned
/// from timing paths: the former jumps under NTP adjustment (negative or
/// inflated CI numbers), the latter counts CPU time summed over threads.
namespace malsched {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  /// Restarts the measurement window.
  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  static_assert(clock::is_steady, "timing must be monotonic");
  clock::time_point start_;
};

}  // namespace malsched
