#pragma once

#include <cstddef>
#include <functional>

/// Minimal fork-join helper used to run experiment sweeps across cores.
///
/// The scheduling algorithms themselves are sequential (the paper's
/// contribution is algorithmic, not an implementation of parallel search);
/// this utility only parallelizes *independent instance evaluations* in
/// benches and tests.
///
/// Concurrency contract: workers share exactly one atomic index counter
/// (lock-free dispatch) plus a first-exception slot guarded by an annotated
/// support/mutex.hpp Mutex; `body` owns whatever state it touches for each
/// distinct index.
namespace malsched {

/// The worker count parallel_for will actually use for `count` items:
/// `threads == 0` means hardware_concurrency, clamped to `count` (extra
/// workers would only idle), at least 1 when there is work. Exposed so
/// callers that report the worker count (exec/BatchRunner) stay coupled to
/// the real policy.
[[nodiscard]] unsigned resolve_worker_count(std::size_t count, unsigned threads);

/// Runs body(i) for every i in [0, count) across up to `threads` workers.
///
/// Work is divided into contiguous blocks; `body` must be safe to call
/// concurrently for distinct indices. `threads == 0` means
/// hardware_concurrency. Exceptions thrown by `body` are rethrown on the
/// calling thread (the first one wins).
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  unsigned threads = 0);

}  // namespace malsched
