#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

/// Streaming and batch descriptive statistics for experiment reporting.
namespace malsched {

/// Welford-style streaming accumulator: count / mean / stddev / min / max.
class Summary {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Merges another summary into this one (for parallel accumulation).
  void merge(const Summary& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

  /// One-line "mean +- sd [min, max] (n)" rendering for logs.
  [[nodiscard]] std::string str() const;

 private:
  std::size_t count_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// p-th percentile (p in [0, 100]) with linear interpolation; copies and sorts.
[[nodiscard]] double percentile(std::span<const double> values, double p);

/// Arithmetic mean of a batch; 0 for an empty batch.
[[nodiscard]] double mean_of(std::span<const double> values) noexcept;

/// Geometric mean of a positive batch; 0 for an empty batch.
[[nodiscard]] double geometric_mean(std::span<const double> values);

}  // namespace malsched
