#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

/// Plain-text table rendering used by benches and examples to print
/// paper-style result rows.
namespace malsched {

/// Column-aligned ASCII table. Cells are strings; numeric helpers format
/// through `cell()`.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule and right-padded columns.
  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimal places.
[[nodiscard]] std::string cell(double value, int digits = 3);

/// Formats an integer cell.
[[nodiscard]] std::string cell(long long value);
[[nodiscard]] inline std::string cell(int value) { return cell(static_cast<long long>(value)); }
[[nodiscard]] inline std::string cell(std::size_t value) {
  return cell(static_cast<long long>(value));
}

}  // namespace malsched
