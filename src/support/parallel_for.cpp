#include "support/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "support/mutex.hpp"

namespace malsched {

unsigned resolve_worker_count(std::size_t count, unsigned threads) {
  if (count == 0) return 0;
  const unsigned workers =
      threads != 0 ? threads : std::max(1u, std::thread::hardware_concurrency());
  return static_cast<unsigned>(std::min<std::size_t>(workers, count));
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  unsigned threads) {
  if (count == 0) return;
  const unsigned workers = resolve_worker_count(count, threads);

  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  // The only shared state: the work counter (atomic -- the shared-counter
  // dispatch IS the determinism story, see the header) and the first
  // exception, guarded by a local annotated Mutex.
  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  Mutex error_mutex;

  const auto worker = [&] {
    // Dynamic chunking: grab small index blocks so irregular per-instance
    // solve times still balance across the pool.
    constexpr std::size_t kChunk = 4;
    for (;;) {
      const std::size_t begin = next.fetch_add(kChunk);
      if (begin >= count) return;
      const std::size_t end = std::min(begin + kChunk, count);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          body(i);
        } catch (...) {
          const LockGuard lock(error_mutex);
          if (!error) error = std::current_exception();
          return;
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace malsched
