#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

/// Numeric helpers shared by every module.
///
/// All scheduling feasibility checks compare floating-point times; a single,
/// consistent tolerance policy avoids spurious infeasibility when a shelf
/// deadline is an irrational constant such as sqrt(3).
namespace malsched {

/// Relative tolerance used by every feasibility comparison in the library.
inline constexpr double kRelEps = 1e-9;

/// Absolute floor so comparisons near zero still behave.
inline constexpr double kAbsEps = 1e-12;

/// sqrt(3), the paper's performance guarantee.
inline constexpr double kSqrt3 = 1.7320508075688772;

/// lambda = sqrt(3) - 1, the length of the second shelf (Section 4).
inline constexpr double kLambda = kSqrt3 - 1.0;

/// mu = sqrt(3) / 2, the canonical-list regime parameter (Section 3.2).
inline constexpr double kMu = kSqrt3 / 2.0;

/// True when `a <= b` up to the library tolerance (relative in magnitude).
[[nodiscard]] inline bool leq(double a, double b) noexcept {
  const double scale = std::max({std::abs(a), std::abs(b), 1.0});
  return a <= b + kRelEps * scale + kAbsEps;
}

/// True when `a >= b` up to the library tolerance.
[[nodiscard]] inline bool geq(double a, double b) noexcept { return leq(b, a); }

/// True when `a` and `b` agree up to the library tolerance.
[[nodiscard]] inline bool approx_eq(double a, double b) noexcept {
  return leq(a, b) && leq(b, a);
}

/// True when `a < b` by more than the library tolerance.
[[nodiscard]] inline bool lt_strict(double a, double b) noexcept { return !geq(a, b); }

/// Integer ceiling of a / b for positive integers.
[[nodiscard]] inline long long ceil_div(long long a, long long b) noexcept {
  return (a + b - 1) / b;
}

}  // namespace malsched
