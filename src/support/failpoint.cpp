#include "support/failpoint.hpp"

#include <stdexcept>
#include <unordered_map>

#include "support/mutex.hpp"

namespace malsched::failpoints {

namespace {

/// splitmix64 (Steele/Lea/Flood; public domain reference constants): one
/// multiply-xorshift pass per draw, stateless in (seed, index) -- the whole
/// reason probability draws replay exactly from the ArmSpec.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

struct Site {
  ArmSpec spec;
  std::uint64_t hit_count{0};  ///< hits observed since arm()
  std::uint64_t fired{0};      ///< faults actually thrown
};

struct Registry {
  Mutex mutex;
  std::unordered_map<std::string, Site> sites MALSCHED_GUARDED_BY(mutex);
  /// Fast path for unarmed traffic: hit() returns on one relaxed load.
  /// disarm() of one site leaves it true (re-checking the map emptiness
  /// would mean iterating or counting under the lock on every disarm for a
  /// path only tests take); disarm_all() resets it.
  std::atomic<bool> any_armed{false};
};

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace

bool compiled_in() noexcept {
#ifdef MALSCHED_FAILPOINTS
  return true;
#else
  return false;
#endif
}

void arm(const std::string& site, ArmSpec spec) {
  if (!compiled_in()) {
    throw std::logic_error(
        "failpoints: arm('" + site +
        "') on a build without MALSCHED_FAILPOINTS (sites are compiled out)");
  }
  if (!(spec.probability >= 0.0) || !(spec.probability <= 1.0)) {
    throw std::invalid_argument("failpoints: probability must lie in [0, 1]");
  }
  Registry& reg = registry();
  const LockGuard lock(reg.mutex);
  reg.sites[site] = Site{spec, 0, 0};
  reg.any_armed.store(true, std::memory_order_release);
}

void disarm(const std::string& site) {
  Registry& reg = registry();
  const LockGuard lock(reg.mutex);
  const auto it = reg.sites.find(site);
  if (it == reg.sites.end()) return;
  // Keep the entry (hits() stays observable) but make it inert.
  it->second.spec.fire = 0;
  it->second.spec.probability = 0.0;
}

void disarm_all() {
  Registry& reg = registry();
  const LockGuard lock(reg.mutex);
  reg.sites.clear();
  reg.any_armed.store(false, std::memory_order_release);
}

std::uint64_t hits(const std::string& site) {
  Registry& reg = registry();
  const LockGuard lock(reg.mutex);
  const auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.hit_count;
}

void hit(const char* site) {
  Registry& reg = registry();
  if (!reg.any_armed.load(std::memory_order_acquire)) return;
  bool fire = false;
  {
    const LockGuard lock(reg.mutex);
    const auto it = reg.sites.find(site);
    if (it == reg.sites.end()) return;
    Site& entry = it->second;
    const std::uint64_t index = entry.hit_count++;
    if (index < entry.spec.skip) return;
    if (entry.fired >= entry.spec.fire) return;
    if (entry.spec.probability < 1.0) {
      // Deterministic per-hit draw: hash (seed, hit index) into [0, 1).
      const double draw =
          static_cast<double>(splitmix64(entry.spec.seed ^
                                         index * 0x9E3779B97F4A7C15ULL) >>
                              11) *
          (1.0 / 9007199254740992.0);  // 2^-53
      if (draw >= entry.spec.probability) return;
    }
    ++entry.fired;
    fire = true;
  }
  // Thrown outside the lock: unwinding through a held registry mutex would
  // be correct (RAII) but pointlessly extends the critical section.
  if (fire) throw FailpointError{site};
}

}  // namespace malsched::failpoints
