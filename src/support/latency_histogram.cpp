#include "support/latency_histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "support/json.hpp"

namespace malsched {

namespace {

/// Upper edges of the underflow bucket and every geometric bucket, computed
/// once (magic static): edges[i] is the upper edge of bucket i, i in
/// [0, kBuckets - 1). The overflow bucket (last index) is unbounded.
const std::array<double, LatencyHistogram::kBuckets - 1>& finite_edges() {
  static const auto edges = [] {
    std::array<double, LatencyHistogram::kBuckets - 1> out{};
    for (int i = 0; i < LatencyHistogram::kBuckets - 1; ++i) {
      out[static_cast<std::size_t>(i)] =
          LatencyHistogram::kMinSeconds *
          std::pow(10.0, static_cast<double>(i) /
                             static_cast<double>(LatencyHistogram::kBucketsPerDecade));
    }
    return out;
  }();
  return edges;
}

}  // namespace

int LatencyHistogram::bucket_index(double seconds) noexcept {
  const auto& edges = finite_edges();
  // NaN and negatives fail this comparison and land in underflow with them.
  if (!(seconds >= kMinSeconds)) return 0;
  if (seconds >= edges.back()) return kBuckets - 1;
  // First bucket whose upper edge exceeds the value. The value's bucket is
  // found by search over the precomputed edges rather than a log10 round
  // trip, so the index and the edge table can never disagree on boundaries.
  const auto it = std::upper_bound(edges.begin(), edges.end(), seconds);
  return static_cast<int>(it - edges.begin());
}

double LatencyHistogram::bucket_upper_edge(int index) {
  if (index < 0 || index >= kBuckets) {
    throw std::out_of_range("LatencyHistogram: bucket index " + std::to_string(index) +
                            " outside [0, " + std::to_string(kBuckets) + ")");
  }
  if (index == kBuckets - 1) return std::numeric_limits<double>::infinity();
  return finite_edges()[static_cast<std::size_t>(index)];
}

void LatencyHistogram::record(double seconds) noexcept {
  counts_[static_cast<std::size_t>(bucket_index(seconds))].fetch_add(
      1, std::memory_order_relaxed);
  if (!(seconds > 0.0)) return;  // NaN/non-positive never move the maximum
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(seconds);
  std::uint64_t seen = max_bits_.load(std::memory_order_relaxed);
  while (bits > seen &&
         !max_bits_.compare_exchange_weak(seen, bits, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t add =
        other.counts_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    if (add != 0) {
      counts_[static_cast<std::size_t>(i)].fetch_add(add, std::memory_order_relaxed);
    }
  }
  const std::uint64_t bits = other.max_bits_.load(std::memory_order_relaxed);
  std::uint64_t seen = max_bits_.load(std::memory_order_relaxed);
  while (bits > seen &&
         !max_bits_.compare_exchange_weak(seen, bits, std::memory_order_relaxed)) {
  }
}

std::uint64_t LatencyHistogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& bucket : counts_) total += bucket.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::max_seconds() const noexcept {
  return std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
}

double LatencyHistogram::quantile(double q) const noexcept {
  std::array<std::uint64_t, kBuckets> snapshot{};
  std::uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    snapshot[static_cast<std::size_t>(i)] =
        counts_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    total += snapshot[static_cast<std::size_t>(i)];
  }
  if (total == 0) return 0.0;
  const double clamped = std::min(1.0, std::max(0.0, q));
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(clamped * static_cast<double>(total))));
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cumulative += snapshot[static_cast<std::size_t>(i)];
    if (cumulative >= rank) {
      // The overflow bucket has no finite edge; the recorded maximum is the
      // tightest bound available for samples past the tracked range.
      if (i == kBuckets - 1) return max_seconds();
      return finite_edges()[static_cast<std::size_t>(i)];
    }
  }
  return max_seconds();  // unreachable: cumulative == total >= rank by then
}

std::uint64_t LatencyHistogram::bucket_count(int index) const noexcept {
  if (index < 0 || index >= kBuckets) return 0;
  return counts_[static_cast<std::size_t>(index)].load(std::memory_order_relaxed);
}

void LatencyHistogram::write_json(JsonWriter& json) const {
  json.begin_object();
  json.kv("count", count());
  json.kv("p50_seconds", quantile(0.50));
  json.kv("p95_seconds", quantile(0.95));
  json.kv("p99_seconds", quantile(0.99));
  json.kv("p999_seconds", quantile(0.999));
  json.kv("max_seconds", max_seconds());
  json.key("buckets");
  json.begin_array();
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t in_bucket = bucket_count(i);
    if (in_bucket == 0) continue;
    json.begin_object();
    // +infinity (the overflow bucket) renders as null by JsonWriter's
    // non-finite rule; consumers read null upper as "beyond the last edge".
    json.kv("upper_seconds", bucket_upper_edge(i));
    json.kv("count", in_bucket);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace malsched
