#pragma once

#include <cstdint>
#include <span>
#include <vector>

/// Deterministic pseudo-random number generation for reproducible experiments.
///
/// Every workload generator and benchmark in this repository takes an explicit
/// seed; rerunning any experiment with the same seed reproduces it bit-for-bit
/// (the generator is our own xoshiro256** so results do not depend on the
/// standard library's unspecified distributions).
namespace malsched {

/// Small, fast, high-quality PRNG (xoshiro256** seeded via SplitMix64).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed.
  void reseed(std::uint64_t seed) noexcept;

  /// Next raw 64-bit value.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller.
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Log-uniform value in [lo, hi); both bounds must be positive.
  [[nodiscard]] double log_uniform(double lo, double hi) noexcept;

  /// Bernoulli trial with probability p of returning true.
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Picks an index in [0, weights.size()) proportionally to `weights`.
  [[nodiscard]] std::size_t weighted_index(std::span<const double> weights) noexcept;

  /// Returns a uniformly random permutation of {0, .., n-1}.
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an unrelated child seed (for forking per-instance generators).
  [[nodiscard]] std::uint64_t fork_seed() noexcept { return next_u64(); }

 private:
  std::uint64_t state_[4]{};
  bool has_cached_normal_{false};
  double cached_normal_{0.0};
};

}  // namespace malsched
