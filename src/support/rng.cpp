#include "support/rng.hpp"

#include <cmath>
#include <numbers>

namespace malsched {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 high bits give a uniform dyadic rational in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * next_double(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return lo + static_cast<std::int64_t>(next_u64());  // full 64-bit range
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal(double mean, double stddev) noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u = 0.0;
  do {
    u = next_double();
  } while (u <= 0.0);
  const double v = next_double();
  const double r = std::sqrt(-2.0 * std::log(u));
  const double theta = 2.0 * std::numbers::pi * v;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::log_uniform(double lo, double hi) noexcept {
  return std::exp(uniform(std::log(lo), std::log(hi)));
}

bool Rng::bernoulli(double p) noexcept { return next_double() < p; }

std::size_t Rng::weighted_index(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += w;
  double pick = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick <= 0.0) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(order[i - 1], order[j]);
  }
  return order;
}

}  // namespace malsched
