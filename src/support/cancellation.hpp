#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>

/// Cooperative cancellation and deadlines for long-running solves.
///
/// Three pieces:
///
///  * **CancelToken** -- a shared advisory flag (moved here from
///    exec/batch_runner.hpp, where the batch engine introduced it). Copies
///    share one underlying atomic, so a caller hands a token into a running
///    solve and fires it from another thread.
///  * **CancelCheck** -- the per-solve probe the hot loops actually carry: a
///    borrowed token pointer plus an absolute steady-clock deadline, checked
///    every kStrideMask+1 tick()s so the common (unarmed or not-yet-fired)
///    case costs one branch and one increment -- no allocation, no lock, no
///    clock read. An UNARMED check (no token, no deadline -- the default)
///    never fires, which is what keeps results byte-identical for
///    undisturbed requests.
///  * **CancelledError / DeadlineExceededError** -- the typed exceptions a
///    firing poll() throws; classify_solve_exception (registry/request.hpp) maps
///    them to SolveErrorCode::kCancelled / kDeadlineExceeded so the error
///    taxonomy is exact across batch, service, and sharded tiers.
///
/// Deadlines are ABSOLUTE steady-clock seconds (steady_now_seconds()), never
/// wall-clock: a solve must not be killed by an NTP step, and bench runs
/// must stay comparable (same rule as support/stopwatch.hpp).
namespace malsched {

/// Cooperative cancellation flag; copies share one underlying flag, so a
/// caller can hand a token to a running solve and cancel from another
/// thread. The shared flag is atomic -- no mutex to annotate; relaxed
/// ordering suffices because cancellation is advisory (a late read only
/// delays the stop by one check stride, it can never corrupt state).
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() noexcept { flag_->store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const noexcept {
    return flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Thrown by CancelCheck::poll() when the token fired.
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("solve cancelled by caller") {}
};

/// Thrown by CancelCheck::poll() when the deadline passed.
class DeadlineExceededError : public std::runtime_error {
 public:
  DeadlineExceededError() : std::runtime_error("solve deadline exceeded") {}
};

/// Steady-clock "now" in seconds -- the time base every deadline in this
/// header uses. Same clock as support/stopwatch.hpp (static-asserted steady
/// there), read directly because a deadline is a point in time, not an
/// interval.
[[nodiscard]] inline double steady_now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The tighter of two absolute deadlines, where 0 means "none".
[[nodiscard]] inline double merge_deadlines(double a, double b) {
  if (a <= 0.0) return b > 0.0 ? b : 0.0;
  if (b <= 0.0) return a;
  return a < b ? a : b;
}

/// Converts a relative budget (seconds from now) into an absolute
/// steady-clock deadline; non-positive budgets mean "none" (returns 0).
[[nodiscard]] inline double budget_deadline(double budget_seconds) {
  return budget_seconds > 0.0 ? steady_now_seconds() + budget_seconds : 0.0;
}

/// The probe a hot loop carries by value. tick() is the per-iteration call:
/// it strides the expensive poll() so a tight loop (knapsack nodes,
/// placement steps) pays one increment + one mask per iteration. poll() is
/// the immediate check, for loops whose iterations are already expensive
/// (dual steps). Both are const so the check threads through const option
/// structs; the stride counter is mutable state with no observable effect on
/// results -- only on WHEN a cancellation lands, which is advisory anyway.
class CancelCheck {
 public:
  /// Checked every kStrideMask + 1 tick()s.
  static constexpr unsigned kStrideMask = 255;

  CancelCheck() = default;
  CancelCheck(const CancelToken* token, double deadline_seconds)
      : token_(token), deadline_(deadline_seconds) {}

  /// True when this check can ever fire; unarmed checks make tick()/poll()
  /// near-free, preserving byte-identical results for undisturbed requests.
  [[nodiscard]] bool armed() const noexcept {
    return token_ != nullptr || deadline_ > 0.0;
  }

  /// Strided probe for tight loops: every 256th call forwards to poll().
  void tick() const {
    if (armed() && (++count_ & kStrideMask) == 0) poll();
  }

  /// Immediate probe: throws CancelledError if the token fired,
  /// DeadlineExceededError if the deadline passed; no-op when unarmed.
  void poll() const {
    if (token_ != nullptr && token_->cancelled()) throw CancelledError{};
    if (deadline_ > 0.0 && steady_now_seconds() >= deadline_) {
      throw DeadlineExceededError{};
    }
  }

 private:
  const CancelToken* token_{nullptr};  ///< borrowed; must outlive the solve
  double deadline_{0.0};               ///< absolute steady seconds; 0 = none
  mutable unsigned count_{0};          ///< tick() stride state (advisory)
};

}  // namespace malsched
