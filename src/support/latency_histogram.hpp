#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

/// Lock-free, mergeable, log-bucketed latency histogram.
///
/// The open-loop replayer (bench/bench_load) records one serving latency per
/// completed request from the service's result callback -- a concurrent,
/// latency-sensitive context where a mutex-guarded reservoir would perturb
/// the very tail it measures. record() is therefore wait-free: one relaxed
/// atomic increment on the value's bucket (plus a CAS loop for the running
/// maximum), safe from any number of threads concurrently.
///
/// Buckets are geometric: kBucketsPerDecade per factor of 10, spanning
/// [kMinSeconds, kMinSeconds * 10^kDecades) -- 1 microsecond to 1000 seconds
/// -- with one underflow and one overflow bucket at the ends. The edges are a
/// pure function of those constants (bucket i's upper edge is kMinSeconds *
/// 10^(i / kBucketsPerDecade)), so two histograms -- from different runs,
/// threads, or shards -- always share the same geometry and merge() is plain
/// bucket-wise addition. Values are steady-clock SECONDS by convention
/// (support/stopwatch.hpp); the histogram itself never reads a clock.
///
/// quantile() is exact in rank (counts are exact integers; the returned
/// bucket is exactly the one holding the q-th ranked sample) and
/// bucket-bounded in value: it reports the bucket's upper edge, i.e. an
/// overestimate by at most one bucket ratio, 10^(1/16) ~ 15.5%. Quantiles of
/// a quiesced histogram are deterministic.
namespace malsched {

class JsonWriter;

class LatencyHistogram {
 public:
  static constexpr double kMinSeconds = 1e-6;
  static constexpr int kDecades = 9;  ///< 1 us .. 1000 s tracked geometrically
  static constexpr int kBucketsPerDecade = 16;
  /// Geometric buckets plus underflow (index 0) and overflow (last index).
  static constexpr int kBuckets = kDecades * kBucketsPerDecade + 2;

  LatencyHistogram() = default;
  // Atomics make the histogram address-stable state: share it by reference.
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Counts one sample. Wait-free (one relaxed increment + a max CAS);
  /// callable concurrently with every other member. Negative or NaN values
  /// clamp into the underflow bucket and leave the maximum untouched.
  void record(double seconds) noexcept;

  /// Adds every bucket of `other` into this histogram (and folds its
  /// maximum). Safe concurrently with record() on either side; counts in
  /// flight on `other` during the call may or may not be included.
  void merge(const LatencyHistogram& other) noexcept;

  /// Total samples recorded.
  [[nodiscard]] std::uint64_t count() const noexcept;

  /// Largest positive sample recorded, including sub-kMinSeconds ones that
  /// count in the underflow bucket (0 when no positive sample arrived).
  [[nodiscard]] double max_seconds() const noexcept;

  /// Upper edge of the bucket holding the q-th ranked sample (q clamped to
  /// [0, 1]; rank = ceil(q * count), at least 1). Underflow reports
  /// kMinSeconds, overflow reports max_seconds(). Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Upper edge of bucket `index` (kMinSeconds for the underflow bucket);
  /// the overflow bucket has no finite edge and reports +infinity.
  [[nodiscard]] static double bucket_upper_edge(int index);

  /// Count currently in bucket `index` (relaxed load).
  [[nodiscard]] std::uint64_t bucket_count(int index) const noexcept;

  /// Serializes {"count", "p50_seconds", "p95_seconds", "p99_seconds",
  /// "p999_seconds", "max_seconds", "buckets": [{"upper_seconds", "count"},
  /// ...]} as one JSON object value (the caller positions the key). Only
  /// non-empty buckets are listed; the overflow bucket's upper edge renders
  /// as null (JsonWriter maps +infinity to null).
  void write_json(JsonWriter& json) const;

 private:
  [[nodiscard]] static int bucket_index(double seconds) noexcept;

  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  /// Bit pattern of the largest non-negative sample; IEEE-754 orderings of
  /// non-negative doubles and of their bit patterns agree, so the CAS loop
  /// compares integers.
  std::atomic<std::uint64_t> max_bits_{0};
};

}  // namespace malsched
