#pragma once

/// Portable spellings of Clang's thread-safety-analysis attributes.
///
/// The determinism contract (byte-identical results across thread counts,
/// zero re-hashing on the submit path) ultimately rests on a locking
/// discipline: every shared field has exactly one guarding mutex, every
/// function either takes that mutex or documents that its caller must. TSan
/// checks that discipline DYNAMICALLY -- only on the interleavings a test
/// happens to produce. These macros let clang check it STATICALLY, on every
/// build: fields declare their guard with MALSCHED_GUARDED_BY, locking
/// functions declare what they acquire/release, and `-Wthread-safety
/// -Wthread-safety-beta -Werror` (the MALSCHED_THREAD_SAFETY CMake option;
/// a dedicated CI job) turns any unguarded access, unbalanced lock, or
/// missing-precondition call into a compile error.
///
/// On compilers without the analysis (gcc, MSVC) every macro expands to
/// nothing, so the annotations are free documentation there. Use them
/// through support/mutex.hpp (the annotated Mutex/LockGuard/CondVar
/// wrapper) -- raw std::mutex is invisible to the analysis, and the repo
/// linter (tools/lint_repo.py, rule `raw-mutex`) rejects it outside that
/// wrapper.
///
/// The seeded-violation snippets under tests/static/ regression-test the
/// analysis itself: each compiles clean as written and is REJECTED when its
/// MALSCHED_STATIC_VIOLATE variant removes the discipline (see
/// tests/static/static_checks.cmake).

#if defined(__clang__)
#define MALSCHED_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define MALSCHED_THREAD_ANNOTATION__(x)  // no-op off clang
#endif

/// Marks a class as a lockable capability ("mutex" names the kind in
/// diagnostics).
#define MALSCHED_CAPABILITY(x) MALSCHED_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII guard whose constructor acquires and destructor releases.
#define MALSCHED_SCOPED_CAPABILITY MALSCHED_THREAD_ANNOTATION__(scoped_lockable)

/// Field annotation: reads and writes require holding `x`.
#define MALSCHED_GUARDED_BY(x) MALSCHED_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer field annotation: the pointee's data requires holding `x`.
#define MALSCHED_PT_GUARDED_BY(x) MALSCHED_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock prevention between named mutexes).
#define MALSCHED_ACQUIRED_BEFORE(...) \
  MALSCHED_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define MALSCHED_ACQUIRED_AFTER(...) \
  MALSCHED_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Function precondition: the caller must hold the listed capabilities
/// (exclusively / shared) and the function does not release them.
#define MALSCHED_REQUIRES(...) \
  MALSCHED_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define MALSCHED_REQUIRES_SHARED(...) \
  MALSCHED_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability (caller must not already hold it).
#define MALSCHED_ACQUIRE(...) \
  MALSCHED_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define MALSCHED_ACQUIRE_SHARED(...) \
  MALSCHED_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// The function releases the capability (caller must hold it).
#define MALSCHED_RELEASE(...) \
  MALSCHED_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define MALSCHED_RELEASE_SHARED(...) \
  MALSCHED_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `b`.
#define MALSCHED_TRY_ACQUIRE(b, ...) \
  MALSCHED_THREAD_ANNOTATION__(try_acquire_capability(b, __VA_ARGS__))

/// Function precondition: the caller must NOT hold the listed capabilities
/// (the function acquires them itself -- self-deadlock prevention).
#define MALSCHED_EXCLUDES(...) MALSCHED_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (fatal if not); informs the
/// analysis without a visible acquire.
#define MALSCHED_ASSERT_CAPABILITY(x) \
  MALSCHED_THREAD_ANNOTATION__(assert_capability(x))

/// The function returns a reference to the named capability.
#define MALSCHED_RETURN_CAPABILITY(x) MALSCHED_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: the function body is not analyzed. Every use must carry a
/// comment justifying why the analysis cannot see the invariant.
#define MALSCHED_NO_THREAD_SAFETY_ANALYSIS \
  MALSCHED_THREAD_ANNOTATION__(no_thread_safety_analysis)
