#pragma once

#include <cstddef>
#include <cstdint>

/// 64-bit FNV-1a, shared by every content-hashing site in the tree (the
/// InstanceHandle content fingerprint and the SolveCache key fingerprint)
/// so the constants and mixing order cannot drift apart between them.
namespace malsched::fnv {

inline constexpr std::uint64_t kOffset = 14695981039346656037ull;
inline constexpr std::uint64_t kPrime = 1099511628211ull;

inline void mix_bytes(std::uint64_t& hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kPrime;
  }
}

inline void mix_u64(std::uint64_t& hash, std::uint64_t value) {
  mix_bytes(hash, &value, sizeof value);
}

}  // namespace malsched::fnv
