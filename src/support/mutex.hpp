#pragma once

#include <condition_variable>
#include <mutex>

#include "support/thread_annotations.hpp"

/// The repo's ONE mutex vocabulary: std::mutex / std::condition_variable
/// wrapped with thread-safety-analysis annotations so clang can prove the
/// locking discipline at compile time (see support/thread_annotations.hpp).
///
/// All locked code uses these types -- the repo linter (tools/lint_repo.py,
/// rule `raw-mutex`) rejects raw std::mutex / std::lock_guard /
/// std::condition_variable anywhere else, because the analysis cannot see
/// through them: a field can only be MALSCHED_GUARDED_BY a Mutex.
///
/// Deliberately minimal: exactly the primitives the concurrency layer needs
/// (exclusive lock, RAII guard, condition wait). No predicate-taking wait()
/// overload -- a predicate lambda is analyzed as a separate function with an
/// empty capability set, so guarded reads inside it would either warn or
/// need an escape hatch. Callers write the standard
/// `while (!cond) cv.wait(mutex);` loop instead, where every guarded read
/// sits in the locked scope the analysis can check.
///
/// LOCK HIERARCHY. The repo's intended lock ordering is declared here, in
/// the lint:lock-order(...) directives below, and enforced statically by
/// the linter's lock-order analysis (tools/lint/lock_order.py): it extracts
/// every LockGuard nesting and every call made under a held mutex (with
/// MALSCHED_REQUIRES counting as held), resolves mutex identity per class,
/// and fails CI with the witness path when the observed acquisition graph
/// has a cycle -- or when an observed ordering is not declared below, which
/// keeps this list the reviewed source of truth rather than an after-the-
/// fact inventory. Keys are `Class::member`; arrows read "may be held while
/// acquiring". Current hierarchy (one edge):
///
///   * SchedulerService::mutex_ -> WorkerPool::mutex_
///     enqueue_locked() posts the run_next trampoline to the worker pool
///     while holding the service state lock; WorkerPool::post takes the
///     pool's own queue lock to enqueue. The pool never calls back into the
///     service synchronously (worker lambdas run later, on pool threads),
///     so the edge is one-way by construction.
///
/// Everything else (SolveCache::mutex_, the instance-intern table, the
/// failpoint registry) is a leaf: taken with nothing else held.
///
// lint:lock-order(SchedulerService::mutex_ -> WorkerPool::mutex_)
namespace malsched {

class CondVar;

/// Exclusive capability over std::mutex. Same semantics, plus annotations.
class MALSCHED_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MALSCHED_ACQUIRE() { mutex_.lock(); }
  void unlock() MALSCHED_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() MALSCHED_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  /// For negative-capability annotations (e.g. MALSCHED_REQUIRES(!mutex_)).
  const Mutex& operator!() const { return *this; }

 private:
  friend class CondVar;  ///< wait() needs the native handle to park on
  std::mutex mutex_;
};

/// RAII guard -- the std::lock_guard of this vocabulary. Scoped capability:
/// the analysis knows the mutex is held exactly from construction to the
/// closing brace.
class MALSCHED_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) MALSCHED_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~LockGuard() MALSCHED_RELEASE() { mutex_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable paired with Mutex. wait() REQUIRES the mutex: it is
/// held on entry, released while parked, and held again on return -- from
/// the caller's (and the analysis') point of view the capability never
/// lapses, which is exactly the guarantee the guarded predicate loop needs.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// One blocking wait; spurious wakeups possible, so call in a
  /// `while (!predicate)` loop under the same LockGuard that guards the
  /// predicate's fields.
  void wait(Mutex& mutex) MALSCHED_REQUIRES(mutex) {
    // Adopt the already-held native mutex for the park, then release() so
    // ownership returns to the caller's guard -- the wrapper never unlocks
    // behind the caller's back. (If relocking after the park fails, the
    // standard terminates; there is no path that returns unlocked.)
    std::unique_lock<std::mutex> native(mutex.mutex_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace malsched
