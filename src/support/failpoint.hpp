#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

/// Deterministic fault injection for robustness tests.
///
/// A *failpoint* is a named site in production code where a test can arm a
/// fault; with nothing armed, a hit is one relaxed atomic load. The whole
/// facility is compiled out when MALSCHED_FAILPOINTS is undefined (the
/// MALSCHED_FAILPOINT macro expands to nothing and arm() throws), so a
/// release build carries zero overhead and zero attack surface; the default
/// CMake configuration keeps it ON so the regular test suites exercise the
/// sites (see the MALSCHED_FAILPOINTS option in CMakeLists.txt).
///
/// Determinism: a site armed with probability p fires on a seeded
/// splitmix64 sequence over its own hit counter -- never on a global RNG or
/// the clock -- so a failing fault test replays exactly from (site, spec).
/// Sites in the tree (grep MALSCHED_FAILPOINT for the ground truth):
///
///   service.dispatch    SchedulerService::run_job, before the solve
///   cache.lookup        SolveCache::lookup, before the probe
///   cache.insert        SolveCache::insert, before the memoization
///   solver.entry        SolverRegistry::solve_impl, before dispatch
///
/// Thread safety: arm/disarm take the registry mutex; hit() reads an atomic
/// fast-path flag first, so unarmed production traffic never touches the
/// mutex. Tests arm from one thread before driving traffic.
namespace malsched::failpoints {

/// The exception an armed site throws; distinct from every solver error so
/// tests can assert the fault they injected is the fault they observed.
class FailpointError : public std::runtime_error {
 public:
  explicit FailpointError(const std::string& site)
      : std::runtime_error("failpoint fired: " + site) {}
};

/// How an armed site behaves. Defaults: fire on every hit, forever.
struct ArmSpec {
  std::uint64_t skip{0};        ///< let this many hits pass before firing
  std::uint64_t fire{~0ULL};    ///< then fire on at most this many hits
  double probability{1.0};      ///< per-hit firing chance in [0, 1]
  std::uint64_t seed{0};        ///< splitmix64 seed for probability < 1
};

/// True when the facility was compiled in (MALSCHED_FAILPOINTS); tests gate
/// on this instead of duplicating the preprocessor condition.
[[nodiscard]] bool compiled_in() noexcept;

/// Arms `site`; replaces any existing spec (hit/fired counters reset).
/// Throws std::logic_error when the facility is compiled out and
/// std::invalid_argument on a probability outside [0, 1].
void arm(const std::string& site, ArmSpec spec = {});

/// Disarms `site`; unknown sites are a no-op. Counters are kept (hits()
/// still reports traffic observed while armed).
void disarm(const std::string& site);

/// Disarms everything and clears all counters -- test fixtures call this in
/// SetUp/TearDown so suites cannot leak armed sites into each other.
void disarm_all();

/// Hits observed at `site` since it was last armed (0 for unknown sites).
[[nodiscard]] std::uint64_t hits(const std::string& site);

/// The instrumented call, named by the MALSCHED_FAILPOINT macro below.
/// Counts the hit and throws FailpointError when the armed spec says fire.
void hit(const char* site);

}  // namespace malsched::failpoints

#ifdef MALSCHED_FAILPOINTS
#define MALSCHED_FAILPOINT(site) ::malsched::failpoints::hit(site)
#else
#define MALSCHED_FAILPOINT(site) ((void)0)
#endif
