#include "support/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace malsched {

void Summary::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Summary::merge(const Summary& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double Summary::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

std::string Summary::str() const {
  std::ostringstream out;
  out.precision(4);
  out << mean() << " +- " << stddev() << " [" << min() << ", " << max() << "] (n=" << count()
      << ")";
  return out.str();
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (const double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double geometric_mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace malsched
