#include "support/json.hpp"

#include <clocale>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace malsched {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::accept_value(const char* what) {
  // A second top-level value cannot reach here: finishing the first one
  // always sets done_, which the first check rejects.
  if (done_) throw std::logic_error(std::string("JsonWriter: ") + what + " after the document closed");
  if (stack_.empty()) return;
  if (stack_.back() == Frame::kObject && !key_pending_) {
    throw std::logic_error(std::string("JsonWriter: ") + what + " inside an object requires key() first");
  }
  if (stack_.back() == Frame::kArray) {
    if (!first_in_frame_.back()) out_ += ',';
    first_in_frame_.back() = false;
  }
  key_pending_ = false;
}

void JsonWriter::begin_object() {
  accept_value("begin_object");
  out_ += '{';
  stack_.push_back(Frame::kObject);
  first_in_frame_.push_back(true);
}

void JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::kObject || key_pending_) {
    throw std::logic_error("JsonWriter: end_object without a matching open object");
  }
  out_ += '}';
  stack_.pop_back();
  first_in_frame_.pop_back();
  if (stack_.empty()) done_ = true;
}

void JsonWriter::begin_array() {
  accept_value("begin_array");
  out_ += '[';
  stack_.push_back(Frame::kArray);
  first_in_frame_.push_back(true);
}

void JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw std::logic_error("JsonWriter: end_array without a matching open array");
  }
  out_ += ']';
  stack_.pop_back();
  first_in_frame_.pop_back();
  if (stack_.empty()) done_ = true;
}

void JsonWriter::key(std::string_view name) {
  if (done_ || stack_.empty() || stack_.back() != Frame::kObject) {
    throw std::logic_error("JsonWriter: key() is only valid inside an object");
  }
  if (key_pending_) throw std::logic_error("JsonWriter: key() twice without a value");
  if (!first_in_frame_.back()) out_ += ',';
  first_in_frame_.back() = false;
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  key_pending_ = true;
}

void JsonWriter::value(std::string_view text) {
  accept_value("value");
  out_ += '"';
  out_ += json_escape(text);
  out_ += '"';
  if (stack_.empty()) done_ = true;
}

void JsonWriter::value(const char* text) {
  if (text == nullptr) throw std::logic_error("JsonWriter: null C string");
  value(std::string_view(text));
}

void JsonWriter::value(bool flag) {
  accept_value("value");
  out_ += flag ? "true" : "false";
  if (stack_.empty()) done_ = true;
}

void JsonWriter::value(int number) { value(static_cast<long long>(number)); }

void JsonWriter::value(long number) { value(static_cast<long long>(number)); }

void JsonWriter::value(unsigned number) { value(static_cast<unsigned long long>(number)); }

void JsonWriter::value(unsigned long number) { value(static_cast<unsigned long long>(number)); }

void JsonWriter::value(long long number) {
  accept_value("value");
  out_ += std::to_string(number);
  if (stack_.empty()) done_ = true;
}

void JsonWriter::value(unsigned long long number) {
  accept_value("value");
  out_ += std::to_string(number);
  if (stack_.empty()) done_ = true;
}

void JsonWriter::value(double number) {
  accept_value("value");
  if (!std::isfinite(number)) {
    out_ += "null";
  } else {
    // %.17g round-trips every double and is deterministic for identical
    // bits -- the property the batch determinism tests rely on. (std::to_chars
    // for floating point needs gcc >= 11; the toolchain floor is gcc 10.)
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.17g", number);
    std::string text(buffer);
    // snprintf honors LC_NUMERIC; under e.g. de_DE the decimal separator
    // comes out as ',' (possibly multi-byte in other locales), which is not
    // JSON. Normalize via localeconv so an embedding application's
    // setlocale() cannot corrupt the artifact.
    const char* decimal_point = std::localeconv()->decimal_point;
    if (decimal_point != nullptr && std::string_view(decimal_point) != ".") {
      const auto at = text.find(decimal_point);
      if (at != std::string::npos) {
        // erase+insert instead of replace(pos, n, "."): gcc 12 -Wrestrict
        // misfires on replace-with-literal at -O2 (GCC PR 105651).
        text.erase(at, std::strlen(decimal_point));
        text.insert(at, 1, '.');
      }
    }
    out_ += text;
  }
  if (stack_.empty()) done_ = true;
}

void JsonWriter::null_value() {
  accept_value("null_value");
  out_ += "null";
  if (stack_.empty()) done_ = true;
}

const std::string& JsonWriter::str() const {
  if (!done_) {
    throw std::logic_error(stack_.empty() ? "JsonWriter: str() before any value was written"
                                          : "JsonWriter: str() with unclosed containers");
  }
  return out_;
}

}  // namespace malsched
