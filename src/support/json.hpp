#pragma once

#include <string>
#include <string_view>
#include <vector>

/// Minimal streaming JSON emitter for machine-readable artifacts.
///
/// The bench harness writes BENCH_<rev>.json and the batch engine serializes
/// reports for determinism comparisons, but the repo takes no third-party
/// dependencies -- so this is a small RFC 8259 writer with the properties
/// those consumers need: insertion-order keys, deterministic number
/// rendering (identical input bits produce identical text, which is what the
/// byte-identical batch tests diff), full string escaping, and `null` for
/// non-finite doubles (JSON has no inf/nan).
namespace malsched {

/// Escapes `text` for inclusion between JSON double quotes: `"`, `\`, and
/// all control characters below 0x20 (short forms \n \t \r \b \f, \u00XX
/// otherwise). Bytes >= 0x80 pass through untouched (UTF-8 stays UTF-8).
[[nodiscard]] std::string json_escape(std::string_view text);

/// Streaming writer. Structural misuse (a value where a key is required,
/// unbalanced end_*, str() before the document closes) throws
/// std::logic_error -- the harnesses would rather crash than upload a
/// malformed artifact.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits the key of the next object member; must be inside an object.
  void key(std::string_view name);

  void value(std::string_view text);
  /// Null pointers throw std::logic_error (string_view(nullptr) would be UB).
  void value(const char* text);
  // Integer overloads cover every fundamental integer type (std::size_t and
  // friends resolve to one of these on any ABI, with no ambiguity).
  void value(bool flag);
  void value(int number);
  void value(long number);
  void value(long long number);
  void value(unsigned number);
  void value(unsigned long number);
  void value(unsigned long long number);
  /// Non-finite doubles render as null; integral values render without a
  /// fraction ("64", not "64.0"), everything else with round-trip precision.
  void value(double number);
  void null_value();

  /// key() + value() in one call, for flat objects.
  template <typename Value>
  void kv(std::string_view name, Value&& v) {
    key(name);
    value(std::forward<Value>(v));
  }

  /// The finished document; throws std::logic_error while containers remain
  /// open or nothing was written.
  [[nodiscard]] const std::string& str() const;

 private:
  enum class Frame { kObject, kArray };

  void accept_value(const char* what);

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_in_frame_;
  bool key_pending_{false};
  bool done_{false};
};

}  // namespace malsched
