#pragma once

#include <string>
#include <string_view>
#include <type_traits>

/// Small string helpers shared across the library.
namespace malsched {

namespace detail {

inline void append_label_part(std::string& out, std::string_view part) { out += part; }

template <typename Number, std::enable_if_t<std::is_arithmetic_v<Number>, int> = 0>
void append_label_part(std::string& out, Number part) {
  out += std::to_string(part);
}

}  // namespace detail

/// Concatenates string/number parts into a label, e.g. label("L", layer,
/// ".", slot). Written as appends because gcc 12's -Wrestrict misfires on
/// `"lit" + std::to_string(n)` under -O2 (GCC PR 105651); += sidesteps it.
template <typename... Parts>
[[nodiscard]] std::string label(const Parts&... parts) {
  std::string out;
  (detail::append_label_part(out, parts), ...);
  return out;
}

}  // namespace malsched
