#include "support/table.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace malsched {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count does not match header count");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    out << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c])) << row[c]
          << (c + 1 < row.size() ? " | " : " |\n");
    }
  };
  print_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string cell(double value, int digits) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(digits) << value;
  return out.str();
}

std::string cell(long long value) { return std::to_string(value); }

}  // namespace malsched
