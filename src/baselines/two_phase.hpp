#pragma once

#include <string>

#include "model/instance.hpp"
#include "sched/schedule.hpp"

/// The two-phase baseline family of Turek, Wolf & Yu [18] / Ludwig [12].
///
/// Phase 1 (allotment selection): Turek et al. showed that running a
/// non-malleable algorithm A on a polynomial set of *candidate allotments*
/// preserves A's guarantee for the malleable problem; with monotonic tasks
/// the candidates are exactly the canonical allotments gamma(L) for the
/// O(n*m) distinct profile values L (Ludwig's refinement of the selection).
///
/// Phase 2 (rigid scheduling): a strip-packing / list algorithm on the
/// chosen allotment. We provide the classical level packers (NFDH, FFDH)
/// and plain list scheduling. Ludwig's published guarantee of 2 relies on
/// Steinberg's packing; our packers are the standard practical stand-ins
/// (documented substitution -- see DESIGN.md) and their measured behavior
/// lands in the same ~2x regime the paper compares against.
namespace malsched {

/// Rigid scheduling algorithm used in phase 2.
enum class RigidAlgo {
  kNfdh,          ///< Next Fit Decreasing Height level packing
  kFfdh,          ///< First Fit Decreasing Height level packing
  kListSchedule,  ///< greedy contiguous list scheduling by decreasing time
};

[[nodiscard]] std::string to_string(RigidAlgo algo);

struct TwoPhaseOptions {
  RigidAlgo rigid{RigidAlgo::kFfdh};
  /// Candidate thresholds evaluated: 0 = every distinct t_i(p) value (the
  /// full Turek/Ludwig candidate set); otherwise an even subsample of that
  /// sorted set, trading fidelity for speed on large instances.
  int max_candidates{96};
};

struct TwoPhaseResult {
  Schedule schedule;
  double makespan;
  int candidates_tried;
  double best_threshold;  ///< deadline L whose allotment won
};

/// Runs the two-phase baseline; the returned schedule is feasible and
/// contiguous.
[[nodiscard]] TwoPhaseResult two_phase_schedule(const Instance& instance,
                                                const TwoPhaseOptions& options = {});

}  // namespace malsched
