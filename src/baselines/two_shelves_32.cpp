#include "baselines/two_shelves_32.hpp"

#include <vector>

#include "core/canonical.hpp"
#include "core/dual_approx.hpp"
#include "core/malleable_list.hpp"
#include "knapsack/knapsack.hpp"
#include "packing/first_fit.hpp"
#include "packing/shelf.hpp"
#include "sched/compaction.hpp"
#include "sched/validate.hpp"
#include "support/math_utils.hpp"

namespace malsched {

ThreeHalvesOutcome three_halves_dual_step(const Instance& instance, double deadline) {
  ThreeHalvesOutcome outcome;
  const auto canonical = canonical_allotment(instance, deadline);
  if (certified_infeasible(instance, canonical)) {
    outcome.certified_reject = true;
    return outcome;
  }

  const int machines = instance.machines();
  const double half = deadline / 2.0;

  // Small tasks (sequential time <= d/2) are First-Fit stacked on shared
  // short-shelf processors -- without this, every tiny task would burn a
  // whole processor per shelf and the structure could not exist for n > m.
  // gamma_half_i = min processors for t <= d/2; non-small tasks without one
  // are pinned to the long shelf.
  std::vector<int> gamma_half(static_cast<std::size_t>(instance.size()), 0);
  long long pinned_procs = 0;
  std::vector<int> free_tasks;
  std::vector<int> small_tasks;
  for (int i = 0; i < instance.size(); ++i) {
    if (leq(instance.task(i).time(1), half)) {
      small_tasks.push_back(i);
      continue;
    }
    const auto procs = instance.task(i).min_procs_for(half);
    if (procs && *procs <= machines) {
      gamma_half[static_cast<std::size_t>(i)] = *procs;
      free_tasks.push_back(i);
    } else {
      pinned_procs += canonical.procs[static_cast<std::size_t>(i)];
    }
  }
  std::vector<double> small_sizes;
  small_sizes.reserve(small_tasks.size());
  for (const int i : small_tasks) small_sizes.push_back(instance.task(i).time(1));
  const BinPacking small_bins =
      small_sizes.empty() ? BinPacking{} : first_fit_decreasing(small_sizes, half);

  const long long capacity = machines - pinned_procs;
  if (capacity < 0) return outcome;  // not certified: the structure just fails

  // Two knapsack objectives for picking the long-shelf set, both under the
  // long-shelf capacity (weight = gamma_i):
  //  (a) the successor paper's objective -- maximize the *work saved* by
  //      keeping tasks at their canonical (cheaper) allotment, and
  //  (b) a feasibility-driven one -- maximize the short-shelf processors
  //      relieved (profit = gamma_half_i), which directly attacks the
  //      short-shelf overflow when (a) fails.
  const auto attempt = [&](bool work_gain_objective) -> std::optional<Schedule> {
    std::vector<KnapsackItem> items;
    items.reserve(free_tasks.size());
    for (const int i : free_tasks) {
      const int g1 = canonical.procs[static_cast<std::size_t>(i)];
      const int g2 = gamma_half[static_cast<std::size_t>(i)];
      long long profit = 0;
      if (work_gain_objective) {
        const double gain = instance.task(i).work(g2) - instance.task(i).work(g1);
        profit = std::max<long long>(static_cast<long long>(gain / deadline * 4096.0), 0);
      } else {
        profit = g2;
      }
      items.push_back({g1, profit});
    }
    const auto selection = knapsack_exact(items, capacity);

    std::vector<char> on_long(static_cast<std::size_t>(instance.size()), 0);
    for (const int idx : selection.items) {
      on_long[static_cast<std::size_t>(free_tasks[static_cast<std::size_t>(idx)])] = 1;
    }

    ShelfAllocator shelf1(machines);
    ShelfAllocator shelf2(machines);
    Schedule schedule(machines, instance.size());
    std::vector<char> is_small(static_cast<std::size_t>(instance.size()), 0);
    for (const int i : small_tasks) is_small[static_cast<std::size_t>(i)] = 1;
    for (int i = 0; i < instance.size(); ++i) {
      if (is_small[static_cast<std::size_t>(i)]) continue;  // stacked below
      const bool long_shelf = gamma_half[static_cast<std::size_t>(i)] == 0 ||
                              on_long[static_cast<std::size_t>(i)];
      if (long_shelf) {
        const int gamma = canonical.procs[static_cast<std::size_t>(i)];
        const auto column = shelf1.allocate(gamma);
        if (!column) return std::nullopt;
        schedule.assign(i, 0.0, instance.task(i).time(gamma), *column, gamma);
      } else {
        const int gamma = gamma_half[static_cast<std::size_t>(i)];
        const auto column = shelf2.allocate(gamma);
        if (!column) return std::nullopt;  // short shelf overflow
        schedule.assign(i, deadline, instance.task(i).time(gamma), *column, gamma);
      }
    }
    for (int b = 0; b < small_bins.bin_count(); ++b) {
      const auto column = shelf2.allocate(1);
      if (!column) return std::nullopt;
      double offset = 0.0;
      for (const int item : small_bins.bins[static_cast<std::size_t>(b)]) {
        const int task = small_tasks[static_cast<std::size_t>(item)];
        const double time = instance.task(task).time(1);
        schedule.assign(task, deadline + offset, time, *column, 1);
        offset += time;
      }
    }

    auto compacted = compact_schedule(schedule, instance);
    ValidationOptions validation;
    validation.makespan_bound = 1.5 * deadline;
    if (!validate_schedule(compacted, instance, validation).ok) return std::nullopt;
    return compacted;
  };

  for (const bool work_gain : {true, false}) {
    if (auto schedule = attempt(work_gain)) {
      outcome.schedule = std::move(schedule);
      return outcome;
    }
  }
  return outcome;
}

ThreeHalvesResult three_halves_schedule(const Instance& instance, double epsilon) {
  const DualStep step = [&](double guess) {
    DualStepResult result;
    auto outcome = three_halves_dual_step(instance, guess);
    if (outcome.schedule) {
      result.schedule = std::move(outcome.schedule);
      return result;
    }
    result.certified_reject = outcome.certified_reject;
    // Fallback keeps the search terminating: the malleable list step accepts
    // every sufficiently large guess.
    if (auto fallback = malleable_list_schedule(instance, guess)) {
      ValidationOptions validation;
      validation.makespan_bound = kSqrt3 * guess;
      auto compacted = compact_schedule(*fallback, instance);
      if (validate_schedule(compacted, instance, validation).ok) {
        result.schedule = std::move(compacted);
      }
    }
    return result;
  };
  DualSearchOptions options;
  options.epsilon = epsilon;
  auto search = dual_search(instance, step, options);
  return ThreeHalvesResult{std::move(search.schedule), search.makespan,
                           search.certified_lower_bound, search.ratio};
}

}  // namespace malsched
