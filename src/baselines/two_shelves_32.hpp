#pragma once

#include <optional>

#include "model/instance.hpp"
#include "sched/schedule.hpp"

/// Extension: a 3/2-style two-shelf dual step in the spirit of the paper's
/// successor work (Mounie, Rapine & Trystram later tightened sqrt(3) to
/// 3/2 + eps with shelves of length d and d/2).
///
/// This implementation keeps the knapsack skeleton: choose which tasks run
/// in the long shelf (deadline d, canonical allotment) so as to minimize
/// total work -- equivalently, a max-knapsack on the work saved -- then
/// place the rest in the short shelf (deadline d/2). It accepts only when
/// both shelves fit and the schedule validates at 3/2*d; it deliberately
/// omits the successor paper's transformation rules, so unlike the core
/// sqrt(3) algorithm it is *heuristic*: its dual step may fail on instances
/// with OPT <= d. mrt-style search with this step reports honest measured
/// ratios (bench_baselines compares them).
namespace malsched {

struct ThreeHalvesOutcome {
  std::optional<Schedule> schedule;  ///< length <= 1.5*d when present
  bool certified_reject{false};
};

/// One dual step at `deadline`.
[[nodiscard]] ThreeHalvesOutcome three_halves_dual_step(const Instance& instance,
                                                        double deadline);

/// Full solve: dichotomic search with the 3/2 step, falling back to the
/// paper's malleable list step so the search always terminates.
struct ThreeHalvesResult {
  Schedule schedule;
  double makespan;
  double lower_bound;
  double ratio;
};
[[nodiscard]] ThreeHalvesResult three_halves_schedule(const Instance& instance,
                                                      double epsilon = 0.01);

}  // namespace malsched
