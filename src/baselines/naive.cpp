#include "baselines/naive.hpp"

#include <vector>

#include "sched/list_scheduler.hpp"

namespace malsched {

Schedule lpt_sequential_schedule(const Instance& instance) {
  const std::vector<int> allotment(static_cast<std::size_t>(instance.size()), 1);
  const auto order = order_by_decreasing_seq_time(instance);
  return list_schedule(instance, allotment, order);
}

Schedule gang_schedule(const Instance& instance) {
  Schedule schedule(instance.machines(), instance.size());
  double clock = 0.0;
  for (int i = 0; i < instance.size(); ++i) {
    const double duration = instance.task(i).time(instance.machines());
    schedule.assign(i, clock, duration, 0, instance.machines());
    clock += duration;
  }
  return schedule;
}

Schedule half_max_speedup_schedule(const Instance& instance) {
  std::vector<int> allotment(static_cast<std::size_t>(instance.size()), 1);
  for (int i = 0; i < instance.size(); ++i) {
    const auto& task = instance.task(i);
    const double target = task.speedup(instance.machines()) / 2.0;
    int procs = 1;
    while (procs < instance.machines() && task.speedup(procs) < target) ++procs;
    allotment[static_cast<std::size_t>(i)] = procs;
  }
  const auto order = order_by_decreasing_alloted_time(instance, allotment);
  return list_schedule(instance, allotment, order);
}

}  // namespace malsched
