#include "baselines/two_phase.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <vector>

#include "packing/strip_packing.hpp"
#include "sched/list_scheduler.hpp"

namespace malsched {

std::string to_string(RigidAlgo algo) {
  switch (algo) {
    case RigidAlgo::kNfdh:
      return "nfdh";
    case RigidAlgo::kFfdh:
      return "ffdh";
    case RigidAlgo::kListSchedule:
      return "list";
  }
  return "unknown";
}

namespace {

/// Sorted distinct profile values -- the Turek/Ludwig candidate deadlines.
std::vector<double> candidate_thresholds(const Instance& instance, int max_candidates) {
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(instance.size()) *
                 static_cast<std::size_t>(instance.machines()));
  for (const auto& task : instance.tasks()) {
    for (int p = 1; p <= instance.machines(); ++p) values.push_back(task.time(p));
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  if (max_candidates > 0 && static_cast<int>(values.size()) > max_candidates) {
    std::vector<double> sampled;
    sampled.reserve(static_cast<std::size_t>(max_candidates));
    const double stride = static_cast<double>(values.size() - 1) /
                          static_cast<double>(max_candidates - 1);
    for (int k = 0; k < max_candidates; ++k) {
      sampled.push_back(values[static_cast<std::size_t>(static_cast<double>(k) * stride)]);
    }
    sampled.erase(std::unique(sampled.begin(), sampled.end()), sampled.end());
    return sampled;
  }
  return values;
}

/// Rigid schedule for one allotment; nullopt when some task cannot meet the
/// threshold on m processors.
std::optional<Schedule> rigid_schedule(const Instance& instance, double threshold,
                                       RigidAlgo algo) {
  std::vector<int> allotment(static_cast<std::size_t>(instance.size()));
  for (int i = 0; i < instance.size(); ++i) {
    const auto procs = instance.task(i).min_procs_for(threshold);
    if (!procs || *procs > instance.machines()) return std::nullopt;
    allotment[static_cast<std::size_t>(i)] = *procs;
  }

  if (algo == RigidAlgo::kListSchedule) {
    const auto order = order_by_decreasing_alloted_time(instance, allotment);
    return list_schedule(instance, allotment, order);
  }

  std::vector<Rect> rects(static_cast<std::size_t>(instance.size()));
  for (int i = 0; i < instance.size(); ++i) {
    const int procs = allotment[static_cast<std::size_t>(i)];
    rects[static_cast<std::size_t>(i)] = Rect{procs, instance.task(i).time(procs)};
  }
  const auto packing = algo == RigidAlgo::kNfdh ? nfdh(rects, instance.machines())
                                                : ffdh(rects, instance.machines());
  Schedule schedule(instance.machines(), instance.size());
  for (const auto& place : packing.placements) {
    const int procs = allotment[static_cast<std::size_t>(place.item)];
    schedule.assign(place.item, place.y, instance.task(place.item).time(procs), place.x, procs);
  }
  return schedule;
}

}  // namespace

TwoPhaseResult two_phase_schedule(const Instance& instance, const TwoPhaseOptions& options) {
  const auto thresholds = candidate_thresholds(instance, options.max_candidates);

  std::optional<Schedule> best;
  double best_makespan = 0.0;
  double best_threshold = 0.0;
  int tried = 0;
  for (const double threshold : thresholds) {
    auto schedule = rigid_schedule(instance, threshold, options.rigid);
    if (!schedule) continue;
    ++tried;
    const double makespan = schedule->makespan();
    if (!best || makespan < best_makespan) {
      best = std::move(schedule);
      best_makespan = makespan;
      best_threshold = threshold;
    }
  }
  if (!best) {
    throw std::runtime_error(
        "two_phase_schedule: no feasible candidate threshold (profiles shorter than m?)");
  }
  return TwoPhaseResult{std::move(*best), best_makespan, tried, best_threshold};
}

}  // namespace malsched
