#pragma once

#include "model/instance.hpp"
#include "sched/schedule.hpp"

/// Naive anchors for the benchmark comparisons.
namespace malsched {

/// Every task sequential (1 processor), LPT order -- ignores malleability
/// entirely; strong when tasks are many and small, terrible when one task
/// dominates.
[[nodiscard]] Schedule lpt_sequential_schedule(const Instance& instance);

/// Gang scheduling: every task runs on all m processors, one after another
/// -- maximal parallelism, maximal overhead.
[[nodiscard]] Schedule gang_schedule(const Instance& instance);

/// Per-task sweet spot: each task gets the smallest processor count that
/// achieves at least half of its maximal speedup, then the set is list
/// scheduled by decreasing time -- a pragmatic "what a practitioner might
/// hand-roll" baseline.
[[nodiscard]] Schedule half_max_speedup_schedule(const Instance& instance);

}  // namespace malsched
