#include "api/solve_batch.hpp"

#include <utility>

namespace malsched {

BatchReport solve_batch(const std::vector<SolveRequest>& requests,
                        const BatchRunnerOptions& options) {
  return BatchRunner(SolverRegistry::global(), options).run(requests);
}

BatchReport solve_batch(const std::vector<SolveRequest>& requests,
                        const BatchRunnerOptions& options, CancelToken cancel) {
  return BatchRunner(SolverRegistry::global(), options).run(requests, std::move(cancel));
}

BatchReport solve_batch(const std::vector<BatchJob>& jobs, const BatchRunnerOptions& options) {
  return BatchRunner(SolverRegistry::global(), options).run(jobs);
}

BatchReport solve_batch(const std::vector<BatchJob>& jobs, const BatchRunnerOptions& options,
                        CancelToken cancel) {
  return BatchRunner(SolverRegistry::global(), options).run(jobs, std::move(cancel));
}

}  // namespace malsched
