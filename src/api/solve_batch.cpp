#include "api/solve_batch.hpp"

namespace malsched {

BatchReport solve_batch(const std::vector<BatchJob>& jobs, const BatchRunnerOptions& options) {
  return BatchRunner(SolverRegistry::global(), options).run(jobs);
}

BatchReport solve_batch(const std::vector<BatchJob>& jobs, const BatchRunnerOptions& options,
                        CancelToken cancel) {
  return BatchRunner(SolverRegistry::global(), options).run(jobs, std::move(cancel));
}

}  // namespace malsched
