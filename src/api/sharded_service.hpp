#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "registry/request.hpp"
#include "api/scheduler_service.hpp"
#include "api/service_config.hpp"

/// ShardedSchedulerService: N independent SchedulerService shards behind the
/// one-service API -- the scale-out tier.
///
/// A single SchedulerService serializes every submit, completion, delivery,
/// and cache probe behind one state mutex and one cache LRU lock. Past a
/// handful of client threads those two locks -- not the workers -- bound
/// served QPS (measured by bench_suite's `contention` family). This tier
/// removes the global serialization point by construction instead of by
/// lock-splitting: each shard owns a complete serving stack (its own
/// SolveCache, in-flight dedup table, WorkerPool, and slot/delivery state),
/// and shards share NOTHING. There is deliberately no mutex in this class at
/// all; every member is immutable after construction, so all locking lives
/// inside the shards, where PR 6's annotated Mutex/GUARDED_BY vocabulary
/// (and the thread-safety CI job) already covers it.
///
///  * **Content-addressed routing.** A request lands on shard
///    `fingerprint % shards` (shard_of()). Equal-content requests therefore
///    always meet on the same shard, which is what keeps the per-shard
///    caches and dedup tables exactly as effective as the global ones were:
///    a duplicate can never miss its twin by landing elsewhere. Cross-shard
///    handle identity is the process-wide intern table
///    (model/instance_handle.hpp): equal-content handles share one
///    allocation no matter which shard -- or thread -- interned them.
///  * **Composite tickets.** A ticket encodes (shard, per-shard ticket) in
///    one uint64 (shard in the high 16 bits), so poll/wait/state/cancel
///    route with pure arithmetic -- no shared ticket table to lock. Sharded
///    tickets are opaque: unlike the single-service tier they are neither
///    dense nor globally ordered (per-shard ticket order still holds).
///  * **Determinism.** Every outcome is byte-identical to the same request
///    on an unsharded service (and to solve_batch), independent of shard
///    and worker counts -- solvers are deterministic functions of
///    (instance, options), and caches/dedup only ever serve equal-content
///    results. Provenance (`shard`, `worker`, wall times, ticket ids) is
///    run-dependent, as before.
///  * **Streaming.** on_result() installs the callback on every shard;
///    delivery is in ticket order WITHIN each shard but concurrent ACROSS
///    shards (the callback must be thread-safe). A cross-shard total order
///    would require exactly the global serialization point this tier
///    exists to remove; callers that need one should run one shard or sort
///    by their own sequence numbers.
///
/// Lifecycle mirrors SchedulerService: drain() finishes everything
/// submitted on every shard, shutdown() (also the destructor) stops intake
/// and joins every pool; both fan out shard by shard. Outcomes stay
/// poll()-able after shutdown until destruction.
namespace malsched {

/// stats() rolled up over every shard, plus the per-shard breakdown.
/// Each shard's entry is one consistent snapshot (taken under that shard's
/// mutex); the rollup sums snapshots taken one after another, so counters
/// may be skewed by work completing between shards -- same caveat as the
/// service-vs-cache halves of ServiceStats.
struct ShardedServiceStats {
  ServiceStats total;               ///< field-wise sum over shards
  std::vector<ServiceStats> shards; ///< index == shard id
};

class ShardedSchedulerService {
 public:
  using ResultCallback = SchedulerService::ResultCallback;

  /// Ticket-encoding limit (shard id must fit 16 bits); the practical limit
  /// is cores, far below this.
  static constexpr unsigned kMaxShards = 4096;

  /// `config` describes EACH shard (per-shard workers, per-shard cache
  /// budget): the same aggregate SchedulerService takes, so the two tiers
  /// configure identically. Throws std::invalid_argument when the config is
  /// invalid (see ServiceConfig::validate()) or `shards` is 0 or exceeds
  /// kMaxShards.
  explicit ShardedSchedulerService(ServiceConfig config = {}, unsigned shards = 1);
  ~ShardedSchedulerService();  // shutdown()

  ShardedSchedulerService(const ShardedSchedulerService&) = delete;
  ShardedSchedulerService& operator=(const ShardedSchedulerService&) = delete;

  [[nodiscard]] unsigned shards() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }

  /// Total worker threads across all shards.
  [[nodiscard]] unsigned threads() const noexcept;

  /// The shard a request over `handle` routes to: fingerprint % shards.
  /// Throws std::invalid_argument on an empty handle.
  [[nodiscard]] unsigned shard_of(const InstanceHandle& handle) const;

  /// Installs the streaming callback on every shard (see the class comment:
  /// per-shard ticket order, concurrent across shards, must be
  /// thread-safe). Must precede the first submit(), like the one-shard tier.
  void on_result(ResultCallback callback);

  /// Routes by content and enqueues; returns immediately. Throws
  /// std::runtime_error after shutdown() and std::invalid_argument on an
  /// empty handle.
  JobTicket submit(SolveRequest request);

  /// Convenience loop over submit(): tickets are returned in request order.
  /// Handles are validated up front, but enqueueing is per shard -- there is
  /// no cross-shard atomicity (unlike the single-service vector submit).
  std::vector<JobTicket> submit(std::vector<SolveRequest> requests);

  /// Non-blocking terminal-outcome probe; same contract as the one-shard
  /// tier (std::out_of_range on a ticket this service never issued,
  /// std::logic_error on a gc_slots-reclaimed one). The outcome carries the
  /// composite ticket and its `shard`.
  [[nodiscard]] std::optional<SolveOutcome> poll(JobTicket ticket);

  [[nodiscard]] JobState state(JobTicket ticket) const;

  /// Blocks until terminal; returns the outcome (composite ticket, `shard`
  /// stamped).
  [[nodiscard]] SolveOutcome wait(JobTicket ticket);

  /// Cancels a still-queued job on its shard; same semantics as the
  /// one-shard tier.
  bool cancel(JobTicket ticket);

  /// Blocks until every job submitted BEFORE the call is delivered, on
  /// every shard.
  void drain();

  /// Graceful stop of every shard (reject new work, cancel queued jobs,
  /// finish running ones, join workers). Idempotent.
  void shutdown();

  /// The aggregated rollup alone (field-wise sum over shards).
  [[nodiscard]] ServiceStats stats() const;

  /// Rollup plus the per-shard breakdown.
  [[nodiscard]] ShardedServiceStats shard_stats() const;

 private:
  [[nodiscard]] static std::uint64_t encode_ticket(unsigned shard, std::uint64_t inner);
  /// Decodes and bounds-checks; throws std::out_of_range on a shard id this
  /// service never issued.
  void decode_ticket(JobTicket ticket, unsigned& shard, std::uint64_t& inner) const;
  [[nodiscard]] SolveOutcome rewrite(SolveOutcome outcome, unsigned shard) const;

  /// Immutable after construction (the no-mutex invariant -- see the class
  /// comment); each element is internally synchronized.
  std::vector<std::unique_ptr<SchedulerService>> shards_;
};

}  // namespace malsched
