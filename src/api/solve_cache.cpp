#include "api/solve_cache.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "support/failpoint.hpp"
#include "support/fnv.hpp"

namespace malsched {

namespace {

using fnv::mix_bytes;
using fnv::mix_u64;

/// FNV-1a over the key's CHEAP parts: the instance fingerprint (already
/// computed at intern) and the two identity strings. Profile bits are never
/// touched here -- that is the whole point of the interned handle.
std::uint64_t key_fingerprint(const std::string& solver, const std::string& options,
                              const InstanceHandle& instance) {
  std::uint64_t hash = fnv::kOffset;
  mix_u64(hash, solver.size());
  mix_bytes(hash, solver.data(), solver.size());
  mix_u64(hash, options.size());
  mix_bytes(hash, options.data(), options.size());
  mix_u64(hash, instance.fingerprint());
  return hash;
}

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Approximate footprint of one memoized entry, for the byte budget. An
/// estimate, not an accounting: heap headers and map nodes are ignored, the
/// dominant payloads (schedule assignments, scattered lists, stat keys,
/// identity strings) are counted.
std::size_t approx_entry_bytes(const SolveCache::Key& key, const SolverResult& result) {
  std::size_t bytes = sizeof(SolveCache::Key) + sizeof(SolverResult);
  bytes += key.solver.size() + key.options.size();
  bytes += result.solver.size();
  bytes += result.schedule.assignments().size() * sizeof(Assignment);
  for (const auto& assignment : result.schedule.assignments()) {
    bytes += assignment.scattered.size() * sizeof(int);
  }
  for (const auto& [name, value] : result.stats) {
    static_cast<void>(value);
    bytes += sizeof(std::pair<std::string, double>) + name.size();
  }
  return bytes;
}

}  // namespace

SolveCache::SolveCache(SolveCacheConfig config) : config_(std::move(config)) {}

SolveCache::SolveCache(std::size_t capacity) : SolveCache(SolveCacheConfig{capacity, 0, 0.0, {}}) {}

SolveCache::Key SolveCache::make_key(const std::string& solver, const SolverOptions& options,
                                     InstanceHandle instance) {
  if (!instance.valid()) throw std::invalid_argument("SolveCache: empty instance handle");
  Key key;
  key.solver = solver;
  key.options = options.str();
  key.fingerprint = key_fingerprint(key.solver, key.options, instance);
  key.instance = std::move(instance);
  return key;
}

SolveCache::Key SolveCache::make_key(const std::string& solver, const SolverOptions& options,
                                     std::shared_ptr<const Instance> instance) {
  return make_key(solver, options, InstanceHandle::intern(std::move(instance)));
}

bool SolveCache::same_key(const Key& a, const Key& b) {
  if (a.fingerprint != b.fingerprint || a.solver != b.solver || a.options != b.options) {
    return false;
  }
  // Handle equality: shared-intern fast path (pointer), deep content compare
  // only for separately interned twins behind a fingerprint match.
  return a.instance == b.instance;
}

double SolveCache::now() const { return config_.clock ? config_.clock() : steady_seconds(); }

bool SolveCache::expired(const Entry& entry, double at) const noexcept {
  return config_.ttl_seconds > 0.0 && at - entry.inserted_at > config_.ttl_seconds;
}

void SolveCache::erase_locked(EntryList::iterator it) {
  auto& candidates = index_[it->key.fingerprint];
  candidates.erase(std::find(candidates.begin(), candidates.end(), it));
  if (candidates.empty()) index_.erase(it->key.fingerprint);
  bytes_ -= it->bytes;
  entries_.erase(it);
}

std::shared_ptr<const SolverResult> SolveCache::lookup(const Key& key, bool count_miss) {
  if (config_.capacity == 0) return nullptr;
  // After the capacity guard: a disabled cache is a legitimate no-op, not a
  // failure path worth injecting into.
  MALSCHED_FAILPOINT("cache.lookup");
  const LockGuard lock(mutex_);
  const auto bucket = index_.find(key.fingerprint);
  if (bucket != index_.end()) {
    for (const auto& it : bucket->second) {
      if (same_key(it->key, key)) {
        if (expired(*it, now())) {
          erase_locked(it);
          ++stats_.evictions_ttl;
          break;  // at most one live entry per key; fall through to miss
        }
        entries_.splice(entries_.begin(), entries_, it);  // refresh LRU
        ++stats_.hits;
        return it->result;  // shared_ptr copy only; payload copies happen
                            // outside the lock, in the caller
      }
    }
  }
  if (count_miss) ++stats_.misses;
  return nullptr;
}

void SolveCache::insert(const Key& key, const SolverResult& result) {
  if (config_.capacity == 0) return;
  MALSCHED_FAILPOINT("cache.insert");
  // The expensive part (copying a full SolverResult, Schedule included)
  // stays outside the critical section.
  auto memoized = std::make_shared<const SolverResult>(result);
  const std::size_t entry_bytes = approx_entry_bytes(key, result);
  const LockGuard lock(mutex_);
  const double at = now();

  // Idempotent re-insert (two workers may race the same miss): refresh a
  // live entry and keep the first memoized copy -- both came from the same
  // deterministic solve. An expired one is replaced outright.
  auto bucket = index_.find(key.fingerprint);
  if (bucket != index_.end()) {
    for (const auto& it : bucket->second) {
      if (same_key(it->key, key)) {
        if (!expired(*it, at)) {
          entries_.splice(entries_.begin(), entries_, it);
          return;
        }
        erase_locked(it);
        ++stats_.evictions_ttl;
        break;
      }
    }
  }

  entries_.push_front(Entry{key, std::move(memoized), at, entry_bytes});
  index_[key.fingerprint].push_back(entries_.begin());
  bytes_ += entry_bytes;
  ++stats_.insertions;

  // Trim from the LRU tail until both budgets hold: age first (an expired
  // tail entry should be charged to TTL, not capacity), then the entry
  // budget, then the byte budget. The just-inserted entry itself is never
  // evicted for the byte budget alone (see SolveCacheConfig::max_bytes).
  while (entries_.size() > 1) {
    const auto victim = std::prev(entries_.end());
    if (expired(*victim, at)) {
      erase_locked(victim);
      ++stats_.evictions_ttl;
    } else if (entries_.size() > config_.capacity) {
      erase_locked(victim);
      ++stats_.evictions_capacity;
    } else if (config_.max_bytes > 0 && bytes_ > config_.max_bytes) {
      erase_locked(victim);
      ++stats_.evictions_bytes;
    } else {
      break;
    }
  }
}

void SolveCache::clear() {
  const LockGuard lock(mutex_);
  entries_.clear();
  index_.clear();
  bytes_ = 0;
}

SolveCacheStats SolveCache::stats() const {
  const LockGuard lock(mutex_);
  SolveCacheStats out = stats_;
  out.entries = entries_.size();
  out.bytes = bytes_;
  return out;
}

}  // namespace malsched
