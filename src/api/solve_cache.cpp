#include "api/solve_cache.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

namespace malsched {

namespace {

/// FNV-1a, the usual 64-bit offset/prime pair.
constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix_bytes(std::uint64_t& hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
}

void mix_u64(std::uint64_t& hash, std::uint64_t value) { mix_bytes(hash, &value, sizeof value); }

/// Canonical content fingerprint of one job. Field order is fixed; every
/// double contributes its BIT pattern (std::bit_cast -- the cache promises
/// byte-identical results, so 0.0 and -0.0 must not alias), and strings
/// contribute length + bytes so "ab"+"c" cannot alias "a"+"bc".
std::uint64_t fingerprint(const std::string& solver, const std::string& options,
                          const Instance& instance) {
  std::uint64_t hash = kFnvOffset;
  mix_u64(hash, solver.size());
  mix_bytes(hash, solver.data(), solver.size());
  mix_u64(hash, options.size());
  mix_bytes(hash, options.data(), options.size());
  mix_u64(hash, static_cast<std::uint64_t>(instance.machines()));
  mix_u64(hash, static_cast<std::uint64_t>(instance.size()));
  for (const auto& task : instance.tasks()) {
    const auto& profile = task.profile();
    mix_u64(hash, profile.size());
    for (const double time : profile) {
      mix_u64(hash, std::bit_cast<std::uint64_t>(time));
    }
    mix_u64(hash, task.name().size());
    mix_bytes(hash, task.name().data(), task.name().size());
  }
  return hash;
}

/// Exact content equality (profiles compared bit for bit, names included):
/// the deep half of key comparison behind a fingerprint match.
bool same_instance_content(const Instance& a, const Instance& b) {
  if (a.machines() != b.machines() || a.size() != b.size()) return false;
  for (int i = 0; i < a.size(); ++i) {
    const auto& ta = a.task(i);
    const auto& tb = b.task(i);
    if (ta.name() != tb.name()) return false;
    const auto& pa = ta.profile();
    const auto& pb = tb.profile();
    if (pa.size() != pb.size()) return false;
    for (std::size_t p = 0; p < pa.size(); ++p) {
      if (std::bit_cast<std::uint64_t>(pa[p]) != std::bit_cast<std::uint64_t>(pb[p])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

SolveCache::SolveCache(std::size_t capacity) : capacity_(capacity) {}

SolveCache::Key SolveCache::make_key(const std::string& solver, const SolverOptions& options,
                                     std::shared_ptr<const Instance> instance) {
  if (!instance) throw std::invalid_argument("SolveCache: null instance");
  Key key;
  key.solver = solver;
  key.options = options.str();
  key.fingerprint = fingerprint(key.solver, key.options, *instance);
  key.instance = std::move(instance);
  return key;
}

bool SolveCache::same_key(const Key& a, const Key& b) {
  if (a.fingerprint != b.fingerprint || a.solver != b.solver || a.options != b.options) {
    return false;
  }
  // Shared-instance fast path; distinct objects fall through to content.
  if (a.instance.get() == b.instance.get()) return true;
  return same_instance_content(*a.instance, *b.instance);
}

std::shared_ptr<const SolverResult> SolveCache::lookup(const Key& key) {
  if (capacity_ == 0) return nullptr;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto bucket = index_.find(key.fingerprint);
  if (bucket != index_.end()) {
    for (const auto& it : bucket->second) {
      if (same_key(it->key, key)) {
        entries_.splice(entries_.begin(), entries_, it);  // refresh LRU
        ++stats_.hits;
        return it->result;  // shared_ptr copy only; payload copies happen
                            // outside the lock, in the caller
      }
    }
  }
  ++stats_.misses;
  return nullptr;
}

void SolveCache::insert(const Key& key, const SolverResult& result) {
  if (capacity_ == 0) return;
  // The expensive part (copying a full SolverResult, Schedule included)
  // stays outside the critical section.
  auto memoized = std::make_shared<const SolverResult>(result);
  const std::lock_guard<std::mutex> lock(mutex_);

  // Idempotent re-insert (two workers may race the same miss): refresh, keep
  // the first memoized copy -- both came from the same deterministic solve.
  auto bucket = index_.find(key.fingerprint);
  if (bucket != index_.end()) {
    for (const auto& it : bucket->second) {
      if (same_key(it->key, key)) {
        entries_.splice(entries_.begin(), entries_, it);
        return;
      }
    }
  }

  if (entries_.size() >= capacity_) {
    const auto victim = std::prev(entries_.end());
    auto& candidates = index_[victim->key.fingerprint];
    candidates.erase(std::find(candidates.begin(), candidates.end(), victim));
    if (candidates.empty()) index_.erase(victim->key.fingerprint);
    entries_.erase(victim);
    ++stats_.evictions;
  }

  entries_.push_front(Entry{key, std::move(memoized)});
  index_[key.fingerprint].push_back(entries_.begin());
  ++stats_.insertions;
}

void SolveCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  index_.clear();
}

SolveCacheStats SolveCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  SolveCacheStats out = stats_;
  out.entries = entries_.size();
  return out;
}

}  // namespace malsched
