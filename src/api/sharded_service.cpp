#include "api/sharded_service.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace malsched {

namespace {

constexpr unsigned kShardShift = 48;  ///< inner tickets keep the low 48 bits
constexpr std::uint64_t kInnerMask = (std::uint64_t{1} << kShardShift) - 1;

}  // namespace

/// Field-wise rollup, kept in ServiceStats' definition order. Declared in
/// scheduler_service.hpp: the bench writers reuse it, and the linter's
/// stats-exhaustive rule cross-references every ServiceStats field against
/// this body -- a new counter that misses this list fails CI, not review.
void accumulate_stats(ServiceStats& total, const ServiceStats& shard) {
  total.submitted += shard.submitted;
  total.completed += shard.completed;
  total.failed += shard.failed;
  total.cancelled += shard.cancelled;
  total.delivered += shard.delivered;
  total.dedup_joins += shard.dedup_joins;
  total.slots_reclaimed += shard.slots_reclaimed;
  total.cache_hits += shard.cache_hits;
  total.cache_misses += shard.cache_misses;
  total.cache_evictions += shard.cache_evictions;
  total.cache_evictions_capacity += shard.cache_evictions_capacity;
  total.cache_evictions_bytes += shard.cache_evictions_bytes;
  total.cache_evictions_ttl += shard.cache_evictions_ttl;
  total.cache_entries += shard.cache_entries;
  total.cache_bytes += shard.cache_bytes;
  total.workspace_reuses += shard.workspace_reuses;
  total.rejected += shard.rejected;
  total.shed += shard.shed;
  total.deadline_misses += shard.deadline_misses;
  total.fallbacks += shard.fallbacks;
  total.cache_failures += shard.cache_failures;
  // Summed like everything else: the rollup is "total pending ever held
  // across the tier", each shard contributing its own high-water mark.
  total.queue_depth_high_water += shard.queue_depth_high_water;
  total.fast_path_hits += shard.fast_path_hits;
}

ShardedSchedulerService::ShardedSchedulerService(ServiceConfig config, unsigned shards) {
  if (shards == 0 || shards > kMaxShards) {
    throw std::invalid_argument("ShardedSchedulerService: shards = " + std::to_string(shards) +
                                " outside [1, " + std::to_string(kMaxShards) + "]");
  }
  // Validate once here for a readable error from THIS constructor; each
  // shard re-validates (cheaply) as it constructs.
  config.ensure_valid();
  shards_.reserve(shards);
  for (unsigned s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<SchedulerService>(config));
  }
}

ShardedSchedulerService::~ShardedSchedulerService() { shutdown(); }

unsigned ShardedSchedulerService::threads() const noexcept {
  unsigned total = 0;
  for (const auto& shard : shards_) total += shard->threads();
  return total;
}

unsigned ShardedSchedulerService::shard_of(const InstanceHandle& handle) const {
  if (!handle.valid()) {
    throw std::invalid_argument("ShardedSchedulerService: shard_of() on an empty InstanceHandle");
  }
  return static_cast<unsigned>(handle.fingerprint() % shards_.size());
}

void ShardedSchedulerService::on_result(ResultCallback callback) {
  // One shared copy of the user callback, wrapped per shard to stamp the
  // composite ticket and shard id. Each shard enforces the
  // before-first-submit rule for its own stream.
  auto shared = std::make_shared<ResultCallback>(std::move(callback));
  for (unsigned s = 0; s < shards_.size(); ++s) {
    shards_[s]->on_result([shared, s](const SolveOutcome& inner) {
      SolveOutcome outcome = inner;  // the rewrite needs a mutable copy
      outcome.ticket = encode_ticket(s, inner.ticket);
      outcome.shard = static_cast<int>(s);
      (*shared)(outcome);
    });
  }
}

JobTicket ShardedSchedulerService::submit(SolveRequest request) {
  const unsigned shard = shard_of(request.instance);  // rejects empty handles
  const JobTicket inner = shards_[shard]->submit(std::move(request));
  return JobTicket{encode_ticket(shard, inner.id)};
}

std::vector<JobTicket> ShardedSchedulerService::submit(std::vector<SolveRequest> requests) {
  // Validate every handle BEFORE the first enqueue so a bad request
  // mid-vector cannot strand earlier tickets with the throwing caller
  // (same up-front check as the one-shard tier; enqueueing itself is per
  // shard, as documented).
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!requests[i].instance.valid()) {
      throw std::invalid_argument("ShardedSchedulerService: request " + std::to_string(i) +
                                  " carries an empty InstanceHandle");
    }
  }
  std::vector<JobTicket> tickets;
  tickets.reserve(requests.size());
  for (auto& request : requests) {
    tickets.push_back(submit(std::move(request)));
  }
  return tickets;
}

std::optional<SolveOutcome> ShardedSchedulerService::poll(JobTicket ticket) {
  unsigned shard = 0;
  std::uint64_t inner = 0;
  decode_ticket(ticket, shard, inner);
  std::optional<SolveOutcome> outcome = shards_[shard]->poll(JobTicket{inner});
  if (!outcome) return std::nullopt;
  return rewrite(std::move(*outcome), shard);
}

JobState ShardedSchedulerService::state(JobTicket ticket) const {
  unsigned shard = 0;
  std::uint64_t inner = 0;
  decode_ticket(ticket, shard, inner);
  return shards_[shard]->state(JobTicket{inner});
}

SolveOutcome ShardedSchedulerService::wait(JobTicket ticket) {
  unsigned shard = 0;
  std::uint64_t inner = 0;
  decode_ticket(ticket, shard, inner);
  return rewrite(shards_[shard]->wait(JobTicket{inner}), shard);
}

bool ShardedSchedulerService::cancel(JobTicket ticket) {
  unsigned shard = 0;
  std::uint64_t inner = 0;
  decode_ticket(ticket, shard, inner);
  return shards_[shard]->cancel(JobTicket{inner});
}

void ShardedSchedulerService::drain() {
  for (const auto& shard : shards_) shard->drain();
}

void ShardedSchedulerService::shutdown() {
  for (const auto& shard : shards_) shard->shutdown();
}

ServiceStats ShardedSchedulerService::stats() const {
  ServiceStats total;
  for (const auto& shard : shards_) accumulate_stats(total, shard->stats());
  return total;
}

ShardedServiceStats ShardedSchedulerService::shard_stats() const {
  ShardedServiceStats stats;
  stats.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    stats.shards.push_back(shard->stats());
    accumulate_stats(stats.total, stats.shards.back());
  }
  return stats;
}

std::uint64_t ShardedSchedulerService::encode_ticket(unsigned shard, std::uint64_t inner) {
  // Inner tickets are dense per-shard counters; 2^48 of them per shard is
  // out of reach, so the encoding never truncates in practice. The shard
  // bound is enforced at construction (kMaxShards).
  return (static_cast<std::uint64_t>(shard) << kShardShift) | (inner & kInnerMask);
}

void ShardedSchedulerService::decode_ticket(JobTicket ticket, unsigned& shard,
                                            std::uint64_t& inner) const {
  shard = static_cast<unsigned>(ticket.id >> kShardShift);
  inner = ticket.id & kInnerMask;
  if (shard >= shards_.size()) {
    throw std::out_of_range("ShardedSchedulerService: unknown ticket " +
                            std::to_string(ticket.id) + " (shard " + std::to_string(shard) +
                            " of " + std::to_string(shards_.size()) + ")");
  }
}

SolveOutcome ShardedSchedulerService::rewrite(SolveOutcome outcome, unsigned shard) const {
  outcome.ticket = encode_ticket(shard, outcome.ticket);
  outcome.shard = static_cast<int>(shard);
  return outcome;
}

}  // namespace malsched
