#pragma once

#include <vector>

#include "exec/batch_runner.hpp"

/// Batch entry point of the api facade: many SolveRequests, one
/// deterministic parallel run through the global SolverRegistry.
///
/// This is to BatchRunner what malsched::solve() is to
/// SolverRegistry::solve() -- the one-liner front ends reach for. Results
/// come back in request order with per-job error isolation; see
/// exec/batch_runner.hpp for the full guarantees. For continuous traffic
/// (submit over time, streaming delivery, result caching, in-flight dedup)
/// use the long-lived front door instead: api/scheduler_service.hpp.
///
/// The BatchJob overloads are pre-v2 shims: they intern (fingerprint) each
/// distinct instance before running. Intern once with InstanceHandle and
/// pass SolveRequests to stay on the zero-re-hash path.
namespace malsched {

[[nodiscard]] BatchReport solve_batch(const std::vector<SolveRequest>& requests,
                                      const BatchRunnerOptions& options = {});

/// As above with caller-owned cancellation.
[[nodiscard]] BatchReport solve_batch(const std::vector<SolveRequest>& requests,
                                      const BatchRunnerOptions& options, CancelToken cancel);

/// Pre-v2 shims (interning; see the header comment).
[[nodiscard]] BatchReport solve_batch(const std::vector<BatchJob>& jobs,
                                      const BatchRunnerOptions& options = {});
[[nodiscard]] BatchReport solve_batch(const std::vector<BatchJob>& jobs,
                                      const BatchRunnerOptions& options, CancelToken cancel);

}  // namespace malsched
