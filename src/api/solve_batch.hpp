#pragma once

#include <vector>

#include "exec/batch_runner.hpp"

/// Batch entry point of the api facade: many (solver, options, instance)
/// jobs, one deterministic parallel run through the global SolverRegistry.
///
/// This is to BatchRunner what malsched::solve() is to
/// SolverRegistry::solve() -- the one-liner front ends reach for. Results
/// come back in job order with per-job error isolation; see
/// exec/batch_runner.hpp for the full guarantees. For continuous traffic
/// (submit over time, streaming delivery, result caching) use the
/// long-lived front door instead: api/scheduler_service.hpp.
namespace malsched {

[[nodiscard]] BatchReport solve_batch(const std::vector<BatchJob>& jobs,
                                      const BatchRunnerOptions& options = {});

/// As above with caller-owned cancellation.
[[nodiscard]] BatchReport solve_batch(const std::vector<BatchJob>& jobs,
                                      const BatchRunnerOptions& options, CancelToken cancel);

}  // namespace malsched
