#include "api/stats_json.hpp"

#include <cstdint>

namespace malsched {

void write_service_stats(JsonWriter& json, const ServiceStats& stats) {
  json.begin_object();
  json.key("submitted");
  json.value(static_cast<unsigned long long>(stats.submitted));
  json.key("completed");
  json.value(static_cast<unsigned long long>(stats.completed));
  json.key("failed");
  json.value(static_cast<unsigned long long>(stats.failed));
  json.key("cancelled");
  json.value(static_cast<unsigned long long>(stats.cancelled));
  json.key("delivered");
  json.value(static_cast<unsigned long long>(stats.delivered));
  json.key("dedup_joins");
  json.value(static_cast<unsigned long long>(stats.dedup_joins));
  json.key("slots_reclaimed");
  json.value(static_cast<unsigned long long>(stats.slots_reclaimed));
  json.key("cache_hits");
  json.value(static_cast<unsigned long long>(stats.cache_hits));
  json.key("cache_misses");
  json.value(static_cast<unsigned long long>(stats.cache_misses));
  json.key("cache_evictions");
  json.value(static_cast<unsigned long long>(stats.cache_evictions));
  json.key("cache_evictions_capacity");
  json.value(static_cast<unsigned long long>(stats.cache_evictions_capacity));
  json.key("cache_evictions_bytes");
  json.value(static_cast<unsigned long long>(stats.cache_evictions_bytes));
  json.key("cache_evictions_ttl");
  json.value(static_cast<unsigned long long>(stats.cache_evictions_ttl));
  json.key("cache_entries");
  json.value(static_cast<unsigned long long>(stats.cache_entries));
  json.key("cache_bytes");
  json.value(static_cast<unsigned long long>(stats.cache_bytes));
  json.key("workspace_reuses");
  json.value(static_cast<unsigned long long>(stats.workspace_reuses));
  json.key("rejected");
  json.value(static_cast<unsigned long long>(stats.rejected));
  json.key("shed");
  json.value(static_cast<unsigned long long>(stats.shed));
  json.key("deadline_misses");
  json.value(static_cast<unsigned long long>(stats.deadline_misses));
  json.key("fallbacks");
  json.value(static_cast<unsigned long long>(stats.fallbacks));
  json.key("cache_failures");
  json.value(static_cast<unsigned long long>(stats.cache_failures));
  json.key("queue_depth_high_water");
  json.value(static_cast<unsigned long long>(stats.queue_depth_high_water));
  json.key("fast_path_hits");
  json.value(static_cast<unsigned long long>(stats.fast_path_hits));
  json.end_object();
}

}  // namespace malsched
