#include "api/scheduler_service.hpp"

#include <exception>
#include <stdexcept>
#include <utility>

#include "core/dual_workspace.hpp"
#include "support/stopwatch.hpp"

namespace malsched {

namespace {

/// Per-worker mrt scratch: the workspace of the last instance this thread
/// solved, plus a shared_ptr that pins that instance so the raw address
/// comparison below can never hit a recycled allocation. Thread-local on the
/// pool threads (each service owns its threads, so services never share
/// scratch); reset when the thread exits.
struct WorkerScratch {
  std::shared_ptr<const Instance> instance;
  std::unique_ptr<DualWorkspace> workspace;
};
thread_local WorkerScratch tls_scratch;

DualWorkspace* thread_workspace(const std::shared_ptr<const Instance>& job_instance,
                                const Instance& requested, bool& reused) {
  // Defensive: the provider promises a workspace for exactly the requested
  // instance; a solver asking about anything else gets a decline.
  if (&requested != job_instance.get()) return nullptr;
  if (tls_scratch.workspace != nullptr && tls_scratch.instance.get() == &requested) {
    reused = true;
    return tls_scratch.workspace.get();
  }
  // Build first, then swap the keepalive: the old workspace stays backed by
  // the old instance until both are replaced.
  auto fresh = std::make_unique<DualWorkspace>(requested);
  tls_scratch.workspace = std::move(fresh);
  tls_scratch.instance = job_instance;
  return tls_scratch.workspace.get();
}

}  // namespace

SchedulerService::SchedulerService(ServiceOptions options)
    : options_(options),
      registry_(options.registry != nullptr ? options.registry : &SolverRegistry::global()),
      cache_(options.cache ? options.cache_capacity : 0),
      pool_(options.threads) {}

SchedulerService::~SchedulerService() { shutdown(); }

void SchedulerService::on_result(ResultCallback callback) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!slots_.empty()) {
    throw std::logic_error(
        "SchedulerService: on_result() must be installed before the first submit() "
        "(a stream starting mid-run would miss delivered outcomes)");
  }
  callback_ = std::move(callback);
}

JobTicket SchedulerService::enqueue_locked(BatchJob job, SubmitOptions options) {
  if (!accepting_) {
    throw std::runtime_error("SchedulerService: submit() after shutdown()");
  }
  const std::uint64_t id = slots_.size();
  slots_.push_back(Slot{std::move(job), options, JobState::kQueued, JobOutcome{}});
  ++stats_.submitted;
  // Posting under the state lock is safe (the pool never calls back into the
  // service while holding its own lock) and makes accepting_ imply a live
  // pool, so this post cannot throw.
  pool_.post([this, id] { run_job(id); });
  return JobTicket{id};
}

JobTicket SchedulerService::submit(BatchJob job, SubmitOptions options) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return enqueue_locked(std::move(job), options);
}

std::vector<JobTicket> SchedulerService::submit(std::vector<BatchJob> jobs,
                                                SubmitOptions options) {
  std::vector<JobTicket> tickets;
  tickets.reserve(jobs.size());
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& job : jobs) {
    tickets.push_back(enqueue_locked(std::move(job), options));
  }
  return tickets;
}

void SchedulerService::run_job(std::uint64_t id) {
  std::string solver;
  SolverOptions solver_options;
  std::shared_ptr<const Instance> instance;
  bool use_cache = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    Slot& slot = slots_[id];
    if (slot.state != JobState::kQueued) return;  // cancelled before start
    slot.state = JobState::kRunning;
    solver = slot.job.solver;
    solver_options = slot.job.options;
    instance = slot.job.instance;
    use_cache = cache_.enabled() && slot.submit_options.cache;
  }

  const Stopwatch stopwatch;
  JobOutcome outcome;
  outcome.ticket = id;

  std::optional<SolveCache::Key> key;
  if (use_cache) {
    key = SolveCache::make_key(solver, solver_options, instance);
    if (const auto cached = cache_.lookup(*key)) {
      outcome.status = BatchItemStatus::kOk;
      outcome.result = *cached;  // copied outside the cache lock
      outcome.cache_hit = true;
      outcome.wall_seconds = stopwatch.seconds();
      finish(id, std::move(outcome), /*reused_workspace=*/false);
      return;
    }
  }

  bool reused_workspace = false;
  SolveContext context;
  if (options_.reuse_workspaces) {
    context.workspace_provider = [&instance, &reused_workspace](const Instance& requested) {
      return thread_workspace(instance, requested, reused_workspace);
    };
  }
  try {
    outcome.result = registry_->solve(solver, *instance, solver_options, context);
    outcome.status = BatchItemStatus::kOk;
  } catch (const std::exception& err) {
    outcome.status = BatchItemStatus::kError;
    outcome.error = err.what();
  } catch (...) {
    outcome.status = BatchItemStatus::kError;
    outcome.error = "non-standard exception";
  }
  if (outcome.status == BatchItemStatus::kOk && key.has_value()) {
    cache_.insert(*key, *outcome.result);
  }
  outcome.wall_seconds = stopwatch.seconds();
  finish(id, std::move(outcome), reused_workspace);
}

namespace {

/// Terminal slots never read their job again (run_job copies what it needs
/// at dequeue); dropping the payload here keeps a long-lived service from
/// pinning every Instance it ever saw. Outcomes stay poll()-able.
void release_job_payload(BatchJob& job) {
  job.instance.reset();
  job.options = SolverOptions{};
  job.solver.clear();
  job.solver.shrink_to_fit();
}

}  // namespace

void SchedulerService::finish(std::uint64_t id, JobOutcome outcome, bool reused_workspace) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    Slot& slot = slots_[id];
    slot.outcome = std::move(outcome);
    slot.state = JobState::kDone;
    release_job_payload(slot.job);
    switch (slot.outcome.status) {
      case BatchItemStatus::kOk: ++stats_.completed; break;
      case BatchItemStatus::kError: ++stats_.failed; break;
      case BatchItemStatus::kCancelled: ++stats_.cancelled; break;
    }
    if (reused_workspace) ++stats_.workspace_reuses;
  }
  done_cv_.notify_all();
  deliver_ready();
}

void SchedulerService::deliver_ready() {
  // Single-deliverer protocol, re-entrancy-safe: exactly one thread at a
  // time walks next_delivery_ forward (pinning ticket order); every other
  // caller -- a worker finishing out of order, cancel() from another
  // thread, or cancel() invoked INSIDE the callback currently being
  // delivered -- just flags a rescan and returns. The active deliverer
  // re-checks the flag before retiring, so a slot that turns terminal
  // mid-delivery is never stranded. (A plain delivery mutex would deadlock
  // the documented cancel-in-callback case.)
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    delivery_requested_ = true;
    if (delivering_) return;
    delivering_ = true;
  }
  // Immutable once the first job is submitted, so safe to read unlocked.
  const bool streaming = static_cast<bool>(callback_);
  for (;;) {
    const JobOutcome* out = nullptr;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      delivery_requested_ = false;
      if (next_delivery_ < slots_.size() &&
          slots_[next_delivery_].state == JobState::kDone) {
        // Safe to hand out past the unlock: a terminal outcome is immutable,
        // slots are never erased, and deque growth does not move elements --
        // so the callback gets a reference with no payload copy (terminal
        // schedules can be large) and no work under the state mutex.
        out = &slots_[next_delivery_].outcome;
        ++next_delivery_;
      }
    }
    if (out != nullptr) {
      if (streaming) {
        // A throwing callback must neither wedge the stream (delivering_
        // stuck true, drain() blocked forever) nor escape into WorkerPool's
        // noexcept worker loop (std::terminate); the stream is
        // infrastructure, so the exception is swallowed and delivery
        // continues with the next ticket.
        try {
          callback_(*out);
        } catch (...) {
        }
      }
      {
        // Counted only AFTER the callback returned: drain() waits on this,
        // so "drained" means every streamed callback has completed.
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.delivered;
      }
      done_cv_.notify_all();  // drain() watches the delivery frontier
      continue;
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!delivery_requested_) {
      delivering_ = false;
      return;
    }
  }
}

std::optional<JobOutcome> SchedulerService::poll(JobTicket ticket) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ticket.id >= slots_.size()) {
    throw std::out_of_range("SchedulerService: unknown ticket " + std::to_string(ticket.id));
  }
  const Slot& slot = slots_[ticket.id];
  if (slot.state != JobState::kDone) return std::nullopt;
  return slot.outcome;
}

JobState SchedulerService::state(JobTicket ticket) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ticket.id >= slots_.size()) {
    throw std::out_of_range("SchedulerService: unknown ticket " + std::to_string(ticket.id));
  }
  return slots_[ticket.id].state;
}

JobOutcome SchedulerService::wait(JobTicket ticket) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (ticket.id >= slots_.size()) {
    throw std::out_of_range("SchedulerService: unknown ticket " + std::to_string(ticket.id));
  }
  done_cv_.wait(lock, [&] { return slots_[ticket.id].state == JobState::kDone; });
  return slots_[ticket.id].outcome;
}

bool SchedulerService::cancel(JobTicket ticket) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (ticket.id >= slots_.size()) {
      throw std::out_of_range("SchedulerService: unknown ticket " + std::to_string(ticket.id));
    }
    Slot& slot = slots_[ticket.id];
    if (slot.state != JobState::kQueued) return false;
    slot.state = JobState::kDone;
    slot.outcome.ticket = ticket.id;
    slot.outcome.status = BatchItemStatus::kCancelled;
    release_job_payload(slot.job);
    ++stats_.cancelled;
    // The posted closure still sits in the pool queue; run_job sees the
    // terminal state and returns without touching the slot.
  }
  done_cv_.notify_all();
  deliver_ready();
  return true;
}

void SchedulerService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::uint64_t target = slots_.size();
  done_cv_.wait(lock, [&] { return stats_.delivered >= target; });
}

void SchedulerService::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = false;
    for (std::uint64_t id = 0; id < slots_.size(); ++id) {
      Slot& slot = slots_[id];
      if (slot.state != JobState::kQueued) continue;
      slot.state = JobState::kDone;
      slot.outcome.ticket = id;
      slot.outcome.status = BatchItemStatus::kCancelled;
      release_job_payload(slot.job);
      ++stats_.cancelled;
    }
  }
  done_cv_.notify_all();
  // Running solves finish (their closures already left the queue); the
  // closures of the jobs cancelled above are discarded unrun.
  pool_.shutdown();
  // Flush the tail of the stream: everything is terminal now.
  deliver_ready();
}

ServiceStats SchedulerService::stats() const {
  ServiceStats out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out = stats_;
  }
  const SolveCacheStats cache = cache_.stats();
  out.cache_hits = cache.hits;
  out.cache_misses = cache.misses;
  out.cache_evictions = cache.evictions;
  out.cache_entries = cache.entries;
  return out;
}

}  // namespace malsched
