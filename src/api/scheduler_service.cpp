#include "api/scheduler_service.hpp"

#include <algorithm>
#include <exception>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/dual_workspace.hpp"
#include "support/failpoint.hpp"

namespace malsched {

namespace {

/// Per-worker mrt scratch: the workspace of the last instance this thread
/// solved, plus a shared_ptr that pins that instance so the raw address
/// comparison below can never hit a recycled allocation. Thread-local on the
/// pool threads (each service owns its threads, so services never share
/// scratch); reset when the thread exits.
struct WorkerScratch {
  std::shared_ptr<const Instance> instance;
  std::unique_ptr<DualWorkspace> workspace;
};
thread_local WorkerScratch tls_scratch;

DualWorkspace* thread_workspace(const std::shared_ptr<const Instance>& job_instance,
                                const Instance& requested, bool& reused) {
  // Defensive: the provider promises a workspace for exactly the requested
  // instance; a solver asking about anything else gets a decline.
  if (&requested != job_instance.get()) return nullptr;
  if (tls_scratch.workspace != nullptr && tls_scratch.instance.get() == &requested) {
    reused = true;
    return tls_scratch.workspace.get();
  }
  // Build first, then swap the keepalive: the old workspace stays backed by
  // the old instance until both are replaced.
  auto fresh = std::make_unique<DualWorkspace>(requested);
  tls_scratch.workspace = std::move(fresh);
  tls_scratch.instance = job_instance;
  return tls_scratch.workspace.get();
}

SolveCacheConfig cache_config(const ServiceOptions& options) {
  SolveCacheConfig config;
  config.capacity = options.cache ? options.cache_capacity : 0;
  config.max_bytes = options.cache_max_bytes;
  config.ttl_seconds = options.cache_ttl_seconds;
  return config;
}

/// Terminal slots never read their request again (run_job copies what it
/// needs at dequeue); dropping the payload here keeps a long-lived service
/// from pinning every instance it ever saw. Outcomes stay poll()-able.
void release_request_payload(SolveRequest& request) {
  request.instance = InstanceHandle{};
  request.options = SolverOptions{};
  request.solver.clear();
  request.solver.shrink_to_fit();
}

}  // namespace

namespace {

/// Comma in the member initializer list is the earliest point after
/// ensure_valid() can run; this keeps the check ahead of every member that
/// consumes a config field (cache capacity, pool thread count).
const ServiceConfig& validated(const ServiceConfig& config) {
  config.ensure_valid();
  return config;
}

}  // namespace

SchedulerService::SchedulerService(ServiceConfig config)
    : options_(validated(config)),
      registry_(config.registry != nullptr ? config.registry : &SolverRegistry::global()),
      cache_(cache_config(config)),
      pool_(config.threads) {}

SchedulerService::~SchedulerService() { shutdown(); }

void SchedulerService::on_result(ResultCallback callback) {
  const LockGuard lock(mutex_);
  if (!slots_.empty()) {
    throw std::logic_error(
        "SchedulerService: on_result() must be installed before the first submit() "
        "(a stream starting mid-run would miss delivered outcomes)");
  }
  callback_ = std::move(callback);
}

JobTicket SchedulerService::enqueue_locked(SolveRequest request,
                                           std::optional<SolveOutcome> ready,
                                           bool& born_terminal) {
  if (!accepting_) {
    throw std::runtime_error("SchedulerService: submit() after shutdown()");
  }
  if (!request.instance.valid()) {
    throw std::invalid_argument("SchedulerService: submit() with an empty InstanceHandle");
  }
  const std::uint64_t id = slots_.size();
  ++stats_.submitted;
  if (ready.has_value() && ready->fast_path) ++stats_.fast_path_hits;
  if (ready.has_value()) {
    // Submit-time cache hit: the slot is born terminal -- no closure is ever
    // posted, so a hit costs lock work on the calling thread instead of two
    // context switches through the pool. The caller runs deliver_ready()
    // after unlocking (the stream must never fire under mutex_). A hit
    // consumes no queue slot, so admission control never sees it.
    ready->ticket = id;
    release_request_payload(request);
    Slot hit;
    hit.request = std::move(request);
    hit.state = JobState::kDone;
    hit.outcome = std::move(*ready);
    slots_.push_back(std::move(hit));
    count_terminal_locked(slots_.back().outcome);
    born_terminal = true;
    return JobTicket{id};
  }

  // The end-to-end deadline is anchored HERE, at admission: queue wait
  // counts against the budget (the whole point of a serving deadline).
  const double deadline =
      merge_deadlines(request.deadline_seconds, budget_deadline(request.budget_seconds));

  bool degraded = false;
  if (options_.max_queue_depth > 0 && queued_depth_ >= options_.max_queue_depth) {
    if (options_.overload_policy == "reject") {
      SolveOutcome refused;
      refused.ticket = id;
      refused.status = SolveStatus::kError;
      refused.error = {SolveErrorCode::kRejected,
                       "queue full (" + std::to_string(queued_depth_) + " >= max_queue_depth " +
                           std::to_string(options_.max_queue_depth) + "), policy reject"};
      refused.worker = WorkerPool::current_worker();  // -1: refused off-pool
      release_request_payload(request);
      Slot slot;
      slot.request = std::move(request);
      slot.state = JobState::kDone;
      slot.outcome = std::move(refused);
      slots_.push_back(std::move(slot));
      count_terminal_locked(slots_.back().outcome);
      ++stats_.rejected;
      born_terminal = true;
      return JobTicket{id};
    }
    if (options_.overload_policy == "shed_oldest") {
      // The oldest still-queued slot makes room for the new one. The scan
      // starts at shed_hint_ (slots below it are known non-queued; states
      // only move forward), so repeated sheds stay amortized O(1).
      for (std::uint64_t victim = shed_hint_; victim < slots_.size(); ++victim) {
        Slot& old = slots_[victim];
        if (old.state != JobState::kQueued) continue;
        shed_hint_ = victim + 1;
        old.state = JobState::kDone;
        old.outcome.ticket = victim;
        old.outcome.status = SolveStatus::kError;
        old.outcome.error = {SolveErrorCode::kRejected,
                             "shed under overload (shed_oldest) to admit ticket " +
                                 std::to_string(id)};
        release_request_payload(old.request);
        count_terminal_locked(old.outcome);
        ++stats_.shed;
        --queued_depth_;
        born_terminal = true;
        // The victim's posted closure still sits in the pool queue; run_job
        // sees the terminal state and returns without touching the slot.
        break;
      }
    } else {
      // "degrade": admit, but flag the slot to run the fast fallback solver
      // instead of the requested one (cache/dedup skipped, fallback_used
      // provenance). Depth may exceed the watermark -- degrade bounds the
      // WORK each admitted job costs, not the queue length.
      degraded = true;
    }
  }

  Slot queued;
  queued.request = std::move(request);
  queued.deadline = deadline;
  queued.degraded = degraded;
  slots_.push_back(std::move(queued));
  ++queued_depth_;
  if (static_cast<std::uint64_t>(queued_depth_) > stats_.queue_depth_high_water) {
    stats_.queue_depth_high_water = static_cast<std::uint64_t>(queued_depth_);
  }
  push_ready_locked(id, deadline);
  // Posting under the state lock is safe (the pool never calls back into the
  // service while holding its own lock) and makes accepting_ imply a live
  // pool, so this post cannot throw. The closure is discipline-agnostic:
  // which job it runs is decided at POP time, so an earlier-deadline job
  // submitted later can overtake this one under edf.
  pool_.post([this] { run_next(); });
  return JobTicket{id};
}

bool SchedulerService::dispatches_after(const ReadyEntry& a, const ReadyEntry& b) noexcept {
  if (a.key != b.key) return a.key > b.key;
  return a.id > b.id;
}

void SchedulerService::push_ready_locked(std::uint64_t id, double deadline) {
  if (options_.queue_discipline == "edf") {
    // Deadline-less jobs carry +inf: behind every dated job, FIFO among
    // themselves through the ticket tiebreak in dispatches_after().
    ready_edf_.push_back(
        ReadyEntry{deadline > 0.0 ? deadline : std::numeric_limits<double>::infinity(), id});
    std::push_heap(ready_edf_.begin(), ready_edf_.end(), dispatches_after);
  } else {
    ready_fifo_.push_back(id);
  }
}

bool SchedulerService::pop_ready_locked(std::uint64_t& id) {
  if (options_.queue_discipline == "edf") {
    while (!ready_edf_.empty()) {
      std::pop_heap(ready_edf_.begin(), ready_edf_.end(), dispatches_after);
      id = ready_edf_.back().id;
      ready_edf_.pop_back();
      if (slots_[id].state == JobState::kQueued) return true;
    }
  } else {
    while (!ready_fifo_.empty()) {
      id = ready_fifo_.front();
      ready_fifo_.pop_front();
      if (slots_[id].state == JobState::kQueued) return true;
    }
  }
  return false;  // only stale entries (cancelled/shed/shutdown) remained
}

void SchedulerService::run_next() {
  std::uint64_t id = 0;
  {
    const LockGuard lock(mutex_);
    if (!pop_ready_locked(id)) return;
  }
  // The popped job was kQueued under the lock; a cancel() racing this gap is
  // caught by run_job's own re-check (the entry is consumed either way, and
  // the cancelled job needs no run -- it is already terminal).
  run_job(id);
}

std::optional<SolveOutcome> SchedulerService::peek_cache(const SolveRequest& request) {
  if (!request.use_cache || !cache_.enabled() || !request.instance.valid()) return std::nullopt;
  const Stopwatch stopwatch;
  // Same zero-rehash key as run_job; the probe never touches mutex_ (the
  // cache mutex is a leaf lock), so concurrent submitters only contend on
  // the cache itself. count_miss=false: on a miss the dispatch-time lookup
  // is the authoritative (counted) one.
  const SolveCache::Key key =
      SolveCache::make_key(request.solver, request.options, request.instance);
  std::shared_ptr<const SolverResult> cached;
  try {
    cached = cache_.lookup(key, /*count_miss=*/false);
  } catch (...) {
    // A failing cache must never fail the request: degrade the probe to a
    // miss and let the dispatch path (which absorbs its own cache errors)
    // solve for real.
    cache_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  if (cached == nullptr) return std::nullopt;
  SolveOutcome outcome;
  outcome.status = SolveStatus::kOk;
  outcome.result = *cached;  // copied outside the cache lock
  outcome.cache_hit = true;
  outcome.worker = WorkerPool::current_worker();  // -1: served off-pool
  outcome.wall_seconds = stopwatch.seconds();
  return outcome;
}

std::optional<SolveOutcome> SchedulerService::try_fast_path(const SolveRequest& request) {
  if (options_.fast_path_max_tasks <= 0 || !request.instance.valid()) return std::nullopt;
  if (static_cast<long long>(request.instance.instance().size()) >
      options_.fast_path_max_tasks) {
    return std::nullopt;
  }
  const Stopwatch stopwatch;
  SolveOutcome outcome;
  outcome.worker = WorkerPool::current_worker();  // -1: solved off-pool
  const bool use_cache = request.use_cache && cache_.enabled();
  std::optional<SolveCache::Key> key;
  if (use_cache) {
    // COUNTED lookup, unlike peek_cache: the fast path is the authoritative
    // serving of this request -- there is no dispatch-time retry behind it --
    // so the one-hit-or-one-miss invariant books the miss here.
    key = SolveCache::make_key(request.solver, request.options, request.instance);
    std::shared_ptr<const SolverResult> cached;
    try {
      cached = cache_.lookup(*key);
    } catch (...) {
      cache_failures_.fetch_add(1, std::memory_order_relaxed);
    }
    if (cached != nullptr) {
      outcome.status = SolveStatus::kOk;
      outcome.result = *cached;  // copied outside the cache lock
      outcome.cache_hit = true;  // a hit is a hit, fast path or not
      outcome.wall_seconds = stopwatch.seconds();
      return outcome;
    }
  }
  // Inline solve on the submitting thread. The deadline is anchored here
  // (submit IS admission for this path) and enforced cooperatively inside
  // the solve; there is no CancelToken -- cancel() can never see this job,
  // it is terminal before submit() returns. No dedup either (an inline
  // solve cannot wait on a leader), and no degrade retry: the fast path is
  // already the bounded-work answer.
  const double deadline =
      merge_deadlines(request.deadline_seconds, budget_deadline(request.budget_seconds));
  SolveContext context;
  context.deadline_seconds = deadline;
  outcome.fast_path = true;
  try {
    outcome.result = registry_->solve(request, context);
    outcome.status = SolveStatus::kOk;
  } catch (const std::exception& err) {
    outcome.status = SolveStatus::kError;
    outcome.error = classify_solve_exception(err);
  } catch (...) {
    outcome.status = SolveStatus::kError;
    outcome.error = {SolveErrorCode::kSolverFailure, "non-standard exception"};
  }
  if (outcome.status == SolveStatus::kOk && use_cache) {
    try {
      cache_.insert(*key, *outcome.result);
    } catch (...) {
      cache_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  outcome.wall_seconds = stopwatch.seconds();
  return outcome;
}

JobTicket SchedulerService::submit(SolveRequest request) {
  std::optional<SolveOutcome> ready = try_fast_path(request);
  if (!ready.has_value()) ready = peek_cache(request);
  bool born_terminal = false;
  JobTicket ticket;
  {
    const LockGuard lock(mutex_);
    ticket = enqueue_locked(std::move(request), std::move(ready), born_terminal);
  }
  if (born_terminal) {
    done_cv_.notify_all();
    deliver_ready();
  }
  return ticket;
}

std::vector<JobTicket> SchedulerService::submit(std::vector<SolveRequest> requests) {
  // All-or-nothing, as documented: validate every handle BEFORE the first
  // enqueue, so a bad request mid-vector cannot leave earlier jobs running
  // with their tickets lost to the throwing caller.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!requests[i].instance.valid()) {
      throw std::invalid_argument("SchedulerService: request " + std::to_string(i) +
                                  " carries an empty InstanceHandle");
    }
  }
  // Probe the cache for every request before taking the state lock: the
  // peeks are pure reads of a leaf lock, and doing them all up front keeps
  // the enqueue loop itself O(requests) under one mutex_ hold.
  std::vector<std::optional<SolveOutcome>> ready;
  ready.reserve(requests.size());
  for (const auto& request : requests) {
    std::optional<SolveOutcome> served = try_fast_path(request);
    if (!served.has_value()) served = peek_cache(request);
    ready.push_back(std::move(served));
  }
  std::vector<JobTicket> tickets;
  tickets.reserve(requests.size());
  bool born_terminal = false;
  {
    const LockGuard lock(mutex_);
    if (!accepting_) {
      throw std::runtime_error("SchedulerService: submit() after shutdown()");
    }
    for (std::size_t i = 0; i < requests.size(); ++i) {
      tickets.push_back(
          enqueue_locked(std::move(requests[i]), std::move(ready[i]), born_terminal));
    }
  }
  if (born_terminal) {
    done_cv_.notify_all();
    deliver_ready();
  }
  return tickets;
}

JobTicket SchedulerService::submit(BatchJob job, SubmitOptions options) {
  auto request = job.to_request();
  request.use_cache = options.cache;
  return submit(std::move(request));
}

std::vector<JobTicket> SchedulerService::submit(std::vector<BatchJob> jobs,
                                                SubmitOptions options) {
  auto requests = intern_jobs(jobs);
  for (auto& request : requests) request.use_cache = options.cache;
  return submit(std::move(requests));
}

SchedulerService::Inflight* SchedulerService::find_inflight_locked(const SolveCache::Key& key) {
  const auto bucket = inflight_.find(key.fingerprint);
  if (bucket == inflight_.end()) return nullptr;
  for (auto& flight : bucket->second) {
    if (SolveCache::same_key(flight.key, key)) return &flight;
  }
  return nullptr;
}

void SchedulerService::run_job(std::uint64_t id) {
  SolveRequest request;
  bool use_cache = false;
  bool use_dedup = false;
  bool degraded = false;
  CancelToken token;
  double deadline = 0.0;
  {
    const LockGuard lock(mutex_);
    Slot& slot = slots_[id];
    if (slot.state != JobState::kQueued) return;  // cancelled/shed before start
    slot.state = JobState::kRunning;
    --queued_depth_;
    request = slot.request;
    token = slot.cancel;  // shares the flag cancel() fires
    deadline = slot.deadline;
    degraded = slot.degraded;
    // A degraded job answers with the fallback solver: its result is NOT the
    // requested solver's result, so it must neither populate nor consult the
    // cache, nor coalesce with real solves of the same key.
    use_cache = cache_.enabled() && request.use_cache && !degraded;
    // Dedup rides the cache flags: a request that opted out must measure a
    // real solve (not adopt someone else's), and a cache-disabled service
    // is the documented way to force exactly that service-wide.
    use_dedup = options_.dedup && use_cache;
  }
  const bool can_degrade =
      options_.overload_policy == "degrade" && !options_.fallback_solver.empty();

  const Stopwatch stopwatch;
  SolveOutcome outcome;
  outcome.ticket = id;
  outcome.worker = WorkerPool::current_worker();

  // Deadline already expired while queued: never start the primary solve.
  // Under degrade the request still gets a (fast) answer; otherwise it
  // turns terminal kDeadlineExceeded right here.
  if (deadline > 0.0 && steady_now_seconds() >= deadline) {
    if (can_degrade) {
      {
        const LockGuard lock(mutex_);
        ++stats_.deadline_misses;  // the fallback outcome won't carry the code
      }
      finish(id, run_fallback(request, id, stopwatch), /*reused_workspace=*/false, nullptr);
      return;
    }
    outcome.status = SolveStatus::kError;
    outcome.error = {SolveErrorCode::kDeadlineExceeded, "deadline expired while queued"};
    outcome.wall_seconds = stopwatch.seconds();
    finish(id, std::move(outcome), /*reused_workspace=*/false, nullptr);
    return;
  }

  if (degraded) {
    // Admitted past the watermark: straight to the fallback solver.
    finish(id, run_fallback(request, id, stopwatch), /*reused_workspace=*/false, nullptr);
    return;
  }

  std::optional<SolveCache::Key> key;
  if (use_cache) {
    // Zero profile re-hashing here: the key mixes the handle's interned
    // fingerprint with the two identity strings (audited by test). The hit
    // path stays entirely outside the service mutex.
    key = SolveCache::make_key(request.solver, request.options, request.instance);
    std::shared_ptr<const SolverResult> cached;
    try {
      cached = cache_.lookup(*key);
    } catch (...) {
      // A failing cache degrades to a miss; the request solves for real.
      cache_failures_.fetch_add(1, std::memory_order_relaxed);
    }
    if (cached != nullptr) {
      outcome.status = SolveStatus::kOk;
      outcome.result = *cached;  // copied outside the cache lock
      outcome.cache_hit = true;
      outcome.wall_seconds = stopwatch.seconds();
      finish(id, std::move(outcome), /*reused_workspace=*/false, nullptr);
      return;
    }
  }

  if (use_dedup) {
    // Atomic miss-or-join: the inflight check and leader registration share
    // one lock, so two identical misses cannot both become leaders -- the
    // second always joins the first. (A leader that finished BETWEEN our
    // unlocked miss above and this lock leaves both the map and a populated
    // cache behind; we then re-solve redundantly but deterministically --
    // the same behavior every duplicate had before dedup existed.)
    const LockGuard lock(mutex_);
    if (Inflight* flight = find_inflight_locked(*key)) {
      flight->joiners.push_back(Inflight::Joiner{id, stopwatch});
      ++stats_.dedup_joins;
      Slot& slot = slots_[id];
      // Locators for cancel(): a joiner can be detached from its leader's
      // bucket without disturbing the leader's solve.
      slot.joined = true;
      slot.join_fingerprint = key->fingerprint;
      slot.join_leader = flight->leader;
      return;  // non-blocking: the leader's finish() completes this slot
    }
    inflight_[key->fingerprint].push_back(Inflight{*key, id, {}});
  }

  bool reused_workspace = false;
  SolveContext context;
  context.cancel = &token;  // outlives the solve: local until finish()
  context.deadline_seconds = deadline;
  const std::shared_ptr<const Instance>& instance = request.instance.shared();
  if (options_.reuse_workspaces) {
    context.workspace_provider = [&instance, &reused_workspace](const Instance& requested) {
      return thread_workspace(instance, requested, reused_workspace);
    };
  }
  try {
    MALSCHED_FAILPOINT("service.dispatch");
    outcome.result = registry_->solve(request, context);
    outcome.status = SolveStatus::kOk;
  } catch (const std::exception& err) {
    outcome.status = SolveStatus::kError;
    outcome.error = classify_solve_exception(err);
  } catch (...) {
    outcome.status = SolveStatus::kError;
    outcome.error = {SolveErrorCode::kSolverFailure, "non-standard exception"};
  }
  if (outcome.error.code == SolveErrorCode::kCancelled) {
    outcome.status = SolveStatus::kCancelled;  // cancel() fired mid-solve
  }
  if (outcome.error.code == SolveErrorCode::kDeadlineExceeded && can_degrade) {
    // Degrade policy: one retry on the fast fallback. The primary's partial
    // work is discarded; the caller gets a real (approximate) answer with
    // fallback_used provenance instead of an error.
    {
      const LockGuard lock(mutex_);
      ++stats_.deadline_misses;  // the fallback outcome won't carry the code
    }
    finish(id, run_fallback(request, id, stopwatch), reused_workspace,
           use_dedup ? &*key : nullptr);
    return;
  }
  if (outcome.status == SolveStatus::kOk && use_cache) {
    try {
      cache_.insert(*key, *outcome.result);
    } catch (...) {
      // The result is already in hand; a failing insert only loses the memo.
      cache_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  outcome.wall_seconds = stopwatch.seconds();
  finish(id, std::move(outcome), reused_workspace, use_dedup ? &*key : nullptr);
}

SolveOutcome SchedulerService::run_fallback(const SolveRequest& request, std::uint64_t id,
                                            const Stopwatch& stopwatch) {
  SolveOutcome outcome;
  outcome.ticket = id;
  outcome.worker = WorkerPool::current_worker();
  outcome.fallback_used = true;
  SolveRequest degraded;
  degraded.instance = request.instance;
  degraded.solver = options_.fallback_solver;
  // Empty options (the request's bag belongs to the PRIMARY solver's schema)
  // and no deadline: the fallback is the bounded-work answer of last resort,
  // and cutting it off too would leave the caller with nothing.
  SolveContext context;
  try {
    outcome.result = registry_->solve(degraded, context);
    outcome.status = SolveStatus::kOk;
  } catch (const std::exception& err) {
    outcome.status = SolveStatus::kError;
    outcome.error = classify_solve_exception(err);
  } catch (...) {
    outcome.status = SolveStatus::kError;
    outcome.error = {SolveErrorCode::kSolverFailure, "non-standard exception"};
  }
  outcome.wall_seconds = stopwatch.seconds();
  return outcome;
}

void SchedulerService::finish(std::uint64_t id, SolveOutcome outcome, bool reused_workspace,
                              const SolveCache::Key* inflight_key) {
  // Leader epilogue, phase 1: detach the coalescing point. No new joiner
  // can register once the entry is gone, and the cache insert already
  // happened (run_job), so a concurrent identical request that misses
  // inflight_ from here on hits the cache.
  std::vector<Inflight::Joiner> joiners;
  if (inflight_key != nullptr) {
    const LockGuard lock(mutex_);
    const auto bucket = inflight_.find(inflight_key->fingerprint);
    if (bucket != inflight_.end()) {
      auto& flights = bucket->second;
      const auto it = std::find_if(flights.begin(), flights.end(),
                                   [id](const Inflight& f) { return f.leader == id; });
      if (it != flights.end()) {
        joiners = std::move(it->joiners);
        flights.erase(it);
        if (flights.empty()) inflight_.erase(bucket);
      }
    }
  }

  // Phase 2, outside any lock: every joiner observes the leader's outcome,
  // bytes included (error outcomes too -- "the same answer" is the
  // contract, whatever it was). The full SolverResult copies (Schedule
  // included) happen here, on the still-locally-owned `outcome`, so the
  // joiner fan-out never stalls the service mutex. Provenance differs:
  // dedup_join set, serving wall measured from the moment the joiner
  // coalesced, worker = the leader's (it produced the result this ticket
  // observes).
  std::vector<SolveOutcome> joined_outcomes;
  joined_outcomes.reserve(joiners.size());
  for (const auto& joiner : joiners) {
    SolveOutcome joined = outcome;
    joined.ticket = joiner.id;
    joined.cache_hit = false;
    joined.dedup_join = true;
    joined.wall_seconds = joiner.since.seconds();
    joined_outcomes.push_back(std::move(joined));
  }

  // Phase 3: publish every terminal slot under one lock -- moves only.
  {
    const LockGuard lock(mutex_);
    Slot& slot = slots_[id];
    slot.outcome = std::move(outcome);
    slot.state = JobState::kDone;
    release_request_payload(slot.request);
    count_terminal_locked(slot.outcome);
    if (reused_workspace) ++stats_.workspace_reuses;

    for (std::size_t j = 0; j < joiners.size(); ++j) {
      Slot& joined = slots_[joiners[j].id];
      joined.outcome = std::move(joined_outcomes[j]);
      joined.state = JobState::kDone;
      release_request_payload(joined.request);
      count_terminal_locked(joined.outcome);
    }
  }
  done_cv_.notify_all();
  deliver_ready();
}

void SchedulerService::count_terminal_locked(const SolveOutcome& outcome) {
  switch (outcome.status) {
    case SolveStatus::kOk: ++stats_.completed; break;
    case SolveStatus::kError: ++stats_.failed; break;
    case SolveStatus::kCancelled: ++stats_.cancelled; break;
  }
  // Terminal kDeadlineExceeded outcomes are counted here; a deadline miss
  // answered by the fallback is counted at its trigger site in run_job
  // (the replacement outcome no longer carries the code).
  if (outcome.error.code == SolveErrorCode::kDeadlineExceeded) ++stats_.deadline_misses;
  if (outcome.fallback_used) ++stats_.fallbacks;
}

void SchedulerService::deliver_ready() {
  // Single-deliverer protocol, re-entrancy-safe: exactly one thread at a
  // time walks next_delivery_ forward (pinning ticket order); every other
  // caller -- a worker finishing out of order, cancel() from another
  // thread, or cancel() invoked INSIDE the callback currently being
  // delivered -- just flags a rescan and returns. The active deliverer
  // re-checks the flag before retiring, so a slot that turns terminal
  // mid-delivery is never stranded. (A plain delivery mutex would deadlock
  // the documented cancel-in-callback case.)
  const ResultCallback* streaming = nullptr;
  {
    const LockGuard lock(mutex_);
    delivery_requested_ = true;
    if (delivering_) return;
    delivering_ = true;
    // Snapshot the callback's address under the lock; invoking it happens
    // outside. Safe: on_result() may only install it before the first
    // submit, so it is immutable for as long as deliveries exist.
    if (callback_) streaming = &callback_;
  }
  for (;;) {
    const SolveOutcome* out = nullptr;
    std::uint64_t delivered_id = 0;
    {
      const LockGuard lock(mutex_);
      delivery_requested_ = false;
      if (next_delivery_ < slots_.size() &&
          slots_[next_delivery_].state == JobState::kDone) {
        // Safe to hand out past the unlock: a terminal outcome is immutable,
        // slots are never erased, deque growth does not move elements, and
        // in_callback_ shields this slot from gc_slots reclamation -- so the
        // callback gets a reference with no payload copy (terminal schedules
        // can be large) and no work under the state mutex.
        delivered_id = next_delivery_;
        out = &slots_[next_delivery_].outcome;
        in_callback_ = delivered_id;
        ++next_delivery_;
      }
    }
    if (out != nullptr) {
      if (streaming != nullptr) {
        // A throwing callback must neither wedge the stream (delivering_
        // stuck true, drain() blocked forever) nor escape into WorkerPool's
        // noexcept worker loop (std::terminate); the stream is
        // infrastructure, so the exception is swallowed and delivery
        // continues with the next ticket.
        try {
          (*streaming)(*out);
        } catch (...) {
        }
      }
      {
        // Counted only AFTER the callback returned: drain() waits on this,
        // so "drained" means every streamed callback has completed. The
        // delivered slot becomes reclaimable here (if a poll()/wait()
        // already observed it).
        const LockGuard lock(mutex_);
        ++stats_.delivered;
        in_callback_.reset();
        maybe_reclaim_locked(delivered_id);
      }
      done_cv_.notify_all();  // drain() watches the delivery frontier
      continue;
    }
    const LockGuard lock(mutex_);
    if (!delivery_requested_) {
      delivering_ = false;
      return;
    }
  }
}

void SchedulerService::maybe_reclaim_locked(std::uint64_t id) {
  if (!options_.gc_slots) return;
  Slot& slot = slots_[id];
  if (slot.state != JobState::kDone || slot.reclaimed || !slot.observed) return;
  if (id >= next_delivery_) return;  // not yet delivered to the stream
  if (in_callback_.has_value() && *in_callback_ == id) return;  // being read right now
  slot.outcome.result.reset();
  slot.outcome.error.detail.clear();
  slot.outcome.error.detail.shrink_to_fit();
  slot.reclaimed = true;
  ++stats_.slots_reclaimed;
}

std::optional<SolveOutcome> SchedulerService::poll(JobTicket ticket) {
  const LockGuard lock(mutex_);
  if (ticket.id >= slots_.size()) {
    throw std::out_of_range("SchedulerService: unknown ticket " + std::to_string(ticket.id));
  }
  Slot& slot = slots_[ticket.id];
  if (slot.reclaimed) {
    throw std::logic_error("SchedulerService: ticket " + std::to_string(ticket.id) +
                           " was already observed and reclaimed (gc_slots)");
  }
  if (slot.state != JobState::kDone) return std::nullopt;
  std::optional<SolveOutcome> out = slot.outcome;
  slot.observed = true;
  maybe_reclaim_locked(ticket.id);
  return out;
}

JobState SchedulerService::state(JobTicket ticket) const {
  const LockGuard lock(mutex_);
  if (ticket.id >= slots_.size()) {
    throw std::out_of_range("SchedulerService: unknown ticket " + std::to_string(ticket.id));
  }
  return slots_[ticket.id].state;
}

SolveOutcome SchedulerService::wait(JobTicket ticket) {
  const LockGuard lock(mutex_);
  if (ticket.id >= slots_.size()) {
    throw std::out_of_range("SchedulerService: unknown ticket " + std::to_string(ticket.id));
  }
  // unblocked by: finish()/cancel()/shutdown() notifying done_cv_ at every
  // terminal transition; shutdown() terminalizes whatever never ran.
  while (slots_[ticket.id].state != JobState::kDone) done_cv_.wait(mutex_);
  Slot& slot = slots_[ticket.id];
  if (slot.reclaimed) {
    throw std::logic_error("SchedulerService: ticket " + std::to_string(ticket.id) +
                           " was already observed and reclaimed (gc_slots)");
  }
  SolveOutcome out = slot.outcome;
  slot.observed = true;
  maybe_reclaim_locked(ticket.id);
  return out;
}

bool SchedulerService::cancel(JobTicket ticket) {
  CancelToken token;
  bool fire_token = false;
  {
    const LockGuard lock(mutex_);
    if (ticket.id >= slots_.size()) {
      throw std::out_of_range("SchedulerService: unknown ticket " + std::to_string(ticket.id));
    }
    Slot& slot = slots_[ticket.id];
    if (slot.state == JobState::kDone) return false;
    if (slot.state == JobState::kQueued) {
      slot.state = JobState::kDone;
      slot.outcome.ticket = ticket.id;
      slot.outcome.status = SolveStatus::kCancelled;
      slot.outcome.error.code = SolveErrorCode::kCancelled;
      release_request_payload(slot.request);
      count_terminal_locked(slot.outcome);
      --queued_depth_;
      // The posted closure still sits in the pool queue; run_job sees the
      // terminal state and returns without touching the slot.
    } else if (slot.joined) {
      // Dedup joiner: detach THIS ticket from its leader's coalescing point
      // (the leader keeps solving for everyone else) and turn it terminal.
      // If the leader's finish() already claimed the joiner list, the
      // coalesced outcome is imminent -- report "too late to cancel".
      bool detached = false;
      const auto bucket = inflight_.find(slot.join_fingerprint);
      if (bucket != inflight_.end()) {
        for (auto& flight : bucket->second) {
          if (flight.leader != slot.join_leader) continue;
          auto& joiners = flight.joiners;
          const auto it =
              std::find_if(joiners.begin(), joiners.end(),
                           [&](const Inflight::Joiner& j) { return j.id == ticket.id; });
          if (it != joiners.end()) {
            joiners.erase(it);
            detached = true;
          }
          break;
        }
      }
      if (!detached) return false;
      slot.state = JobState::kDone;
      slot.outcome.ticket = ticket.id;
      slot.outcome.status = SolveStatus::kCancelled;
      slot.outcome.error = {SolveErrorCode::kCancelled,
                            "cancelled while coalesced on an in-flight solve"};
      release_request_payload(slot.request);
      count_terminal_locked(slot.outcome);
    } else {
      // Running solo or dedup leader: fire the shared token outside the
      // lock. The solve observes it at the next check stride and surfaces
      // kCancelled through finish() -- which also fans the cancelled
      // outcome out to any joined tickets, so no joiner is stranded.
      token = slot.cancel;
      fire_token = true;
    }
  }
  if (fire_token) {
    token.cancel();
    return true;
  }
  done_cv_.notify_all();
  deliver_ready();
  return true;
}

void SchedulerService::drain() {
  const LockGuard lock(mutex_);
  const std::uint64_t target = slots_.size();
  // unblocked by: deliver_ready() notifying done_cv_ after each counted
  // delivery; every slot turns terminal eventually (workers finish, cancel/
  // shutdown terminalize the rest), so the frontier reaches the target.
  while (stats_.delivered < target) done_cv_.wait(mutex_);
}

void SchedulerService::shutdown() {
  {
    const LockGuard lock(mutex_);
    accepting_ = false;
    for (std::uint64_t id = 0; id < slots_.size(); ++id) {
      Slot& slot = slots_[id];
      if (slot.state != JobState::kQueued) continue;
      slot.state = JobState::kDone;
      slot.outcome.ticket = id;
      slot.outcome.status = SolveStatus::kCancelled;
      slot.outcome.error = {SolveErrorCode::kShutdown,
                            "service shut down before the job started"};
      release_request_payload(slot.request);
      count_terminal_locked(slot.outcome);
      --queued_depth_;
    }
    // Every remaining ready entry is now stale (its job just turned
    // terminal) and its closure will be discarded by pool_.shutdown() below;
    // drop the structures rather than leaving dead weight behind.
    ready_fifo_.clear();
    ready_edf_.clear();
  }
  done_cv_.notify_all();
  // Running solves finish (their closures already left the queue; in-flight
  // leaders fill their joiners inside finish(), before the join below); the
  // closures of the jobs cancelled above are discarded unrun.
  pool_.shutdown();
  // Flush the tail of the stream: everything is terminal now.
  deliver_ready();
  // Delivery quiescence (see the header contract): the deliver_ready()
  // above returns immediately when ANOTHER thread holds the single-
  // deliverer role -- it only flags a rescan. Returning then would hand
  // the caller a "shut down" service with the last streamed callback still
  // in flight (the drain()-vs-shutdown() race this contract pins). Wait
  // for the stream to fully settle instead.
  {
    const LockGuard lock(mutex_);
    // unblocked by: the active deliverer counting the final delivery and
    // notifying done_cv_; every slot is already terminal here, so the
    // frontier cannot stall.
    while (stats_.delivered < slots_.size()) done_cv_.wait(mutex_);
  }
}

ServiceStats SchedulerService::stats() const {
  ServiceStats out;
  {
    const LockGuard lock(mutex_);
    out = stats_;
  }
  out.cache_failures = cache_failures_.load(std::memory_order_relaxed);
  const SolveCacheStats cache = cache_.stats();
  out.cache_hits = cache.hits;
  out.cache_misses = cache.misses;
  out.cache_evictions = cache.evictions();
  out.cache_evictions_capacity = cache.evictions_capacity;
  out.cache_evictions_bytes = cache.evictions_bytes;
  out.cache_evictions_ttl = cache.evictions_ttl;
  out.cache_entries = cache.entries;
  out.cache_bytes = cache.bytes;
  return out;
}

}  // namespace malsched
