#include "api/service_config.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace malsched {

std::vector<std::string> ServiceConfig::validate() const {
  std::vector<std::string> errors;
  if (threads > kMaxThreads) {
    errors.push_back("threads = " + std::to_string(threads) + " exceeds the sanity ceiling of " +
                     std::to_string(kMaxThreads) +
                     " (did a negative count wrap through unsigned?)");
  }
  if (std::isnan(cache_ttl_seconds) || std::isinf(cache_ttl_seconds)) {
    errors.push_back("cache_ttl_seconds must be finite (0 means never expires)");
  } else if (cache_ttl_seconds < 0.0) {
    errors.push_back("cache_ttl_seconds = " + std::to_string(cache_ttl_seconds) +
                     " is negative; use 0 for never-expires");
  }
  if (cache && cache_capacity == 0) {
    errors.push_back(
        "cache is enabled but cache_capacity is 0 (a zero entry budget disables it "
        "silently); set cache = false to run without a cache, or give it a capacity");
  }
  return errors;
}

void ServiceConfig::ensure_valid() const {
  const std::vector<std::string> errors = validate();
  if (errors.empty()) return;
  std::string message = "invalid ServiceConfig:";
  for (const std::string& error : errors) {
    message += "\n  * " + error;
  }
  throw std::invalid_argument(message);
}

}  // namespace malsched
