#include "api/service_config.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "registry/solver_registry.hpp"

namespace malsched {

std::vector<std::string> ServiceConfig::validate() const {
  std::vector<std::string> errors;
  if (threads > kMaxThreads) {
    errors.push_back("threads = " + std::to_string(threads) + " exceeds the sanity ceiling of " +
                     std::to_string(kMaxThreads) +
                     " (did a negative count wrap through unsigned?)");
  }
  if (std::isnan(cache_ttl_seconds) || std::isinf(cache_ttl_seconds)) {
    errors.push_back("cache_ttl_seconds must be finite (0 means never expires)");
  } else if (cache_ttl_seconds < 0.0) {
    errors.push_back("cache_ttl_seconds = " + std::to_string(cache_ttl_seconds) +
                     " is negative; use 0 for never-expires");
  }
  if (cache && cache_capacity == 0) {
    errors.push_back(
        "cache is enabled but cache_capacity is 0 (a zero entry budget disables it "
        "silently); set cache = false to run without a cache, or give it a capacity");
  }
  if (max_queue_depth < 0) {
    errors.push_back("max_queue_depth = " + std::to_string(max_queue_depth) +
                     " is negative; use 0 for an unbounded queue");
  }
  if (overload_policy != "reject" && overload_policy != "shed_oldest" &&
      overload_policy != "degrade") {
    errors.push_back("overload_policy = \"" + overload_policy +
                     "\" is not one of reject/shed_oldest/degrade");
  } else if (overload_policy == "degrade" && fallback_solver.empty()) {
    errors.push_back(
        "overload_policy = \"degrade\" needs a fallback_solver to degrade onto "
        "(e.g. \"two_phase\")");
  }
  if (queue_discipline != "fifo" && queue_discipline != "edf") {
    errors.push_back("queue_discipline = \"" + queue_discipline +
                     "\" is not one of fifo/edf");
  }
  if (fast_path_max_tasks < 0) {
    errors.push_back("fast_path_max_tasks = " + std::to_string(fast_path_max_tasks) +
                     " is negative; use 0 to disable the fast path");
  }
  if (!fallback_solver.empty()) {
    const SolverRegistry& effective = registry != nullptr ? *registry : SolverRegistry::global();
    if (!effective.contains(fallback_solver)) {
      errors.push_back("fallback_solver = \"" + fallback_solver +
                       "\" is not registered in the effective registry");
    }
  }
  return errors;
}

void ServiceConfig::ensure_valid() const {
  const std::vector<std::string> errors = validate();
  if (errors.empty()) return;
  std::string message = "invalid ServiceConfig:";
  for (const std::string& error : errors) {
    message += "\n  * " + error;
  }
  throw std::invalid_argument(message);
}

}  // namespace malsched
