#include "api/solver_registry.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "baselines/naive.hpp"
#include "baselines/two_phase.hpp"
#include "baselines/two_shelves_32.hpp"
#include "core/mrt_scheduler.hpp"
#include "graph/graph_scheduler.hpp"
#include "graph/task_graph.hpp"
#include "model/lower_bounds.hpp"
#include "sched/local_search.hpp"
#include "sched/validate.hpp"
#include "support/stopwatch.hpp"

namespace malsched {

namespace {

SolverResult solve_mrt(const Instance& instance, const SolverOptions& options) {
  MrtOptions mrt;
  mrt.search.epsilon = options.get_double("epsilon", mrt.search.epsilon);
  mrt.use_compaction = options.get_bool("compaction", mrt.use_compaction);
  mrt.pick_best_branch = options.get_bool("pick_best_branch", mrt.pick_best_branch);
  mrt.enable_two_shelf = options.get_bool("two_shelf", mrt.enable_two_shelf);
  mrt.enable_canonical_list = options.get_bool("canonical_list", mrt.enable_canonical_list);
  mrt.enable_malleable_list = options.get_bool("malleable_list", mrt.enable_malleable_list);
  mrt.use_workspace = options.get_bool("workspace", mrt.use_workspace);
  mrt.snap_to_breakpoints = options.get_bool("snap", mrt.snap_to_breakpoints);
  auto result = mrt_schedule(instance, mrt);

  SolverResult out{"", std::move(result.schedule), 0.0, result.lower_bound, 0.0, 0.0, {}};
  out.stats.emplace_back("iterations", result.iterations);
  out.stats.emplace_back("gaps", result.gaps);
  out.stats.emplace_back("final_guess", result.final_guess);
  if (mrt.use_workspace) {
    out.stats.emplace_back("workspace.allocations",
                           static_cast<double>(result.workspace_allocations));
    out.stats.emplace_back("workspace.canonical_evals",
                           static_cast<double>(result.canonical_evals));
  }
  for (int b = 0; b < kDualBranchCount; ++b) {
    const int count = result.branch_counts[static_cast<std::size_t>(b)];
    if (count > 0) {
      out.stats.emplace_back("branch." + to_string(static_cast<DualBranch>(b)), count);
    }
  }
  return out;
}

SolverResult solve_two_phase(const Instance& instance, const SolverOptions& options) {
  TwoPhaseOptions two_phase;
  const std::string rigid = options.get_string("rigid", "ffdh");
  if (rigid == "ffdh") {
    two_phase.rigid = RigidAlgo::kFfdh;
  } else if (rigid == "nfdh") {
    two_phase.rigid = RigidAlgo::kNfdh;
  } else if (rigid == "list") {
    two_phase.rigid = RigidAlgo::kListSchedule;
  } else {
    throw std::invalid_argument("two_phase: unknown rigid algorithm '" + rigid +
                                "' (expected ffdh, nfdh, or list)");
  }
  two_phase.max_candidates = options.get_int("max_candidates", two_phase.max_candidates);
  auto result = two_phase_schedule(instance, two_phase);

  SolverResult out{"", std::move(result.schedule), 0.0, 0.0, 0.0, 0.0, {}};
  out.stats.emplace_back("candidates_tried", result.candidates_tried);
  out.stats.emplace_back("best_threshold", result.best_threshold);
  return out;
}

SolverResult solve_naive(const Instance& instance, const SolverOptions& options) {
  const std::string policy = options.get_string("policy", "half-speedup");
  Schedule schedule = [&] {
    if (policy == "half-speedup") return half_max_speedup_schedule(instance);
    if (policy == "lpt-seq") return lpt_sequential_schedule(instance);
    if (policy == "gang") return gang_schedule(instance);
    throw std::invalid_argument("naive: unknown policy '" + policy +
                                "' (expected half-speedup, lpt-seq, or gang)");
  }();
  return SolverResult{"", std::move(schedule), 0.0, 0.0, 0.0, 0.0, {}};
}

SolverResult solve_two_shelves_32(const Instance& instance, const SolverOptions& options) {
  auto result = three_halves_schedule(instance, options.get_double("epsilon", 0.01));
  return SolverResult{"", std::move(result.schedule), 0.0, result.lower_bound, 0.0, 0.0, {}};
}

SolverResult solve_graph(const Instance& instance, const SolverOptions& options) {
  // The registry interface is instance-based; viewed as a DAG with no edges
  // the graph schedulers apply directly (front ends with real precedence
  // graphs call them natively).
  const TaskGraph graph(instance.machines(), instance.tasks(), {});
  const std::string strategy = options.get_string("strategy", "layered");
  auto result = [&] {
    if (strategy == "layered") {
      return layered_graph_schedule(graph, options.get_double("epsilon", 0.02));
    }
    if (strategy == "ready-list") return ready_list_graph_schedule(graph);
    throw std::invalid_argument("graph: unknown strategy '" + strategy +
                                "' (expected layered or ready-list)");
  }();
  SolverResult out{"", std::move(result.schedule), 0.0, result.lower_bound, 0.0, 0.0, {}};
  out.stats.emplace_back("levels", graph.level_count());
  return out;
}

SolverRegistry make_global_registry() {
  SolverRegistry registry;
  registry.add("mrt", "sqrt(3)(1+eps) dual approximation of Mounie-Rapine-Trystram", solve_mrt);
  registry.add("two_phase", "Turek/Ludwig two-phase baseline (allotment selection + packing)",
               solve_two_phase);
  registry.add("naive", "practitioner anchors: half-speedup, lpt-seq, or gang", solve_naive);
  registry.add("two_shelves_32", "heuristic 3/2 two-shelf dual search", solve_two_shelves_32);
  registry.add("graph", "layered/ready-list DAG scheduler on the flat instance", solve_graph);
  return registry;
}

}  // namespace

SolverRegistry& SolverRegistry::global() {
  static SolverRegistry registry = make_global_registry();
  return registry;
}

void SolverRegistry::add(std::string name, std::string description, SolverFn fn,
                         bool contiguous) {
  if (name.empty()) throw std::invalid_argument("SolverRegistry: empty solver name");
  if (!fn) throw std::invalid_argument("SolverRegistry: null solver for '" + name + "'");
  if (entries_.count(name) > 0) {
    throw std::invalid_argument("SolverRegistry: duplicate solver '" + name + "'");
  }
  Entry entry{name, std::move(description), std::move(fn), contiguous};
  entries_.emplace(std::move(name), std::move(entry));
}

bool SolverRegistry::contains(const std::string& name) const { return entries_.count(name) > 0; }

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

const std::string& SolverRegistry::description(const std::string& name) const {
  return entry(name).description;
}

const SolverRegistry::Entry& SolverRegistry::entry(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& n : names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("SolverRegistry: unknown solver '" + name + "' (registered: " +
                                known + ")");
  }
  return it->second;
}

SolverResult SolverRegistry::solve(const std::string& name, const Instance& instance,
                                   const SolverOptions& options) const {
  const Entry& solver = entry(name);
  const Stopwatch stopwatch;

  SolverResult result = solver.fn(instance, options);
  result.solver = solver.name;

  if (options.get_bool("local_search", false)) {
    auto improved = improve_schedule(instance, result.schedule);
    result.stats.emplace_back("local_search.rounds", improved.rounds);
    result.schedule = std::move(improved.schedule);
  }

  // Every solver-specific bound is certified; the area/critical-path bound
  // always is, so the facade reports the tighter of the two.
  result.lower_bound = std::max(result.lower_bound, makespan_lower_bound(instance));
  result.makespan = result.schedule.makespan();
  result.ratio = result.lower_bound > 0.0 ? result.makespan / result.lower_bound : 1.0;

  ValidationOptions validation;
  validation.require_contiguous = solver.contiguous;
  const auto report = validate_schedule(result.schedule, instance, validation);
  if (!report.ok) {
    throw std::runtime_error("SolverRegistry: solver '" + solver.name +
                             "' produced an invalid schedule:\n" + report.str());
  }

  result.wall_seconds = stopwatch.seconds();
  return result;
}

SolverResult solve(const std::string& solver, const Instance& instance,
                   const SolverOptions& options) {
  return SolverRegistry::global().solve(solver, instance, options);
}

}  // namespace malsched
