#pragma once

#include <map>
#include <string>
#include <vector>

/// Generic key=value option bag for the solver registry.
///
/// Every solver behind the SolverRegistry facade is configured through the
/// same string-keyed interface so callers (CLI front ends, batch drivers,
/// benches) need no per-algorithm structs. Keys are free-form; each solver
/// documents the ones it reads and ignores the rest. Typed getters convert
/// on access and throw std::invalid_argument on malformed values, never on
/// missing ones (the fallback applies).
namespace malsched {

class SolverOptions {
 public:
  SolverOptions() = default;

  /// Parses a list of "key=value" tokens (a bare "key" means "key=1", the
  /// conventional boolean shorthand). Throws std::invalid_argument on an
  /// empty key.
  static SolverOptions from_tokens(const std::vector<std::string>& tokens);

  /// Parses a single spec string: tokens separated by commas and/or spaces,
  /// e.g. "epsilon=0.02,rigid=ffdh local_search".
  static SolverOptions from_string(const std::string& spec);

  /// Sets (or overwrites) one option.
  SolverOptions& set(std::string key, std::string value);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Raw string value, or `fallback` when absent.
  [[nodiscard]] std::string get_string(const std::string& key, const std::string& fallback = {}) const;

  /// Numeric value; throws std::invalid_argument when present but unparsable.
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] int get_int(const std::string& key, int fallback) const;

  /// Booleans accept 1/0, true/false, yes/no, on/off (case-insensitive).
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// All options in key order (for logging and round-tripping).
  [[nodiscard]] const std::map<std::string, std::string>& entries() const noexcept {
    return entries_;
  }

  /// "k1=v1,k2=v2" rendering of the bag (empty string when empty).
  [[nodiscard]] std::string str() const;

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace malsched
