#pragma once

/// Umbrella header for the API v2 surface -- everything a front end needs to
/// speak to the serving stack, one include:
///
///   * model/instance_handle.hpp -- interned, content-addressed identity
///     (intern once; fingerprint + static lower bound travel with the handle)
///   * registry/request.hpp            -- SolveRequest in, SolveOutcome (+ typed
///     SolveError, provenance) out
///   * registry/solver_registry.hpp    -- one-shot dispatch: registry.solve(request)
///   * api/solve_batch.hpp        -- closed batches: solve_batch(requests)
///   * api/service_config.hpp     -- ServiceConfig, the one serving-tier
///     configuration aggregate (validate() + defaults)
///   * api/scheduler_service.hpp  -- the long-lived single-shard service
///   * api/sharded_service.hpp    -- the N-shard scale-out tier
///
/// The pre-v2 shims (Instance/BatchJob overloads, ServiceOptions) ride along
/// through these headers for compatibility; new code should enter through
/// SolveRequest over an interned InstanceHandle and ServiceConfig only.
#include "registry/request.hpp"            // IWYU pragma: export
#include "api/scheduler_service.hpp"  // IWYU pragma: export
#include "api/service_config.hpp"     // IWYU pragma: export
#include "api/sharded_service.hpp"    // IWYU pragma: export
#include "api/solve_batch.hpp"        // IWYU pragma: export
#include "registry/solver_registry.hpp"    // IWYU pragma: export
#include "model/instance_handle.hpp"  // IWYU pragma: export
