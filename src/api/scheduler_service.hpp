#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "api/solve_cache.hpp"
#include "exec/batch_runner.hpp"
#include "exec/worker_pool.hpp"

/// The service-grade front door of the library: a long-lived scheduler that
/// accepts jobs continuously, solves them on a persistent worker pool,
/// streams results back in deterministic order, and memoizes repeated work.
///
/// Where solve() is one call and solve_batch() is one closed batch,
/// SchedulerService is the shape a production deployment actually has: a
/// daemon that receives (solver, options, instance) jobs over time and must
/// answer each as soon as possible without re-deriving what it already
/// knows. Three mechanisms carry that:
///
///  * **submit/poll/wait** -- submit() enqueues and returns a JobTicket
///    immediately; poll() is a non-blocking status probe, wait() blocks for
///    one job, drain() for everything submitted so far.
///  * **Ordered streaming** -- an on_result callback receives every outcome
///    exactly once, in TICKET (submission) order, regardless of which worker
///    finished first: delivery i+1 waits for delivery i. That makes the
///    stream deterministic -- the sequence of delivered results at 8 threads
///    is byte-identical to 1 thread (and to solve_batch on the same jobs) --
///    at the cost of head-of-line buffering, which poll()/wait() bypass.
///  * **Content-hash solve cache** -- completed results are memoized by
///    instance content + solver + canonical options (see SolveCache). A hit
///    returns the memoized result without dispatching; per-job opt-out via
///    SubmitOptions, service-wide off switch via ServiceOptions. Hit, miss,
///    and eviction counts surface in ServiceStats.
///
/// Cache-miss solves additionally reuse per-worker mrt scratch: each worker
/// keeps the DualWorkspace of the last instance it solved and hands it to
/// the registry through SolveContext, so a burst of same-instance jobs
/// (different options -- identical options would have hit the cache) builds
/// the breakpoint index once per worker instead of once per job.
///
/// Determinism contract: every result field is byte-identical to the
/// synchronous `solve()` path, with two audited exceptions -- wall times
/// (inherently run-dependent; a cache hit's memoized result carries the
/// original solve's wall time), and the mrt `workspace.*` audit counters,
/// which report per-solve deltas and so legitimately shrink when a worker
/// reuses its workspace (that saving is what they measure).
///
/// Callback rules: on_result fires on a worker thread (or inside cancel()/
/// shutdown() on the calling thread) while no internal state lock is held;
/// it may call poll()/state()/stats()/cancel()/submit() (re-entrant
/// delivery is handled by a rescan protocol), but must NOT call wait(),
/// drain(), or shutdown() -- blocking inside the delivery path deadlocks
/// it, and shutdown() would join the very worker running the callback.
///
/// Lifecycle: drain() finishes everything submitted; shutdown() stops
/// intake, cancels every job not yet started, finishes the ones running, and
/// joins the workers (the destructor calls it). Outcomes stay poll()-able
/// after shutdown until the service is destroyed.
///
/// Retention: job INPUTS (instance, options) are released the moment a job
/// turns terminal, but every OUTCOME -- schedule included -- is retained for
/// the service lifetime so any ticket stays poll()-able. Memory therefore
/// grows with jobs served: bound a truly unbounded daemon by recreating the
/// service between runs (outcome garbage collection is a named follow-up in
/// the ROADMAP).
namespace malsched {

struct ServiceOptions {
  /// Worker threads; 0 = hardware_concurrency.
  unsigned threads{0};
  /// Master switch for the solve cache; `cache_capacity` entries when on.
  bool cache{true};
  std::size_t cache_capacity{1024};
  /// Reuse per-worker DualWorkspaces across same-instance cache misses.
  bool reuse_workspaces{true};
  /// Registry to dispatch through; nullptr = the global one. Must outlive
  /// the service and not be mutated while it runs.
  const SolverRegistry* registry{nullptr};
};

/// Opaque handle to one submitted job; tickets are dense and increase in
/// submission order (ticket order IS delivery order).
struct JobTicket {
  std::uint64_t id{0};
  friend bool operator==(JobTicket a, JobTicket b) { return a.id == b.id; }
};

enum class JobState {
  kQueued,     ///< accepted, not yet picked up by a worker
  kRunning,    ///< a worker is solving it
  kDone,       ///< terminal: ok / error / cancelled (see the outcome)
};

/// Terminal outcome of one job -- the streaming payload and the wait()
/// return value. Reuses BatchItemStatus so service outcomes and batch items
/// compare directly.
struct JobOutcome {
  std::uint64_t ticket{0};
  BatchItemStatus status{BatchItemStatus::kCancelled};
  std::optional<SolverResult> result;  ///< engaged iff status == kOk
  std::string error;                   ///< non-empty iff status == kError
  bool cache_hit{false};               ///< result served from the solve cache
  /// Worker-observed seconds from dequeue to completion (steady clock);
  /// near-zero for cache hits -- the serving-path latency, as opposed to
  /// result->wall_seconds, which is the original solve's cost.
  double wall_seconds{0.0};
};

struct ServiceStats {
  std::uint64_t submitted{0};
  std::uint64_t completed{0};  ///< solved ok (cache hits included)
  std::uint64_t failed{0};
  std::uint64_t cancelled{0};
  std::uint64_t delivered{0};  ///< outcomes handed to the stream so far
  std::uint64_t cache_hits{0};
  std::uint64_t cache_misses{0};
  std::uint64_t cache_evictions{0};
  std::size_t cache_entries{0};
  std::uint64_t workspace_reuses{0};  ///< solves that borrowed a warm workspace
};

struct SubmitOptions {
  /// Consult/populate the solve cache for this job (no-op when the service
  /// cache is off). Off for jobs that must measure a real solve.
  bool cache{true};
};

class SchedulerService {
 public:
  using ResultCallback = std::function<void(const JobOutcome&)>;

  explicit SchedulerService(ServiceOptions options = {});
  ~SchedulerService();  // shutdown()

  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  /// Installs the streaming callback. Must be called before the first
  /// submit() (throws std::logic_error otherwise): a stream that starts
  /// mid-run would silently miss already-delivered outcomes.
  void on_result(ResultCallback callback);

  /// Enqueues one job; returns immediately. Throws std::runtime_error after
  /// shutdown().
  JobTicket submit(BatchJob job, SubmitOptions options = {});

  /// Enqueues many jobs atomically (their tickets are consecutive).
  std::vector<JobTicket> submit(std::vector<BatchJob> jobs, SubmitOptions options = {});

  /// Non-blocking: the outcome if the job reached a terminal state, nullopt
  /// while queued/running. Throws std::out_of_range on a ticket this service
  /// never issued.
  [[nodiscard]] std::optional<JobOutcome> poll(JobTicket ticket) const;

  [[nodiscard]] JobState state(JobTicket ticket) const;

  /// Blocks until the job reaches a terminal state; returns its outcome.
  [[nodiscard]] JobOutcome wait(JobTicket ticket);

  /// Requests cancellation. Jobs still queued are cancelled immediately
  /// (their outcome is kCancelled and enters the stream in ticket order);
  /// returns false for jobs already running or terminal -- solves are not
  /// interrupted mid-flight, matching BatchRunner's cancellation model.
  bool cancel(JobTicket ticket);

  /// Blocks until every job submitted BEFORE the call is delivered to the
  /// stream (and thus terminal). Safe to call repeatedly and concurrently
  /// with new submissions.
  void drain();

  /// Graceful stop: rejects new submissions, cancels every queued job,
  /// lets running solves finish, delivers every outcome, joins the workers.
  /// Idempotent.
  void shutdown();

  [[nodiscard]] unsigned threads() const noexcept { return pool_.threads(); }
  [[nodiscard]] ServiceStats stats() const;

 private:
  struct Slot {
    BatchJob job;  ///< payload released at the terminal transition
    SubmitOptions submit_options;
    JobState state{JobState::kQueued};
    JobOutcome outcome;
  };

  JobTicket enqueue_locked(BatchJob job, SubmitOptions options);  // mutex_ held
  void run_job(std::uint64_t id);
  void finish(std::uint64_t id, JobOutcome outcome, bool reused_workspace);
  void deliver_ready();

  ServiceOptions options_;
  const SolverRegistry* registry_;
  SolveCache cache_;

  mutable std::mutex mutex_;
  std::condition_variable done_cv_;  ///< wait()/drain(): "a slot turned terminal"
  std::deque<Slot> slots_;           ///< slot id == ticket id (kept for poll())
  std::uint64_t next_delivery_{0};
  bool accepting_{true};
  ServiceStats stats_;

  /// Single-deliverer protocol (see deliver_ready()): `delivering_` elects
  /// one thread to invoke callbacks in ticket order; `delivery_requested_`
  /// makes it rescan before retiring, so concurrent (or re-entrant, from
  /// inside the callback) completions are never stranded.
  bool delivering_{false};
  bool delivery_requested_{false};
  ResultCallback callback_;

  WorkerPool pool_;  ///< last member: destroyed (joined) before the state above
};

}  // namespace malsched
