#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include <atomic>

#include "registry/request.hpp"
#include "api/service_config.hpp"
#include "api/solve_cache.hpp"
#include "exec/batch_runner.hpp"
#include "exec/worker_pool.hpp"
#include "support/cancellation.hpp"
#include "support/mutex.hpp"
#include "support/stopwatch.hpp"

/// The service-grade front door of the library: a long-lived scheduler that
/// accepts SolveRequests continuously, solves them on a persistent worker
/// pool, streams results back in deterministic order, memoizes repeated
/// work, and coalesces concurrent duplicates onto one solve.
///
/// Where solve() is one call and solve_batch() is one closed batch,
/// SchedulerService is the shape a production deployment actually has: a
/// daemon that receives requests over time and must answer each as soon as
/// possible without re-deriving what it already knows. Four mechanisms
/// carry that:
///
///  * **submit/poll/wait** -- submit() enqueues and returns a JobTicket
///    immediately; poll() is a non-blocking status probe, wait() blocks for
///    one job, drain() for everything submitted so far.
///  * **Ordered streaming** -- an on_result callback receives every outcome
///    exactly once, in TICKET (submission) order, regardless of which worker
///    finished first: delivery i+1 waits for delivery i. That makes the
///    stream deterministic -- the sequence of delivered results at 8 threads
///    is byte-identical to 1 thread (and to solve_batch on the same
///    requests) -- at the cost of head-of-line buffering, which
///    poll()/wait() bypass.
///  * **Content-addressed solve cache** -- completed results are memoized
///    under the interned fingerprint + solver + canonical options (see
///    SolveCache; eviction by capacity, byte budget, and TTL, each counted).
///    A hit returns the memoized result without dispatching -- and since
///    v2.1, without the worker round trip either: submit() probes the cache
///    on the calling thread and a hit creates the slot already terminal
///    (the hit's `worker` is -1, off-pool), so a hit-heavy client never
///    pays two context switches per request. A submit-time miss is not
///    counted (the dispatch-time lookup still runs and counts), so every
///    cache-consulting request counts exactly one hit or one miss. Because
///    the fingerprint was computed once at InstanceHandle::intern, the
///    submit path never re-reads profile bits -- audited by a hash-count
///    test.
///  * **In-flight dedup** -- a cache-consulting request that misses while an
///    IDENTICAL request (same fingerprint, solver, canonical options) is
///    already being solved does not dispatch a second solve: it registers as
///    a joiner and, when the leader finishes, observes the SAME outcome
///    (bytes included; `dedup_join` set, the leader's worker id stamped).
///    Joining is non-blocking -- the joiner's worker moves on immediately --
///    so dedup never idles a thread. `dedup_joins` counts registrations.
///    Per-request opt-out rides SolveRequest::use_cache (a request that must
///    measure a real solve must not adopt someone else's).
///
/// Robustness (deadlines, admission, degradation):
///
///  * **Deadlines** -- SolveRequest::budget_seconds (relative, anchored at
///    submit()) and ::deadline_seconds (absolute steady-clock) bound how
///    long a request may take END TO END, queue wait included; the tighter
///    one wins. An expired request turns terminal with
///    SolveErrorCode::kDeadlineExceeded -- before dispatch if it expired in
///    the queue, or mid-solve via the cooperative CancelCheck threaded
///    through the solver hot loops (bounded-latency stop, no thread kill).
///  * **cancel() on RUNNING jobs** fires the slot's CancelToken: the solve
///    observes it at the next check stride and surfaces kCancelled. A
///    cancelled dedup LEADER fans the cancelled outcome out to every joined
///    ticket (nobody is stranded mid-coalesce); cancelling a JOINER detaches
///    just that ticket.
///  * **Admission control** -- with ServiceConfig::max_queue_depth > 0, a
///    submit() that finds the queue full applies `overload_policy`: "reject"
///    turns the NEW request terminal (kRejected), "shed_oldest" evicts the
///    oldest still-queued job (kRejected) in its favor, "degrade" admits it
///    flagged to run on the configured fast `fallback_solver` (cache/dedup
///    skipped, `fallback_used` provenance). Degrade also retries a
///    deadline-expired primary solve once on the fallback.
///  * **Queue discipline** -- ServiceConfig::queue_discipline picks the
///    DISPATCH order of queued jobs: "fifo" (default, submission order) or
///    "edf" (earliest merged deadline first; deadline-less jobs FIFO behind
///    every dated one, ticket-tiebroken, so without deadlines "edf" behaves
///    byte-identically to "fifo"). Only dispatch reorders -- delivery to
///    the stream stays strictly ticket-ordered under both.
///  * **Small-instance fast path** -- with ServiceConfig::fast_path_max_tasks
///    > 0, a request whose instance is at or under the threshold is solved
///    inline on the submitting thread (queue, admission control, and
///    workers bypassed; normal cache accounting; `fast_path` provenance,
///    worker -1) and its slot is born terminal, like a submit-time hit.
///
/// Cache-miss solves additionally reuse per-worker mrt scratch: each worker
/// keeps the DualWorkspace of the last instance it solved and hands it to
/// the registry through SolveContext, so a burst of same-instance jobs
/// (different options -- identical options would have hit the cache or
/// joined in flight) builds the breakpoint index once per worker.
///
/// Determinism contract: every result field is byte-identical to the
/// synchronous `solve()` path, with two audited exceptions -- wall times
/// (inherently run-dependent; cache hits and dedup joins carry the original
/// solve's result wall time), and the mrt `workspace.*` audit counters,
/// which report per-solve deltas and so legitimately shrink when a worker
/// reuses its workspace (that saving is what they measure).
///
/// Callback rules: on_result fires on a worker thread (or inside cancel()/
/// shutdown()/submit() -- the latter on a submit-time cache hit -- on the
/// calling thread) while no internal state lock is held;
/// it may call poll()/state()/stats()/cancel()/submit() (re-entrant
/// delivery is handled by a rescan protocol), but must NOT call wait(),
/// drain(), or shutdown() -- blocking inside the delivery path deadlocks
/// it, and shutdown() would join the very worker running the callback.
///
/// Lifecycle: drain() finishes everything submitted; shutdown() stops
/// intake, cancels every job not yet started, finishes the ones running
/// (leaders fill their joiners before the pool joins), and joins the
/// workers (the destructor calls it). Outcomes stay poll()-able after
/// shutdown until the service is destroyed.
///
/// Retention: request INPUTS (handle, options) are released the moment a
/// job turns terminal. OUTCOMES are retained for the service lifetime by
/// default; with `gc_slots` on, a slot whose outcome has been BOTH
/// delivered to the stream AND observed through poll()/wait() is reclaimed
/// (payload freed, `slots_reclaimed` counted) -- the knob that keeps a
/// truly unbounded daemon from growing without bound. Re-reading a
/// reclaimed ticket throws std::logic_error: with gc on, an outcome is a
/// take-once value.
namespace malsched {

/// Pre-v2.1 name for the service configuration; ServiceConfig
/// (api/service_config.hpp) is the one aggregate both serving tiers take,
/// with defaults and validate(). Documented shim, same policy as the
/// BatchJob shims -- don't extend it.
using ServiceOptions = ServiceConfig;

/// Opaque handle to one submitted job; tickets are dense and increase in
/// submission order (ticket order IS delivery order).
struct JobTicket {
  std::uint64_t id{0};
  friend bool operator==(JobTicket a, JobTicket b) { return a.id == b.id; }
};

enum class JobState {
  kQueued,     ///< accepted, not yet picked up by a worker
  kRunning,    ///< a worker is solving it (or it joined an in-flight solve)
  kDone,       ///< terminal: ok / error / cancelled (see the outcome)
};

/// Pre-v2 name for the streaming payload; SolveOutcome (registry/request.hpp) is
/// the one type batch items, bench cases, and service outcomes share.
using JobOutcome = SolveOutcome;

/// Point-in-time service counters. stats() fills the service-side fields as
/// ONE consistent snapshot copied under the state mutex (no field-by-field
/// tearing mid-update); the cache_* fields are a second snapshot taken under
/// the cache's own mutex immediately after, so service and cache counters
/// may be skewed by work that completed between the two locks -- each half
/// is internally consistent.
struct ServiceStats {
  std::uint64_t submitted{0};
  std::uint64_t completed{0};  ///< solved ok (cache hits and joins included)
  std::uint64_t failed{0};
  std::uint64_t cancelled{0};
  std::uint64_t delivered{0};  ///< outcomes handed to the stream so far
  std::uint64_t dedup_joins{0};  ///< requests coalesced onto an in-flight solve
  std::uint64_t slots_reclaimed{0};  ///< outcome payloads freed by gc_slots
  std::uint64_t cache_hits{0};
  std::uint64_t cache_misses{0};
  std::uint64_t cache_evictions{0};  ///< all causes (split below)
  std::uint64_t cache_evictions_capacity{0};
  std::uint64_t cache_evictions_bytes{0};
  std::uint64_t cache_evictions_ttl{0};
  std::size_t cache_entries{0};
  std::size_t cache_bytes{0};  ///< approximate resident footprint
  std::uint64_t workspace_reuses{0};  ///< solves that borrowed a warm workspace
  // Robustness counters. `rejected` and `shed` outcomes are kError and so
  // also counted under `failed`; `deadline_misses` counts both terminal
  // kDeadlineExceeded outcomes and deadline-triggered fallback retries;
  // `fallbacks` counts outcomes the fallback solver answered
  // (`fallback_used` provenance); `cache_failures` counts cache
  // lookup/insert exceptions absorbed (lookup degraded to a miss, insert
  // skipped -- the request still completes).
  std::uint64_t rejected{0};
  std::uint64_t shed{0};
  std::uint64_t deadline_misses{0};
  std::uint64_t fallbacks{0};
  std::uint64_t cache_failures{0};
  /// Deepest the pending-job queue has ever been (post-admission). The
  /// overload observable without the bench harness: a high-water mark near
  /// max_queue_depth says admission control is doing the limiting. Summed
  /// across shards on the sharded tier, like every other field.
  std::uint64_t queue_depth_high_water{0};
  /// Requests answered inline by the small-instance fast path
  /// (fast_path_max_tasks); submit-time cache hits are counted as cache
  /// hits, not here.
  std::uint64_t fast_path_hits{0};
};

/// Field-wise rollup `total += shard`, used by the sharded tier and the
/// bench harnesses (defined in sharded_service.cpp, next to its consumer).
/// Every ServiceStats field must be summed here: the repo linter's
/// stats-exhaustive rule cross-references the struct against this body,
/// write_service_stats() (api/stats_json.hpp), and bench_schema.json.
void accumulate_stats(ServiceStats& total, const ServiceStats& shard);

/// Pre-v2 per-submit flags; SolveRequest::use_cache carries this now.
struct SubmitOptions {
  /// Consult/populate the solve cache and join in-flight duplicates (no-op
  /// when the service cache is off). Off for jobs that must measure a real
  /// solve.
  bool cache{true};
};

class SchedulerService {
 public:
  using ResultCallback = std::function<void(const SolveOutcome&)>;

  /// Throws std::invalid_argument when `config.validate()` reports
  /// violations (the message lists all of them).
  explicit SchedulerService(ServiceConfig config = {});
  ~SchedulerService();  // shutdown()

  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  /// Installs the streaming callback. Must be called before the first
  /// submit() (throws std::logic_error otherwise): a stream that starts
  /// mid-run would silently miss already-delivered outcomes.
  void on_result(ResultCallback callback) MALSCHED_EXCLUDES(mutex_);

  /// Enqueues one request; returns immediately. Throws std::runtime_error
  /// after shutdown() and std::invalid_argument on an empty handle.
  JobTicket submit(SolveRequest request) MALSCHED_EXCLUDES(mutex_);

  /// Enqueues many requests atomically (their tickets are consecutive).
  std::vector<JobTicket> submit(std::vector<SolveRequest> requests)
      MALSCHED_EXCLUDES(mutex_);

  /// Pre-v2 shims: intern the job's instance (one fingerprint per call --
  /// per distinct instance for the vector form), map SubmitOptions::cache to
  /// SolveRequest::use_cache, and forward.
  JobTicket submit(BatchJob job, SubmitOptions options = {}) MALSCHED_EXCLUDES(mutex_);
  std::vector<JobTicket> submit(std::vector<BatchJob> jobs, SubmitOptions options = {})
      MALSCHED_EXCLUDES(mutex_);

  /// Non-blocking: the outcome if the job reached a terminal state, nullopt
  /// while queued/running. Throws std::out_of_range on a ticket this service
  /// never issued, and std::logic_error on one already reclaimed by
  /// gc_slots. Observing the outcome here makes the slot reclaimable (the
  /// reason this is not const).
  [[nodiscard]] std::optional<SolveOutcome> poll(JobTicket ticket)
      MALSCHED_EXCLUDES(mutex_);

  [[nodiscard]] JobState state(JobTicket ticket) const MALSCHED_EXCLUDES(mutex_);

  /// Blocks until the job reaches a terminal state; returns its outcome.
  /// Same reclamation semantics as poll().
  [[nodiscard]] SolveOutcome wait(JobTicket ticket) MALSCHED_EXCLUDES(mutex_);

  /// Requests cancellation; returns false only for jobs already terminal.
  /// Jobs still queued are cancelled immediately (their outcome is
  /// kCancelled and enters the stream in ticket order). A RUNNING solo or
  /// dedup-leader solve has its CancelToken fired: the return is true (the
  /// request was delivered) and the outcome arrives as kCancelled within
  /// one check stride -- unless the solve completed first, in which case
  /// its real outcome stands (cooperative cancellation is best-effort by
  /// construction). A cancelled LEADER's kCancelled outcome fans out to
  /// every joined ticket. A dedup JOINER is detached from its leader and
  /// turned kCancelled on its own (the leader keeps solving); returns false
  /// if the leader's epilogue already claimed the joiner list (the
  /// coalesced outcome is imminent).
  bool cancel(JobTicket ticket) MALSCHED_EXCLUDES(mutex_);

  /// Blocks until every job submitted BEFORE the call is delivered to the
  /// stream (and thus terminal). Safe to call repeatedly and concurrently
  /// with new submissions.
  void drain() MALSCHED_EXCLUDES(mutex_);

  /// Graceful stop: rejects new submissions, cancels every queued job,
  /// lets running solves finish, delivers every outcome, joins the workers.
  /// Idempotent.
  ///
  /// Ordering contract with drain(): when shutdown() returns, EVERY
  /// outcome has been streamed (stats().delivered == stats().submitted) --
  /// including the case where another thread held the single-deliverer
  /// role when shutdown() flushed the tail, in which case shutdown()
  /// WAITS for that deliverer to finish rather than returning with the
  /// last callback still in flight. A drain() racing shutdown() therefore
  /// also observes the complete stream; neither call can return between
  /// "all slots terminal" and "all outcomes delivered".
  void shutdown() MALSCHED_EXCLUDES(mutex_);

  [[nodiscard]] unsigned threads() const noexcept { return pool_.threads(); }

  /// One consistent snapshot of the service counters, copied under the
  /// state mutex (see ServiceStats).
  [[nodiscard]] ServiceStats stats() const MALSCHED_EXCLUDES(mutex_);

 private:
  struct Slot {
    SolveRequest request;  ///< payload released at the terminal transition
    JobState state{JobState::kQueued};
    SolveOutcome outcome;
    bool observed{false};   ///< a poll()/wait() returned this outcome
    bool reclaimed{false};  ///< gc_slots freed the outcome payload
    CancelToken cancel;     ///< fired by cancel() on a RUNNING solve
    double deadline{0.0};   ///< absolute steady-clock (0 = none), anchored at submit
    bool degraded{false};   ///< admitted past the watermark: runs the fallback
    bool joined{false};     ///< registered as a dedup joiner (locators below)
    std::uint64_t join_fingerprint{0};  ///< inflight_ bucket of the leader
    std::uint64_t join_leader{0};       ///< leader ticket this slot coalesced on
  };

  /// One pending job in the dispatch order structure (see ready_edf_).
  struct ReadyEntry {
    double key{0.0};  ///< absolute merged deadline; +inf for deadline-less
    std::uint64_t id{0};
  };

  /// One coalescing point: the leader's key plus everyone who joined it.
  struct Inflight {
    struct Joiner {
      std::uint64_t id{0};
      Stopwatch since;  ///< serving wall anchor: join -> leader completion
    };
    SolveCache::Key key;
    std::uint64_t leader{0};
    std::vector<Joiner> joiners;
  };

  /// With `ready` engaged (a submit-time cache hit), the slot is born
  /// terminal: no closure is posted. Admission control runs here too --
  /// a full queue may reject the new slot (born terminal kRejected), shed
  /// the oldest queued one, or flag the new one degraded. Whenever ANY slot
  /// turned terminal (the new one or a shed victim), `born_terminal` is set
  /// to true (never cleared -- it accumulates across a batch) and the
  /// caller must notify done_cv_ and run deliver_ready() after releasing
  /// the mutex.
  JobTicket enqueue_locked(SolveRequest request, std::optional<SolveOutcome> ready,
                           bool& born_terminal) MALSCHED_REQUIRES(mutex_);
  /// Submit-time cache fast path: probes the solve cache on the CALLING
  /// thread for a cache-consulting request and returns the ready outcome on
  /// a hit (no worker round trip). Misses are not counted here -- see
  /// SolveCache::lookup(key, count_miss).
  [[nodiscard]] std::optional<SolveOutcome> peek_cache(const SolveRequest& request)
      MALSCHED_EXCLUDES(mutex_);
  /// Small-instance fast path (ServiceConfig::fast_path_max_tasks): solves
  /// an eligible request synchronously on the CALLING thread and returns its
  /// born-terminal outcome; nullopt when the fast path is off or the
  /// instance is too large. The cache is consulted with NORMAL accounting
  /// (lookup counts the miss -- this path IS the authoritative lookup, there
  /// is no dispatch-time retry behind it) and populated on success; dedup is
  /// skipped. Runs before peek_cache() in submit(), so the
  /// one-hit-or-one-miss invariant holds for fast-path requests too.
  [[nodiscard]] std::optional<SolveOutcome> try_fast_path(const SolveRequest& request)
      MALSCHED_EXCLUDES(mutex_);
  void run_job(std::uint64_t id) MALSCHED_EXCLUDES(mutex_);
  /// Pool closure body under a queue discipline: pops the next dispatchable
  /// job from the ready structure and runs it. Closures and ready entries
  /// are pushed 1:1 (each enqueue posts one of each), and a closure consumes
  /// at most one live entry, so no live entry is ever stranded without a
  /// closure to run it; entries whose slot already left kQueued (cancelled,
  /// shed, shut down) are skipped as stale.
  void run_next() MALSCHED_EXCLUDES(mutex_);
  void push_ready_locked(std::uint64_t id, double deadline) MALSCHED_REQUIRES(mutex_);
  /// Heap order for ready_edf_: true when `a` dispatches AFTER `b`. Under
  /// std::push_heap/pop_heap this puts the earliest deadline (then the
  /// smallest ticket) at the front. Pure on the entries -- it never reads
  /// guarded state, so the heap calls stay analysis-clean.
  [[nodiscard]] static bool dispatches_after(const ReadyEntry& a, const ReadyEntry& b) noexcept;
  /// Pops the next live (still-kQueued) entry into `id`; false when only
  /// stale entries (or nothing) remained.
  [[nodiscard]] bool pop_ready_locked(std::uint64_t& id) MALSCHED_REQUIRES(mutex_);
  /// Runs `options_.fallback_solver` on the request's instance with EMPTY
  /// options, no cache/dedup, no deadline; the outcome carries
  /// `fallback_used` and the serving wall measured by `stopwatch` (the
  /// failed/skipped primary attempt included -- that is the latency the
  /// caller experienced).
  [[nodiscard]] SolveOutcome run_fallback(const SolveRequest& request, std::uint64_t id,
                                          const Stopwatch& stopwatch) MALSCHED_EXCLUDES(mutex_);
  void finish(std::uint64_t id, SolveOutcome outcome, bool reused_workspace,
              const SolveCache::Key* inflight_key) MALSCHED_EXCLUDES(mutex_);
  void deliver_ready() MALSCHED_EXCLUDES(mutex_);
  Inflight* find_inflight_locked(const SolveCache::Key& key) MALSCHED_REQUIRES(mutex_);
  void maybe_reclaim_locked(std::uint64_t id) MALSCHED_REQUIRES(mutex_);
  void count_terminal_locked(const SolveOutcome& outcome) MALSCHED_REQUIRES(mutex_);

  ServiceConfig options_;
  const SolverRegistry* registry_;
  SolveCache cache_;  ///< internally synchronized (own mutex)

  mutable Mutex mutex_;
  CondVar done_cv_;  ///< wait()/drain(): "a slot turned terminal"
  /// Slot id == ticket id (kept for poll()).
  std::deque<Slot> slots_ MALSCHED_GUARDED_BY(mutex_);
  std::uint64_t next_delivery_ MALSCHED_GUARDED_BY(mutex_){0};
  bool accepting_ MALSCHED_GUARDED_BY(mutex_){true};
  ServiceStats stats_ MALSCHED_GUARDED_BY(mutex_);
  /// Jobs accepted but not yet picked up by a worker -- what admission
  /// control compares against max_queue_depth. Degraded admissions count
  /// too (they occupy the queue; degrade bounds WORK per job, not depth).
  long long queued_depth_ MALSCHED_GUARDED_BY(mutex_){0};
  /// shed_oldest scan cursor: every slot below it is known non-queued
  /// (states only move forward), so repeated sheds stay amortized O(1).
  std::uint64_t shed_hint_ MALSCHED_GUARDED_BY(mutex_){0};
  /// Dispatch-order structures (exactly one is used, per queue_discipline;
  /// see run_next() for the closure/entry accounting). Entries are lazily
  /// invalidated: a job that turns terminal while queued (cancel, shed,
  /// shutdown) leaves its entry behind and the dequeue skips it.
  /// fifo: ticket ids in submission order.
  std::deque<std::uint64_t> ready_fifo_ MALSCHED_GUARDED_BY(mutex_);
  /// edf: min-heap on (deadline, ticket) -- deadline-less entries carry +inf
  /// so they sort behind every dated one, and the ticket tiebreak keeps
  /// equal keys in submission order.
  std::vector<ReadyEntry> ready_edf_ MALSCHED_GUARDED_BY(mutex_);
  /// Cache lookup/insert exceptions absorbed. Atomic, not mutex_-guarded:
  /// peek_cache() runs on the submit thread without mutex_ by design.
  std::atomic<std::uint64_t> cache_failures_{0};

  /// Leaders currently solving, by key fingerprint (vector per bucket for
  /// collision safety). Entries live from the leader's miss to its finish().
  std::unordered_map<std::uint64_t, std::vector<Inflight>> inflight_
      MALSCHED_GUARDED_BY(mutex_);

  /// Single-deliverer protocol (see deliver_ready()): `delivering_` elects
  /// one thread to invoke callbacks in ticket order; `delivery_requested_`
  /// makes it rescan before retiring, so concurrent (or re-entrant, from
  /// inside the callback) completions are never stranded. `in_callback_`
  /// names the slot whose outcome the callback is reading right now, so
  /// gc_slots cannot free it mid-read.
  bool delivering_ MALSCHED_GUARDED_BY(mutex_){false};
  bool delivery_requested_ MALSCHED_GUARDED_BY(mutex_){false};
  std::optional<std::uint64_t> in_callback_ MALSCHED_GUARDED_BY(mutex_);
  /// Written by on_result() strictly before the first submit (enforced), so
  /// immutable once workers exist; deliver_ready() snapshots its address
  /// under the lock and invokes it outside (documented there).
  ResultCallback callback_ MALSCHED_GUARDED_BY(mutex_);

  WorkerPool pool_;  ///< last member: destroyed (joined) before the state above
};

}  // namespace malsched
