#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/solver_options.hpp"
#include "api/solver_result.hpp"
#include "model/instance.hpp"

/// Content-addressed memoization of registry solves.
///
/// Production queues see near-duplicate work: the same snapshot re-evaluated
/// under the same solver and options solves to the same (deterministic)
/// result, so the second dispatch is pure waste. SolveCache keys a completed
/// SolverResult by the CONTENT of the job -- a canonical fingerprint of the
/// instance (machines, every task profile bit pattern, task names) plus the
/// solver name and the canonical option string -- so hits do not depend on
/// callers sharing Instance objects; two separately-generated but identical
/// instances hit the same entry (the shared_ptr fast path just skips the
/// deep compare).
///
/// Eviction is LRU over a fixed entry capacity; every lookup/insert/eviction
/// is counted (SolveCacheStats) so the service can surface hit rates.
/// Collisions are handled, not assumed away: entries whose 64-bit
/// fingerprints collide are disambiguated by a full key comparison
/// (solver, options, then instance content).
///
/// Thread safety: fully synchronized internally (one mutex; the critical
/// sections are lookups and list splices, never solves), so any number of
/// service workers can share one cache. A memoized result is returned BY
/// VALUE -- results are immutable once inserted.
namespace malsched {

struct SolveCacheStats {
  std::uint64_t hits{0};
  std::uint64_t misses{0};       ///< lookups that found nothing
  std::uint64_t insertions{0};
  std::uint64_t evictions{0};    ///< entries pushed out by capacity
  std::size_t entries{0};        ///< current size
};

class SolveCache {
 public:
  /// The precomputed identity of one (solver, options, instance) job.
  /// Building a key hashes the instance once; reuse it for lookup + insert.
  struct Key {
    std::uint64_t fingerprint{0};
    std::string solver;
    std::string options;  ///< SolverOptions::str() -- canonical by key order
    std::shared_ptr<const Instance> instance;  ///< never null
  };

  /// `capacity` = max memoized results; 0 disables the cache entirely
  /// (lookups miss without counting, inserts drop).
  explicit SolveCache(std::size_t capacity);

  [[nodiscard]] static Key make_key(const std::string& solver, const SolverOptions& options,
                                    std::shared_ptr<const Instance> instance);

  /// The memoized result for `key` (nullptr on miss), refreshing its LRU
  /// position; counts a hit or a miss. Returned as a shared_ptr so callers
  /// copy (or just read) OUTSIDE the cache lock -- results are immutable
  /// once inserted, and full SolverResult copies carry whole Schedules.
  [[nodiscard]] std::shared_ptr<const SolverResult> lookup(const Key& key);

  /// Memoizes `result` under `key` (idempotent: re-inserting an existing key
  /// refreshes LRU without duplicating), evicting the least-recently-used
  /// entry when full. The copy into the cache happens before the lock.
  void insert(const Key& key, const SolverResult& result);

  void clear();

  [[nodiscard]] bool enabled() const noexcept { return capacity_ > 0; }
  [[nodiscard]] SolveCacheStats stats() const;

 private:
  struct Entry {
    Key key;
    std::shared_ptr<const SolverResult> result;  ///< immutable once inserted
  };
  using EntryList = std::list<Entry>;

  /// Same job? Full comparison behind the fingerprint (collision safety).
  [[nodiscard]] static bool same_key(const Key& a, const Key& b);

  std::size_t capacity_;
  mutable std::mutex mutex_;
  EntryList entries_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::vector<EntryList::iterator>> index_;
  SolveCacheStats stats_;
};

}  // namespace malsched
