#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/mutex.hpp"

#include "registry/solver_options.hpp"
#include "registry/solver_result.hpp"
#include "model/instance_handle.hpp"

/// Content-addressed memoization of registry solves.
///
/// Production queues see near-duplicate work: the same snapshot re-evaluated
/// under the same solver and options solves to the same (deterministic)
/// result, so the second dispatch is pure waste. SolveCache keys a completed
/// SolverResult by the CONTENT of the job: the interned instance's
/// fingerprint (computed ONCE, at InstanceHandle::intern -- building a key
/// never touches profile bits again) mixed with the solver name and the
/// canonical option string. Hits do not depend on callers sharing handles;
/// two separately interned but identical instances carry the same
/// fingerprint and hit the same entry.
///
/// Eviction (API v2) has three causes, each counted separately:
///   * capacity -- LRU past the fixed entry budget,
///   * bytes    -- LRU past `max_bytes` (footprint is an estimate: entry
///     struct + key strings + schedule assignments + stat keys),
///   * ttl      -- entries older than `ttl_seconds`, expired lazily on the
///     lookup/insert that finds them stale.
///
/// Collisions are handled, not assumed away: entries whose 64-bit
/// fingerprints collide are disambiguated by a full key comparison (solver,
/// options, then instance identity -- handle pointer equality first, deep
/// content compare only for separately interned twins).
///
/// Thread safety: fully synchronized internally (one mutex; the critical
/// sections are lookups and list splices, never solves), so any number of
/// service workers can share one cache. A memoized result is returned BY
/// VALUE -- results are immutable once inserted. The locking discipline is
/// machine-checked: every shared field is MALSCHED_GUARDED_BY(mutex_) and
/// clang's thread-safety analysis runs over it in CI (see
/// support/thread_annotations.hpp).
namespace malsched {

struct SolveCacheConfig {
  /// Max memoized results; 0 disables the cache entirely (lookups miss
  /// without counting, inserts drop).
  std::size_t capacity{1024};
  /// Approximate byte budget over all entries; 0 = unlimited. A single
  /// over-budget entry is kept (evicting it for its own insert would make
  /// the cache thrash on every oversized result).
  std::size_t max_bytes{0};
  /// Entries older than this are expired on access; 0 = never.
  double ttl_seconds{0.0};
  /// Monotone seconds source for TTL decisions; defaults to the steady
  /// clock. A test hook -- production code leaves it empty.
  std::function<double()> clock{};
};

struct SolveCacheStats {
  std::uint64_t hits{0};
  std::uint64_t misses{0};       ///< lookups that found nothing (or expired)
  std::uint64_t insertions{0};
  std::uint64_t evictions_capacity{0};  ///< pushed out by the entry budget
  std::uint64_t evictions_bytes{0};     ///< pushed out by the byte budget
  std::uint64_t evictions_ttl{0};       ///< expired by age
  std::size_t entries{0};  ///< current size
  std::size_t bytes{0};    ///< current approximate footprint

  /// All causes combined.
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_capacity + evictions_bytes + evictions_ttl;
  }
};

class SolveCache {
 public:
  /// The precomputed identity of one (solver, options, instance) job.
  /// Building a key mixes the handle's precomputed fingerprint with the two
  /// strings -- profile bits are never re-read; reuse it for lookup+insert.
  struct Key {
    std::uint64_t fingerprint{0};  ///< instance fingerprint + solver + options
    std::string solver;
    std::string options;  ///< SolverOptions::str() -- canonical by key order
    InstanceHandle instance;  ///< always valid()
  };

  explicit SolveCache(SolveCacheConfig config);

  /// Pre-v2 convenience: entry budget only (no byte budget, no TTL).
  explicit SolveCache(std::size_t capacity);

  [[nodiscard]] static Key make_key(const std::string& solver, const SolverOptions& options,
                                    InstanceHandle instance);

  /// Pre-v2 shim: interns the instance NOW (one content fingerprint per
  /// call). Prefer interning once and passing the handle.
  [[nodiscard]] static Key make_key(const std::string& solver, const SolverOptions& options,
                                    std::shared_ptr<const Instance> instance);

  /// The memoized result for `key` (nullptr on miss), refreshing its LRU
  /// position; counts a hit, and a miss unless `count_miss` is false. An
  /// entry past its TTL is evicted here and reported as a miss. Returned as
  /// a shared_ptr so callers copy (or just read) OUTSIDE the cache lock --
  /// results are immutable once inserted, and full SolverResult copies
  /// carry whole Schedules.
  ///
  /// `count_miss = false` is for opportunistic probes backed by an
  /// authoritative later lookup (the service's submit-time fast path): the
  /// request is served here on a hit, but on a miss the dispatch-time
  /// lookup still runs and counts -- so every cache-consulting request
  /// counts exactly once, as either one hit or one miss.
  [[nodiscard]] std::shared_ptr<const SolverResult> lookup(const Key& key, bool count_miss = true)
      MALSCHED_EXCLUDES(mutex_);

  /// Memoizes `result` under `key` (idempotent: re-inserting a live key
  /// refreshes LRU without duplicating; re-inserting an expired one replaces
  /// it), then evicts from the LRU tail until both budgets hold. The copy
  /// into the cache happens before the lock.
  void insert(const Key& key, const SolverResult& result) MALSCHED_EXCLUDES(mutex_);

  void clear() MALSCHED_EXCLUDES(mutex_);

  [[nodiscard]] bool enabled() const noexcept { return config_.capacity > 0; }

  /// One consistent snapshot, copied under the cache mutex.
  [[nodiscard]] SolveCacheStats stats() const MALSCHED_EXCLUDES(mutex_);

  /// Same job? Full comparison behind the fingerprint (collision safety).
  /// Public so other key-indexed structures (the service's in-flight dedup
  /// map) share ONE definition of "identical request".
  [[nodiscard]] static bool same_key(const Key& a, const Key& b);

 private:
  struct Entry {
    Key key;
    std::shared_ptr<const SolverResult> result;  ///< immutable once inserted
    double inserted_at{0.0};  ///< clock seconds at insertion (TTL anchor)
    std::size_t bytes{0};     ///< approximate footprint charged to the budget
  };
  using EntryList = std::list<Entry>;

  [[nodiscard]] double now() const;
  [[nodiscard]] bool expired(const Entry& entry, double at) const noexcept;
  void erase_locked(EntryList::iterator it) MALSCHED_REQUIRES(mutex_);

  SolveCacheConfig config_;  ///< immutable after construction
  mutable Mutex mutex_;
  EntryList entries_ MALSCHED_GUARDED_BY(mutex_);  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::vector<EntryList::iterator>> index_
      MALSCHED_GUARDED_BY(mutex_);
  std::size_t bytes_ MALSCHED_GUARDED_BY(mutex_){0};  ///< sum of Entry::bytes
  SolveCacheStats stats_ MALSCHED_GUARDED_BY(mutex_);
};

}  // namespace malsched
