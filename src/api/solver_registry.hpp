#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "api/solver_options.hpp"
#include "api/solver_result.hpp"
#include "model/instance.hpp"

/// The production entry point of the library: one name-keyed facade over
/// every scheduling algorithm, so front ends (CLI, batch drivers, benches,
/// services) dispatch by string instead of hand-wiring per-algorithm structs.
///
/// Registered out of the box:
///
///   name              algorithm                              key options
///   ----------------  -------------------------------------  -----------------------------
///   mrt               sqrt(3) dual approximation (MRT '99)   epsilon, compaction,
///                                                            pick_best_branch, two_shelf,
///                                                            canonical_list, malleable_list,
///                                                            workspace (default 1), snap
///   two_phase         Turek/Ludwig two-phase baseline        rigid=ffdh|nfdh|list,
///                                                            max_candidates
///   naive             practitioner anchors                   policy=half-speedup|lpt-seq|gang
///   two_shelves_32    heuristic 3/2 two-shelf dual search    epsilon
///   graph             layered DAG scheduler on the flat      epsilon, strategy=layered|
///                     instance (no precedence edges)         ready-list
///
/// Every solver additionally honors `local_search=1` (the makespan local
/// search post-pass, applied by the facade). solve() always validates the
/// schedule before returning -- a result is never handed out unchecked --
/// and stamps the wall time of the whole dispatch.
///
/// Thread safety (audited for the exec/BatchRunner fan-out): construction of
/// global() is safe under C++11 magic statics; solve(), contains(), names(),
/// and description() are const reads of an immutable entry map and safe to
/// call concurrently, provided no add() races with them. The built-in solver
/// functions are stateless (pure functions of instance + options), so
/// concurrent solve() calls on distinct or even the same instance are safe.
/// add() is NOT synchronized: finish registering custom solvers before
/// sharing a registry across threads (the global registry is fully populated
/// on first use).
namespace malsched {

class SolverRegistry {
 public:
  /// A solver fills `solver` (optional -- the facade overwrites it),
  /// `schedule`, `lower_bound`, and `stats`; the facade computes makespan and
  /// ratio, runs the optional post-pass, validates, and stamps wall time.
  using SolverFn = std::function<SolverResult(const Instance&, const SolverOptions&)>;

  struct Entry {
    std::string name;
    std::string description;
    SolverFn fn;
    /// Whether the solver guarantees contiguous processor intervals (the
    /// paper's setting); validation enforces exactly what is promised.
    bool contiguous{true};
  };

  /// The process-wide registry, pre-populated with the built-in solvers.
  [[nodiscard]] static SolverRegistry& global();

  /// Creates an empty registry (tests compose their own).
  SolverRegistry() = default;

  /// Registers a solver; throws std::invalid_argument on an empty or
  /// duplicate name. Pass contiguous=false only for solvers that may place
  /// tasks on non-consecutive processors (their schedules are then validated
  /// without the contiguity requirement).
  void add(std::string name, std::string description, SolverFn fn, bool contiguous = true);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Registered names in lexicographic order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Human-readable description of one solver; throws on unknown names.
  [[nodiscard]] const std::string& description(const std::string& name) const;

  /// Dispatches to the named solver. Throws std::invalid_argument for an
  /// unknown name (the message lists the registered ones) and
  /// std::runtime_error if a solver ever emits a schedule that fails
  /// validation.
  [[nodiscard]] SolverResult solve(const std::string& name, const Instance& instance,
                                   const SolverOptions& options = {}) const;

 private:
  [[nodiscard]] const Entry& entry(const std::string& name) const;

  std::map<std::string, Entry> entries_;
};

/// Convenience: dispatch through the global registry.
[[nodiscard]] SolverResult solve(const std::string& solver, const Instance& instance,
                                 const SolverOptions& options = {});

}  // namespace malsched
