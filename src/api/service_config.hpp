#pragma once

#include <cstddef>
#include <string>
#include <vector>

/// ServiceConfig: the ONE configuration aggregate for the serving tier.
///
/// Both tiers construct from it identically -- `SchedulerService(config)`
/// and `ShardedSchedulerService(config, shards)` (where `config` describes
/// EACH shard: per-shard worker threads, per-shard cache budget). Before
/// v2.1 these knobs lived in a growing `ServiceOptions` pile with no
/// validation: a nonsensical combination (negative TTL, cache enabled with a
/// zero entry budget) silently produced a service that behaved like a
/// different configuration. ServiceConfig keeps the same fields and
/// defaults -- `ServiceOptions` remains as a documented alias, so existing
/// call sites compile unchanged -- and adds validate(): services call
/// ensure_valid() at construction and reject bad configs with one readable
/// std::invalid_argument listing EVERY violation, not just the first.
namespace malsched {

class SolverRegistry;

struct ServiceConfig {
  /// Worker threads (per shard for the sharded tier); 0 = hardware_concurrency.
  unsigned threads{0};
  /// Master switch for the solve cache; `cache_capacity` entries when on.
  bool cache{true};
  std::size_t cache_capacity{1024};
  /// Approximate cache byte budget; 0 = unlimited (see SolveCacheConfig).
  std::size_t cache_max_bytes{0};
  /// Cache entry time-to-live in seconds; 0 = never expires.
  double cache_ttl_seconds{0.0};
  /// Coalesce concurrent identical cache-consulting misses onto one solve.
  bool dedup{true};
  /// Reclaim outcome payloads once delivered AND observed (see the service
  /// Retention contract).
  bool gc_slots{false};
  /// Reuse per-worker DualWorkspaces across same-instance cache misses.
  bool reuse_workspaces{true};
  /// Registry to dispatch through; nullptr = the global one. Must outlive
  /// the service and not be mutated while it runs.
  const SolverRegistry* registry{nullptr};

  // ------------------------------------------------- admission control
  /// Queued (not yet running) jobs the service will hold before the
  /// overload policy kicks in; 0 = unbounded (the pre-admission behavior).
  /// Signed so a negative count is a validation error instead of a silent
  /// wrap to "practically unbounded". Per shard on the sharded tier.
  long long max_queue_depth{0};
  /// What happens to a submit() that finds the queue at max_queue_depth:
  ///   "reject"      the NEW request turns terminal immediately
  ///                 (kError / kRejected), nothing is dispatched;
  ///   "shed_oldest" the OLDEST still-queued job is turned terminal
  ///                 (kError / kRejected) and the new one takes its place;
  ///   "degrade"     the new request is accepted but marked degraded: it
  ///                 runs on `fallback_solver` (fast, cache/dedup skipped,
  ///                 `fallback_used` provenance) instead of its requested
  ///                 solver. Degrade also retries a deadline-expired
  ///                 primary solve once on the fallback.
  std::string overload_policy{"reject"};
  /// Fast fallback solver for overload_policy = "degrade" (e.g.
  /// "two_phase"); must exist in the effective registry. Runs with EMPTY
  /// options -- the request's option bag belongs to the requested solver
  /// and would fail the fallback's schema.
  std::string fallback_solver;

  // ---------------------------------------------------- queue discipline
  /// Order in which queued jobs are dispatched to workers:
  ///   "fifo" submission (ticket) order -- the default, byte-identical to
  ///          the pre-discipline service;
  ///   "edf"  earliest absolute deadline first (the request's merged
  ///          budget/deadline, anchored at submit). Deadline-less requests
  ///          sort behind every deadline-carrying one, and ties (equal
  ///          deadlines, or two deadline-less requests) break on the
  ///          smaller ticket -- so with no deadlines set anywhere, "edf"
  ///          dispatches exactly like "fifo" and outcomes are
  ///          byte-identical. Delivery order is unaffected either way
  ///          (the stream is always ticket-ordered).
  std::string queue_discipline{"fifo"};

  // ------------------------------------------------------- fast path
  /// Submit-time small-instance fast path: a request whose instance has at
  /// most this many tasks is solved synchronously ON THE SUBMITTING THREAD,
  /// bypassing the queue, admission control, and the worker round trip; its
  /// outcome carries `fast_path` provenance (worker -1, off-pool) and the
  /// slot is born terminal. The cache is still consulted (and populated)
  /// with normal hit/miss accounting; in-flight dedup is skipped -- an
  /// inline solve cannot wait on a leader. 0 = off (the default). Signed so
  /// a negative threshold is a validation error, not a silent wrap.
  long long fast_path_max_tasks{0};

  /// Sanity ceiling for `threads`: far above any real machine, low enough to
  /// catch a negative count that wrapped through `unsigned`.
  static constexpr unsigned kMaxThreads = 1024;

  /// Every violation as one readable sentence; empty means valid.
  /// Checked: `threads` <= kMaxThreads, `cache_ttl_seconds` finite and
  /// non-negative, `cache` on implies `cache_capacity` > 0 (a zero
  /// entry budget silently disables the cache -- say `cache = false`
  /// instead), `max_queue_depth` >= 0, `overload_policy` one of
  /// reject/shed_oldest/degrade, "degrade" implies a non-empty
  /// `fallback_solver`, a non-empty `fallback_solver` exists in the
  /// effective registry (`registry`, or the global one when null),
  /// `queue_discipline` one of fifo/edf, and `fast_path_max_tasks` >= 0.
  [[nodiscard]] std::vector<std::string> validate() const;

  /// Throws std::invalid_argument joining every validate() violation into
  /// one message; no-op on a valid config. Services call this at
  /// construction.
  void ensure_valid() const;
};

}  // namespace malsched
