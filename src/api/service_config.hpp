#pragma once

#include <cstddef>
#include <string>
#include <vector>

/// ServiceConfig: the ONE configuration aggregate for the serving tier.
///
/// Both tiers construct from it identically -- `SchedulerService(config)`
/// and `ShardedSchedulerService(config, shards)` (where `config` describes
/// EACH shard: per-shard worker threads, per-shard cache budget). Before
/// v2.1 these knobs lived in a growing `ServiceOptions` pile with no
/// validation: a nonsensical combination (negative TTL, cache enabled with a
/// zero entry budget) silently produced a service that behaved like a
/// different configuration. ServiceConfig keeps the same fields and
/// defaults -- `ServiceOptions` remains as a documented alias, so existing
/// call sites compile unchanged -- and adds validate(): services call
/// ensure_valid() at construction and reject bad configs with one readable
/// std::invalid_argument listing EVERY violation, not just the first.
namespace malsched {

class SolverRegistry;

struct ServiceConfig {
  /// Worker threads (per shard for the sharded tier); 0 = hardware_concurrency.
  unsigned threads{0};
  /// Master switch for the solve cache; `cache_capacity` entries when on.
  bool cache{true};
  std::size_t cache_capacity{1024};
  /// Approximate cache byte budget; 0 = unlimited (see SolveCacheConfig).
  std::size_t cache_max_bytes{0};
  /// Cache entry time-to-live in seconds; 0 = never expires.
  double cache_ttl_seconds{0.0};
  /// Coalesce concurrent identical cache-consulting misses onto one solve.
  bool dedup{true};
  /// Reclaim outcome payloads once delivered AND observed (see the service
  /// Retention contract).
  bool gc_slots{false};
  /// Reuse per-worker DualWorkspaces across same-instance cache misses.
  bool reuse_workspaces{true};
  /// Registry to dispatch through; nullptr = the global one. Must outlive
  /// the service and not be mutated while it runs.
  const SolverRegistry* registry{nullptr};

  /// Sanity ceiling for `threads`: far above any real machine, low enough to
  /// catch a negative count that wrapped through `unsigned`.
  static constexpr unsigned kMaxThreads = 1024;

  /// Every violation as one readable sentence; empty means valid.
  /// Checked: `threads` <= kMaxThreads, `cache_ttl_seconds` finite and
  /// non-negative, and `cache` on implies `cache_capacity` > 0 (a zero
  /// entry budget silently disables the cache -- say `cache = false`
  /// instead).
  [[nodiscard]] std::vector<std::string> validate() const;

  /// Throws std::invalid_argument joining every validate() violation into
  /// one message; no-op on a valid config. Services call this at
  /// construction.
  void ensure_valid() const;
};

}  // namespace malsched
