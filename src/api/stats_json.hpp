#pragma once

/// JSON serialization of ServiceStats, shared by bench_suite and
/// bench_load so the run-level `service_stats` object is identical in both
/// outputs (and validated by bench/bench_schema.json). Every ServiceStats
/// field must be emitted here: the repo linter's stats-exhaustive rule
/// cross-references the struct against this body, accumulate_stats(), and
/// the schema -- adding a counter without serializing it fails CI.

#include "api/scheduler_service.hpp"
#include "support/json.hpp"

namespace malsched {

/// Writes `{ "submitted": ..., ... }` as one JSON object value. The caller
/// has already written the key (`json.key("service_stats")`).
void write_service_stats(JsonWriter& json, const ServiceStats& stats);

}  // namespace malsched
