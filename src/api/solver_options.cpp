#include "api/solver_options.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace malsched {

namespace {

std::string lowercase(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return text;
}

}  // namespace

SolverOptions SolverOptions::from_tokens(const std::vector<std::string>& tokens) {
  SolverOptions options;
  for (const auto& token : tokens) {
    if (token.empty()) continue;
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      options.set(token, "1");
      continue;
    }
    if (eq == 0) throw std::invalid_argument("SolverOptions: empty key in '" + token + "'");
    options.set(token.substr(0, eq), token.substr(eq + 1));
  }
  return options;
}

SolverOptions SolverOptions::from_string(const std::string& spec) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : spec) {
    if (c == ',' || c == ' ' || c == '\t') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return from_tokens(tokens);
}

SolverOptions& SolverOptions::set(std::string key, std::string value) {
  if (key.empty()) throw std::invalid_argument("SolverOptions: empty key");
  entries_[std::move(key)] = std::move(value);
  return *this;
}

bool SolverOptions::has(const std::string& key) const { return entries_.count(key) > 0; }

std::string SolverOptions::get_string(const std::string& key, const std::string& fallback) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? fallback : it->second;
}

double SolverOptions::get_double(const std::string& key, double fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument("trailing characters");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("SolverOptions: option '" + key + "' expects a number, got '" +
                                it->second + "'");
  }
}

int SolverOptions::get_int(const std::string& key, int fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const int value = std::stoi(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument("trailing characters");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("SolverOptions: option '" + key + "' expects an integer, got '" +
                                it->second + "'");
  }
}

bool SolverOptions::get_bool(const std::string& key, bool fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  const std::string value = lowercase(it->second);
  if (value == "1" || value == "true" || value == "yes" || value == "on") return true;
  if (value == "0" || value == "false" || value == "no" || value == "off") return false;
  throw std::invalid_argument("SolverOptions: option '" + key + "' expects a boolean, got '" +
                              it->second + "'");
}

std::string SolverOptions::str() const {
  std::string out;
  for (const auto& [key, value] : entries_) {
    if (!out.empty()) out.push_back(',');
    out += key;
    out.push_back('=');
    out += value;
  }
  return out;
}

}  // namespace malsched
