#include "api/request.hpp"

namespace malsched {

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOk: return "ok";
    case SolveStatus::kError: return "error";
    case SolveStatus::kCancelled: return "cancelled";
  }
  return "unknown";
}

}  // namespace malsched
