#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "support/mutex.hpp"

/// A persistent fixed-size thread pool with a FIFO task queue -- the
/// long-lived counterpart of BatchRunner's one-shot fork-join.
///
/// BatchRunner spins workers up per run and tears them down at the end,
/// which is right for a closed batch but wrong for a service that accepts
/// work continuously: thread churn per submission, and nowhere for
/// per-thread scratch (the mrt DualWorkspace) to survive between jobs.
/// WorkerPool keeps its threads for its whole lifetime; tasks posted from
/// any thread run in post order (single FIFO queue, workers pull one task at
/// a time -- no per-worker deques, so dispatch order is deterministic even
/// though completion order is not).
///
/// Tasks must not throw (wrap solver dispatch in its own try/catch, the way
/// SchedulerService does); a task that throws anyway terminates via
/// noexcept, loudly, instead of poisoning an unrelated later task.
namespace malsched {

class WorkerPool {
 public:
  /// Starts `threads` workers (0 = hardware_concurrency, at least 1).
  explicit WorkerPool(unsigned threads = 0);

  /// Joins the workers (shutdown() if not already called).
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues one task; throws std::runtime_error after shutdown().
  void post(std::function<void()> task) MALSCHED_EXCLUDES(mutex_);

  /// Blocks until the queue is empty and no task is running. Tasks posted
  /// while waiting extend the wait (this is "idle", not a point-in-time
  /// barrier).
  void wait_idle() MALSCHED_EXCLUDES(mutex_);

  /// Stops the pool: currently-running tasks finish, queued-but-unstarted
  /// tasks are DISCARDED (callers that need every task observed must drain
  /// with wait_idle() first, or track their work externally the way
  /// SchedulerService tracks job slots), workers are joined. Idempotent and
  /// safe for concurrent callers (one of them performs the join; the others
  /// may return first). post() afterwards throws.
  void shutdown() MALSCHED_EXCLUDES(mutex_);

  /// Worker threads the pool was started with (fixed at construction).
  [[nodiscard]] unsigned threads() const noexcept { return thread_count_; }

  /// Queued-but-unstarted tasks (diagnostic; racy by nature).
  [[nodiscard]] std::size_t queued() const MALSCHED_EXCLUDES(mutex_);

  /// Index of the calling thread within its pool ([0, threads())), or -1
  /// when the caller is not a pool worker. Provenance for SolveOutcome:
  /// tasks read it to stamp which worker produced a result.
  [[nodiscard]] static int current_worker() noexcept;

 private:
  void worker_loop(unsigned index) noexcept MALSCHED_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  CondVar work_cv_;  ///< workers: "queue non-empty or stopping"
  CondVar idle_cv_;  ///< wait_idle: "queue empty and nothing running"
  std::deque<std::function<void()>> queue_ MALSCHED_GUARDED_BY(mutex_);
  std::size_t running_ MALSCHED_GUARDED_BY(mutex_){0};
  bool stopping_ MALSCHED_GUARDED_BY(mutex_){false};
  /// Fixed at construction, read without the lock; workers_ (the joinable
  /// handles) is claimed under the lock by exactly one shutdown() caller.
  unsigned thread_count_{0};
  std::vector<std::thread> workers_ MALSCHED_GUARDED_BY(mutex_);
};

}  // namespace malsched
