#pragma once

#include <string>

#include "exec/batch_runner.hpp"
#include "support/json.hpp"

/// JSON serialization of batch outcomes -- the bridge between the execution
/// engine and machine-readable artifacts (BENCH_<rev>.json, CI uploads,
/// determinism diffs).
///
/// Field order is fixed and every number renders deterministically (see
/// support/json.hpp), so two reports serialize to identical bytes exactly
/// when the underlying results are identical. Timing fields are the one
/// legitimately nondeterministic part of a report; `include_timing=false`
/// omits them, which is how the tests assert that an 8-thread run equals the
/// 1-thread run byte for byte.
namespace malsched {

struct BatchJsonOptions {
  /// Emit the run-condition fields that legitimately differ between runs of
  /// the same jobs: wall_seconds (run- and item-level) and the run-level
  /// thread count. Off for determinism comparisons.
  bool include_timing{true};
  /// Emit the full per-task placements of each schedule. Heavier, but turns
  /// the byte-compare into a check of the complete schedule, not just its
  /// makespan.
  bool include_schedules{false};
};

/// Writes one SolverResult as a JSON object into `writer` (which must be
/// positioned where a value is accepted).
void append_result_json(JsonWriter& writer, const SolverResult& result,
                        const BatchJsonOptions& options = {});

/// Writes one BatchItem (status, error or result) as a JSON object.
void append_item_json(JsonWriter& writer, const BatchItem& item,
                      const BatchJsonOptions& options = {});

/// The whole report as one JSON document: run tallies, aggregate solver
/// stats, and the per-item array in job order.
[[nodiscard]] std::string batch_report_json(const BatchReport& report,
                                            const BatchJsonOptions& options = {});

}  // namespace malsched
