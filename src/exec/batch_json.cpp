#include "exec/batch_json.hpp"

namespace malsched {

namespace {

void append_schedule_json(JsonWriter& writer, const Schedule& schedule) {
  writer.begin_array();
  for (const auto& assignment : schedule.assignments()) {
    writer.begin_object();
    writer.kv("task", assignment.task);
    writer.kv("start", assignment.start);
    writer.kv("duration", assignment.duration);
    if (assignment.contiguous()) {
      writer.kv("first_proc", assignment.first_proc);
      writer.kv("num_procs", assignment.num_procs);
    } else {
      writer.key("procs");
      writer.begin_array();
      for (const int p : assignment.scattered) writer.value(p);
      writer.end_array();
    }
    writer.end_object();
  }
  writer.end_array();
}

void append_stats_json(JsonWriter& writer,
                       const std::vector<std::pair<std::string, double>>& stats) {
  writer.begin_object();
  for (const auto& [key, value] : stats) writer.kv(key, value);
  writer.end_object();
}

}  // namespace

void append_result_json(JsonWriter& writer, const SolverResult& result,
                        const BatchJsonOptions& options) {
  writer.begin_object();
  writer.kv("solver", result.solver);
  writer.kv("makespan", result.makespan);
  writer.kv("lower_bound", result.lower_bound);
  writer.kv("ratio", result.ratio);
  if (options.include_timing) writer.kv("wall_seconds", result.wall_seconds);
  writer.key("stats");
  append_stats_json(writer, result.stats);
  if (options.include_schedules) {
    writer.key("schedule");
    append_schedule_json(writer, result.schedule);
  }
  writer.end_object();
}

void append_item_json(JsonWriter& writer, const BatchItem& item,
                      const BatchJsonOptions& options) {
  writer.begin_object();
  writer.kv("index", item.index);
  writer.kv("status", to_string(item.status));
  // v2.1 typed errors: the machine-readable code for every non-ok item, the
  // human-readable detail (the pre-v2.1 "error" string) only where there is
  // message text to carry.
  if (item.status != BatchItemStatus::kOk) writer.kv("error_code", to_string(item.error.code));
  if (item.status == BatchItemStatus::kError) writer.kv("error", item.error.detail);
  if (item.result) {
    writer.key("result");
    append_result_json(writer, *item.result, options);
  }
  writer.end_object();
}

std::string batch_report_json(const BatchReport& report, const BatchJsonOptions& options) {
  JsonWriter writer;
  writer.begin_object();
  writer.kv("ok", report.ok);
  writer.kv("errors", report.errors);
  writer.kv("cancelled", report.cancelled);
  if (options.include_timing) {
    writer.kv("threads", report.threads);
    writer.kv("wall_seconds", report.wall_seconds);
  }
  writer.key("aggregate_stats");
  append_stats_json(writer, report.aggregate_stats());
  writer.key("items");
  writer.begin_array();
  for (const auto& item : report.items) append_item_json(writer, item, options);
  writer.end_array();
  writer.end_object();
  return writer.str();
}

}  // namespace malsched
