#include "exec/batch_runner.hpp"

#include <exception>
#include <map>
#include <stdexcept>
#include <utility>

#include "support/parallel_for.hpp"
#include "support/stopwatch.hpp"

namespace malsched {

BatchJob::BatchJob(std::string solver_name, SolverOptions solver_options,
                   std::shared_ptr<const Instance> task_instance)
    : solver(std::move(solver_name)),
      options(std::move(solver_options)),
      instance(std::move(task_instance)) {
  if (!instance) throw std::invalid_argument("BatchJob: null instance");
}

SolveRequest BatchJob::to_request() const {
  return SolveRequest{solver, options, InstanceHandle::intern(instance)};
}

std::vector<SolveRequest> intern_jobs(const std::vector<BatchJob>& jobs) {
  // Batches routinely sweep one shared instance under many solver configs;
  // memoizing the handle by pointer keeps the shim at one fingerprint per
  // distinct instance instead of one per job.
  std::map<const Instance*, InstanceHandle> interned;
  std::vector<SolveRequest> requests;
  requests.reserve(jobs.size());
  for (const auto& job : jobs) {
    auto [it, fresh] = interned.try_emplace(job.instance.get());
    if (fresh) it->second = InstanceHandle::intern(job.instance);
    requests.emplace_back(job.solver, job.options, it->second);
  }
  return requests;
}

std::vector<std::pair<std::string, double>> BatchReport::aggregate_stats() const {
  std::map<std::string, double> totals;
  for (const auto& item : items) {
    if (!item.result) continue;
    for (const auto& [key, value] : item.result->stats) totals[key] += value;
  }
  return {totals.begin(), totals.end()};
}

BatchRunner::BatchRunner(const SolverRegistry& registry, BatchRunnerOptions options)
    : registry_(&registry), options_(options) {}

BatchReport BatchRunner::run(const std::vector<BatchJob>& jobs) const {
  return run(intern_jobs(jobs), CancelToken{});
}

BatchReport BatchRunner::run(const std::vector<BatchJob>& jobs, CancelToken cancel) const {
  return run(intern_jobs(jobs), std::move(cancel));
}

BatchReport BatchRunner::run(const std::vector<SolveRequest>& requests) const {
  return run(requests, CancelToken{});
}

BatchReport BatchRunner::run(const std::vector<SolveRequest>& requests,
                             CancelToken cancel) const {
  const Stopwatch stopwatch;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!requests[i].instance.valid()) {
      throw std::invalid_argument("BatchRunner: request " + std::to_string(i) +
                                  " carries an empty InstanceHandle");
    }
  }
  BatchReport report;
  report.items.resize(requests.size());
  if (requests.empty()) {
    report.wall_seconds = stopwatch.seconds();
    return report;
  }

  // Shared with parallel_for so report.threads records the worker count the
  // pool below actually uses.
  const unsigned workers = resolve_worker_count(requests.size(), options_.threads);

  // stop_on_error fires a run-local token, never the caller's: a failing job
  // must not look like an external cancellation to whatever else shares it.
  CancelToken aborted;

  // Each worker writes exclusively into its job's preallocated slot, so the
  // output never depends on completion order -- only the wall time does.
  // This index-partitioned ownership is why the runner needs no mutex at
  // all: the only cross-thread state is the two CancelTokens (atomics) and
  // parallel_for's dispatch counter.
  const auto run_one = [&](std::size_t i) {
    BatchItem& item = report.items[i];
    item.index = i;
    if (cancel.cancelled() || aborted.cancelled()) {
      item.status = BatchItemStatus::kCancelled;
      item.error.code = SolveErrorCode::kCancelled;
      return;
    }
    try {
      item.result = registry_->solve(requests[i]);
      item.status = BatchItemStatus::kOk;
    } catch (const std::exception& err) {
      item.status = BatchItemStatus::kError;
      item.error = classify_solve_exception(err);
      if (options_.stop_on_error) aborted.cancel();
    } catch (...) {
      item.status = BatchItemStatus::kError;
      item.error = {SolveErrorCode::kSolverFailure, "non-standard exception"};
      if (options_.stop_on_error) aborted.cancel();
    }
  };

  // One threading implementation in the repo: the shared-counter pool of
  // support/parallel_for (workers draw contiguous index blocks from a single
  // atomic, no per-worker deques). run_one catches everything itself, so
  // parallel_for's first-exception rethrow path never fires.
  parallel_for(requests.size(), run_one, workers);

  for (const auto& item : report.items) {
    switch (item.status) {
      case BatchItemStatus::kOk: ++report.ok; break;
      case BatchItemStatus::kError: ++report.errors; break;
      case BatchItemStatus::kCancelled: ++report.cancelled; break;
    }
  }
  report.threads = workers;
  report.wall_seconds = stopwatch.seconds();
  return report;
}

}  // namespace malsched
