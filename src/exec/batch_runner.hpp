#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "registry/request.hpp"
#include "registry/solver_options.hpp"
#include "registry/solver_registry.hpp"
#include "registry/solver_result.hpp"
#include "model/instance.hpp"
#include "model/instance_handle.hpp"
#include "support/cancellation.hpp"

/// Deterministic parallel batch execution -- the serving-scale layer over the
/// SolverRegistry facade.
///
/// A production queue daemon faces many independent instances at once (queue
/// snapshots, per-tenant workloads, sweep experiments); solving them serially
/// wastes every core but one. BatchRunner fans a vector of jobs out across a
/// fixed pool of workers with these guarantees:
///
///  * **Stable ordering** -- `report.items[i]` always corresponds to
///    `jobs[i]`, no matter which worker finished first. Combined with the
///    solvers being deterministic functions of (instance, options), a batch
///    run produces byte-identical results on 1, 2, or 64 threads.
///  * **No work stealing** -- workers draw contiguous index blocks from one
///    shared atomic counter (support/parallel_for); there are no per-worker
///    deques whose steal order could differ between runs. Dispatch order is
///    the job order.
///  * **Error isolation** -- one throwing solve marks only its own item as
///    failed (message preserved); every other job still runs, unless
///    `stop_on_error` asked for the remainder to be cancelled.
///  * **Cancellation** -- a CancelToken shared with the caller (or another
///    thread) skips every job that has not started yet; running solves finish.
///
/// Thread-safety contract with the registry (audited in
/// registry/solver_registry.hpp): concurrent `solve()` calls on a registry that is
/// no longer being mutated are safe, which is exactly how BatchRunner uses
/// it. The registry must outlive the runner.
namespace malsched {

/// Pre-v2 unit of batch work, kept as a thin interning shim over
/// SolveRequest (registry/request.hpp): same (solver, options, instance) triple,
/// but by raw shared_ptr instead of interned InstanceHandle, so every
/// BatchJob-taking entry point must intern (re-fingerprint) on your behalf.
/// Prefer building SolveRequests from handles you interned once -- that is
/// the zero-re-hash path the cache and dedup layers key on. Retained for
/// callers that predate API v2; new code should not add BatchJob overloads.
///
/// The instance is held by shared_ptr so many jobs can sweep one instance
/// (different solvers/options) without duplicating it; the Instance overload
/// wraps a freshly built instance for the common one-job-one-instance case.
struct BatchJob {
  BatchJob(std::string solver_name, SolverOptions solver_options, Instance task_instance)
      : solver(std::move(solver_name)),
        options(std::move(solver_options)),
        instance(std::make_shared<const Instance>(std::move(task_instance))) {}

  /// Shares an existing instance; throws std::invalid_argument on null.
  BatchJob(std::string solver_name, SolverOptions solver_options,
           std::shared_ptr<const Instance> task_instance);

  /// The v2 shape of this job; interns (fingerprints) the instance NOW.
  [[nodiscard]] SolveRequest to_request() const;

  std::string solver;     ///< registry name to dispatch to
  SolverOptions options;  ///< per-job option bag
  std::shared_ptr<const Instance> instance;  ///< never null
};

/// Pre-v2 alias; batch items and service outcomes share SolveStatus.
using BatchItemStatus = SolveStatus;

/// Outcome of one job, at the same index as the job that produced it.
struct BatchItem {
  std::size_t index{0};
  BatchItemStatus status{BatchItemStatus::kCancelled};
  std::optional<SolverResult> result;  ///< engaged iff status == kOk
  /// Typed error (registry/request.hpp), shared with SolveOutcome; code != kNone
  /// iff status != kOk. `error.detail` holds the message text the pre-v2.1
  /// string field carried.
  SolveError error;
};

// CancelToken lived here until the deadline work promoted it to
// support/cancellation.hpp (included above), where CancelCheck and the typed
// cancellation errors join it; run()'s contract is unchanged.

struct BatchRunnerOptions {
  /// Worker threads; 0 means hardware_concurrency. More workers than jobs
  /// (or than cores -- oversubscription) is allowed and changes nothing but
  /// the wall time.
  unsigned threads{0};
  /// When true, the first failing job cancels every job not yet started
  /// (their items report kCancelled). Uses a run-local flag: a token passed
  /// to run() is read, never fired, so error-stopping one batch cannot leak
  /// a cancellation into other work sharing that token.
  bool stop_on_error{false};
};

/// What a batch run returns: per-job items in job order plus run-level
/// wall time and tallies.
struct BatchReport {
  std::vector<BatchItem> items;  ///< items[i] is the outcome of jobs[i]
  double wall_seconds{0.0};      ///< whole-run wall time (steady clock)
  unsigned threads{0};           ///< workers actually used
  std::size_t ok{0};
  std::size_t errors{0};
  std::size_t cancelled{0};

  [[nodiscard]] bool all_ok() const noexcept { return errors == 0 && cancelled == 0; }

  /// Sums every solver counter (iterations, branch.*, ...) over the
  /// successful items, in key order -- the run-level branch statistics.
  [[nodiscard]] std::vector<std::pair<std::string, double>> aggregate_stats() const;
};

class BatchRunner {
 public:
  /// Binds the runner to a registry (default: the global one). The registry
  /// must outlive the runner and must not be mutated while run() executes.
  explicit BatchRunner(const SolverRegistry& registry = SolverRegistry::global(),
                       BatchRunnerOptions options = {});

  /// A temporary registry would dangle before run(); keep it in a variable.
  explicit BatchRunner(SolverRegistry&& registry, BatchRunnerOptions options = {}) = delete;

  /// API v2 entry point: fans the requests out; report.items[i] is the
  /// outcome of requests[i]. Throws std::invalid_argument if any request
  /// carries an empty InstanceHandle (checked up front, before dispatch).
  [[nodiscard]] BatchReport run(const std::vector<SolveRequest>& requests) const;

  /// As above with caller-owned cancellation: requests not yet started when
  /// the token fires are reported as kCancelled.
  [[nodiscard]] BatchReport run(const std::vector<SolveRequest>& requests,
                                CancelToken cancel) const;

  /// Pre-v2 shims: intern each job's instance (one fingerprint per DISTINCT
  /// shared instance -- duplicates within the batch are memoized by
  /// pointer), then run the request path.
  [[nodiscard]] BatchReport run(const std::vector<BatchJob>& jobs) const;
  [[nodiscard]] BatchReport run(const std::vector<BatchJob>& jobs, CancelToken cancel) const;

 private:
  const SolverRegistry* registry_;
  BatchRunnerOptions options_;
};

/// The BatchJob -> SolveRequest interning shim shared by the pre-v2
/// overloads (runner, solve_batch): one fingerprint per distinct shared
/// instance, duplicates memoized by pointer.
[[nodiscard]] std::vector<SolveRequest> intern_jobs(const std::vector<BatchJob>& jobs);

}  // namespace malsched
