#include "exec/worker_pool.hpp"

#include <stdexcept>
#include <utility>

namespace malsched {

namespace {
/// Index of this thread within its owning pool; -1 off-pool. Written once,
/// at worker start, before any task runs.
thread_local int tls_worker_index = -1;
}  // namespace

WorkerPool::WorkerPool(unsigned threads) {
  unsigned count = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (count == 0) count = 1;
  thread_count_ = count;
  // Guarded fields written without the lock: no other thread can reach this
  // pool until the constructor returns, and the spawned workers synchronize
  // on mutex_ before their first queue_ read. (The analysis does not check
  // constructors, matching that reasoning.)
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkerPool::~WorkerPool() { shutdown(); }

void WorkerPool::post(std::function<void()> task) {
  if (!task) throw std::invalid_argument("WorkerPool: null task");
  {
    const LockGuard lock(mutex_);
    if (stopping_) throw std::runtime_error("WorkerPool: post() after shutdown()");
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void WorkerPool::wait_idle() {
  const LockGuard lock(mutex_);
  // unblocked by: workers notifying idle_cv_ when the last task finishes,
  // and shutdown() notifying after the join (queue cleared, running_ == 0).
  while (!queue_.empty() || running_ != 0) idle_cv_.wait(mutex_);
}

void WorkerPool::shutdown() {
  // Safe for concurrent callers: the worker handles are claimed under the
  // lock, so exactly one caller joins them; the others see an empty vector
  // and return (possibly before the join completes -- the joining caller
  // owns the stronger postcondition).
  std::vector<std::thread> to_join;
  {
    const LockGuard lock(mutex_);
    stopping_ = true;
    queue_.clear();  // unstarted tasks are discarded, by contract
    to_join.swap(workers_);
  }
  work_cv_.notify_all();
  for (auto& worker : to_join) {
    if (worker.joinable()) worker.join();
  }
  idle_cv_.notify_all();
}

std::size_t WorkerPool::queued() const {
  const LockGuard lock(mutex_);
  return queue_.size();
}

int WorkerPool::current_worker() noexcept { return tls_worker_index; }

void WorkerPool::worker_loop(unsigned index) noexcept {
  tls_worker_index = static_cast<int>(index);
  for (;;) {
    std::function<void()> task;
    {
      const LockGuard lock(mutex_);
      // unblocked by: post() notifying work_cv_ per task, shutdown()
      // notifying all with stopping_ set (the loop then drains and exits).
      while (!stopping_ && queue_.empty()) work_cv_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();  // noexcept boundary: a throwing task terminates, loudly
    const LockGuard lock(mutex_);
    --running_;
    if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace malsched
