#include "sched/compaction.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

namespace malsched {

Schedule compact_schedule(const Schedule& schedule, const Instance& instance) {
  std::vector<int> order(static_cast<std::size_t>(schedule.num_tasks()));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return schedule.of(a).start < schedule.of(b).start;
  });

  Schedule compacted(schedule.machines(), schedule.num_tasks());
  std::vector<double> avail(static_cast<std::size_t>(schedule.machines()), 0.0);
  for (const int task : order) {
    const auto& assignment = schedule.of(task);
    const auto processors = assignment.processor_list();
    double start = 0.0;
    for (const int p : processors) start = std::max(start, avail[static_cast<std::size_t>(p)]);
    for (const int p : processors) avail[static_cast<std::size_t>(p)] = start + assignment.duration;
    if (assignment.contiguous()) {
      compacted.assign(task, start, assignment.duration, assignment.first_proc,
                       assignment.num_procs);
    } else {
      compacted.assign_scattered(task, start, assignment.duration, processors);
    }
  }
  // The instance parameter pins the schedule/instance pairing at the call
  // site (and allows future duration re-derivation); only geometry is used.
  (void)instance;
  return compacted;
}

}  // namespace malsched
