#include "sched/compaction.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

namespace malsched {

Schedule compact_schedule(const Schedule& schedule, const Instance& instance) {
  std::vector<int> order(static_cast<std::size_t>(schedule.num_tasks()));
  std::iota(order.begin(), order.end(), 0);
  // Equal starts keep the lower task index first -- the same permutation the
  // previous stable_sort produced, without its temporary buffer (this runs
  // on every accepted dual-search step).
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double sa = schedule.of(a).start;
    const double sb = schedule.of(b).start;
    if (sa != sb) return sa < sb;
    return a < b;
  });

  Schedule compacted(schedule.machines(), schedule.num_tasks());
  std::vector<double> avail(static_cast<std::size_t>(schedule.machines()), 0.0);
  for (const int task : order) {
    const auto& assignment = schedule.of(task);
    double start = 0.0;
    assignment.for_each_processor(
        [&](int p) { start = std::max(start, avail[static_cast<std::size_t>(p)]); });
    assignment.for_each_processor(
        [&](int p) { avail[static_cast<std::size_t>(p)] = start + assignment.duration; });
    if (assignment.contiguous()) {
      compacted.assign(task, start, assignment.duration, assignment.first_proc,
                       assignment.num_procs);
    } else {
      compacted.assign_scattered(task, start, assignment.duration, assignment.scattered);
    }
  }
  // The instance parameter pins the schedule/instance pairing at the call
  // site (and allows future duration re-derivation); only geometry is used.
  (void)instance;
  return compacted;
}

}  // namespace malsched
