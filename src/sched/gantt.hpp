#pragma once

#include <ostream>
#include <string>

#include "model/instance.hpp"
#include "sched/schedule.hpp"

/// ASCII Gantt rendering.
///
/// Regenerates the paper's schematic figures (1-5) from real schedules:
/// processors are rows, time runs left to right, each task paints its cells
/// with a letter. Used by examples/algorithm_anatomy and handy for debugging.
namespace malsched {

struct GanttOptions {
  int width{72};          ///< number of time columns
  int max_rows{48};       ///< processors beyond this are elided
  bool show_legend{true}; ///< print task letter -> name/duration legend
};

/// Renders `schedule` to `out`. Idle cells print '.', task cells a letter
/// cycling A..Z then a..z.
void render_gantt(std::ostream& out, const Schedule& schedule, const Instance& instance,
                  const GanttOptions& options = {});

/// Convenience string form.
[[nodiscard]] std::string gantt_to_string(const Schedule& schedule, const Instance& instance,
                                          const GanttOptions& options = {});

}  // namespace malsched
