#include "sched/gantt.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <vector>

namespace malsched {

namespace {

char letter_for(int task) {
  constexpr int kCycle = 52;
  const int slot = task % kCycle;
  return slot < 26 ? static_cast<char>('A' + slot) : static_cast<char>('a' + slot - 26);
}

}  // namespace

void render_gantt(std::ostream& out, const Schedule& schedule, const Instance& instance,
                  const GanttOptions& options) {
  const double makespan = schedule.makespan();
  if (makespan <= 0.0) {
    out << "(empty schedule)\n";
    return;
  }
  const int width = std::max(8, options.width);
  const int rows = std::min(schedule.machines(), std::max(1, options.max_rows));
  std::vector<std::string> grid(static_cast<std::size_t>(rows),
                                std::string(static_cast<std::size_t>(width), '.'));

  for (int i = 0; i < schedule.num_tasks(); ++i) {
    if (!schedule.is_assigned(i)) continue;
    const auto& assignment = schedule.of(i);
    // Half-open cell range [c0, c1) covering [start, end).
    int c0 = static_cast<int>(assignment.start / makespan * width);
    int c1 = static_cast<int>(assignment.end() / makespan * width);
    c0 = std::clamp(c0, 0, width - 1);
    c1 = std::clamp(std::max(c1, c0 + 1), c0 + 1, width);
    for (const int p : assignment.processor_list()) {
      if (p >= rows) continue;
      for (int c = c0; c < c1; ++c) {
        grid[static_cast<std::size_t>(p)][static_cast<std::size_t>(c)] = letter_for(i);
      }
    }
  }

  out << "time 0 " << std::string(static_cast<std::size_t>(std::max(0, width - 18)), '-') << " "
      << std::fixed << std::setprecision(3) << makespan << "\n";
  for (int p = 0; p < rows; ++p) {
    out << "P" << std::setw(3) << std::left << p << " |" << grid[static_cast<std::size_t>(p)]
        << "|\n";
  }
  if (rows < schedule.machines()) {
    out << "     (" << schedule.machines() - rows << " more processors elided)\n";
  }
  if (options.show_legend) {
    out << "legend:";
    const int shown = std::min(schedule.num_tasks(), 26);
    for (int i = 0; i < shown; ++i) {
      if (!schedule.is_assigned(i)) continue;
      const auto& assignment = schedule.of(i);
      out << " " << letter_for(i) << "=t" << i << "(p" << assignment.procs() << ")";
    }
    if (schedule.num_tasks() > shown) out << " ...";
    out << "\n";
  }
  (void)instance;
}

std::string gantt_to_string(const Schedule& schedule, const Instance& instance,
                            const GanttOptions& options) {
  std::ostringstream out;
  render_gantt(out, schedule, instance, options);
  return out.str();
}

}  // namespace malsched
