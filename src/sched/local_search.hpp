#pragma once

#include "model/instance.hpp"
#include "sched/schedule.hpp"

/// Makespan local search -- an optional post-pass on any feasible schedule.
///
/// The paper's guarantee machinery never needs this, but a practical
/// scheduler wants it: repeatedly take the task that finishes last, try
/// alternative allotments and an earlier list position for it, and keep any
/// strict improvement. The result never degrades the input schedule and is
/// re-validated by construction (the rebuild goes through the same list
/// scheduler as every other schedule in the library).
namespace malsched {

struct LocalSearchOptions {
  /// Maximum accepted improvements before stopping.
  int max_rounds{64};
};

struct LocalSearchResult {
  Schedule schedule;
  double makespan;
  int rounds;     ///< improvements accepted
  bool improved;  ///< true when the makespan strictly decreased
};

/// Improves `seed`; the returned schedule's makespan is <= seed's.
[[nodiscard]] LocalSearchResult improve_schedule(const Instance& instance, const Schedule& seed,
                                                 const LocalSearchOptions& options = {});

}  // namespace malsched
