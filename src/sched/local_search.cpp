#include "sched/local_search.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "sched/list_scheduler.hpp"
#include "support/math_utils.hpp"

namespace malsched {

namespace {

/// Candidate alternative widths for the critical task: halve, nudge, double.
std::vector<int> candidate_widths(int current, int machines) {
  std::set<int> widths{1, std::max(1, current / 2), std::max(1, current - 1),
                       std::min(machines, current + 1), std::min(machines, current * 2),
                       machines};
  widths.erase(current);
  return {widths.begin(), widths.end()};
}

}  // namespace

LocalSearchResult improve_schedule(const Instance& instance, const Schedule& seed,
                                   const LocalSearchOptions& options) {
  // Work on (allotment, order) coordinates: rebuilding through the list
  // scheduler keeps every intermediate schedule feasible.
  std::vector<int> allotment(static_cast<std::size_t>(instance.size()));
  std::vector<int> order(static_cast<std::size_t>(instance.size()));
  std::iota(order.begin(), order.end(), 0);
  for (int i = 0; i < instance.size(); ++i) {
    allotment[static_cast<std::size_t>(i)] = seed.of(i).procs();
  }
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return seed.of(a).start < seed.of(b).start;
  });

  Schedule best = list_schedule(instance, allotment, order);
  // The rebuild may already differ from the seed; never return something
  // worse than what we were given.
  if (best.makespan() > seed.makespan()) best = seed;
  double best_makespan = best.makespan();
  const double seed_makespan = seed.makespan();

  int rounds = 0;
  bool progress = true;
  while (progress && rounds < options.max_rounds) {
    progress = false;
    // The task that finishes last is the one worth moving.
    int critical = 0;
    for (int i = 1; i < instance.size(); ++i) {
      if (best.of(i).end() > best.of(critical).end()) critical = i;
    }

    // Try alternative widths for the critical task.
    for (const int width : candidate_widths(
             allotment[static_cast<std::size_t>(critical)], instance.machines())) {
      auto trial_allotment = allotment;
      trial_allotment[static_cast<std::size_t>(critical)] = width;
      const auto trial = list_schedule(instance, trial_allotment, order);
      if (trial.makespan() < best_makespan - kAbsEps) {
        allotment = std::move(trial_allotment);
        best = trial;
        best_makespan = trial.makespan();
        progress = true;
        break;
      }
    }
    if (progress) {
      ++rounds;
      continue;
    }

    // Try promoting the critical task to the front of the list.
    auto trial_order = order;
    const auto it = std::find(trial_order.begin(), trial_order.end(), critical);
    std::rotate(trial_order.begin(), it, it + 1);
    const auto trial = list_schedule(instance, allotment, trial_order);
    if (trial.makespan() < best_makespan - kAbsEps) {
      order = std::move(trial_order);
      best = trial;
      best_makespan = trial.makespan();
      progress = true;
      ++rounds;
    }
  }

  return LocalSearchResult{std::move(best), best_makespan, rounds,
                           best_makespan < seed_makespan - kAbsEps};
}

}  // namespace malsched
