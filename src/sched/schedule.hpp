#pragma once

#include <vector>

/// Schedule representation shared by every algorithm in the library.
///
/// The paper searches for non-preemptive schedules whose processor
/// assignments are *contiguous* (processors allotted to a task have
/// consecutive indices, limiting intra-task communication overhead).
/// Assignments are therefore stored as intervals; a scattered-processor
/// variant is supported for the non-contiguous baselines and flagged by the
/// validator.
namespace malsched {

/// Placement of one task.
struct Assignment {
  int task{-1};          ///< index into the instance's task list
  double start{0.0};     ///< start time (>= 0)
  double duration{0.0};  ///< must equal t_task(procs()) for the instance
  int first_proc{0};     ///< first processor of the contiguous interval
  int num_procs{0};      ///< interval length

  /// Non-empty for scattered (non-contiguous) placements; overrides
  /// first_proc/num_procs.
  std::vector<int> scattered;

  [[nodiscard]] bool contiguous() const noexcept { return scattered.empty(); }
  [[nodiscard]] int procs() const noexcept {
    return contiguous() ? num_procs : static_cast<int>(scattered.size());
  }
  [[nodiscard]] double end() const noexcept { return start + duration; }

  /// Materializes the processor indices (contiguous or scattered).
  [[nodiscard]] std::vector<int> processor_list() const;

  /// Visits every processor index without materializing a list -- the
  /// allocation-free traversal hot paths (validator, compaction) use. Keeps
  /// the contiguous-vs-scattered representation knowledge in one place.
  template <class Visitor>
  void for_each_processor(Visitor&& visit) const {
    if (contiguous()) {
      for (int p = first_proc; p < first_proc + num_procs; ++p) visit(p);
    } else {
      for (const int p : scattered) visit(p);
    }
  }
};

/// A (possibly partial) schedule on `machines` processors for `num_tasks`
/// tasks.
class Schedule {
 public:
  Schedule(int machines, int num_tasks);

  /// Records a contiguous placement; throws std::logic_error if the task was
  /// already assigned or indices are out of range.
  void assign(int task, double start, double duration, int first_proc, int num_procs);

  /// Records a scattered placement (non-contiguous baselines).
  void assign_scattered(int task, double start, double duration, std::vector<int> processors);

  [[nodiscard]] bool is_assigned(int task) const;
  [[nodiscard]] const Assignment& of(int task) const;

  /// True when every task has a placement.
  [[nodiscard]] bool complete() const noexcept { return assigned_count_ == num_tasks_; }

  /// Latest completion time over assigned tasks (0 when empty).
  [[nodiscard]] double makespan() const noexcept;

  [[nodiscard]] int machines() const noexcept { return machines_; }
  [[nodiscard]] int num_tasks() const noexcept { return num_tasks_; }

  /// All placements, indexed by task; unassigned entries have task == -1.
  [[nodiscard]] const std::vector<Assignment>& assignments() const noexcept {
    return assignments_;
  }

 private:
  void check_common(int task, double start, double duration) const;

  int machines_;
  int num_tasks_;
  int assigned_count_{0};
  std::vector<Assignment> assignments_;
};

}  // namespace malsched
