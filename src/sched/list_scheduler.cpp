#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "sched/sliding.hpp"
#include "support/math_utils.hpp"

namespace malsched {

namespace {

void check_inputs(const Instance& instance, std::span<const int> allotment,
                  std::span<const int> order) {
  const auto n = static_cast<std::size_t>(instance.size());
  if (allotment.size() != n) throw std::invalid_argument("list_schedule: allotment size != n");
  if (order.size() != n) throw std::invalid_argument("list_schedule: order size != n");
  for (const int p : allotment) {
    if (p < 1 || p > instance.machines()) {
      throw std::invalid_argument("list_schedule: allotment outside [1, m]");
    }
  }
  std::vector<char> seen(n, 0);
  for (const int task : order) {
    if (task < 0 || static_cast<std::size_t>(task) >= n || seen[static_cast<std::size_t>(task)]) {
      throw std::invalid_argument("list_schedule: order is not a permutation of tasks");
    }
    seen[static_cast<std::size_t>(task)] = 1;
  }
}

}  // namespace

Schedule list_schedule(const Instance& instance, std::span<const int> allotment,
                       std::span<const int> order, Placement placement) {
  check_inputs(instance, allotment, order);
  const int machines = instance.machines();
  Schedule schedule(machines, instance.size());
  std::vector<double> avail(static_cast<std::size_t>(machines), 0.0);

  for (const int task : order) {
    const int procs = allotment[static_cast<std::size_t>(task)];
    const double duration = instance.task(task).time(procs);

    if (placement == Placement::kScattered) {
      // p least-loaded processors; start when the busiest of them frees up.
      std::vector<int> by_avail(static_cast<std::size_t>(machines));
      std::iota(by_avail.begin(), by_avail.end(), 0);
      std::stable_sort(by_avail.begin(), by_avail.end(), [&](int a, int b) {
        return avail[static_cast<std::size_t>(a)] < avail[static_cast<std::size_t>(b)];
      });
      std::vector<int> chosen(by_avail.begin(), by_avail.begin() + procs);
      double start = 0.0;
      for (const int p : chosen) start = std::max(start, avail[static_cast<std::size_t>(p)]);
      for (const int p : chosen) avail[static_cast<std::size_t>(p)] = start + duration;
      schedule.assign_scattered(task, start, duration, std::move(chosen));
      continue;
    }

    // Earliest start over all contiguous windows of width `procs`.
    const auto ready = sliding_window_max(avail, procs);
    double earliest = std::numeric_limits<double>::infinity();
    for (const double r : ready) earliest = std::min(earliest, r);

    int column = -1;
    const bool starts_at_zero = approx_eq(earliest, 0.0);
    const bool leftmost =
        placement == Placement::kContiguousLeftmost || starts_at_zero;
    if (leftmost) {
      for (std::size_t s = 0; s < ready.size(); ++s) {
        if (approx_eq(ready[s], earliest)) {
          column = static_cast<int>(s);
          break;
        }
      }
    } else {
      for (std::size_t s = ready.size(); s-- > 0;) {
        if (approx_eq(ready[s], earliest)) {
          column = static_cast<int>(s);
          break;
        }
      }
    }

    schedule.assign(task, earliest, duration, column, procs);
    for (int j = column; j < column + procs; ++j) {
      avail[static_cast<std::size_t>(j)] = earliest + duration;
    }
  }
  return schedule;
}

std::vector<int> order_by_decreasing(std::span<const double> keys) {
  std::vector<int> order(keys.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return keys[static_cast<std::size_t>(a)] > keys[static_cast<std::size_t>(b)];
  });
  return order;
}

std::vector<int> order_by_decreasing_alloted_time(const Instance& instance,
                                                  std::span<const int> allotment) {
  std::vector<double> keys(static_cast<std::size_t>(instance.size()));
  for (int i = 0; i < instance.size(); ++i) {
    keys[static_cast<std::size_t>(i)] =
        instance.task(i).time(allotment[static_cast<std::size_t>(i)]);
  }
  return order_by_decreasing(keys);
}

std::vector<int> order_by_decreasing_seq_time(const Instance& instance) {
  std::vector<double> keys(static_cast<std::size_t>(instance.size()));
  for (int i = 0; i < instance.size(); ++i) {
    keys[static_cast<std::size_t>(i)] = instance.task(i).seq_time();
  }
  return order_by_decreasing(keys);
}

}  // namespace malsched
