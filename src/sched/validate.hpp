#pragma once

#include <string>
#include <vector>

#include "model/instance.hpp"
#include "sched/schedule.hpp"

/// The single source of truth for schedule feasibility.
///
/// Every algorithm in this library validates its output before claiming a
/// bound; a schedule is never reported without passing these checks.
namespace malsched {

struct ValidationReport {
  bool ok{true};
  std::vector<std::string> errors;

  void fail(std::string message) {
    ok = false;
    errors.push_back(std::move(message));
  }

  /// All errors joined by newlines (empty when ok).
  [[nodiscard]] std::string str() const;
};

struct ValidationOptions {
  /// Require contiguous processor intervals (the paper's setting).
  bool require_contiguous{true};
  /// Reject schedules longer than this bound (<= 0 disables the check).
  double makespan_bound{0.0};
};

/// Checks that `schedule` is a complete, feasible schedule of `instance`:
///   * every task placed exactly once on >= 1 processors of the machine,
///   * recorded duration equals t_i(procs) from the instance profile,
///   * no two tasks share a processor at the same time,
///   * contiguity when requested, makespan bound when requested.
[[nodiscard]] ValidationReport validate_schedule(const Schedule& schedule,
                                                 const Instance& instance,
                                                 const ValidationOptions& options = {});

/// Convenience: true iff fully valid (contiguous, no bound).
[[nodiscard]] bool is_valid_schedule(const Schedule& schedule, const Instance& instance);

}  // namespace malsched
