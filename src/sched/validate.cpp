#include "sched/validate.hpp"

#include <algorithm>
#include <sstream>

#include "support/math_utils.hpp"

namespace malsched {

std::string ValidationReport::str() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (i > 0) out << '\n';
    out << errors[i];
  }
  return out.str();
}

ValidationReport validate_schedule(const Schedule& schedule, const Instance& instance,
                                   const ValidationOptions& options) {
  ValidationReport report;
  if (schedule.machines() != instance.machines()) {
    report.fail("machine count mismatch between schedule and instance");
    return report;
  }
  if (schedule.num_tasks() != instance.size()) {
    report.fail("task count mismatch between schedule and instance");
    return report;
  }

  for (int i = 0; i < instance.size(); ++i) {
    if (!schedule.is_assigned(i)) {
      report.fail("task " + std::to_string(i) + " is not scheduled");
      continue;
    }
    const auto& assignment = schedule.of(i);
    const int procs = assignment.procs();
    if (procs < 1 || procs > instance.machines()) {
      report.fail("task " + std::to_string(i) + ": processor count " + std::to_string(procs) +
                  " outside [1, m]");
      continue;
    }
    if (options.require_contiguous && !assignment.contiguous()) {
      report.fail("task " + std::to_string(i) + ": scattered placement where contiguity required");
    }
    const double expected = instance.task(i).time(procs);
    if (!approx_eq(assignment.duration, expected)) {
      report.fail("task " + std::to_string(i) + ": recorded duration " +
                  std::to_string(assignment.duration) + " != t(" + std::to_string(procs) +
                  ") = " + std::to_string(expected));
    }
    if (assignment.start < -kAbsEps) {
      report.fail("task " + std::to_string(i) + ": negative start time");
    }
    const auto processors = assignment.processor_list();
    if (processors.front() < 0 || processors.back() >= instance.machines()) {
      report.fail("task " + std::to_string(i) + ": processor index outside the machine");
    }
  }
  if (!report.ok) return report;

  // Pairwise overlap: two tasks sharing a processor must be time-disjoint.
  // Sweep per processor keeps this O(total_procs log + collisions).
  std::vector<std::vector<int>> on_proc(static_cast<std::size_t>(instance.machines()));
  for (int i = 0; i < instance.size(); ++i) {
    for (const int p : schedule.of(i).processor_list()) {
      on_proc[static_cast<std::size_t>(p)].push_back(i);
    }
  }
  for (int p = 0; p < instance.machines(); ++p) {
    auto& tasks = on_proc[static_cast<std::size_t>(p)];
    std::sort(tasks.begin(), tasks.end(), [&](int a, int b) {
      return schedule.of(a).start < schedule.of(b).start;
    });
    for (std::size_t k = 1; k < tasks.size(); ++k) {
      const auto& prev = schedule.of(tasks[k - 1]);
      const auto& next = schedule.of(tasks[k]);
      if (!leq(prev.end(), next.start)) {
        report.fail("tasks " + std::to_string(prev.task) + " and " + std::to_string(next.task) +
                    " overlap on processor " + std::to_string(p));
      }
    }
  }

  if (options.makespan_bound > 0.0 && !leq(schedule.makespan(), options.makespan_bound)) {
    report.fail("makespan " + std::to_string(schedule.makespan()) + " exceeds bound " +
                std::to_string(options.makespan_bound));
  }
  return report;
}

bool is_valid_schedule(const Schedule& schedule, const Instance& instance) {
  return validate_schedule(schedule, instance).ok;
}

}  // namespace malsched
