#include "sched/validate.hpp"

#include <algorithm>
#include <sstream>

#include "support/math_utils.hpp"

namespace malsched {

std::string ValidationReport::str() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (i > 0) out << '\n';
    out << errors[i];
  }
  return out.str();
}

ValidationReport validate_schedule(const Schedule& schedule, const Instance& instance,
                                   const ValidationOptions& options) {
  ValidationReport report;
  if (schedule.machines() != instance.machines()) {
    report.fail("machine count mismatch between schedule and instance");
    return report;
  }
  if (schedule.num_tasks() != instance.size()) {
    report.fail("task count mismatch between schedule and instance");
    return report;
  }

  for (int i = 0; i < instance.size(); ++i) {
    if (!schedule.is_assigned(i)) {
      report.fail("task " + std::to_string(i) + " is not scheduled");
      continue;
    }
    const auto& assignment = schedule.of(i);
    const int procs = assignment.procs();
    if (procs < 1 || procs > instance.machines()) {
      report.fail("task " + std::to_string(i) + ": processor count " + std::to_string(procs) +
                  " outside [1, m]");
      continue;
    }
    if (options.require_contiguous && !assignment.contiguous()) {
      report.fail("task " + std::to_string(i) + ": scattered placement where contiguity required");
    }
    const double expected = instance.task(i).time(procs);
    if (!approx_eq(assignment.duration, expected)) {
      report.fail("task " + std::to_string(i) + ": recorded duration " +
                  std::to_string(assignment.duration) + " != t(" + std::to_string(procs) +
                  ") = " + std::to_string(expected));
    }
    if (assignment.start < -kAbsEps) {
      report.fail("task " + std::to_string(i) + ": negative start time");
    }
    // Contiguous placements need no materialized processor list: the
    // interval endpoints carry the same information (this validator runs on
    // every accepted dual-search step, so it stays allocation-lean).
    const int first = assignment.contiguous() ? assignment.first_proc
                                              : assignment.scattered.front();
    const int last = assignment.contiguous() ? assignment.first_proc + assignment.num_procs - 1
                                             : assignment.scattered.back();
    if (first < 0 || last >= instance.machines()) {
      report.fail("task " + std::to_string(i) + ": processor index outside the machine");
    }
  }
  if (!report.ok) return report;

  // Pairwise overlap: two tasks sharing a processor must be time-disjoint.
  // Sweep per processor keeps this O(total_procs log + collisions); the
  // (processor, task) incidence lives in one flat bucket-sorted array.
  const auto machines = static_cast<std::size_t>(instance.machines());
  std::vector<std::size_t> bucket_end(machines + 1, 0);
  for (int i = 0; i < instance.size(); ++i) {
    schedule.of(i).for_each_processor(
        [&](int p) { ++bucket_end[static_cast<std::size_t>(p) + 1]; });
  }
  for (std::size_t p = 0; p < machines; ++p) bucket_end[p + 1] += bucket_end[p];
  std::vector<int> on_proc(bucket_end.back());
  {
    std::vector<std::size_t> cursor(bucket_end.begin(), bucket_end.end() - 1);
    for (int i = 0; i < instance.size(); ++i) {
      schedule.of(i).for_each_processor(
          [&](int p) { on_proc[cursor[static_cast<std::size_t>(p)]++] = i; });
    }
  }
  for (std::size_t p = 0; p < machines; ++p) {
    const auto begin = on_proc.begin() + static_cast<std::ptrdiff_t>(bucket_end[p]);
    const auto end = on_proc.begin() + static_cast<std::ptrdiff_t>(bucket_end[p + 1]);
    std::sort(begin, end, [&](int a, int b) {
      return schedule.of(a).start < schedule.of(b).start;
    });
    for (auto it = begin; it != end && it + 1 != end; ++it) {
      const auto& prev = schedule.of(*it);
      const auto& next = schedule.of(*(it + 1));
      if (!leq(prev.end(), next.start)) {
        report.fail("tasks " + std::to_string(prev.task) + " and " + std::to_string(next.task) +
                    " overlap on processor " + std::to_string(p));
      }
    }
  }

  if (options.makespan_bound > 0.0 && !leq(schedule.makespan(), options.makespan_bound)) {
    report.fail("makespan " + std::to_string(schedule.makespan()) + " exceeds bound " +
                std::to_string(options.makespan_bound));
  }
  return report;
}

bool is_valid_schedule(const Schedule& schedule, const Instance& instance) {
  return validate_schedule(schedule, instance).ok;
}

}  // namespace malsched
