#pragma once

#include "model/instance.hpp"
#include "sched/schedule.hpp"

/// Post-pass that slides tasks earlier in time without changing allotments
/// or processor assignments.
///
/// The two-shelf construction (Section 4) starts its second shelf exactly at
/// the guess d even when the first shelf finished earlier on some
/// processors; compaction removes that slack. It never hurts: the worst-case
/// guarantee is preserved and average makespans improve (measured in
/// bench_ablation).
namespace malsched {

/// Returns a schedule where every task, in order of original start time,
/// begins as early as its processors allow. Processor assignments (and hence
/// contiguity) are unchanged.
[[nodiscard]] Schedule compact_schedule(const Schedule& schedule, const Instance& instance);

}  // namespace malsched
