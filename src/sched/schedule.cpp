#include "sched/schedule.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace malsched {

std::vector<int> Assignment::processor_list() const {
  if (!contiguous()) return scattered;
  std::vector<int> procs(static_cast<std::size_t>(num_procs));
  for (int j = 0; j < num_procs; ++j) procs[static_cast<std::size_t>(j)] = first_proc + j;
  return procs;
}

Schedule::Schedule(int machines, int num_tasks)
    : machines_(machines),
      num_tasks_(num_tasks),
      assignments_(static_cast<std::size_t>(std::max(0, num_tasks))) {
  if (machines < 1) throw std::invalid_argument("Schedule: machines must be >= 1");
  if (num_tasks < 0) throw std::invalid_argument("Schedule: negative task count");
}

void Schedule::check_common(int task, double start, double duration) const {
  if (task < 0 || task >= num_tasks_) {
    throw std::logic_error("Schedule::assign: task index out of range");
  }
  if (assignments_[static_cast<std::size_t>(task)].task != -1) {
    throw std::logic_error("Schedule::assign: task " + std::to_string(task) +
                           " assigned twice");
  }
  if (start < 0.0 || !(duration > 0.0)) {
    throw std::logic_error("Schedule::assign: start must be >= 0 and duration positive");
  }
}

void Schedule::assign(int task, double start, double duration, int first_proc, int num_procs) {
  check_common(task, start, duration);
  if (num_procs < 1 || first_proc < 0 || first_proc + num_procs > machines_) {
    throw std::logic_error("Schedule::assign: processor interval outside the machine");
  }
  assignments_[static_cast<std::size_t>(task)] =
      Assignment{task, start, duration, first_proc, num_procs, {}};
  ++assigned_count_;
}

void Schedule::assign_scattered(int task, double start, double duration,
                                std::vector<int> processors) {
  check_common(task, start, duration);
  if (processors.empty()) {
    throw std::logic_error("Schedule::assign_scattered: empty processor set");
  }
  std::sort(processors.begin(), processors.end());
  if (processors.front() < 0 || processors.back() >= machines_ ||
      std::adjacent_find(processors.begin(), processors.end()) != processors.end()) {
    throw std::logic_error("Schedule::assign_scattered: bad processor set");
  }
  Assignment assignment;
  assignment.task = task;
  assignment.start = start;
  assignment.duration = duration;
  assignment.scattered = std::move(processors);
  assignments_[static_cast<std::size_t>(task)] = std::move(assignment);
  ++assigned_count_;
}

bool Schedule::is_assigned(int task) const {
  return assignments_.at(static_cast<std::size_t>(task)).task != -1;
}

const Assignment& Schedule::of(int task) const {
  const auto& assignment = assignments_.at(static_cast<std::size_t>(task));
  if (assignment.task == -1) {
    throw std::logic_error("Schedule::of: task " + std::to_string(task) + " not assigned");
  }
  return assignment;
}

double Schedule::makespan() const noexcept {
  double latest = 0.0;
  for (const auto& assignment : assignments_) {
    if (assignment.task != -1) latest = std::max(latest, assignment.end());
  }
  return latest;
}

}  // namespace malsched
