#pragma once

#include <span>
#include <vector>

/// Graham's Longest Processing Time rule for sequential jobs.
///
/// The malleable list algorithm (paper §3.1) schedules its sequential tail
/// "identical to the well-known LPT heuristic"; these helpers implement LPT
/// on plain durations for reuse and for property-testing Graham's
/// (4/3 - 1/(3m)) bound.
namespace malsched {

struct LptResult {
  std::vector<int> machine_of;   ///< job -> machine index
  std::vector<double> start_of;  ///< job -> start time
  double makespan{0.0};
};

/// Runs LPT: jobs sorted by non-increasing duration, each placed on the
/// machine that frees up first. Throws on non-positive durations or
/// machines < 1.
[[nodiscard]] LptResult lpt(std::span<const double> durations, int machines);

/// Makespan only.
[[nodiscard]] double lpt_makespan(std::span<const double> durations, int machines);

/// Graham's worst-case ratio for LPT on m machines: 4/3 - 1/(3m).
[[nodiscard]] double lpt_guarantee(int machines);

}  // namespace malsched
