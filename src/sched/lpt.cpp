#include "sched/lpt.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace malsched {

LptResult lpt(std::span<const double> durations, int machines) {
  if (machines < 1) throw std::invalid_argument("lpt: machines must be >= 1");
  for (const double d : durations) {
    if (!(d > 0.0)) throw std::invalid_argument("lpt: durations must be positive");
  }
  LptResult result;
  result.machine_of.assign(durations.size(), 0);
  result.start_of.assign(durations.size(), 0.0);

  std::vector<int> order(durations.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return durations[static_cast<std::size_t>(a)] > durations[static_cast<std::size_t>(b)];
  });

  // Min-heap of (available time, machine); earliest machine wins, lower
  // index breaks ties for determinism.
  using Slot = std::pair<double, int>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> slots;
  for (int j = 0; j < machines; ++j) slots.emplace(0.0, j);

  for (const int job : order) {
    auto [free_at, machine] = slots.top();
    slots.pop();
    result.machine_of[static_cast<std::size_t>(job)] = machine;
    result.start_of[static_cast<std::size_t>(job)] = free_at;
    const double end = free_at + durations[static_cast<std::size_t>(job)];
    result.makespan = std::max(result.makespan, end);
    slots.emplace(end, machine);
  }
  return result;
}

double lpt_makespan(std::span<const double> durations, int machines) {
  return lpt(durations, machines).makespan;
}

double lpt_guarantee(int machines) {
  return 4.0 / 3.0 - 1.0 / (3.0 * static_cast<double>(machines));
}

}  // namespace malsched
