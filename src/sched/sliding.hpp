#pragma once

#include <span>
#include <vector>

/// Sliding-window maximum, shared by the list schedulers: for processor
/// availability vectors it yields, in O(m), the earliest feasible start of a
/// width-w contiguous window.
namespace malsched {

/// Core of the sliding-window maximum for hot loops (the workspace-aware
/// list scheduler): the result and the monotone queue live in caller-owned
/// buffers (`ring` is resized to values.size()). sliding_window_max()
/// delegates here, so the two can never drift.
inline void sliding_window_max_into(std::span<const double> values, int width,
                                    std::vector<double>& out, std::vector<int>& ring) {
  const int n = static_cast<int>(values.size());
  out.resize(static_cast<std::size_t>(n - width + 1));
  ring.resize(static_cast<std::size_t>(n));
  int head = 0;  // ring[head..tail) holds indices whose values decrease
  int tail = 0;
  for (int j = 0; j < n; ++j) {
    while (tail > head && values[static_cast<std::size_t>(ring[static_cast<std::size_t>(
                              tail - 1)])] <= values[static_cast<std::size_t>(j)]) {
      --tail;
    }
    ring[static_cast<std::size_t>(tail++)] = j;
    if (ring[static_cast<std::size_t>(head)] <= j - width) ++head;
    if (j >= width - 1) {
      out[static_cast<std::size_t>(j - width + 1)] =
          values[static_cast<std::size_t>(ring[static_cast<std::size_t>(head)])];
    }
  }
}

/// result[s] = max(values[s .. s+width-1]); requires 1 <= width <= size.
[[nodiscard]] inline std::vector<double> sliding_window_max(std::span<const double> values,
                                                            int width) {
  std::vector<double> result;
  std::vector<int> ring;
  sliding_window_max_into(values, width, result, ring);
  return result;
}

}  // namespace malsched
