#pragma once

#include <deque>
#include <span>
#include <vector>

/// Sliding-window maximum, shared by the list schedulers: for processor
/// availability vectors it yields, in O(m), the earliest feasible start of a
/// width-w contiguous window.
namespace malsched {

/// result[s] = max(values[s .. s+width-1]); requires 1 <= width <= size.
[[nodiscard]] inline std::vector<double> sliding_window_max(std::span<const double> values,
                                                            int width) {
  const int n = static_cast<int>(values.size());
  std::vector<double> result(static_cast<std::size_t>(n - width + 1));
  std::deque<int> candidates;  // indices whose values decrease
  for (int j = 0; j < n; ++j) {
    while (!candidates.empty() && values[static_cast<std::size_t>(candidates.back())] <=
                                      values[static_cast<std::size_t>(j)]) {
      candidates.pop_back();
    }
    candidates.push_back(j);
    if (candidates.front() <= j - width) candidates.pop_front();
    if (j >= width - 1) {
      result[static_cast<std::size_t>(j - width + 1)] =
          values[static_cast<std::size_t>(candidates.front())];
    }
  }
  return result;
}

}  // namespace malsched
