#include "sched/exact_small.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "sched/list_scheduler.hpp"

namespace malsched {

namespace {

long long int_pow(long long base, int exp) {
  long long result = 1;
  for (int i = 0; i < exp; ++i) {
    if (result > (1LL << 62) / base) return 1LL << 62;
    result *= base;
  }
  return result;
}

long long factorial(int n) {
  long long result = 1;
  for (int i = 2; i <= n; ++i) result *= i;
  return result;
}

}  // namespace

std::optional<BruteForceResult> brute_force_schedule(const Instance& instance, long long budget) {
  const int n = instance.size();
  const int m = instance.machines();
  if (n == 0) return BruteForceResult{0.0, Schedule(m, 0)};
  if (n > 8) return std::nullopt;
  const long long combos = int_pow(m, n) * factorial(n);
  if (combos > budget) return std::nullopt;

  std::vector<int> allotment(static_cast<std::size_t>(n), 1);
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  std::optional<BruteForceResult> best;
  for (;;) {
    // Try every priority permutation for this allotment.
    std::vector<int> perm = order;
    std::sort(perm.begin(), perm.end());
    do {
      Schedule candidate = list_schedule(instance, allotment, perm);
      const double makespan = candidate.makespan();
      if (!best || makespan < best->makespan) {
        best = BruteForceResult{makespan, std::move(candidate)};
      }
    } while (std::next_permutation(perm.begin(), perm.end()));

    // Advance the allotment vector like a mixed-radix counter.
    int digit = 0;
    while (digit < n) {
      if (allotment[static_cast<std::size_t>(digit)] < m) {
        ++allotment[static_cast<std::size_t>(digit)];
        break;
      }
      allotment[static_cast<std::size_t>(digit)] = 1;
      ++digit;
    }
    if (digit == n) break;
  }
  return best;
}

}  // namespace malsched
