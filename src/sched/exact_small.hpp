#pragma once

#include <optional>

#include "model/instance.hpp"
#include "sched/schedule.hpp"

/// Exhaustive search over allotments and list orders for tiny instances.
///
/// Test oracle only: enumerating every allotment vector and every priority
/// permutation, placing greedily, yields a strong *upper bound* on the
/// optimal contiguous makespan (and frequently the optimum itself -- when it
/// meets the area/critical-path lower bound the tests know OPT exactly).
/// The dual-approximation soundness tests use it: if the solver rejects a
/// guess d, no brute-force schedule may beat d.
namespace malsched {

struct BruteForceResult {
  double makespan{0.0};
  Schedule schedule{1, 0};
};

/// Best schedule found by full enumeration; std::nullopt when the search
/// space m^n * n! exceeds `budget` simulations.
[[nodiscard]] std::optional<BruteForceResult> brute_force_schedule(
    const Instance& instance, long long budget = 20'000'000);

}  // namespace malsched
