#pragma once

#include <span>
#include <vector>

#include "model/instance.hpp"
#include "sched/schedule.hpp"

/// Greedy list scheduling for rigid (fixed-allotment) parallel tasks.
///
/// This is the scheduling phase shared by Sections 3.1 and 3.2 of the paper:
/// tasks are taken in a priority order and each is started as early as the
/// current schedule allows on its allotted number of processors.
///
/// Contiguous placement follows the paper's §3.2 convention: among the
/// earliest feasible windows the task goes to the *leftmost* processors when
/// it can start at time 0 and to the *rightmost* ones otherwise ("this
/// convention asserts the contiguous nature of the schedule").
namespace malsched {

/// Placement discipline for the generic list scheduler.
enum class Placement {
  kContiguousPaperRule,  ///< leftmost at t=0, rightmost later (paper §3.2)
  kContiguousLeftmost,   ///< always leftmost earliest window
  kScattered,            ///< p least-loaded processors (non-contiguous baseline)
};

/// Schedules every task of `instance` with `allotment[i]` processors in the
/// given priority `order` (a permutation of task indices).
/// Throws std::invalid_argument on malformed allotments or order.
[[nodiscard]] Schedule list_schedule(const Instance& instance, std::span<const int> allotment,
                                     std::span<const int> order,
                                     Placement placement = Placement::kContiguousPaperRule);

/// Priority order sorting task indices by non-increasing key; ties keep the
/// lower index first (deterministic runs).
[[nodiscard]] std::vector<int> order_by_decreasing(std::span<const double> keys);

/// Order by non-increasing execution time under the given allotment -- the
/// canonical list priority of §3.2.
[[nodiscard]] std::vector<int> order_by_decreasing_alloted_time(const Instance& instance,
                                                                std::span<const int> allotment);

/// Order by non-increasing *sequential* time t_i(1) -- the malleable list
/// priority of §3.1.
[[nodiscard]] std::vector<int> order_by_decreasing_seq_time(const Instance& instance);

}  // namespace malsched
