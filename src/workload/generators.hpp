#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/instance.hpp"

/// Synthetic workload families for the evaluation harness.
///
/// The paper reports no benchmark suite ("experiments are currently under
/// progress"), so the families below are designed to span the regimes the
/// analysis distinguishes: load (canonical area vs mu*m), task granularity
/// (S1/S2/S3 population), and speedup behavior. Every generator takes an
/// explicit seed and produces valid monotonic instances.
namespace malsched {

enum class WorkloadFamily {
  kUniform,      ///< moderate tasks, mixed Amdahl/power-law/comm profiles
  kBimodal,      ///< many small sequential tasks + a few huge parallel ones
  kHeavyTail,    ///< Pareto-like sequential times
  kStairs,       ///< geometric size ladder (stresses the list levels)
  kPackedOpt1,   ///< built from a packed unit-height schedule: OPT <= 1
  kSequentialOnly,  ///< no parallelism available at all
};

[[nodiscard]] std::string to_string(WorkloadFamily family);

/// All families, for parameterized sweeps.
[[nodiscard]] std::vector<WorkloadFamily> all_workload_families();

struct GeneratorOptions {
  int tasks{50};
  int machines{32};
  double seq_time_lo{0.5};
  double seq_time_hi{8.0};
};

/// Draws an instance of the given family.
[[nodiscard]] Instance generate_instance(WorkloadFamily family, const GeneratorOptions& options,
                                         std::uint64_t seed);

/// Recursive guillotine partition of the m x [0,1] time-processor rectangle;
/// each cell (p processors x h time) becomes a task with profile
/// t(q) = h * (p/q)^beta (beta in (0,1], work non-decreasing). The partition
/// itself is a feasible schedule of length 1, so OPT <= 1 *by construction*
/// -- the workhorse for guarantee experiments and the m_mu estimator.
/// `target_tasks` <= 0 picks roughly 2*m cells.
[[nodiscard]] Instance packed_instance(int machines, std::uint64_t seed, int target_tasks = 0);

}  // namespace malsched
