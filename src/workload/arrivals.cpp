#include "workload/arrivals.hpp"

#include <cmath>
#include <stdexcept>

#include "support/rng.hpp"

namespace malsched {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Exponential gap with the given rate; rate must be > 0. next_double() is
/// in [0, 1), so 1 - u is in (0, 1] and the log never sees zero.
double exponential_gap(Rng& rng, double rate) {
  return -std::log(1.0 - rng.next_double()) / rate;
}

bool bad(double v) { return std::isnan(v) || std::isinf(v); }

}  // namespace

std::string to_string(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kBursty: return "bursty";
    case ArrivalProcess::kDiurnal: return "diurnal";
  }
  return "unknown";
}

ArrivalProcess arrival_process_from_string(const std::string& name) {
  if (name == "poisson") return ArrivalProcess::kPoisson;
  if (name == "bursty") return ArrivalProcess::kBursty;
  if (name == "diurnal") return ArrivalProcess::kDiurnal;
  throw std::invalid_argument("unknown arrival process \"" + name +
                              "\" (expected poisson/bursty/diurnal)");
}

std::vector<std::string> ArrivalOptions::validate() const {
  std::vector<std::string> errors;
  if (bad(rate_per_second) || rate_per_second <= 0.0) {
    errors.push_back("rate_per_second = " + std::to_string(rate_per_second) +
                     " must be a finite rate > 0");
  }
  if (bad(duration_seconds) || duration_seconds <= 0.0) {
    errors.push_back("duration_seconds = " + std::to_string(duration_seconds) +
                     " must be a finite horizon > 0");
  }
  if (process == ArrivalProcess::kBursty) {
    if (bad(burst_factor) || burst_factor < 1.0) {
      errors.push_back("burst_factor = " + std::to_string(burst_factor) + " must be >= 1");
    }
    if (bad(on_fraction) || on_fraction <= 0.0 || on_fraction >= 1.0) {
      errors.push_back("on_fraction = " + std::to_string(on_fraction) +
                       " must be strictly inside (0, 1)");
    } else if (!bad(burst_factor) && burst_factor * on_fraction > 1.0) {
      errors.push_back("burst_factor * on_fraction = " +
                       std::to_string(burst_factor * on_fraction) +
                       " exceeds 1: the ON phases alone would carry more than the whole "
                       "long-run mean (the derived OFF rate would be negative)");
    }
    if (bad(mean_cycle_seconds) || mean_cycle_seconds <= 0.0) {
      errors.push_back("mean_cycle_seconds = " + std::to_string(mean_cycle_seconds) +
                       " must be > 0");
    }
  }
  if (process == ArrivalProcess::kDiurnal) {
    if (bad(diurnal_period_seconds) || diurnal_period_seconds <= 0.0) {
      errors.push_back("diurnal_period_seconds = " + std::to_string(diurnal_period_seconds) +
                       " must be > 0");
    }
    if (bad(diurnal_amplitude) || diurnal_amplitude < 0.0 || diurnal_amplitude > 1.0) {
      errors.push_back("diurnal_amplitude = " + std::to_string(diurnal_amplitude) +
                       " must be in [0, 1]");
    }
  }
  return errors;
}

std::vector<double> generate_arrivals(const ArrivalOptions& options, std::uint64_t seed) {
  const std::vector<std::string> errors = options.validate();
  if (!errors.empty()) {
    std::string message = "invalid ArrivalOptions:";
    for (const std::string& error : errors) message += "\n  * " + error;
    throw std::invalid_argument(message);
  }

  Rng rng(seed);
  std::vector<double> arrivals;
  const auto full = [&] {
    return options.max_arrivals > 0 && arrivals.size() >= options.max_arrivals;
  };

  switch (options.process) {
    case ArrivalProcess::kPoisson: {
      double t = exponential_gap(rng, options.rate_per_second);
      while (t < options.duration_seconds && !full()) {
        arrivals.push_back(t);
        t += exponential_gap(rng, options.rate_per_second);
      }
      break;
    }
    case ArrivalProcess::kBursty: {
      // Two-state modulated Poisson process. The ON rate is burst_factor x
      // the mean; the OFF rate is derived so the time-weighted mean is
      // exactly rate_per_second (validate() guarantees it is >= 0):
      //   on_fraction * rate_on + (1 - on_fraction) * rate_off = mean.
      const double rate_on = options.burst_factor * options.rate_per_second;
      const double rate_off = options.rate_per_second *
                              (1.0 - options.on_fraction * options.burst_factor) /
                              (1.0 - options.on_fraction);
      const double mean_on_dwell = options.on_fraction * options.mean_cycle_seconds;
      const double mean_off_dwell = (1.0 - options.on_fraction) * options.mean_cycle_seconds;
      bool on = true;  // traces deterministically open in a burst
      double t = 0.0;
      double phase_end = exponential_gap(rng, 1.0 / mean_on_dwell);
      while (t < options.duration_seconds && !full()) {
        const double rate = on ? rate_on : rate_off;
        // A (near-)silent OFF phase emits nothing: jump to the phase switch.
        const double next = rate > 0.0 ? t + exponential_gap(rng, rate)
                                       : options.duration_seconds;
        if (next < phase_end) {
          t = next;
          if (t < options.duration_seconds) arrivals.push_back(t);
        } else {
          t = phase_end;
          on = !on;
          phase_end = t + exponential_gap(rng, 1.0 / (on ? mean_on_dwell : mean_off_dwell));
        }
      }
      break;
    }
    case ArrivalProcess::kDiurnal: {
      // Inhomogeneous Poisson by Lewis-Shedler thinning: candidates at the
      // peak rate, each kept with probability rate(t) / peak. The curve is
      //   rate(t) = mean * (1 + amplitude * sin(2 pi t / period)),
      // so the long-run mean over whole periods is rate_per_second.
      const double peak = options.rate_per_second * (1.0 + options.diurnal_amplitude);
      double t = exponential_gap(rng, peak);
      while (t < options.duration_seconds && !full()) {
        const double rate =
            options.rate_per_second *
            (1.0 + options.diurnal_amplitude *
                       std::sin(kTwoPi * t / options.diurnal_period_seconds));
        if (rng.next_double() * peak < rate) arrivals.push_back(t);
        t += exponential_gap(rng, peak);
      }
      break;
    }
  }
  return arrivals;
}

}  // namespace malsched
