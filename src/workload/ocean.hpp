#pragma once

#include <cstdint>

#include "model/instance.hpp"

/// The paper's motivating application: adaptive-mesh ocean circulation
/// simulation (Blayo, Debreu, Mounie & Trystram [3] schedule Atlantic-ocean
/// model blocks as malleable tasks).
///
/// The original meshes and traces are not available, so we synthesize a
/// workload with the same structure (DESIGN.md, substitutions): a quadtree
/// refinement over a base ocean grid produces blocks; a block's work grows
/// with its cell count, and its parallel profile follows the classic
/// compute/halo-exchange split -- t(p) = W/p + halo * perimeter * (p-1) --
/// monotonized. Refined (storm/eddy) regions yield many small blocks,
/// calm regions a few large ones, reproducing the size mix that motivates
/// malleable scheduling in the paper's introduction.
namespace malsched {

struct OceanOptions {
  int machines{64};
  int base_grid{8};        ///< base_grid x base_grid coarse blocks
  int max_refine_level{3}; ///< quadtree depth
  double refine_prob{0.35};///< probability a block splits, per level
  double cell_work{1.0e-3};///< seconds of sequential work per cell
  int cells_per_block{32}; ///< coarse block resolution (cells per side)
  double halo_cost{2.0e-4};///< per-boundary-cell exchange cost per extra proc
};

/// Builds the block workload for one simulation step.
[[nodiscard]] Instance ocean_instance(const OceanOptions& options, std::uint64_t seed);

}  // namespace malsched
