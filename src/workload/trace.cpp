#include "workload/trace.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "model/monotonize.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace malsched {

Instance trace_snapshot(const TraceOptions& options, std::uint64_t seed) {
  Rng rng(seed);
  const int cap = options.max_parallelism_cap > 0
                      ? std::min(options.max_parallelism_cap, options.machines)
                      : options.machines;

  std::vector<MalleableTask> tasks;
  tasks.reserve(static_cast<std::size_t>(options.jobs));
  for (int j = 0; j < options.jobs; ++j) {
    const double seq =
        options.median_seq_hours * std::exp(rng.normal(0.0, options.sigma));
    // Downey-style: near-linear speedup until the job's own maximum
    // parallelism A, flat beyond.
    const auto max_par = static_cast<int>(rng.uniform_int(1, cap));
    const double alpha = rng.uniform(0.7, 0.98);
    std::vector<double> profile(static_cast<std::size_t>(options.machines));
    for (int p = 1; p <= options.machines; ++p) {
      const int effective = std::min(p, max_par);
      profile[static_cast<std::size_t>(p) - 1] =
          seq / std::pow(static_cast<double>(effective), alpha);
    }
    tasks.emplace_back(monotonize(std::move(profile)), label("job", j));
  }
  return Instance(options.machines, std::move(tasks));
}

std::vector<TimedSnapshot> timed_trace(const TraceOptions& options,
                                       const ArrivalOptions& arrivals, std::uint64_t seed) {
  const std::vector<double> instants = generate_arrivals(arrivals, seed);
  // Snapshot seeds are forked off a DIFFERENT stream than the arrival draws
  // (reseeded, not shared), so changing the arrival process cannot perturb
  // which instances the trace carries at a given index.
  Rng fork(seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<TimedSnapshot> trace;
  trace.reserve(instants.size());
  for (const double instant : instants) {
    trace.push_back({instant, trace_snapshot(options, fork.fork_seed())});
  }
  return trace;
}

}  // namespace malsched
