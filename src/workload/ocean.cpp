#include "workload/ocean.hpp"

#include <string>
#include <vector>

#include "model/speedup_models.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace malsched {

namespace {

struct Block {
  int level;
  int x;
  int y;
};

}  // namespace

Instance ocean_instance(const OceanOptions& options, std::uint64_t seed) {
  Rng rng(seed);

  // Quadtree refinement: each coarse block either stays or splits into four
  // children, recursively up to max_refine_level.
  std::vector<Block> leaves;
  std::vector<Block> frontier;
  for (int x = 0; x < options.base_grid; ++x) {
    for (int y = 0; y < options.base_grid; ++y) frontier.push_back({0, x, y});
  }
  while (!frontier.empty()) {
    const Block block = frontier.back();
    frontier.pop_back();
    if (block.level < options.max_refine_level && rng.bernoulli(options.refine_prob)) {
      for (int dx = 0; dx < 2; ++dx) {
        for (int dy = 0; dy < 2; ++dy) {
          frontier.push_back({block.level + 1, 2 * block.x + dx, 2 * block.y + dy});
        }
      }
    } else {
      leaves.push_back(block);
    }
  }

  std::vector<MalleableTask> tasks;
  tasks.reserve(leaves.size());
  for (const auto& block : leaves) {
    // A refined block covers 1/4 of the parent's area but runs at double
    // resolution and half the time step, so per-step work per cell is
    // constant; cells per side stay fixed while physical size shrinks.
    const auto side = static_cast<double>(options.cells_per_block);
    const double cells = side * side;
    // Deeper levels sub-cycle: 2^level substeps per coarse step.
    const double substeps = static_cast<double>(1 << block.level);
    const double work = cells * options.cell_work * substeps * rng.uniform(0.85, 1.15);
    const double halo = options.halo_cost * 4.0 * side * substeps;
    tasks.emplace_back(comm_overhead_profile(work, halo, options.machines),
                       label("blk-L", block.level, "-", block.x, ".", block.y));
  }
  return Instance(options.machines, std::move(tasks));
}

}  // namespace malsched
