#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

/// Seeded arrival-process generators for open-loop load replay.
///
/// A closed-loop benchmark (submit, wait, repeat) measures the service at
/// whatever rate the service itself sustains -- it can never observe queueing
/// delay, because a slow response throttles the generator (coordinated
/// omission). An open-loop replayer needs the opposite: a request TRACE whose
/// timestamps are fixed BEFORE the run, so a request that arrives while the
/// service is drowning still counts its full wait. These generators produce
/// exactly that trace: a sorted vector of arrival instants in seconds,
/// relative to the trace start (t = 0), as a pure function of the options and
/// a 64-bit seed -- rerunning with the same seed reproduces every timestamp
/// bit-for-bit. Timestamps are trace-relative offsets applied to a
/// steady-clock anchor at replay time; no wall-clock source is involved.
///
/// Three canonical shapes:
///   * kPoisson -- memoryless arrivals at a constant rate; the baseline every
///     queueing model starts from (exponential inter-arrival gaps).
///   * kBursty  -- MMPP-style on-off modulation: exponentially-dwelling ON
///     phases at `burst_factor` x the mean rate alternate with quiet OFF
///     phases, long-run mean preserved. Stresses admission control and queue
///     high-water marks far harder than Poisson at the same mean rate.
///   * kDiurnal -- a sinusoidal rate curve (thinned inhomogeneous Poisson):
///     the compressed shape of a daily load cycle, for capacity questions
///     like "does p99 hold through the peak".
namespace malsched {

enum class ArrivalProcess {
  kPoisson,
  kBursty,
  kDiurnal,
};

/// "poisson", "bursty", "diurnal" -- the spellings bench artifacts record.
[[nodiscard]] std::string to_string(ArrivalProcess process);

/// Parses the spellings above; throws std::invalid_argument on anything else.
[[nodiscard]] ArrivalProcess arrival_process_from_string(const std::string& name);

struct ArrivalOptions {
  ArrivalProcess process{ArrivalProcess::kPoisson};
  /// Long-run mean arrival rate (requests per second) for EVERY process --
  /// bursty and diurnal modulate around this mean, they do not change it.
  double rate_per_second{100.0};
  /// Trace horizon: arrivals at or beyond this instant are dropped.
  double duration_seconds{1.0};
  /// Hard cap on the number of arrivals; 0 = the horizon alone decides.
  std::size_t max_arrivals{0};

  // ------------------------------------------------------------- kBursty
  /// ON-phase rate as a multiple of the mean rate; must be >= 1, and
  /// burst_factor * on_fraction must stay <= 1 so the derived OFF rate
  /// (which keeps the long-run mean at `rate_per_second`) is non-negative.
  /// The defaults (4x for a fifth of the time) leave the OFF phases at a
  /// quarter of the mean rate.
  double burst_factor{4.0};
  /// Long-run fraction of time spent in ON phases; must be in (0, 1).
  double on_fraction{0.2};
  /// Mean length of one ON+OFF cycle in seconds; dwell times in each phase
  /// are exponential with means on_fraction * cycle and (1 - on_fraction) *
  /// cycle respectively.
  double mean_cycle_seconds{0.25};

  // ------------------------------------------------------------ kDiurnal
  /// Period of the sinusoidal rate curve in seconds (a compressed "day").
  double diurnal_period_seconds{1.0};
  /// Relative swing of the curve, in [0, 1]: the instantaneous rate is
  /// mean * (1 + amplitude * sin(2 pi t / period)), so 1.0 swings between
  /// 0 and twice the mean.
  double diurnal_amplitude{0.8};

  /// Every violation as one readable sentence; empty means valid.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Generates the trace: sorted arrival instants in [0, duration_seconds),
/// seconds relative to the trace start. Pure function of (options, seed).
/// Throws std::invalid_argument when options.validate() reports violations.
[[nodiscard]] std::vector<double> generate_arrivals(const ArrivalOptions& options,
                                                    std::uint64_t seed);

}  // namespace malsched
