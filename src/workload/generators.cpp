#include "workload/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "model/speedup_models.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace malsched {

std::string to_string(WorkloadFamily family) {
  switch (family) {
    case WorkloadFamily::kUniform:
      return "uniform";
    case WorkloadFamily::kBimodal:
      return "bimodal";
    case WorkloadFamily::kHeavyTail:
      return "heavy-tail";
    case WorkloadFamily::kStairs:
      return "stairs";
    case WorkloadFamily::kPackedOpt1:
      return "packed-opt1";
    case WorkloadFamily::kSequentialOnly:
      return "sequential-only";
  }
  return "unknown";
}

std::vector<WorkloadFamily> all_workload_families() {
  return {WorkloadFamily::kUniform,    WorkloadFamily::kBimodal,
          WorkloadFamily::kHeavyTail,  WorkloadFamily::kStairs,
          WorkloadFamily::kPackedOpt1, WorkloadFamily::kSequentialOnly};
}

namespace {

/// Random profile from the model zoo for one task.
std::vector<double> random_profile(Rng& rng, double seq_time, int machines) {
  const double pick = rng.next_double();
  if (pick < 0.4) {
    return amdahl_profile(seq_time, rng.uniform(0.02, 0.35), machines);
  }
  if (pick < 0.8) {
    return power_law_profile(seq_time, rng.uniform(0.5, 0.95), machines);
  }
  return comm_overhead_profile(seq_time, seq_time * rng.uniform(0.001, 0.01), machines);
}

Instance uniform_instance(const GeneratorOptions& options, Rng& rng) {
  std::vector<MalleableTask> tasks;
  tasks.reserve(static_cast<std::size_t>(options.tasks));
  for (int i = 0; i < options.tasks; ++i) {
    const double seq = rng.log_uniform(options.seq_time_lo, options.seq_time_hi);
    tasks.emplace_back(random_profile(rng, seq, options.machines),
                       label("u", i));
  }
  return Instance(options.machines, std::move(tasks));
}

Instance bimodal_instance(const GeneratorOptions& options, Rng& rng) {
  std::vector<MalleableTask> tasks;
  tasks.reserve(static_cast<std::size_t>(options.tasks));
  for (int i = 0; i < options.tasks; ++i) {
    if (rng.bernoulli(0.2)) {
      const double seq = options.seq_time_hi * rng.uniform(2.0, 6.0);
      tasks.emplace_back(power_law_profile(seq, rng.uniform(0.85, 0.98), options.machines),
                         label("big", i));
    } else {
      const double seq = rng.uniform(options.seq_time_lo, 2.0 * options.seq_time_lo);
      tasks.emplace_back(amdahl_profile(seq, rng.uniform(0.3, 0.8), options.machines),
                         label("small", i));
    }
  }
  return Instance(options.machines, std::move(tasks));
}

Instance heavy_tail_instance(const GeneratorOptions& options, Rng& rng) {
  std::vector<MalleableTask> tasks;
  tasks.reserve(static_cast<std::size_t>(options.tasks));
  constexpr double kParetoShape = 1.3;
  for (int i = 0; i < options.tasks; ++i) {
    double u = 0.0;
    do {
      u = rng.next_double();
    } while (u <= 0.0);
    const double seq = std::min(options.seq_time_lo * std::pow(u, -1.0 / kParetoShape),
                                options.seq_time_hi * 10.0);
    tasks.emplace_back(random_profile(rng, seq, options.machines),
                       label("ht", i));
  }
  return Instance(options.machines, std::move(tasks));
}

Instance stairs_instance(const GeneratorOptions& options, Rng& rng) {
  // Geometric ladder: level j holds 2^j tasks of roughly T/2^j sequential
  // time, producing the staircase structure of the paper's Figure 2.
  std::vector<MalleableTask> tasks;
  const double top = options.seq_time_hi;
  int produced = 0;
  for (int level = 0; produced < options.tasks; ++level) {
    const int count = 1 << std::min(level, 12);
    for (int i = 0; i < count && produced < options.tasks; ++i, ++produced) {
      const double seq = top / static_cast<double>(1 << std::min(level, 12)) *
                         rng.uniform(0.9, 1.1);
      tasks.emplace_back(
          power_law_profile(std::max(seq, 1e-3), rng.uniform(0.8, 0.95), options.machines),
          label("s", produced));
    }
  }
  return Instance(options.machines, std::move(tasks));
}

Instance sequential_only_instance(const GeneratorOptions& options, Rng& rng) {
  std::vector<MalleableTask> tasks;
  tasks.reserve(static_cast<std::size_t>(options.tasks));
  for (int i = 0; i < options.tasks; ++i) {
    const double seq = rng.log_uniform(options.seq_time_lo, options.seq_time_hi);
    tasks.emplace_back(sequential_profile(seq, options.machines), label("q", i));
  }
  return Instance(options.machines, std::move(tasks));
}

}  // namespace

Instance packed_instance(int machines, std::uint64_t seed, int target_tasks) {
  if (machines < 1) throw std::invalid_argument("packed_instance: machines must be >= 1");
  Rng rng(seed);
  struct Cell {
    int first_proc;
    int procs;
    double start;
    double length;
  };
  std::vector<Cell> cells{{0, machines, 0.0, 1.0}};
  const int target = target_tasks > 0 ? target_tasks : std::min(2 * machines + 4, 256);
  constexpr double kMinLength = 0.08;

  int stuck_guard = 16 * target;
  while (static_cast<int>(cells.size()) < target && stuck_guard-- > 0) {
    std::vector<double> weights;
    weights.reserve(cells.size());
    for (const auto& cell : cells) {
      weights.push_back(static_cast<double>(cell.procs) * cell.length);
    }
    const std::size_t pick = rng.weighted_index(weights);
    Cell cell = cells[pick];
    const bool can_split_procs = cell.procs > 1;
    const bool can_split_time = cell.length > 2.0 * kMinLength;
    if (!can_split_procs && !can_split_time) continue;
    const bool split_procs = can_split_procs && (!can_split_time || rng.bernoulli(0.55));
    cells.erase(cells.begin() + static_cast<std::ptrdiff_t>(pick));
    if (split_procs) {
      const int cut = static_cast<int>(rng.uniform_int(1, cell.procs - 1));
      cells.push_back({cell.first_proc, cut, cell.start, cell.length});
      cells.push_back({cell.first_proc + cut, cell.procs - cut, cell.start, cell.length});
    } else {
      const double frac = rng.uniform(0.35, 0.65);
      const double first = std::max(kMinLength, cell.length * frac);
      cells.push_back({cell.first_proc, cell.procs, cell.start, first});
      cells.push_back({cell.first_proc, cell.procs, cell.start + first, cell.length - first});
    }
  }

  std::vector<MalleableTask> tasks;
  tasks.reserve(cells.size());
  int index = 0;
  for (const auto& cell : cells) {
    const double beta = rng.uniform(0.6, 1.0);
    std::vector<double> profile(static_cast<std::size_t>(machines));
    for (int q = 1; q <= machines; ++q) {
      profile[static_cast<std::size_t>(q) - 1] =
          cell.length *
          std::pow(static_cast<double>(cell.procs) / static_cast<double>(q), beta);
    }
    tasks.emplace_back(std::move(profile), label("cell", index++));
  }
  return Instance(machines, std::move(tasks));
}

Instance generate_instance(WorkloadFamily family, const GeneratorOptions& options,
                           std::uint64_t seed) {
  Rng rng(seed);
  switch (family) {
    case WorkloadFamily::kUniform:
      return uniform_instance(options, rng);
    case WorkloadFamily::kBimodal:
      return bimodal_instance(options, rng);
    case WorkloadFamily::kHeavyTail:
      return heavy_tail_instance(options, rng);
    case WorkloadFamily::kStairs:
      return stairs_instance(options, rng);
    case WorkloadFamily::kPackedOpt1:
      return packed_instance(options.machines, seed, options.tasks);
    case WorkloadFamily::kSequentialOnly:
      return sequential_only_instance(options, rng);
  }
  throw std::invalid_argument("generate_instance: unknown family");
}

}  // namespace malsched
