#pragma once

#include <cstdint>
#include <vector>

#include "model/instance.hpp"
#include "workload/arrivals.hpp"

/// Synthetic moldable-job batch traces.
///
/// HPC schedulers face queue snapshots of jobs whose requested width is
/// negotiable -- exactly the malleable model. Real traces (e.g. parallel
/// workload archives) carry proprietary metadata, so we synthesize jobs with
/// the standard empirical shape: log-normal sequential demand and a
/// Downey-style speedup that saturates at a per-job maximum parallelism A
/// (profile flat beyond A).
namespace malsched {

struct TraceOptions {
  int machines{128};
  int jobs{80};
  double median_seq_hours{1.0};  ///< median sequential demand (arbitrary unit)
  double sigma{1.2};             ///< log-normal spread
  int max_parallelism_cap{0};    ///< 0 = machines
};

/// One queue snapshot as a malleable instance.
[[nodiscard]] Instance trace_snapshot(const TraceOptions& options, std::uint64_t seed);

/// One entry of a timestamped trace: a queue snapshot paired with the
/// instant it arrives, in seconds relative to the trace start (the replayer
/// anchors t = 0 on its own steady clock; no wall-clock source is involved).
struct TimedSnapshot {
  double arrival_seconds{0.0};
  Instance instance;
};

/// Pairs trace_snapshot() draws with an arrival process (workload/arrivals):
/// one snapshot per generated arrival instant, in arrival order. The j-th
/// snapshot is drawn from a seed forked deterministically off `seed`, and the
/// arrival instants come from generate_arrivals(arrivals, seed), so the whole
/// timed trace -- timestamps AND instances -- is a pure function of
/// (options, arrivals, seed). Throws std::invalid_argument when the arrival
/// options fail their validate().
[[nodiscard]] std::vector<TimedSnapshot> timed_trace(const TraceOptions& options,
                                                     const ArrivalOptions& arrivals,
                                                     std::uint64_t seed);

}  // namespace malsched
