#pragma once

#include <cstdint>

#include "model/instance.hpp"

/// Synthetic moldable-job batch traces.
///
/// HPC schedulers face queue snapshots of jobs whose requested width is
/// negotiable -- exactly the malleable model. Real traces (e.g. parallel
/// workload archives) carry proprietary metadata, so we synthesize jobs with
/// the standard empirical shape: log-normal sequential demand and a
/// Downey-style speedup that saturates at a per-job maximum parallelism A
/// (profile flat beyond A).
namespace malsched {

struct TraceOptions {
  int machines{128};
  int jobs{80};
  double median_seq_hours{1.0};  ///< median sequential demand (arbitrary unit)
  double sigma{1.2};             ///< log-normal spread
  int max_parallelism_cap{0};    ///< 0 = machines
};

/// One queue snapshot as a malleable instance.
[[nodiscard]] Instance trace_snapshot(const TraceOptions& options, std::uint64_t seed);

}  // namespace malsched
