#include "core/mrt_scheduler.hpp"

#include <optional>
#include <utility>
#include <vector>

#include "core/canonical.hpp"
#include "core/dual_workspace.hpp"
#include "core/malleable_list.hpp"
#include "packing/shelf.hpp"
#include "sched/compaction.hpp"
#include "sched/validate.hpp"
#include "support/math_utils.hpp"

namespace malsched {

std::string to_string(DualBranch branch) {
  switch (branch) {
    case DualBranch::kRejected:
      return "rejected";
    case DualBranch::kSingleShelf:
      return "single-shelf";
    case DualBranch::kTwoShelfKnapsack:
      return "two-shelf-knapsack";
    case DualBranch::kTwoShelfTrivial:
      return "two-shelf-trivial";
    case DualBranch::kCanonicalList:
      return "canonical-list";
    case DualBranch::kMalleableList:
      return "malleable-list";
    case DualBranch::kGap:
      return "gap";
  }
  return "unknown";
}

namespace {

/// Accepts `schedule` iff it is feasible and no longer than sqrt(3)*d
/// (after optional compaction). Every acceptance in the dual step funnels
/// through here, so no bound is ever claimed without a validated schedule.
std::optional<Schedule> accept_if_within_bound(Schedule schedule, const Instance& instance,
                                               double deadline, const MrtOptions& options) {
  if (options.use_compaction) schedule = compact_schedule(schedule, instance);
  ValidationOptions validation;
  validation.makespan_bound = kSqrt3 * deadline;
  if (!validate_schedule(schedule, instance, validation).ok) return std::nullopt;
  return schedule;
}

/// Step 2 of the dual algorithm: everything side by side at time 0.
std::optional<Schedule> single_shelf_schedule(const Instance& instance,
                                              const CanonicalAllotment& canonical) {
  ShelfAllocator shelf(instance.machines());
  Schedule schedule(instance.machines(), instance.size());
  for (int i = 0; i < instance.size(); ++i) {
    const int gamma = canonical.procs[static_cast<std::size_t>(i)];
    const auto column = shelf.allocate(gamma);
    if (!column) return std::nullopt;
    schedule.assign(i, 0.0, instance.task(i).time(gamma), *column, gamma);
  }
  return schedule;
}

/// The dual step's case split, shared by the legacy and workspace overloads:
/// the policy lambdas decide where the canonical allotment, area, and the
/// two-shelf / canonical-list branches come from; the control flow (and
/// therefore the outcome) is identical either way.
template <class AreaFn, class TwoShelfFn, class ListFn>
MrtDualOutcome dual_step_impl(const Instance& instance, const CanonicalAllotment& canonical,
                              double deadline, const MrtOptions& options, AreaFn&& area,
                              TwoShelfFn&& run_two_shelf, ListFn&& run_canonical_list) {
  MrtDualOutcome outcome;
  if (certified_infeasible(instance, canonical)) {
    outcome.branch = DualBranch::kRejected;
    outcome.certified_reject = true;
    return outcome;
  }

  outcome.canonical_area = area(canonical);
  outcome.area_condition = leq(outcome.canonical_area, area_threshold(instance, deadline));

  struct Attempt {
    DualBranch branch;
    Schedule schedule;
  };
  std::vector<Attempt> accepted;
  const auto consider = [&](DualBranch branch, std::optional<Schedule> schedule) {
    if (!schedule) return false;
    auto checked = accept_if_within_bound(std::move(*schedule), instance, deadline, options);
    if (!checked) return false;
    accepted.push_back({branch, std::move(*checked)});
    return true;
  };
  const auto done = [&] { return !accepted.empty() && !options.pick_best_branch; };

  if (canonical.total_procs <= instance.machines()) {
    consider(DualBranch::kSingleShelf, single_shelf_schedule(instance, canonical));
  }

  // Theorem 3's regime split: the list route is guaranteed for small W, the
  // knapsack route for large W. Try the guaranteed one first, fall back to
  // the other, then to the small-m malleable list algorithm.
  const auto try_two_shelf = [&] {
    if (!options.enable_two_shelf || done()) return;
    auto result = run_two_shelf();
    if (result.schedule) {
      const auto branch = result.used_trivial ? DualBranch::kTwoShelfTrivial
                                              : DualBranch::kTwoShelfKnapsack;
      consider(branch, std::move(result.schedule));
    }
  };
  const auto try_canonical_list = [&] {
    if (!options.enable_canonical_list || done()) return;
    auto result = run_canonical_list();
    consider(DualBranch::kCanonicalList, std::move(result.schedule));
  };

  if (outcome.area_condition) {
    try_canonical_list();
    try_two_shelf();
  } else {
    try_two_shelf();
    try_canonical_list();
  }
  if (options.enable_malleable_list && !done()) {
    consider(DualBranch::kMalleableList, malleable_list_schedule(instance, deadline));
  }

  if (accepted.empty()) {
    outcome.branch = DualBranch::kGap;
    return outcome;
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < accepted.size(); ++i) {
    if (accepted[i].schedule.makespan() < accepted[best].schedule.makespan()) best = i;
  }
  outcome.branch = accepted[best].branch;
  outcome.schedule = std::move(accepted[best].schedule);
  return outcome;
}

}  // namespace

MrtDualOutcome mrt_dual_step(const Instance& instance, double deadline,
                             const MrtOptions& options) {
  const auto canonical = canonical_allotment(instance, deadline);
  return dual_step_impl(
      instance, canonical, deadline, options,
      [&](const CanonicalAllotment& c) { return canonical_area(instance, c); },
      [&] { return two_shelf_schedule(instance, deadline, options.two_shelf); },
      [&] { return canonical_list_schedule(instance, deadline, options.canonical_list); });
}

MrtDualOutcome mrt_dual_step(DualWorkspace& workspace, double deadline,
                             const MrtOptions& options) {
  const Instance& instance = workspace.instance();
  // One canonical allotment per step: the branches below re-request the same
  // deadline and hit the workspace cache instead of recomputing.
  const auto& canonical = workspace.canonical(deadline);
  return dual_step_impl(
      instance, canonical, deadline, options,
      [&](const CanonicalAllotment& c) { return canonical_area(workspace, c); },
      [&] { return two_shelf_schedule(workspace, deadline, options.two_shelf); },
      [&] { return canonical_list_schedule(workspace, deadline, options.canonical_list); });
}

MrtResult mrt_schedule(const Instance& instance, const MrtOptions& options) {
  return mrt_schedule(instance, options, nullptr);
}

MrtResult mrt_schedule(const Instance& instance, const MrtOptions& options,
                       DualWorkspace* reuse) {
  std::array<int, kDualBranchCount> branch_counts{};
  // A borrowed workspace is accepted only when it was built for exactly this
  // instance; anything else (or the legacy path) gets the usual per-solve
  // local workspace, so a wrong hook degrades to the one-shot behavior.
  std::optional<DualWorkspace> local;
  DualWorkspace* workspace = nullptr;
  if (options.use_workspace) {
    if (reuse != nullptr && &reuse->instance() == &instance) {
      workspace = reuse;
    } else {
      local.emplace(instance);
      workspace = &*local;
    }
  }
  // The shared counters keep accumulating across solves on a reused
  // workspace; this solve reports its delta (0 warm-up allocations on reuse
  // is the saving the hook exists to deliver).
  const DualWorkspaceStats before = workspace ? workspace->stats() : DualWorkspaceStats{};

  const DualStep step = [&](double guess) {
    auto outcome = workspace ? mrt_dual_step(*workspace, guess, options)
                             : mrt_dual_step(instance, guess, options);
    ++branch_counts[static_cast<std::size_t>(outcome.branch)];
    DualStepResult result;
    result.schedule = std::move(outcome.schedule);
    result.certified_reject = outcome.certified_reject;
    return result;
  };

  auto search = workspace && options.snap_to_breakpoints
                    ? dual_search_snapped(*workspace, step, options.search)
                    : dual_search(instance, step, options.search);
  MrtResult result{std::move(search.schedule),
                   search.makespan,
                   search.certified_lower_bound,
                   search.ratio,
                   search.final_guess,
                   search.iterations,
                   search.gaps,
                   branch_counts,
                   0,
                   0};
  if (workspace) {
    const auto stats = workspace->stats();
    result.workspace_allocations = stats.alloc_events - before.alloc_events;
    result.canonical_evals = stats.canonical_evals - before.canonical_evals;
  }
  return result;
}

}  // namespace malsched
