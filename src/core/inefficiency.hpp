#pragma once

#include <span>

#include "model/instance.hpp"

/// The inefficiency factor of Section 4.2.
///
/// For a task allotted p processors the inefficiency factor is the expansion
/// of its area relative to the canonical one: w(p) / w(gamma). The paper
/// bounds the factor of the optimal schedule's "splashed" tasks to prove
/// that a knapsack solution lands in the feasible set (Lemmas 2-4); here it
/// is exposed for diagnostics and the tests that check its basic algebra.
namespace malsched {

/// w_task(procs) / w_task(gamma); requires 1 <= gamma <= procs <= m.
/// Always >= 1 under monotonicity.
[[nodiscard]] double inefficiency_factor(const MalleableTask& task, int procs, int gamma);

/// Aggregate factor of a set: sum of areas over sum of canonical areas.
/// `tasks`, `procs` and `gamma` are parallel arrays.
[[nodiscard]] double set_inefficiency(const Instance& instance, std::span<const int> tasks,
                                      std::span<const int> procs, std::span<const int> gamma);

}  // namespace malsched
