#include "core/inefficiency.hpp"

#include <stdexcept>

namespace malsched {

double inefficiency_factor(const MalleableTask& task, int procs, int gamma) {
  if (gamma < 1 || procs < gamma) {
    throw std::invalid_argument("inefficiency_factor: need 1 <= gamma <= procs");
  }
  return task.work(procs) / task.work(gamma);
}

double set_inefficiency(const Instance& instance, std::span<const int> tasks,
                        std::span<const int> procs, std::span<const int> gamma) {
  if (tasks.size() != procs.size() || tasks.size() != gamma.size()) {
    throw std::invalid_argument("set_inefficiency: array sizes differ");
  }
  double area = 0.0;
  double canonical = 0.0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto& task = instance.task(tasks[i]);
    area += task.work(procs[i]);
    canonical += task.work(gamma[i]);
  }
  if (canonical <= 0.0) return 1.0;
  return area / canonical;
}

}  // namespace malsched
