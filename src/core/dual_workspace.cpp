#include "core/dual_workspace.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "model/lower_bounds.hpp"
#include "support/math_utils.hpp"

namespace malsched {

namespace {

/// Deadline threshold of one profile entry: leq(a, .) is monotone
/// non-decreasing on [0, inf) (its right side d + kRelEps*max(a, d, 1) +
/// kAbsEps is), so the accepting deadlines form a half-line starting near
/// d* = a - kRelEps*max(a, 1) - kAbsEps (at the boundary d is within an ulp
/// of a, so the comparison scale max(a, d, 1) resolves to max(a, 1)). The
/// candidate is exact up to a few ulps of float rounding; lookups landing
/// inside the fuzz window around it re-run the profile binary search
/// instead, which keeps every answer byte-identical to
/// MalleableTask::min_procs_for without exact threshold computation. Three
/// flops -- cheap enough to recompute at lookup time instead of tabulating.
inline double leq_threshold(double a) {
  const double c = a >= 1.0 ? a * (1.0 - kRelEps) - kAbsEps : a - kRelEps - kAbsEps;
  return c > 0.0 ? c : 0.0;
}

/// Half-width of the ambiguity window around leq_threshold(a): hundreds of
/// ulps of the comparison scale, vastly wider than the candidate's real
/// error (a few ulps of float rounding) and still measure-zero for the dual
/// search's guesses.
inline double leq_threshold_fuzz(double a) { return 1e-13 * std::max(a, 1.0); }

/// Replays MalleableTask::min_procs_for's exact probe sequence, with every
/// predicate leq(times[mid-1], d) replaced by the equivalent
/// d >= thresholds[mid-1] (valid whenever d sits outside every threshold's
/// fuzz window). Identical probes, identical result.
int replay_min_procs(std::span<const double> thresholds, double d) {
  int lo = 1;
  int hi = static_cast<int>(thresholds.size());
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (d >= thresholds[static_cast<std::size_t>(mid) - 1]) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace

DualWorkspace::DualWorkspace(const Instance& instance)
    : instance_(&instance),
      machines_(instance.machines()),
      task_count_(instance.size()) {
  const auto n = static_cast<std::size_t>(task_count_);

  // Flattened profile index (pointers into the instance's own storage).
  profile_ptr_.resize(n);
  profile_len_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& profile = instance.task(static_cast<int>(i)).profile();
    profile_ptr_[i] = profile.data();
    profile_len_[i] = static_cast<int>(profile.size());
  }

  build_breakpoint_index();

  for (auto& hints : hints_) hints.assign(n, 0);
  canonical_.procs.reserve(n);
  order_.reserve(n);
  canonical_times_.reserve(n);
}

void DualWorkspace::build_breakpoint_index() {
  const auto n = static_cast<std::size_t>(task_count_);
  strict_.assign(n, 1);
  exc_index_.assign(n, -1);
  exc_begin_.clear();
  exc_d_.clear();
  exc_fuzz_.clear();
  exc_gamma_.clear();
  exc_begin_.push_back(0);

  // A task whose per-entry thresholds strictly decrease in p needs no
  // materialized table: segment j's start is leq_threshold(t(j)) -- three
  // flops recomputed at lookup time -- so the constructor only *classifies*
  // each task with one read pass (no per-entry writes, which would dominate
  // construction through fresh-page traffic on 10k-task instances).
  std::vector<double> thresholds;  // scratch for the rare non-strict tasks
  std::vector<std::pair<double, double>> unique_d;
  for (std::size_t i = 0; i < n; ++i) {
    const double* times = profile_ptr_[i];
    const auto length = static_cast<std::size_t>(profile_len_[i]);
    bool strictly_decreasing = true;
    double previous = leq_threshold(times[0]);
    for (std::size_t k = 1; k < length && strictly_decreasing; ++k) {
      const double current = leq_threshold(times[k]);
      strictly_decreasing = current < previous;
      previous = current;
    }
    if (strictly_decreasing) continue;

    // General case (plateaus or tolerance-level wiggles): build an explicit
    // segment table. The legacy lookup first requires leq(times.back(), d):
    // deadlines below the last entry's threshold have no allotment at all,
    // so segments only start there (profiles are non-increasing up to
    // tolerance, hence the back threshold is the smallest up to the same
    // tolerance).
    strict_[i] = 0;
    exc_index_[i] = static_cast<int>(exc_begin_.size()) - 1;
    thresholds.resize(length);
    unique_d.clear();
    for (std::size_t k = 0; k < length; ++k) {
      const double a = times[k];
      thresholds[k] = leq_threshold(a);
      unique_d.emplace_back(thresholds[k], leq_threshold_fuzz(a));
    }
    std::sort(unique_d.begin(), unique_d.end());
    const double feasible_from = thresholds[length - 1];
    const std::size_t row_begin = exc_d_.size();
    for (const auto& [d, fz] : unique_d) {
      if (d < feasible_from) continue;
      if (exc_d_.size() > row_begin && exc_d_.back() == d) {
        // Exact tie (plateau): keep one segment, widest fuzz wins.
        exc_fuzz_.back() = std::max(exc_fuzz_.back(), fz);
        continue;
      }
      // Within [d, next breakpoint) every predicate d' >= thresholds[k] is
      // constant, so the replayed search result is the segment's gamma.
      exc_d_.push_back(d);
      exc_fuzz_.push_back(fz);
      exc_gamma_.push_back(replay_min_procs(thresholds, d));
    }
    exc_begin_.push_back(exc_d_.size());
  }
}

std::optional<int> DualWorkspace::profile_min_procs(int task, double deadline) const {
  // Exact fallback for deadlines inside a breakpoint's fuzz window: the
  // same probes MalleableTask::min_procs_for performs, via the flat index.
  const double* times = profile_ptr_[static_cast<std::size_t>(task)];
  const int count = profile_len_[static_cast<std::size_t>(task)];
  if (!leq(times[count - 1], deadline)) return std::nullopt;
  int lo = 1;
  int hi = count;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (leq(times[mid - 1], deadline)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

std::optional<int> DualWorkspace::strict_min_procs(int task, double deadline, Channel channel) {
  const double* times = profile_ptr_[static_cast<std::size_t>(task)];
  const auto count = static_cast<std::size_t>(profile_len_[static_cast<std::size_t>(task)]);
  // Thresholds strictly decrease in p, so gamma(d) is the first p with
  // d >= leq_threshold(times[p-1]) -- all thresholds recomputed inline.
  const double back = leq_threshold(times[count - 1]);
  if (deadline < back - leq_threshold_fuzz(times[count - 1])) return std::nullopt;
  if (deadline <= back + leq_threshold_fuzz(times[count - 1])) {
    return profile_min_procs(task, deadline);  // feasibility boundary fuzz
  }

  ++stats_.lookup_probes;
  auto& hint = hints_[channel][static_cast<std::size_t>(task)];
  // gamma(d) is in [1, count]; the bisection narrows its bracket, so the
  // hinted gamma (or a neighbor) answers most lookups in O(1).
  const auto in_segment = [&](std::size_t g) {
    return deadline >= leq_threshold(times[g - 1]) &&
           (g == 1 || deadline < leq_threshold(times[g - 2]));
  };
  std::size_t g = hint;
  if (g < 1 || g > count) g = count;
  if (in_segment(g)) {
    ++stats_.lookup_hits;
  } else if (g < count && in_segment(g + 1)) {
    ++stats_.lookup_hits;
    ++g;
  } else if (g > 1 && in_segment(g - 1)) {
    ++stats_.lookup_hits;
    --g;
  } else {
    // replay_min_procs with the thresholds evaluated on the fly.
    std::size_t lo = 1;
    std::size_t hi = count;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (deadline >= leq_threshold(times[mid - 1])) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    g = lo;
  }
  hint = static_cast<std::uint32_t>(g);
  // Boundary fuzz: within a window of either enclosing breakpoint the
  // inline thresholds are not trusted; the exact search answers instead.
  if (deadline <= leq_threshold(times[g - 1]) + leq_threshold_fuzz(times[g - 1]) ||
      (g > 1 &&
       deadline >= leq_threshold(times[g - 2]) - leq_threshold_fuzz(times[g - 2]))) {
    return profile_min_procs(task, deadline);
  }
  return static_cast<int>(g);
}

std::optional<int> DualWorkspace::exception_min_procs(int task, double deadline,
                                                      Channel channel) {
  const auto row = static_cast<std::size_t>(exc_index_[static_cast<std::size_t>(task)]);
  const std::size_t begin = exc_begin_[row];
  const std::size_t end = exc_begin_[row + 1];
  if (begin == end) return std::nullopt;
  if (deadline < exc_d_[begin]) {
    if (deadline >= exc_d_[begin] - exc_fuzz_[begin]) return profile_min_procs(task, deadline);
    return std::nullopt;
  }
  ++stats_.lookup_probes;
  const double* const d = exc_d_.data();
  const std::size_t count = end - begin;
  auto& hint = hints_[channel][static_cast<std::size_t>(task)];
  std::size_t j = hint;
  if (j >= count) j = count - 1;
  const auto in_segment = [&](std::size_t s) {
    return d[begin + s] <= deadline && (s + 1 == count || deadline < d[begin + s + 1]);
  };
  if (in_segment(j)) {
    ++stats_.lookup_hits;
  } else if (j + 1 < count && in_segment(j + 1)) {
    ++stats_.lookup_hits;
    ++j;
  } else if (j > 0 && in_segment(j - 1)) {
    ++stats_.lookup_hits;
    --j;
  } else {
    j = static_cast<std::size_t>(
            std::upper_bound(d + begin, d + end, deadline) - (d + begin)) -
        1;
  }
  hint = static_cast<std::uint32_t>(j);
  // Boundary fuzz as in the strict path.
  if (deadline <= exc_d_[begin + j] + exc_fuzz_[begin + j] ||
      (begin + j + 1 < end && deadline >= exc_d_[begin + j + 1] - exc_fuzz_[begin + j + 1])) {
    return profile_min_procs(task, deadline);
  }
  return exc_gamma_[begin + j];
}

std::optional<int> DualWorkspace::min_procs_for(int task, double deadline, Channel channel) {
  if (strict_[static_cast<std::size_t>(task)]) {
    return strict_min_procs(task, deadline, channel);
  }
  return exception_min_procs(task, deadline, channel);
}

const CanonicalAllotment& DualWorkspace::canonical(double deadline) {
  if (canonical_valid_ && canonical_.deadline == deadline) {
    ++stats_.canonical_hits;
    return canonical_;
  }
  ++stats_.canonical_evals;
  ++generation_;
  canonical_valid_ = true;

  // Mirrors canonical_allotment(instance, deadline) term for term (same
  // lookups, same accumulation order) so the totals match bit for bit.
  canonical_.deadline = deadline;
  canonical_.feasible = true;
  canonical_.procs.clear();
  canonical_.total_work = 0.0;
  canonical_.total_procs = 0;
  for (int i = 0; i < task_count_; ++i) {
    const auto gamma = min_procs_for(i, deadline, kPrimary);
    if (!gamma || *gamma > machines_) {
      canonical_.feasible = false;
      canonical_.procs.clear();
      canonical_.total_work = 0.0;
      canonical_.total_procs = 0;
      return canonical_;
    }
    canonical_.procs.push_back(*gamma);
    canonical_.total_work += static_cast<double>(*gamma) * time(i, *gamma);
    canonical_.total_procs += *gamma;
  }
  return canonical_;
}

std::span<const int> DualWorkspace::canonical_order() {
  if (!canonical_valid_ || !canonical_.feasible) {
    throw std::logic_error("DualWorkspace::canonical_order: no feasible canonical allotment");
  }
  if (order_generation_ == generation_) return {order_.data(), order_.size()};

  const auto n = static_cast<std::size_t>(task_count_);
  detail::resize_counted(canonical_times_, n, stats_.alloc_events);
  for (std::size_t i = 0; i < n; ++i) {
    canonical_times_[i] = time(static_cast<int>(i), canonical_.procs[i]);
  }
  detail::resize_counted(order_, n, stats_.alloc_events);
  std::iota(order_.begin(), order_.end(), 0);
  // The legacy paths use std::stable_sort on the decreasing-time key (ties
  // keep the lower index first). std::sort with the explicit index
  // tie-break yields that exact permutation without stable_sort's internal
  // temporary buffer, keeping the step allocation-free.
  std::sort(order_.begin(), order_.end(), [&](int a, int b) {
    const double ta = canonical_times_[static_cast<std::size_t>(a)];
    const double tb = canonical_times_[static_cast<std::size_t>(b)];
    if (ta != tb) return ta > tb;
    return a < b;
  });
  order_generation_ = generation_;
  return {order_.data(), order_.size()};
}

std::span<const double> DualWorkspace::merged_breakpoints() {
  if (merged_built_) return {merged_.data(), merged_.size()};
  merged_built_ = true;

  // Snap domain for the breakpoint-bisecting search. It is a *navigation
  // grid*, not a correctness surface (every probe re-evaluates the real
  // predicates), so it is capped: past the cap each task contributes an
  // evenly strided sample of its segment starts, keeping the one-time sort
  // O(cap log cap) instead of O(n*m log(n*m)) on 10k-task instances.
  constexpr std::size_t kSnapDomainCap = 8192;
  std::size_t total = 0;
  for (std::size_t i = 0; i < static_cast<std::size_t>(task_count_); ++i) {
    total += static_cast<std::size_t>(profile_len_[i]);
  }
  const std::size_t stride =
      total <= kSnapDomainCap ? 1 : (total + kSnapDomainCap - 1) / kSnapDomainCap;
  merged_.clear();
  merged_.reserve(total / stride + static_cast<std::size_t>(task_count_));
  for (std::size_t i = 0; i < static_cast<std::size_t>(task_count_); ++i) {
    if (strict_[i]) {
      const double* times = profile_ptr_[i];
      for (std::size_t k = 0; k < static_cast<std::size_t>(profile_len_[i]); k += stride) {
        merged_.push_back(leq_threshold(times[k]));
      }
      continue;
    }
    const auto row = static_cast<std::size_t>(exc_index_[i]);
    for (std::size_t j = exc_begin_[row]; j < exc_begin_[row + 1]; j += stride) {
      merged_.push_back(exc_d_[j]);
    }
  }
  std::sort(merged_.begin(), merged_.end());
  merged_.erase(std::unique(merged_.begin(), merged_.end()), merged_.end());
  return {merged_.data(), merged_.size()};
}

double DualWorkspace::first_plausible_deadline() {
  if (first_plausible_ >= 0.0) return first_plausible_;
  const auto domain = merged_breakpoints();
  if (domain.empty()) {
    first_plausible_ = 0.0;
    return first_plausible_;
  }
  // Property-2 feasibility is monotone in d (the canonical allotment only
  // shrinks while the m*d budget grows), so bisect the snap domain with the
  // *real* predicate -- O(log |domain|) canonical evaluations, each answered
  // from the breakpoint tables. Certificates callers claim from points below
  // the result are genuine Property-2 evaluations, not extrapolations.
  const auto rejected = [&](double d) {
    return certified_infeasible(*instance_, canonical(d));
  };
  std::size_t lo = 0;
  std::size_t hi = domain.size() - 1;
  if (rejected(domain[hi])) {
    // Even the largest breakpoint is rejected. Past it the allotment is
    // constant, so the Property-2 crossing sits near total_work / m.
    const auto& last = canonical(domain[hi]);
    first_plausible_ =
        last.feasible
            ? std::max(domain[hi], last.total_work / static_cast<double>(machines_))
            : domain[hi];
    return first_plausible_;
  }
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (rejected(domain[mid])) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  first_plausible_ = domain[lo];
  return first_plausible_;
}

DualWorkspaceStats DualWorkspace::stats() const {
  DualWorkspaceStats out = stats_;
  out.alloc_events += two_shelf_scratch_.alloc_events + two_shelf_scratch_.knapsack.alloc_events +
                      list_scratch_.alloc_events;
  return out;
}

// ------------------------------------------------------------ snapped search

DualSearchResult dual_search_snapped(DualWorkspace& workspace, const DualStep& step,
                                     const DualSearchOptions& options) {
  if (!(options.epsilon > 0.0)) {
    throw std::invalid_argument("dual_search_snapped: epsilon must be positive");
  }
  const Instance& instance = workspace.instance();
  const double static_lb = makespan_lower_bound(instance);

  double certified_lb = static_lb;
  int iterations = 0;
  int gaps = 0;
  double final_guess = 0.0;

  std::optional<Schedule> best;
  double best_makespan = 0.0;
  const auto record_accept = [&](Schedule schedule) {
    const double makespan = schedule.makespan();
    if (!best || makespan < best_makespan) {
      best = std::move(schedule);
      best_makespan = makespan;
    }
  };
  const auto record_reject = [&](double guess, bool certified) {
    if (certified) {
      certified_lb = std::max(certified_lb, guess);
    } else {
      ++gaps;
    }
  };

  // Phase 1: start at the analytically smallest deadline Property 2 cannot
  // reject instead of ramping through certain rejections. The analytic value
  // only steers; before it may tighten the certified bound, the real
  // predicate is evaluated at a breakpoint just below it (soundness: a bound
  // moves only on an actual Property-2 certificate).
  const auto breakpoints = workspace.merged_breakpoints();
  double lo = static_lb;
  double hi = std::max(dual_ramp_start(instance), workspace.first_plausible_deadline());
  {
    const auto below = std::lower_bound(breakpoints.begin(), breakpoints.end(), hi);
    if (below != breakpoints.begin()) {
      const double probe = *std::prev(below);
      if (probe > lo &&
          certified_infeasible(instance, workspace.canonical(probe))) {
        certified_lb = std::max(certified_lb, probe);
        lo = probe;
      }
    }
  }
  bool have_hi = false;
  while (iterations < options.max_iterations && !have_hi) {
    options.cancel.poll();
    ++iterations;
    auto outcome = step(hi);
    if (outcome.schedule) {
      record_accept(std::move(*outcome.schedule));
      have_hi = true;
      final_guess = hi;
    } else {
      record_reject(hi, outcome.certified_reject);
      lo = hi;
      hi *= 2.0;
    }
  }
  if (!have_hi) {
    throw std::runtime_error(
        "dual_search_snapped: no guess accepted within the iteration budget");
  }

  // Phase 2: bisect the breakpoint *indices* inside (lo, hi) -- each probe
  // halves the number of candidate allotment changes in the bracket -- and
  // finish geometrically once the bracket is breakpoint-free.
  while (iterations < options.max_iterations && hi > lo * (1.0 + options.epsilon)) {
    options.cancel.poll();
    ++iterations;
    const auto first = std::upper_bound(breakpoints.begin(), breakpoints.end(), lo);
    const auto last = std::lower_bound(first, breakpoints.end(), hi);
    double mid;
    if (first != last) {
      mid = *(first + (last - first) / 2);
    } else {
      mid = std::sqrt(lo * hi);
      if (!(mid > lo) || !(mid < hi)) mid = lo + (hi - lo) / 2.0;
    }
    auto outcome = step(mid);
    if (outcome.schedule) {
      record_accept(std::move(*outcome.schedule));
      hi = mid;
      final_guess = mid;
    } else {
      record_reject(mid, outcome.certified_reject);
      lo = mid;
    }
  }

  const double ratio = certified_lb > 0.0 ? best_makespan / certified_lb : 1.0;
  return DualSearchResult{std::move(*best), best_makespan, certified_lb,
                          ratio,            final_guess,   iterations,
                          gaps};
}

}  // namespace malsched
