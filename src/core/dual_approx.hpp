#pragma once

#include <functional>
#include <optional>

#include "model/instance.hpp"
#include "sched/schedule.hpp"
#include "support/cancellation.hpp"

/// The dual-approximation framework of Hochbaum & Shmoys used in Section 2.2.
///
/// A rho-dual approximation, given a guess d, either returns a schedule of
/// length at most rho*d or certifies that no schedule of length d exists.
/// Dichotomic search over d converts it into a rho*(1+eps)-approximation.
///
/// This driver is deliberately defensive about *soundness*: a rejection only
/// tightens the reported lower bound when it carries a certificate
/// (Property 2). An uncertified rejection -- a "gap", which the paper's
/// theorems rule out but a reconstruction bug could introduce -- still
/// steers the search, yet is counted separately and never inflates the
/// certified bound, so the reported ratio stays honest.
namespace malsched {

/// Outcome of one dual step at guess d.
struct DualStepResult {
  /// Accepted schedule (feasible, length <= rho*d); empty means rejection.
  std::optional<Schedule> schedule;
  /// True when the rejection carries an OPT > d certificate.
  bool certified_reject{false};
};

/// A dual algorithm: guess -> accept-or-reject.
using DualStep = std::function<DualStepResult(double guess)>;

struct DualSearchOptions {
  /// Terminate when hi <= (1+epsilon) * lo.
  double epsilon{0.01};
  /// Hard cap on dual steps (exponential ramp-up + bisection).
  int max_iterations{200};
  /// Cooperative cancellation/deadline probe, polled once per dual step
  /// (each step is expensive, so no striding). Unarmed by default: the
  /// search then behaves byte-identically to a check-free build.
  CancelCheck cancel;
};

struct DualSearchResult {
  Schedule schedule;                  ///< best accepted schedule
  double makespan;                    ///< its measured length
  double certified_lower_bound;       ///< max of static LB and certified rejections
  double ratio;                       ///< makespan / certified_lower_bound
  double final_guess;                 ///< smallest accepted guess
  int iterations;
  int gaps;                           ///< uncertified rejections encountered
};

/// Runs exponential ramp-up followed by geometric bisection. `step` must
/// accept for every sufficiently large guess (all algorithms in this library
/// do: at d = sum of sequential times a trivial schedule fits); throws
/// std::runtime_error if no guess is accepted within the iteration budget.
[[nodiscard]] DualSearchResult dual_search(const Instance& instance, const DualStep& step,
                                           const DualSearchOptions& options = {});

/// The phase-1 ramp seed: the static lower bound when positive, otherwise
/// the smallest profile time (and 1.0 for an empty instance). The guard
/// matters because a zero seed can never escape the `hi *= 2` ramp -- a
/// degenerate empty instance with a picky step used to burn the whole
/// iteration budget at guess 0 and throw. Shared with dual_search_snapped.
[[nodiscard]] double dual_ramp_start(const Instance& instance);

}  // namespace malsched
