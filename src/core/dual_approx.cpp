#include "core/dual_approx.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "model/lower_bounds.hpp"

namespace malsched {

double dual_ramp_start(const Instance& instance) {
  const double static_lb = makespan_lower_bound(instance);
  if (static_lb > 0.0) return static_lb;
  double smallest = std::numeric_limits<double>::infinity();
  for (const auto& task : instance.tasks()) {
    for (const double t : task.profile()) smallest = std::min(smallest, t);
  }
  return std::isfinite(smallest) ? smallest : 1.0;
}

DualSearchResult dual_search(const Instance& instance, const DualStep& step,
                             const DualSearchOptions& options) {
  if (!(options.epsilon > 0.0)) {
    throw std::invalid_argument("dual_search: epsilon must be positive");
  }
  const double static_lb = makespan_lower_bound(instance);

  double certified_lb = static_lb;
  int iterations = 0;
  int gaps = 0;
  double final_guess = 0.0;

  std::optional<Schedule> best;
  double best_makespan = 0.0;
  const auto record_accept = [&](Schedule schedule) {
    const double makespan = schedule.makespan();
    if (!best || makespan < best_makespan) {
      best = std::move(schedule);
      best_makespan = makespan;
    }
  };
  const auto record_reject = [&](double guess, bool certified) {
    if (certified) {
      certified_lb = std::max(certified_lb, guess);
    } else {
      ++gaps;
    }
  };

  // Phase 1: ramp the guess up from the static lower bound until accepted.
  // dual_ramp_start guards the degenerate zero-bound case (empty instance),
  // where `hi *= 2.0` could never escape 0.0; for every non-degenerate
  // instance it equals static_lb, leaving the guess sequence untouched.
  double lo = static_lb;
  double hi = dual_ramp_start(instance);
  bool have_hi = false;
  while (iterations < options.max_iterations && !have_hi) {
    options.cancel.poll();
    ++iterations;
    auto outcome = step(hi);
    if (outcome.schedule) {
      record_accept(std::move(*outcome.schedule));
      have_hi = true;
      final_guess = hi;
    } else {
      record_reject(hi, outcome.certified_reject);
      lo = hi;
      hi *= 2.0;
    }
  }
  if (!have_hi) {
    throw std::runtime_error("dual_search: no guess accepted within the iteration budget");
  }

  // Phase 2: geometric bisection of [lo, hi]; hi always carries an accepted
  // schedule, lo sits below every accepted guess seen so far.
  while (iterations < options.max_iterations && hi > lo * (1.0 + options.epsilon)) {
    options.cancel.poll();
    ++iterations;
    const double mid = std::sqrt(lo * hi);
    auto outcome = step(mid);
    if (outcome.schedule) {
      record_accept(std::move(*outcome.schedule));
      hi = mid;
      final_guess = mid;
    } else {
      record_reject(mid, outcome.certified_reject);
      lo = mid;
    }
  }

  const double ratio = certified_lb > 0.0 ? best_makespan / certified_lb : 1.0;
  return DualSearchResult{std::move(*best), best_makespan, certified_lb,
                          ratio,            final_guess,   iterations,
                          gaps};
}

}  // namespace malsched
