#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "model/instance.hpp"

/// Estimating m_mu, the minimal processor count for which the canonical list
/// algorithm's Property 3 holds (paper appendix, Figure 8).
///
/// The appendix derives m_mu(mu) through a case analysis whose exact closed
/// form did not survive the scan [R]; what is recoverable is its structure
/// (the constants k* and the reallocation width) and its anchor points: the
/// coarse bound is about 20 near mu = sqrt(3)/2 and the refined analysis
/// brings it down to 8. We therefore reproduce Figure 8 empirically: an
/// adversarial estimator that, for each m, stress-tests the algorithm on
/// instances with a *built-in* schedule of length 1 satisfying Theorem 2's
/// area hypothesis, and reports the smallest m beyond which the 2*mu bound
/// was never violated.
namespace malsched {

/// Instance factory used by the estimator: (machines, seed) -> instance that
/// certifiably admits a schedule of length 1 (bench_fig8 passes the
/// `packed_instance` workload generator).
using InstanceFactory = std::function<Instance(int machines, std::uint64_t seed)>;

struct MmuEstimateOptions {
  int trials_per_m{200};     ///< instances sampled per machine count
  int scan_limit{32};        ///< largest machine count scanned
  std::uint64_t seed{1};     ///< base RNG seed
  bool use_reallocation{true};
};

struct MmuPoint {
  double mu{0.0};
  int kstar{0};
  int reallocation_width{0};
  /// Smallest m such that no 2*mu violation occurred for any m' in
  /// [m, scan_limit]; scan_limit+1 when the largest scanned m still fails.
  int empirical_m{0};
  /// Worst makespan / (2*mu) ratio observed at empirical_m (<= 1).
  double worst_ratio_at_m{0.0};
};

/// Estimates m_mu for one mu.
[[nodiscard]] MmuPoint estimate_mmu(double mu, const InstanceFactory& factory,
                                    const MmuEstimateOptions& options = {});

/// Full curve over a mu grid (Figure 8's x axis).
[[nodiscard]] std::vector<MmuPoint> mmu_curve(const std::vector<double>& mus,
                                              const InstanceFactory& factory,
                                              const MmuEstimateOptions& options = {});

}  // namespace malsched
