#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/canonical.hpp"
#include "core/canonical_list.hpp"
#include "core/dual_approx.hpp"
#include "core/two_shelf.hpp"
#include "model/instance.hpp"

/// Breakpoint-indexed scratch state for the dual-approximation hot loop.
///
/// The canonical allotment gamma_i(d) of Section 2 is a step function of the
/// guess d: it can only change where some profile time t_i(p) crosses the
/// deadline, i.e. at the n*m task-profile breakpoints. A DualWorkspace
/// precomputes, once per instance,
///
///   * a flattened structure-of-arrays index over every task profile
///     (contiguous per-task scans without vector-of-vector hops),
///   * per-task sorted breakpoint tables mapping a deadline straight to
///     gamma_i(d) -- with a per-task hint pointer the lookup is O(1)
///     amortized while the dichotomic search narrows its bracket, and
///   * reusable scratch buffers (the canonical allotment, the shared
///     canonical-area sort order, two-shelf partitions, knapsack DP tables,
///     list-scheduler availability buffers) so a *rejected* dual step
///     performs no heap allocation at all after warm-up and an accepted one
///     allocates only the returned Schedule.
///
/// Everything the workspace computes is byte-identical to the naive
/// recomputation it replaces: the breakpoint tables are built by replaying
/// MalleableTask::min_procs_for's exact binary-search probes on each
/// breakpoint segment (see dual_workspace.cpp), so gamma lookups, canonical
/// allotments, areas, and every schedule derived from them match the legacy
/// path bit for bit (tests/test_dual_workspace.cpp enforces this across all
/// generator families).
///
/// A workspace is single-threaded mutable scratch: create one per solve (the
/// mrt scheduler does) and never share it across threads. The referenced
/// Instance must outlive the workspace.
namespace malsched {

/// Running counters behind the workspace's "allocation-free after warm-up"
/// claim; exported per solve through MrtResult and the bench artifact.
struct DualWorkspaceStats {
  long long canonical_evals{0};  ///< canonical allotments actually computed
  long long canonical_hits{0};   ///< served from the same-deadline cache
  long long lookup_probes{0};    ///< gamma lookups answered
  long long lookup_hits{0};      ///< ... answered by the hint pointer alone
  long long alloc_events{0};     ///< scratch buffer growths (incl. sub-scratches)
};

namespace detail {

/// Resizes `vec`, counting an allocation event when capacity had to grow --
/// every workspace scratch buffer is resized through this so the
/// allocation-free claim stays auditable.
template <class Vec>
void resize_counted(Vec& vec, std::size_t size, long long& alloc_events) {
  if (vec.capacity() < size) ++alloc_events;
  vec.resize(size);
}

}  // namespace detail

class DualWorkspace {
 public:
  explicit DualWorkspace(const Instance& instance);

  DualWorkspace(const DualWorkspace&) = delete;
  DualWorkspace& operator=(const DualWorkspace&) = delete;

  [[nodiscard]] const Instance& instance() const noexcept { return *instance_; }

  /// Hint channels for the amortized-O(1) lookups: distinct deadline streams
  /// (the guess d vs. the two-shelf's lambda*d) get separate hint pointers so
  /// they do not evict each other.
  enum Channel : int { kPrimary = 0, kSecondary = 1 };
  static constexpr int kChannelCount = 2;

  /// gamma lookup, byte-identical to instance().task(task).min_procs_for(d)
  /// for every deadline >= 0 (the dual search never guesses below 0).
  [[nodiscard]] std::optional<int> min_procs_for(int task, double deadline,
                                                 Channel channel = kPrimary);

  /// t_task(procs) through the flattened profile index.
  [[nodiscard]] double time(int task, int procs) const {
    return profile_ptr_[static_cast<std::size_t>(task)][procs - 1];
  }

  /// The canonical allotment at `deadline`, computed into a reused internal
  /// buffer (cached when `deadline` repeats). Byte-identical to
  /// canonical_allotment(instance(), deadline); the reference is invalidated
  /// by the next canonical() call with a different deadline.
  [[nodiscard]] const CanonicalAllotment& canonical(double deadline);

  /// Task order by non-increasing t_i(gamma_i) for the *current* canonical
  /// allotment -- the one sort per dual step that canonical_area and the
  /// canonical list algorithm share. Requires a feasible canonical().
  [[nodiscard]] std::span<const int> canonical_order();

  /// t_i(gamma_i) keys matching canonical_order(). Requires canonical_order()
  /// to have been computed for the current allotment.
  [[nodiscard]] std::span<const double> canonical_times() const {
    return {canonical_times_.data(), canonical_times_.size()};
  }

  /// Merged strictly-increasing snap domain of task-profile breakpoints (the
  /// deadlines where some gamma_i changes); built lazily on first use and
  /// capped by an even per-task sample on very large instances -- it only
  /// steers the snapped search, every probe re-evaluates real predicates.
  [[nodiscard]] std::span<const double> merged_breakpoints();

  /// Smallest snap-domain breakpoint that Property 2 does not certify as
  /// infeasible (canonical allotment fits m processors, canonical work fits
  /// m*d), found by bisecting merged_breakpoints() with the *real*
  /// certificate predicate -- so points below it that were probed are
  /// genuinely certified rejections.
  [[nodiscard]] double first_plausible_deadline();

  [[nodiscard]] TwoShelfScratch& two_shelf_scratch() noexcept { return two_shelf_scratch_; }
  [[nodiscard]] CanonicalListScratch& list_scratch() noexcept { return list_scratch_; }

  /// Counter snapshot with alloc_events aggregated over all sub-scratches.
  [[nodiscard]] DualWorkspaceStats stats() const;

 private:
  [[nodiscard]] std::optional<int> strict_min_procs(int task, double deadline, Channel channel);
  [[nodiscard]] std::optional<int> exception_min_procs(int task, double deadline,
                                                      Channel channel);
  [[nodiscard]] std::optional<int> profile_min_procs(int task, double deadline) const;
  void build_breakpoint_index();

  const Instance* instance_;
  int machines_;
  int task_count_;

  // Flattened profile index: task i's profile is the contiguous run
  // profile_ptr_[i][0 .. profile_len_[i]) inside the instance (no copy --
  // touching n*m fresh pages would dominate construction; per-task scans
  // are contiguous either way).
  std::vector<const double*> profile_ptr_;
  std::vector<int> profile_len_;

  // Breakpoint index. For a task whose per-entry deadline thresholds are
  // strictly decreasing in p (virtually every real profile), the threshold
  // is a three-flop pure function of the profile entry, so no table is
  // materialized at all -- lookups evaluate it inline on the SoA profile and
  // the hint pointer caches the last gamma. Only non-strict tasks (plateaus,
  // tolerance-level wiggles) get explicit segment tables below: within
  // [exc_d_[j], exc_d_[j+1]) the legacy binary search returns exc_gamma_[j].
  // Deadlines within a breakpoint's fuzz window re-run the exact profile
  // binary search instead of trusting either path (byte-identity without
  // exact threshold construction).
  std::vector<char> strict_;     ///< per task: inline-threshold fast path?
  std::vector<int> exc_index_;   ///< per task: row in exc_begin_, or -1
  std::vector<std::size_t> exc_begin_;
  std::vector<double> exc_d_;
  std::vector<double> exc_fuzz_;
  std::vector<int> exc_gamma_;
  std::array<std::vector<std::uint32_t>, kChannelCount> hints_;

  // Canonical-allotment cache and the shared per-step sort.
  CanonicalAllotment canonical_;
  bool canonical_valid_{false};
  std::uint64_t generation_{0};
  std::uint64_t order_generation_{static_cast<std::uint64_t>(-1)};
  std::vector<int> order_;
  std::vector<double> canonical_times_;

  // Lazily built snap domain + Property-2 prefilter (-1 = not yet computed).
  bool merged_built_{false};
  std::vector<double> merged_;
  double first_plausible_{-1.0};

  TwoShelfScratch two_shelf_scratch_;
  CanonicalListScratch list_scratch_;
  DualWorkspaceStats stats_;
};

/// Breakpoint-snapped dual search: same contract as dual_search (and the
/// same soundness discipline -- only certificates evaluated with the real
/// Property-2 predicate ever tighten the reported lower bound), but the
/// guesses are steered by the workspace's breakpoint index instead of blind
/// geometric ramping: phase 1 starts at the analytically smallest
/// non-certified deadline (skipping every provably rejected guess), and
/// phase 2 bisects the merged breakpoint *indices* inside the bracket before
/// finishing geometrically. Schedules differ from dual_search only through
/// the different guess sequence; the certified bound stays sound and the
/// final bracket still satisfies hi <= (1+epsilon)*lo.
[[nodiscard]] DualSearchResult dual_search_snapped(DualWorkspace& workspace,
                                                   const DualStep& step,
                                                   const DualSearchOptions& options = {});

}  // namespace malsched
