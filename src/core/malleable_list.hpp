#pragma once

#include <optional>

#include "model/instance.hpp"
#include "sched/schedule.hpp"

/// The Malleable List Algorithm of Section 3.1 (Theorem 1).
///
/// A (2 - 2/(m+1)) dual approximation: assuming a schedule of length d
/// exists,
///   * Allotment: each task gets the minimal number of processors p_i whose
///     execution time is at most g*d with g = 2 - 2/(m+1);
///   * Scheduling: list-schedule by non-increasing *sequential* time.
///
/// Theorem 1's argument (reconstructed from the scan): a task allotted >= 2
/// processors has, by Property 1 w.r.t. the threshold g*d, an execution time
/// exceeding g*d/2 = (m/(m+1))*d. Property 2 bounds the total allotted work
/// by m*d (p_i <= gamma_i(d) since g >= 1), so the parallel tasks need fewer
/// than m+1 processors in total -- they all start at time 0, and their
/// sequential times exceed g*d, so the decreasing-sequential-time order
/// places them first. The remaining tasks are sequential and the list rule
/// degenerates to LPT, which finishes them by g*d.
///
/// Since g <= sqrt(3) iff m <= 6, this branch certifies the sqrt(3) bound on
/// small machines, complementing the canonical-list regime (m >= m_mu).
namespace malsched {

/// Worst-case dual guarantee of the algorithm: 2 - 2/(m+1).
[[nodiscard]] double malleable_list_guarantee(int machines);

/// Runs the algorithm for guess `deadline`. Returns std::nullopt only with a
/// Property-2 certificate that no schedule of length `deadline` exists
/// (missing canonical allotment or canonical work above m*d); otherwise the
/// returned schedule is feasible and -- per Theorem 1 -- no longer than
/// malleable_list_guarantee(m) * deadline (the caller re-validates).
[[nodiscard]] std::optional<Schedule> malleable_list_schedule(const Instance& instance,
                                                              double deadline);

}  // namespace malsched
