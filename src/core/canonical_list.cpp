#include "core/canonical_list.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/canonical.hpp"
#include "core/dual_workspace.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/sliding.hpp"
#include "support/math_utils.hpp"

namespace malsched {

int kstar(double mu) {
  if (!(mu > 0.5) || !(mu < 1.0)) {
    throw std::invalid_argument("kstar: mu must lie in (1/2, 1)");
  }
  // Largest k with k/(k+1) strictly below mu; walk down from a safe upper
  // bound so borderline ratios (e.g. mu = 0.8, k = 4) are not admitted
  // through floating-point noise in mu/(1-mu).
  auto k = static_cast<int>(mu / (1.0 - mu)) + 1;
  while (k > 1 &&
         !(static_cast<double>(k) / static_cast<double>(k + 1) < mu - 1e-12)) {
    --k;
  }
  return k;
}

int reallocation_width(double mu) { return (kstar(mu) + 2) / 2; }

namespace {

/// Leftmost window of `width` processors that are all still idle at time 0,
/// or -1 when none exists.
int find_idle_window(const std::vector<double>& avail, int width) {
  int run = 0;
  for (int j = 0; j < static_cast<int>(avail.size()); ++j) {
    run = avail[static_cast<std::size_t>(j)] == 0.0 ? run + 1 : 0;
    if (run >= width) return j - width + 1;
  }
  return -1;
}

/// List scheduling with the appendix's one-shot reallocation, shared by both
/// canonical_list_schedule overloads: the first task forced off the first
/// level may instead be squeezed, narrower, onto processors still idle at
/// time 0. All working storage is caller-owned so the workspace path runs
/// allocation-free (the legacy path passes locals).
Schedule reallocation_schedule(const Instance& instance, std::span<const int> allotment,
                               std::span<const int> order, int khat, bool& reallocated,
                               CanonicalListScratch& scratch, const CancelCheck& cancel) {
  const int machines = instance.machines();
  Schedule schedule(machines, instance.size());
  auto& avail = scratch.avail;
  detail::resize_counted(avail, static_cast<std::size_t>(machines), scratch.alloc_events);
  std::fill(avail.begin(), avail.end(), 0.0);
  if (scratch.ready.capacity() < static_cast<std::size_t>(machines) ||
      scratch.window.capacity() < static_cast<std::size_t>(machines)) {
    ++scratch.alloc_events;
    scratch.ready.reserve(static_cast<std::size_t>(machines));
    scratch.window.reserve(static_cast<std::size_t>(machines));
  }
  bool reallocation_considered = false;
  reallocated = false;

  for (const int task : order) {
    cancel.tick();
    const int procs = allotment[static_cast<std::size_t>(task)];
    const double duration = instance.task(task).time(procs);

    sliding_window_max_into(avail, procs, scratch.ready, scratch.window);
    const auto& ready = scratch.ready;
    double earliest = std::numeric_limits<double>::infinity();
    for (const double r : ready) earliest = std::min(earliest, r);
    const bool starts_at_zero = approx_eq(earliest, 0.0);

    if (!starts_at_zero && !reallocation_considered) {
      reallocation_considered = true;  // the rule applies only to the first such task
      const int width = std::min(procs, khat);
      const int idle =
          static_cast<int>(std::count(avail.begin(), avail.end(), 0.0));
      const int column = find_idle_window(avail, width);
      if (idle >= khat && column >= 0) {
        // Work monotonicity bounds the squeezed time by (procs/width)*t(procs)
        // <= 2*t(procs) since width >= ceil(procs/2) whenever procs <= k*+1.
        const double squeezed = instance.task(task).time(width);
        schedule.assign(task, 0.0, squeezed, column, width);
        for (int j = column; j < column + width; ++j) {
          avail[static_cast<std::size_t>(j)] = squeezed;
        }
        reallocated = true;
        continue;
      }
    }

    // Paper tie rule: leftmost window when starting at 0, rightmost after.
    int column = -1;
    if (starts_at_zero) {
      for (std::size_t s = 0; s < ready.size(); ++s) {
        if (approx_eq(ready[s], earliest)) {
          column = static_cast<int>(s);
          break;
        }
      }
    } else {
      for (std::size_t s = ready.size(); s-- > 0;) {
        if (approx_eq(ready[s], earliest)) {
          column = static_cast<int>(s);
          break;
        }
      }
    }
    schedule.assign(task, earliest, duration, column, procs);
    for (int j = column; j < column + procs; ++j) {
      avail[static_cast<std::size_t>(j)] = earliest + duration;
    }
  }
  return schedule;
}

}  // namespace

CanonicalListOutcome canonical_list_schedule(const Instance& instance, double deadline,
                                             const CanonicalListOptions& options) {
  CanonicalListOutcome outcome;
  const auto canonical = canonical_allotment(instance, deadline);
  if (certified_infeasible(instance, canonical)) return outcome;

  outcome.canonical_area = canonical_area(instance, canonical);
  outcome.area_condition =
      leq(outcome.canonical_area, options.mu * static_cast<double>(instance.machines()) *
                                      deadline);

  const auto& allotment = canonical.procs;
  const auto order = order_by_decreasing_alloted_time(instance, allotment);

  if (!options.use_reallocation) {
    outcome.schedule = list_schedule(instance, allotment, order);
    return outcome;
  }

  CanonicalListScratch scratch;
  outcome.schedule = reallocation_schedule(instance, allotment, order,
                                           reallocation_width(options.mu), outcome.reallocated,
                                           scratch, options.cancel);
  return outcome;
}

CanonicalListOutcome canonical_list_schedule(DualWorkspace& workspace, double deadline,
                                             const CanonicalListOptions& options) {
  const Instance& instance = workspace.instance();
  CanonicalListOutcome outcome;
  const auto& canonical = workspace.canonical(deadline);
  if (certified_infeasible(instance, canonical)) return outcome;

  outcome.canonical_area = canonical_area(workspace, canonical);
  outcome.area_condition =
      leq(outcome.canonical_area, options.mu * static_cast<double>(instance.machines()) *
                                      deadline);

  // The workspace order is the same permutation order_by_decreasing_alloted_time
  // produces (decreasing t_i(gamma_i), ties on the lower index), computed at
  // most once per dual step.
  const auto order = workspace.canonical_order();
  const auto& allotment = canonical.procs;

  if (!options.use_reallocation) {
    outcome.schedule = list_schedule(instance, allotment, order);
    return outcome;
  }

  outcome.schedule = reallocation_schedule(instance, allotment, order,
                                           reallocation_width(options.mu), outcome.reallocated,
                                           workspace.list_scratch(), options.cancel);
  return outcome;
}

}  // namespace malsched
