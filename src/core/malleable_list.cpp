#include "core/malleable_list.hpp"

#include <vector>

#include "core/canonical.hpp"
#include "sched/list_scheduler.hpp"

namespace malsched {

double malleable_list_guarantee(int machines) {
  return 2.0 - 2.0 / (static_cast<double>(machines) + 1.0);
}

std::optional<Schedule> malleable_list_schedule(const Instance& instance, double deadline) {
  const auto canonical = canonical_allotment(instance, deadline);
  if (certified_infeasible(instance, canonical)) return std::nullopt;

  // Allot against the *relaxed* threshold g*d; since g >= 1 this never asks
  // for more processors than gamma_i(d), so Property 2 still bounds the area.
  const double threshold = malleable_list_guarantee(instance.machines()) * deadline;
  std::vector<int> allotment(static_cast<std::size_t>(instance.size()));
  for (int i = 0; i < instance.size(); ++i) {
    const auto procs = instance.task(i).min_procs_for(threshold);
    // Feasibility was certified above and threshold >= deadline, so a
    // processor count always exists.
    allotment[static_cast<std::size_t>(i)] = *procs;
  }

  const auto order = order_by_decreasing_seq_time(instance);
  return list_schedule(instance, allotment, order);
}

}  // namespace malsched
