#pragma once

#include <array>
#include <optional>
#include <string>

#include "core/canonical_list.hpp"
#include "core/dual_approx.hpp"
#include "core/two_shelf.hpp"
#include "model/instance.hpp"
#include "sched/schedule.hpp"

/// The combined sqrt(3) dual approximation of Mounie, Rapine & Trystram
/// (Theorem 3) and its dichotomic-search wrapper -- the library's primary
/// public entry point.
///
/// For a guess d the dual step (Theorem 3's case split, reconstructed):
///   1. Certified rejection via Property 2 (missing canonical allotment or
///      canonical work above m*d).
///   2. If the canonical allotment fits m processors outright, a single
///      shelf of length d suffices.
///   3. Otherwise, route on the canonical area W against mu*m*d:
///      the knapsack two-shelf construction when W is large, the canonical
///      list algorithm when W is small; each falls back to the other, then
///      to the malleable list algorithm (which alone certifies sqrt(3) for
///      m <= 6). An acceptance always carries a *validated* schedule of
///      length <= sqrt(3)*d; if every branch misses the bound (impossible
///      per the paper; conceivable only through a reconstruction gap) the
///      step reports an uncertified rejection that never inflates the
///      certified lower bound.
///
/// mrt_schedule() then runs dual_search, yielding a schedule within
/// sqrt(3)*(1+eps) of the certified lower bound (Section 2.2's conversion).
namespace malsched {

/// Which rule produced (or refused) the schedule at one dual step.
enum class DualBranch {
  kRejected = 0,         ///< certified OPT > d
  kSingleShelf,          ///< canonical allotment fits m processors
  kTwoShelfKnapsack,     ///< Section 4 knapsack lambda-schedule
  kTwoShelfTrivial,      ///< Section 4.5 trivial solution
  kCanonicalList,        ///< Section 3.2 list schedule
  kMalleableList,        ///< Section 3.1 list schedule
  kGap,                  ///< nothing accepted, nothing certified
};
inline constexpr int kDualBranchCount = 7;

[[nodiscard]] std::string to_string(DualBranch branch);

struct MrtOptions {
  TwoShelfOptions two_shelf{};
  CanonicalListOptions canonical_list{};
  DualSearchOptions search{};
  /// Slide tasks earlier after construction (never hurts the bound).
  bool use_compaction{true};
  /// Branch toggles for ablation studies.
  bool enable_two_shelf{true};
  bool enable_canonical_list{true};
  bool enable_malleable_list{true};
  /// Evaluate every branch and keep the shortest accepted schedule instead
  /// of stopping at the first success (ablation; slower, never worse).
  bool pick_best_branch{false};
  /// Run the search through a DualWorkspace (breakpoint-indexed gamma
  /// lookups, one canonical allotment + sort per step shared across
  /// branches, allocation-free rejected steps). Byte-identical schedules and
  /// bounds to the recompute-everything path (property-tested); disable only
  /// for A/B measurements.
  bool use_workspace{true};
  /// Replace the blind geometric dual search with the breakpoint-snapped
  /// variant (requires use_workspace). Fewer rejected guesses; the guess
  /// sequence -- hence the exact schedule -- may differ from the default
  /// search, so this is opt-in.
  bool snap_to_breakpoints{false};
};

/// Result of one dual step at a fixed guess (exposed for tests/benches).
struct MrtDualOutcome {
  DualBranch branch{DualBranch::kGap};
  std::optional<Schedule> schedule;  ///< present iff accepted
  bool certified_reject{false};
  double canonical_area{0.0};        ///< W at this guess (0 when rejected)
  bool area_condition{false};        ///< W <= mu*m*d
};

/// Runs the sqrt(3) dual step at `deadline`.
[[nodiscard]] MrtDualOutcome mrt_dual_step(const Instance& instance, double deadline,
                                           const MrtOptions& options = {});

/// Workspace-aware overload: byte-identical outcome, with the canonical
/// allotment, area sort, and branch scratch shared through `workspace`.
[[nodiscard]] MrtDualOutcome mrt_dual_step(DualWorkspace& workspace, double deadline,
                                           const MrtOptions& options = {});

/// Full solve: dichotomic search over guesses.
struct MrtResult {
  Schedule schedule;
  double makespan{0.0};
  double lower_bound{0.0};  ///< certified lower bound on OPT
  double ratio{0.0};        ///< makespan / lower_bound (<= sqrt(3)(1+eps) when gap-free)
  double final_guess{0.0};
  int iterations{0};
  int gaps{0};
  /// How often each branch fired across the search, indexed by DualBranch.
  std::array<int, kDualBranchCount> branch_counts{};
  /// Workspace counters (0 on the legacy path): scratch growths across the
  /// whole solve -- the hot loop's allocation audit -- and canonical
  /// allotments actually computed vs. served from the per-step cache.
  long long workspace_allocations{0};
  long long canonical_evals{0};
};

[[nodiscard]] MrtResult mrt_schedule(const Instance& instance, const MrtOptions& options = {});

/// As above, optionally reusing a caller-owned workspace across solves of
/// the same instance (the serving-path hook: a SchedulerService worker keeps
/// one DualWorkspace per instance it sees, so repeated cache-miss solves
/// skip rebuilding the breakpoint index). `reuse` is taken only when
/// `options.use_workspace` is on AND it was built for exactly `instance`
/// (same object); otherwise a fresh local workspace is used, so a stale
/// pointer degrades to the one-shot path instead of corrupting the solve.
///
/// Schedules, bounds, iterations, and branch counts are byte-identical to
/// the fresh-workspace solve (every workspace lookup is byte-identical to
/// the naive recomputation regardless of scratch warm-up). The
/// workspace.allocations / canonical_evals counters report per-solve DELTAS
/// of the shared counters: a reused workspace legitimately reports fewer
/// warm-up allocations -- that saving is the point of the hook.
[[nodiscard]] MrtResult mrt_schedule(const Instance& instance, const MrtOptions& options,
                                     DualWorkspace* reuse);

}  // namespace malsched
