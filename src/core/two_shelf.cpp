#include "core/two_shelf.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/canonical.hpp"
#include "core/dual_workspace.hpp"
#include "knapsack/knapsack.hpp"
#include "packing/first_fit.hpp"
#include "packing/shelf.hpp"
#include "support/math_utils.hpp"

namespace malsched {

namespace {

using detail::TwoShelfMigrant;

struct Partition {
  std::vector<int>* s1;  ///< tall tasks, t_i(gamma_i) > lambda*d
  std::vector<int>* s2;  ///< medium tasks, d/2 < t <= lambda*d
  std::vector<int>* s3;  ///< small sequential tasks, t <= d/2
  long long q1{0};
  long long q2{0};
  long long q3{0};
};

Partition make_partition(const Instance& instance, const CanonicalAllotment& canonical,
                         double deadline, double lambda, TwoShelfScratch& scratch) {
  Partition part{&scratch.s1, &scratch.s2, &scratch.s3, 0, 0, 0};
  scratch.s1.clear();
  scratch.s2.clear();
  scratch.s3.clear();
  const double lambda_d = lambda * deadline;
  const double half_d = deadline / 2.0;
  long long s1_procs = 0;
  for (int i = 0; i < instance.size(); ++i) {
    const int gamma = canonical.procs[static_cast<std::size_t>(i)];
    const double time = instance.task(i).time(gamma);
    if (!leq(time, lambda_d)) {
      scratch.s1.push_back(i);
      s1_procs += gamma;
    } else if (gamma == 1 && leq(time, half_d)) {
      // Property 1 makes every t <= d/2 task sequential; the gamma check is
      // numerical defensiveness only.
      scratch.s3.push_back(i);
    } else {
      scratch.s2.push_back(i);
      part.q2 += gamma;
    }
  }
  part.q1 = s1_procs - instance.machines();
  if (!scratch.s3.empty()) {
    scratch.sizes.clear();
    for (const int i : scratch.s3) scratch.sizes.push_back(instance.task(i).time(1));
    part.q3 = first_fit_bin_count_reusing(scratch.sizes, lambda_d, scratch.ff_loads);
  }
  return part;
}

/// Builds the standard lambda-schedule for migrated set `migrants`
/// (subset of the candidates): shelf 1 carries S1 minus the migrants,
/// shelf 2 the migrants + S2 + S3. Returns nullopt if a shelf overflows
/// (cannot happen when the knapsack feasibility conditions hold; kept as a
/// defensive check so no invalid schedule ever escapes).
std::optional<Schedule> build_lambda_schedule(const Instance& instance,
                                              const CanonicalAllotment& canonical,
                                              const Partition& part, double deadline,
                                              double lambda,
                                              const std::vector<TwoShelfMigrant>& migrants,
                                              TwoShelfScratch& scratch) {
  const int machines = instance.machines();
  const double lambda_d = lambda * deadline;
  Schedule schedule(machines, instance.size());

  scratch.migrated.assign(static_cast<std::size_t>(instance.size()), 0);
  for (const auto& candidate : migrants) {
    scratch.migrated[static_cast<std::size_t>(candidate.task)] = 1;
  }

  ShelfAllocator shelf1(machines);
  for (const int i : *part.s1) {
    if (scratch.migrated[static_cast<std::size_t>(i)]) continue;
    const int gamma = canonical.procs[static_cast<std::size_t>(i)];
    const auto column = shelf1.allocate(gamma);
    if (!column) return std::nullopt;
    schedule.assign(i, 0.0, instance.task(i).time(gamma), *column, gamma);
  }

  ShelfAllocator shelf2(machines);
  for (const auto& candidate : migrants) {
    const auto column = shelf2.allocate(candidate.gamma_lambda);
    if (!column) return std::nullopt;
    schedule.assign(candidate.task, deadline,
                    instance.task(candidate.task).time(candidate.gamma_lambda), *column,
                    candidate.gamma_lambda);
  }
  for (const int i : *part.s2) {
    const int gamma = canonical.procs[static_cast<std::size_t>(i)];
    const auto column = shelf2.allocate(gamma);
    if (!column) return std::nullopt;
    schedule.assign(i, deadline, instance.task(i).time(gamma), *column, gamma);
  }
  if (!part.s3->empty()) {
    // scratch.sizes still holds the S3 sequential times from make_partition;
    // the packing is rebuilt into reused storage (identical to first_fit()).
    first_fit_into(scratch.sizes, lambda_d, scratch.ff_packing);
    const auto& packing = scratch.ff_packing;
    for (int b = 0; b < packing.bin_count(); ++b) {
      const auto column = shelf2.allocate(1);
      if (!column) return std::nullopt;
      double offset = 0.0;
      for (const int item : packing.bins[static_cast<std::size_t>(b)]) {
        const int task = (*part.s3)[static_cast<std::size_t>(item)];
        const double time = instance.task(task).time(1);
        schedule.assign(task, deadline + offset, time, *column, 1);
        offset += time;
      }
    }
  }
  return schedule;
}

/// Builds a *trivial solution* of 4_lambda: `lone` alone on shelf 2; every
/// other task -- including S2 and the First-Fit-packed S3 -- on shelf 1.
std::optional<Schedule> build_trivial_schedule(const Instance& instance,
                                               const CanonicalAllotment& canonical,
                                               const Partition& part, double deadline,
                                               double lambda, const TwoShelfMigrant& lone,
                                               TwoShelfScratch& scratch) {
  const int machines = instance.machines();
  const double lambda_d = lambda * deadline;
  Schedule schedule(machines, instance.size());

  ShelfAllocator shelf1(machines);
  for (const int i : *part.s1) {
    if (i == lone.task) continue;
    const int gamma = canonical.procs[static_cast<std::size_t>(i)];
    const auto column = shelf1.allocate(gamma);
    if (!column) return std::nullopt;
    schedule.assign(i, 0.0, instance.task(i).time(gamma), *column, gamma);
  }
  for (const int i : *part.s2) {
    const int gamma = canonical.procs[static_cast<std::size_t>(i)];
    const auto column = shelf1.allocate(gamma);
    if (!column) return std::nullopt;
    schedule.assign(i, 0.0, instance.task(i).time(gamma), *column, gamma);
  }
  if (!part.s3->empty()) {
    first_fit_into(scratch.sizes, lambda_d, scratch.ff_packing);
    const auto& packing = scratch.ff_packing;
    for (int b = 0; b < packing.bin_count(); ++b) {
      const auto column = shelf1.allocate(1);
      if (!column) return std::nullopt;
      double offset = 0.0;
      for (const int item : packing.bins[static_cast<std::size_t>(b)]) {
        const int task = (*part.s3)[static_cast<std::size_t>(item)];
        const double time = instance.task(task).time(1);
        schedule.assign(task, offset, time, *column, 1);
        offset += time;
      }
    }
  }

  ShelfAllocator shelf2(machines);
  const auto column = shelf2.allocate(lone.gamma_lambda);
  if (!column) return std::nullopt;
  schedule.assign(lone.task, deadline, instance.task(lone.task).time(lone.gamma_lambda),
                  *column, lone.gamma_lambda);
  return schedule;
}

/// The Section-4 case analysis shared by both overloads. `gamma_lambda(i)`
/// resolves min procs for deadline lambda*d (the workspace path answers it
/// from the breakpoint index, byte-identically to the profile binary
/// search). `canonical` must already have survived the Property-2 test.
template <class GammaLambdaFn>
TwoShelfOutcome two_shelf_run(const Instance& instance, const CanonicalAllotment& canonical,
                              double deadline, const TwoShelfOptions& options,
                              TwoShelfScratch& scratch, GammaLambdaFn&& gamma_lambda) {
  TwoShelfOutcome outcome;
  const auto part = make_partition(instance, canonical, deadline, options.lambda, scratch);
  outcome.s1_count = static_cast<int>(part.s1->size());
  outcome.s2_count = static_cast<int>(part.s2->size());
  outcome.s3_count = static_cast<int>(part.s3->size());
  outcome.q1 = part.q1;
  outcome.q2 = part.q2;
  outcome.q3 = part.q3;
  const long long capacity = instance.machines() - part.q2 - part.q3;
  outcome.knapsack_capacity = capacity;

  // Knapsack candidates: S1 tasks that *can* meet the lambda*d deadline.
  const double lambda_d = options.lambda * deadline;
  auto& candidates = scratch.candidates;
  auto& items = scratch.items;
  candidates.clear();
  items.clear();
  for (const int i : *part.s1) {
    const auto gl = gamma_lambda(i, lambda_d);
    if (!gl || *gl > instance.machines()) continue;
    const int gamma = canonical.procs[static_cast<std::size_t>(i)];
    candidates.push_back({i, gamma, *gl});
    items.push_back({*gl, gamma});
  }

  const auto select_to_schedule = [&](const KnapsackSelection& selection) {
    auto& migrants = scratch.migrants;
    migrants.clear();
    for (const int idx : selection.items) {
      migrants.push_back(candidates[static_cast<std::size_t>(idx)]);
    }
    return build_lambda_schedule(instance, canonical, part, deadline, options.lambda, migrants,
                                 scratch);
  };

  if (capacity >= 0) {
    // Fast path shared by both modes: a single candidate already covering q1
    // (the paper folds these into the trivial set 4_lambda).
    for (std::size_t idx = 0; idx < items.size(); ++idx) {
      if (items[idx].profit >= part.q1 && items[idx].weight <= capacity) {
        KnapsackSelection single;
        single.items = {static_cast<int>(idx)};
        single.weight = items[idx].weight;
        single.profit = items[idx].profit;
        if (auto schedule = select_to_schedule(single)) {
          outcome.knapsack_profit = single.profit;
          outcome.schedule = std::move(schedule);
          return outcome;
        }
      }
    }

    KnapsackSelection selection;
    if (options.knapsack == KnapsackMode::kExact) {
      // knapsack_exact_auto degrades to branch and bound instead of
      // std::length_error when the DP table would blow the memory guard.
      selection = knapsack_exact_auto(items, capacity, scratch.knapsack, &options.cancel);
    } else {
      selection = knapsack_fptas(items, capacity, options.fptas_eps);
      if (selection.profit < part.q1 && part.q1 > 0) {
        // Lemma 2's dual route: approximate (P') and accept when its weight
        // still fits the second shelf.
        if (const auto dual = min_knapsack_approx(items, part.q1, options.fptas_eps);
            dual && dual->weight <= capacity) {
          selection = *dual;
          outcome.used_dual_knapsack = true;
        }
      }
    }
    outcome.knapsack_profit = selection.profit;
    if (selection.profit >= part.q1) {
      if (auto schedule = select_to_schedule(selection)) {
        outcome.schedule = std::move(schedule);
        return outcome;
      }
    }
  }

  if (options.try_trivial) {
    // Section 4.5: one huge task alone on the short shelf, everything else
    // (S1 remainder, S2, S3) packed on the long shelf.
    for (const auto& candidate : candidates) {
      if (candidate.gamma >= part.q1 + part.q2 + part.q3) {
        if (auto schedule = build_trivial_schedule(instance, canonical, part, deadline,
                                                   options.lambda, candidate, scratch)) {
          outcome.used_trivial = true;
          outcome.schedule = std::move(schedule);
          return outcome;
        }
      }
    }
  }
  return outcome;
}

}  // namespace

TwoShelfOutcome two_shelf_schedule(const Instance& instance, double deadline,
                                   const TwoShelfOptions& options) {
  const auto canonical = canonical_allotment(instance, deadline);
  if (certified_infeasible(instance, canonical)) {
    TwoShelfOutcome outcome;
    outcome.certified_reject = true;
    return outcome;
  }
  TwoShelfScratch scratch;
  return two_shelf_run(instance, canonical, deadline, options, scratch,
                       [&](int i, double lambda_d) {
                         return instance.task(i).min_procs_for(lambda_d);
                       });
}

TwoShelfOutcome two_shelf_schedule(DualWorkspace& workspace, double deadline,
                                   const TwoShelfOptions& options) {
  const Instance& instance = workspace.instance();
  const auto& canonical = workspace.canonical(deadline);
  if (certified_infeasible(instance, canonical)) {
    TwoShelfOutcome outcome;
    outcome.certified_reject = true;
    return outcome;
  }
  auto& scratch = workspace.two_shelf_scratch();
  // Capacity fingerprint before/after: an attempt that grew any scratch
  // buffer counts one allocation event, keeping the workspace's
  // allocation-free-after-warm-up claim auditable for this branch too.
  const auto capacity_fingerprint = [&] {
    std::size_t fingerprint = scratch.s1.capacity() + scratch.s2.capacity() +
                              scratch.s3.capacity() + scratch.sizes.capacity() +
                              scratch.candidates.capacity() + scratch.migrants.capacity() +
                              scratch.items.capacity() + scratch.migrated.capacity() +
                              scratch.ff_loads.capacity() + scratch.ff_packing.loads.capacity() +
                              scratch.ff_packing.bins.capacity();
    for (const auto& bin : scratch.ff_packing.bins) fingerprint += bin.capacity();
    return fingerprint;
  };
  const std::size_t before = capacity_fingerprint();
  auto outcome = two_shelf_run(instance, canonical, deadline, options, scratch,
                               [&](int i, double lambda_d) {
                                 return workspace.min_procs_for(i, lambda_d,
                                                                DualWorkspace::kSecondary);
                               });
  if (capacity_fingerprint() != before) ++scratch.alloc_events;
  return outcome;
}

}  // namespace malsched
