#include "core/two_shelf.hpp"

#include <algorithm>
#include <vector>

#include "core/canonical.hpp"
#include "knapsack/knapsack.hpp"
#include "packing/first_fit.hpp"
#include "packing/shelf.hpp"
#include "support/math_utils.hpp"

namespace malsched {

namespace {

/// A task of S1 that may migrate to the second shelf.
struct MigrantCandidate {
  int task{0};
  int gamma{0};         ///< canonical processors for deadline d
  int gamma_lambda{0};  ///< minimal processors for deadline lambda*d
};

struct Partition {
  std::vector<int> s1;  ///< tall tasks, t_i(gamma_i) > lambda*d
  std::vector<int> s2;  ///< medium tasks, d/2 < t <= lambda*d
  std::vector<int> s3;  ///< small sequential tasks, t <= d/2
  long long q1{0};
  long long q2{0};
  long long q3{0};
};

Partition make_partition(const Instance& instance, const CanonicalAllotment& canonical,
                         double deadline, double lambda) {
  Partition part;
  const double lambda_d = lambda * deadline;
  const double half_d = deadline / 2.0;
  long long s1_procs = 0;
  for (int i = 0; i < instance.size(); ++i) {
    const int gamma = canonical.procs[static_cast<std::size_t>(i)];
    const double time = instance.task(i).time(gamma);
    if (!leq(time, lambda_d)) {
      part.s1.push_back(i);
      s1_procs += gamma;
    } else if (gamma == 1 && leq(time, half_d)) {
      // Property 1 makes every t <= d/2 task sequential; the gamma check is
      // numerical defensiveness only.
      part.s3.push_back(i);
    } else {
      part.s2.push_back(i);
      part.q2 += gamma;
    }
  }
  part.q1 = s1_procs - instance.machines();
  if (!part.s3.empty()) {
    std::vector<double> sizes;
    sizes.reserve(part.s3.size());
    for (const int i : part.s3) sizes.push_back(instance.task(i).time(1));
    part.q3 = first_fit_bin_count(sizes, lambda_d);
  }
  return part;
}

/// Builds the standard lambda-schedule for migrated set `migrants`
/// (subset of the candidates): shelf 1 carries S1 minus the migrants,
/// shelf 2 the migrants + S2 + S3. Returns nullopt if a shelf overflows
/// (cannot happen when the knapsack feasibility conditions hold; kept as a
/// defensive check so no invalid schedule ever escapes).
std::optional<Schedule> build_lambda_schedule(const Instance& instance,
                                              const CanonicalAllotment& canonical,
                                              const Partition& part, double deadline,
                                              double lambda,
                                              const std::vector<MigrantCandidate>& migrants) {
  const int machines = instance.machines();
  const double lambda_d = lambda * deadline;
  Schedule schedule(machines, instance.size());

  std::vector<char> migrated(static_cast<std::size_t>(instance.size()), 0);
  for (const auto& candidate : migrants) {
    migrated[static_cast<std::size_t>(candidate.task)] = 1;
  }

  ShelfAllocator shelf1(machines);
  for (const int i : part.s1) {
    if (migrated[static_cast<std::size_t>(i)]) continue;
    const int gamma = canonical.procs[static_cast<std::size_t>(i)];
    const auto column = shelf1.allocate(gamma);
    if (!column) return std::nullopt;
    schedule.assign(i, 0.0, instance.task(i).time(gamma), *column, gamma);
  }

  ShelfAllocator shelf2(machines);
  for (const auto& candidate : migrants) {
    const auto column = shelf2.allocate(candidate.gamma_lambda);
    if (!column) return std::nullopt;
    schedule.assign(candidate.task, deadline,
                    instance.task(candidate.task).time(candidate.gamma_lambda), *column,
                    candidate.gamma_lambda);
  }
  for (const int i : part.s2) {
    const int gamma = canonical.procs[static_cast<std::size_t>(i)];
    const auto column = shelf2.allocate(gamma);
    if (!column) return std::nullopt;
    schedule.assign(i, deadline, instance.task(i).time(gamma), *column, gamma);
  }
  if (!part.s3.empty()) {
    std::vector<double> sizes;
    sizes.reserve(part.s3.size());
    for (const int i : part.s3) sizes.push_back(instance.task(i).time(1));
    const auto packing = first_fit(sizes, lambda_d);
    for (int b = 0; b < packing.bin_count(); ++b) {
      const auto column = shelf2.allocate(1);
      if (!column) return std::nullopt;
      double offset = 0.0;
      for (const int item : packing.bins[static_cast<std::size_t>(b)]) {
        const int task = part.s3[static_cast<std::size_t>(item)];
        const double time = instance.task(task).time(1);
        schedule.assign(task, deadline + offset, time, *column, 1);
        offset += time;
      }
    }
  }
  return schedule;
}

/// Builds a *trivial solution* of 4_lambda: `lone` alone on shelf 2; every
/// other task -- including S2 and the First-Fit-packed S3 -- on shelf 1.
std::optional<Schedule> build_trivial_schedule(const Instance& instance,
                                               const CanonicalAllotment& canonical,
                                               const Partition& part, double deadline,
                                               double lambda, const MigrantCandidate& lone) {
  const int machines = instance.machines();
  const double lambda_d = lambda * deadline;
  Schedule schedule(machines, instance.size());

  ShelfAllocator shelf1(machines);
  for (const int i : part.s1) {
    if (i == lone.task) continue;
    const int gamma = canonical.procs[static_cast<std::size_t>(i)];
    const auto column = shelf1.allocate(gamma);
    if (!column) return std::nullopt;
    schedule.assign(i, 0.0, instance.task(i).time(gamma), *column, gamma);
  }
  for (const int i : part.s2) {
    const int gamma = canonical.procs[static_cast<std::size_t>(i)];
    const auto column = shelf1.allocate(gamma);
    if (!column) return std::nullopt;
    schedule.assign(i, 0.0, instance.task(i).time(gamma), *column, gamma);
  }
  if (!part.s3.empty()) {
    std::vector<double> sizes;
    sizes.reserve(part.s3.size());
    for (const int i : part.s3) sizes.push_back(instance.task(i).time(1));
    const auto packing = first_fit(sizes, lambda_d);
    for (int b = 0; b < packing.bin_count(); ++b) {
      const auto column = shelf1.allocate(1);
      if (!column) return std::nullopt;
      double offset = 0.0;
      for (const int item : packing.bins[static_cast<std::size_t>(b)]) {
        const int task = part.s3[static_cast<std::size_t>(item)];
        const double time = instance.task(task).time(1);
        schedule.assign(task, offset, time, *column, 1);
        offset += time;
      }
    }
  }

  ShelfAllocator shelf2(machines);
  const auto column = shelf2.allocate(lone.gamma_lambda);
  if (!column) return std::nullopt;
  schedule.assign(lone.task, deadline, instance.task(lone.task).time(lone.gamma_lambda),
                  *column, lone.gamma_lambda);
  return schedule;
}

}  // namespace

TwoShelfOutcome two_shelf_schedule(const Instance& instance, double deadline,
                                   const TwoShelfOptions& options) {
  TwoShelfOutcome outcome;
  const auto canonical = canonical_allotment(instance, deadline);
  if (certified_infeasible(instance, canonical)) {
    outcome.certified_reject = true;
    return outcome;
  }

  const auto part = make_partition(instance, canonical, deadline, options.lambda);
  outcome.s1_count = static_cast<int>(part.s1.size());
  outcome.s2_count = static_cast<int>(part.s2.size());
  outcome.s3_count = static_cast<int>(part.s3.size());
  outcome.q1 = part.q1;
  outcome.q2 = part.q2;
  outcome.q3 = part.q3;
  const long long capacity = instance.machines() - part.q2 - part.q3;
  outcome.knapsack_capacity = capacity;

  // Knapsack candidates: S1 tasks that *can* meet the lambda*d deadline.
  const double lambda_d = options.lambda * deadline;
  std::vector<MigrantCandidate> candidates;
  std::vector<KnapsackItem> items;
  for (const int i : part.s1) {
    const auto gl = instance.task(i).min_procs_for(lambda_d);
    if (!gl || *gl > instance.machines()) continue;
    const int gamma = canonical.procs[static_cast<std::size_t>(i)];
    candidates.push_back({i, gamma, *gl});
    items.push_back({*gl, gamma});
  }

  const auto select_to_schedule = [&](const KnapsackSelection& selection) {
    std::vector<MigrantCandidate> migrants;
    migrants.reserve(selection.items.size());
    for (const int idx : selection.items) {
      migrants.push_back(candidates[static_cast<std::size_t>(idx)]);
    }
    return build_lambda_schedule(instance, canonical, part, deadline, options.lambda, migrants);
  };

  if (capacity >= 0) {
    // Fast path shared by both modes: a single candidate already covering q1
    // (the paper folds these into the trivial set 4_lambda).
    for (std::size_t idx = 0; idx < items.size(); ++idx) {
      if (items[idx].profit >= part.q1 && items[idx].weight <= capacity) {
        KnapsackSelection single;
        single.items = {static_cast<int>(idx)};
        single.weight = items[idx].weight;
        single.profit = items[idx].profit;
        if (auto schedule = select_to_schedule(single)) {
          outcome.knapsack_profit = single.profit;
          outcome.schedule = std::move(schedule);
          return outcome;
        }
      }
    }

    KnapsackSelection selection;
    if (options.knapsack == KnapsackMode::kExact) {
      selection = knapsack_exact(items, capacity);
    } else {
      selection = knapsack_fptas(items, capacity, options.fptas_eps);
      if (selection.profit < part.q1 && part.q1 > 0) {
        // Lemma 2's dual route: approximate (P') and accept when its weight
        // still fits the second shelf.
        if (const auto dual = min_knapsack_approx(items, part.q1, options.fptas_eps);
            dual && dual->weight <= capacity) {
          selection = *dual;
          outcome.used_dual_knapsack = true;
        }
      }
    }
    outcome.knapsack_profit = selection.profit;
    if (selection.profit >= part.q1) {
      if (auto schedule = select_to_schedule(selection)) {
        outcome.schedule = std::move(schedule);
        return outcome;
      }
    }
  }

  if (options.try_trivial) {
    // Section 4.5: one huge task alone on the short shelf, everything else
    // (S1 remainder, S2, S3) packed on the long shelf.
    for (const auto& candidate : candidates) {
      if (candidate.gamma >= part.q1 + part.q2 + part.q3) {
        if (auto schedule = build_trivial_schedule(instance, canonical, part, deadline,
                                                   options.lambda, candidate)) {
          outcome.used_trivial = true;
          outcome.schedule = std::move(schedule);
          return outcome;
        }
      }
    }
  }
  return outcome;
}

}  // namespace malsched
