#pragma once

#include <optional>
#include <vector>

#include "knapsack/knapsack.hpp"
#include "model/instance.hpp"
#include "packing/first_fit.hpp"
#include "sched/schedule.hpp"
#include "support/cancellation.hpp"

/// The knapsack-based two-shelf construction of Section 4.
///
/// For a guess d (assume OPT <= d) and lambda = sqrt(3) - 1, the instance is
/// partitioned by canonical execution time t_i(gamma_i(d)):
///
///   S1 = { i : t_i(gamma_i) >  lambda*d }   "tall" tasks
///   S2 = { i : d/2 < t_i(gamma_i) <= lambda*d }
///   S3 = { i : t_i(gamma_i) <= d/2 }         sequential by Property 1
///
/// with q1 = sum_{S1} gamma_i - m (first-shelf processor overflow),
/// q2 = sum_{S2} gamma_i, and q3 = FF(S3, lambda*d) (processors First Fit
/// needs for the small tasks under deadline lambda*d).
///
/// A *lambda-schedule* consists of two shelves: shelf 1 (window [0, d])
/// carries S1 \ S at canonical allotment; shelf 2 (window [d, d + lambda*d])
/// carries the migrated set S (allotted gamma^lambda_i = min procs for time
/// <= lambda*d), all of S2 (canonical allotment), and S3 packed by First
/// Fit. The subset S is feasible iff
///
///   sum_{S} gamma_i        >= q1             (shelf 1 fits in m), and
///   sum_{S} gamma^lambda_i <= m - q2 - q3    (shelf 2 fits in m),
///
/// which is exactly the knapsack problem (P): maximize sum gamma_i subject
/// to sum gamma^lambda_i <= m - q2 - q3. The paper proves (Lemma 2-4) that
/// whenever OPT <= d and the canonical area W exceeds mu*m*d, either the
/// knapsack (exactly, or via its FPTAS together with the dual (P')) or a
/// linear-time "trivial solution" (one huge task alone on shelf 2) yields a
/// feasible lambda-schedule -- total length (1 + lambda)*d = sqrt(3)*d.
namespace malsched {

class DualWorkspace;

namespace detail {

/// An S1 task that may migrate to the second shelf (the knapsack's ground
/// set); exposed here only so TwoShelfScratch can reuse its storage.
struct TwoShelfMigrant {
  int task{0};
  int gamma{0};         ///< canonical processors for deadline d
  int gamma_lambda{0};  ///< minimal processors for deadline lambda*d
};

}  // namespace detail

/// Reusable buffers for the workspace-aware two-shelf path: one per
/// DualWorkspace, cleared (capacity retained) on every attempt so a dual
/// step allocates nothing here after warm-up. `alloc_events` counts the
/// attempts on which some buffer's capacity grew (audited by the workspace
/// overload of two_shelf_schedule).
struct TwoShelfScratch {
  std::vector<int> s1;
  std::vector<int> s2;
  std::vector<int> s3;
  std::vector<double> sizes;  ///< S3 sequential times (First Fit input)
  std::vector<detail::TwoShelfMigrant> candidates;
  std::vector<detail::TwoShelfMigrant> migrants;
  std::vector<KnapsackItem> items;
  std::vector<char> migrated;
  std::vector<double> ff_loads;  ///< First Fit bin loads for q3 counting
  BinPacking ff_packing;         ///< reused S3 packing for schedule builds
  KnapsackScratch knapsack;
  long long alloc_events{0};
};

/// Knapsack backend for the allotment selection.
enum class KnapsackMode {
  kExact,  ///< pseudo-polynomial DP, O(|S1| * m) -- exact (Section 4.3)
  kFptas,  ///< approximation scheme on (P) with fallback to (P') (Section 4.4)
};

struct TwoShelfOptions {
  /// Second-shelf length as a fraction of d; the paper's lambda = sqrt(3)-1.
  double lambda{0.7320508075688772};
  KnapsackMode knapsack{KnapsackMode::kExact};
  /// Epsilon for the FPTAS backend (ignored in exact mode).
  double fptas_eps{0.05};
  /// Also scan for the paper's trivial solutions (Section 4.5).
  bool try_trivial{true};
  /// Cooperative cancellation/deadline probe, forwarded into the knapsack
  /// branch-and-bound (ticked per explored node, strided) -- the one
  /// potentially exponential corner of the construction. Unarmed by default
  /// (byte-identical selections).
  CancelCheck cancel;
};

/// Diagnostics of a two-shelf attempt (consumed by bench_regimes).
struct TwoShelfOutcome {
  /// The lambda-schedule, length <= (1+lambda)*d; std::nullopt when no
  /// feasible subset was found (or infeasibility was certified).
  std::optional<Schedule> schedule;

  bool certified_reject{false};  ///< Property-2 certificate fired
  bool used_trivial{false};      ///< solved by a trivial solution of 4_lambda
  bool used_dual_knapsack{false};///< (P') provided the subset (FPTAS mode)

  // Partition snapshot.
  int s1_count{0};
  int s2_count{0};
  int s3_count{0};
  long long q1{0};
  long long q2{0};
  long long q3{0};
  long long knapsack_capacity{0};  ///< m - q2 - q3
  long long knapsack_profit{0};    ///< achieved sum of gamma_i over S
};

/// Attempts to build a lambda-schedule for guess `deadline`.
[[nodiscard]] TwoShelfOutcome two_shelf_schedule(const Instance& instance, double deadline,
                                                 const TwoShelfOptions& options = {});

/// Workspace-aware overload: identical outcome byte for byte, but the
/// canonical allotment is shared through the workspace's per-step cache, the
/// gamma^lambda lookups use the breakpoint index, and every intermediate
/// container (partition, candidates, knapsack DP tables, First Fit loads)
/// lives in reused scratch -- only an accepted Schedule allocates.
[[nodiscard]] TwoShelfOutcome two_shelf_schedule(DualWorkspace& workspace, double deadline,
                                                 const TwoShelfOptions& options = {});

}  // namespace malsched
