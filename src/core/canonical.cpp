#include "core/canonical.hpp"

#include <algorithm>

#include "support/math_utils.hpp"

namespace malsched {

CanonicalAllotment canonical_allotment(const Instance& instance, double deadline) {
  CanonicalAllotment result;
  result.deadline = deadline;
  result.feasible = true;
  result.procs.reserve(static_cast<std::size_t>(instance.size()));
  for (const auto& task : instance.tasks()) {
    const auto gamma = task.min_procs_for(deadline);
    if (!gamma || *gamma > instance.machines()) {
      result.feasible = false;
      result.procs.clear();
      result.total_work = 0.0;
      result.total_procs = 0;
      return result;
    }
    result.procs.push_back(*gamma);
    result.total_work += task.work(*gamma);
    result.total_procs += *gamma;
  }
  return result;
}

bool certified_infeasible(const Instance& instance, const CanonicalAllotment& allotment) {
  if (!allotment.feasible) return true;
  const double budget = static_cast<double>(instance.machines()) * allotment.deadline;
  return !leq(allotment.total_work, budget);
}

bool property1_holds(const MalleableTask& task, int gamma, double deadline) {
  if (gamma < 2) return true;
  const double bound =
      static_cast<double>(gamma - 1) / static_cast<double>(gamma) * deadline;
  return task.time(gamma) > bound - kAbsEps;
}

double canonical_area(const Instance& instance, const CanonicalAllotment& allotment) {
  if (!allotment.feasible) return 0.0;
  const int machines = instance.machines();

  std::vector<int> order(static_cast<std::size_t>(instance.size()));
  for (int i = 0; i < instance.size(); ++i) order[static_cast<std::size_t>(i)] = i;
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return instance.task(a).time(allotment.procs[static_cast<std::size_t>(a)]) >
           instance.task(b).time(allotment.procs[static_cast<std::size_t>(b)]);
  });

  double area = 0.0;
  long long procs_used = 0;
  for (const int i : order) {
    const int gamma = allotment.procs[static_cast<std::size_t>(i)];
    const double time = instance.task(i).time(gamma);
    if (procs_used + gamma >= machines) {
      // Task k of Definition 1: only the slice up to processor m counts.
      area += static_cast<double>(machines - procs_used) * time;
      return area;
    }
    area += static_cast<double>(gamma) * time;
    procs_used += gamma;
  }
  return area;  // stacking never filled the first m processors
}

double area_threshold(const Instance& instance, double deadline) {
  return kMu * static_cast<double>(instance.machines()) * deadline;
}

}  // namespace malsched
