#include "core/canonical.hpp"

#include <algorithm>
#include <span>

#include "core/dual_workspace.hpp"
#include "support/math_utils.hpp"

namespace malsched {

CanonicalAllotment canonical_allotment(const Instance& instance, double deadline) {
  CanonicalAllotment result;
  result.deadline = deadline;
  result.feasible = true;
  result.procs.reserve(static_cast<std::size_t>(instance.size()));
  for (const auto& task : instance.tasks()) {
    const auto gamma = task.min_procs_for(deadline);
    if (!gamma || *gamma > instance.machines()) {
      result.feasible = false;
      result.procs.clear();
      result.total_work = 0.0;
      result.total_procs = 0;
      return result;
    }
    result.procs.push_back(*gamma);
    result.total_work += task.work(*gamma);
    result.total_procs += *gamma;
  }
  return result;
}

bool certified_infeasible(const Instance& instance, const CanonicalAllotment& allotment) {
  if (!allotment.feasible) return true;
  const double budget = static_cast<double>(instance.machines()) * allotment.deadline;
  return !leq(allotment.total_work, budget);
}

bool property1_holds(const MalleableTask& task, int gamma, double deadline) {
  if (gamma < 2) return true;
  const double bound =
      static_cast<double>(gamma - 1) / static_cast<double>(gamma) * deadline;
  return task.time(gamma) > bound - kAbsEps;
}

namespace {

/// Definition 1's stacking sum, shared by both canonical_area overloads:
/// `times[i]` must equal t_i(procs[i]) and `order` must list the tasks by
/// non-increasing time with ties on the lower index (the legacy
/// stable_sort's order), or the fractional cut lands on the wrong task.
double stacked_area(std::span<const int> order, std::span<const int> procs,
                    std::span<const double> times, int machines) {
  double area = 0.0;
  long long procs_used = 0;
  for (const int i : order) {
    const int gamma = procs[static_cast<std::size_t>(i)];
    const double time = times[static_cast<std::size_t>(i)];
    if (procs_used + gamma >= machines) {
      // Task k of Definition 1: only the slice up to processor m counts.
      area += static_cast<double>(machines - procs_used) * time;
      return area;
    }
    area += static_cast<double>(gamma) * time;
    procs_used += gamma;
  }
  return area;  // stacking never filled the first m processors
}

}  // namespace

double canonical_area(const Instance& instance, const CanonicalAllotment& allotment) {
  if (!allotment.feasible) return 0.0;

  // Legacy path: one stable_sort per call. Ties keep the lower task index
  // first -- the workspace path reproduces exactly this permutation (with an
  // explicit index tie-break), so both overloads stack in the same order.
  std::vector<int> order(static_cast<std::size_t>(instance.size()));
  for (int i = 0; i < instance.size(); ++i) order[static_cast<std::size_t>(i)] = i;
  std::vector<double> times(order.size());
  for (int i = 0; i < instance.size(); ++i) {
    times[static_cast<std::size_t>(i)] =
        instance.task(i).time(allotment.procs[static_cast<std::size_t>(i)]);
  }
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return times[static_cast<std::size_t>(a)] > times[static_cast<std::size_t>(b)];
  });

  return stacked_area(order, allotment.procs, times, instance.machines());
}

double canonical_area(DualWorkspace& workspace, const CanonicalAllotment& allotment) {
  if (!allotment.feasible) return 0.0;
  const auto order = workspace.canonical_order();
  return stacked_area(order, allotment.procs, workspace.canonical_times(),
                      workspace.instance().machines());
}

double area_threshold(const Instance& instance, double deadline) {
  return kMu * static_cast<double>(instance.machines()) * deadline;
}

}  // namespace malsched
