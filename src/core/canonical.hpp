#pragma once

#include <optional>
#include <vector>

#include "model/instance.hpp"

/// Canonical allotments and the quantities of Section 2 of the paper.
///
/// For a dual guess d (the hypothesized optimal makespan), the *canonical
/// number of processors* of task i is gamma_i(d) = min{p : t_i(p) <= d}.
/// Everything in the paper's analysis is phrased relative to this allotment.
namespace malsched {

class DualWorkspace;

/// Canonical allotment of a whole instance for deadline `deadline`.
struct CanonicalAllotment {
  double deadline{0.0};

  /// True when every task admits gamma_i(deadline) (i.e. t_i(m) <= d).
  /// When false, `procs` is empty and OPT > deadline is *certified*.
  bool feasible{false};

  /// gamma_i(deadline) per task (only when feasible).
  std::vector<int> procs;

  /// Sum over tasks of canonical work w_i(gamma_i).
  double total_work{0.0};

  /// Sum over tasks of gamma_i.
  long long total_procs{0};
};

/// Computes the canonical allotment (binary search per task, O(n log m)).
[[nodiscard]] CanonicalAllotment canonical_allotment(const Instance& instance, double deadline);

/// Property 2 rejection test: if OPT <= d then total canonical work <= m*d.
/// Returns true when the instance is *certifiably* infeasible at `deadline`
/// (either some gamma_i is undefined or the area bound fails).
[[nodiscard]] bool certified_infeasible(const Instance& instance,
                                        const CanonicalAllotment& allotment);

/// Property 1: for gamma_i >= 2, t_i(gamma_i) > (gamma_i - 1)/gamma_i * d.
/// Checked for a single task; the test suite sweeps it across generators.
[[nodiscard]] bool property1_holds(const MalleableTask& task, int gamma, double deadline);

/// The canonical area W of Definition 1: tasks sorted by non-increasing
/// canonical time are stacked onto an unbounded machine; W is the fractional
/// area falling on the first m processors. With k the minimal index such
/// that the prefix processor sum reaches m,
///   W = sum_{j<=k} w_j - (prefix_procs - m) * t_k(gamma_k),
/// and simply the total canonical work when the sum never reaches m.
[[nodiscard]] double canonical_area(const Instance& instance,
                                    const CanonicalAllotment& allotment);

/// Workspace-aware overload: identical value, but the decreasing-time order
/// comes from the workspace's once-per-step sort (shared with the canonical
/// list algorithm) instead of a fresh stable_sort per call. `allotment` must
/// be the workspace's current canonical allotment.
[[nodiscard]] double canonical_area(DualWorkspace& workspace,
                                    const CanonicalAllotment& allotment);

/// The paper's regime threshold: the knapsack route is guaranteed when
/// W >= mu * m * d with mu = sqrt(3)/2, the list route when below [R].
[[nodiscard]] double area_threshold(const Instance& instance, double deadline);

}  // namespace malsched
