#pragma once

#include <optional>
#include <vector>

#include "model/instance.hpp"
#include "sched/schedule.hpp"
#include "support/cancellation.hpp"

/// The Canonical List Algorithm of Section 3.2 (Theorem 2) with the
/// appendix's reallocation refinement.
///
/// Allotment: every task gets its canonical number of processors
/// gamma_i(d). Scheduling: list by non-increasing canonical execution time,
/// ties broken leftmost when starting at time 0 and rightmost otherwise
/// (which keeps the schedule contiguous).
///
/// Guarantee (Theorem 2): when the instance admits a schedule of length d,
/// the canonical area W is at most mu*m*d [R], and m >= m_mu, every task of
/// the first two levels completes by 2*mu*d (Property 3) and every other
/// task is sequential, shorter than d/2, and completes by 3d/2 (Lemma 1).
/// With mu = sqrt(3)/2 both bounds are sqrt(3)*d.
///
/// Appendix refinement: when the first task reaching the second level still
/// finds at least khat = ceil((k*+1)/2) processors idle on the first level
/// (k* the largest k with k/(k+1) < mu), it is *reallocated*: squeezed onto
/// khat first-level processors instead. Halving the processors at most
/// doubles the execution time (work monotonicity), keeping it within
/// 2*mu*d, and removes the pathological stair that forces large m_mu.
namespace malsched {

class DualWorkspace;

/// Reusable buffers for the workspace-aware canonical-list path (processor
/// availability, sliding-window maxima, and the monotone-queue ring).
struct CanonicalListScratch {
  std::vector<double> avail;
  std::vector<double> ready;
  std::vector<int> window;
  long long alloc_events{0};
};

struct CanonicalListOptions {
  /// Regime parameter; the paper's choice is sqrt(3)/2.
  double mu{0.8660254037844386};
  /// Apply the appendix's reallocation rule.
  bool use_reallocation{true};
  /// Cooperative cancellation/deadline probe, ticked once per placed task
  /// (strided -- see CancelCheck), so a 10k-task placement loop stops within
  /// one stride of cancel()/expiry. Unarmed by default (byte-identical
  /// schedules).
  CancelCheck cancel;
};

/// Diagnostics accompanying a canonical-list run.
struct CanonicalListOutcome {
  /// Feasible schedule; std::nullopt only with a Property-2 certificate
  /// that no schedule of length `deadline` exists.
  std::optional<Schedule> schedule;
  /// Canonical area W of Definition 1 (0 when rejected).
  double canonical_area{0.0};
  /// True when W <= mu * m * d, i.e. Theorem 2's hypothesis holds and the
  /// 2*mu*d bound is guaranteed (for m >= m_mu).
  bool area_condition{false};
  /// True when the reallocation rule fired.
  bool reallocated{false};
};

/// Largest k with k/(k+1) < mu; tasks short enough for the second shelf
/// never need more than k*+1 canonical processors (Property 1).
[[nodiscard]] int kstar(double mu);

/// Width ceil((k*+1)/2) used by the reallocation rule.
[[nodiscard]] int reallocation_width(double mu);

/// Runs the algorithm for guess `deadline`.
[[nodiscard]] CanonicalListOutcome canonical_list_schedule(
    const Instance& instance, double deadline, const CanonicalListOptions& options = {});

/// Workspace-aware overload: byte-identical outcome, but the canonical
/// allotment, area, and priority order come from the workspace's shared
/// per-step cache (one sort per dual step instead of one per branch) and the
/// list loop runs out of reused scratch -- only the returned Schedule
/// allocates.
[[nodiscard]] CanonicalListOutcome canonical_list_schedule(
    DualWorkspace& workspace, double deadline, const CanonicalListOptions& options = {});

}  // namespace malsched
