#include "core/mmu.hpp"

#include <algorithm>

#include "core/canonical.hpp"
#include "core/canonical_list.hpp"
#include "support/math_utils.hpp"
#include "support/rng.hpp"

namespace malsched {

MmuPoint estimate_mmu(double mu, const InstanceFactory& factory,
                      const MmuEstimateOptions& options) {
  MmuPoint point;
  point.mu = mu;
  point.kstar = kstar(mu);
  point.reallocation_width = reallocation_width(mu);

  CanonicalListOptions list_options;
  list_options.mu = mu;
  list_options.use_reallocation = options.use_reallocation;

  Rng seeds(options.seed);
  int last_violation_m = 1;
  std::vector<double> worst_ratio(static_cast<std::size_t>(options.scan_limit) + 1, 0.0);

  for (int machines = 2; machines <= options.scan_limit; ++machines) {
    for (int trial = 0; trial < options.trials_per_m; ++trial) {
      const Instance instance = factory(machines, seeds.fork_seed());

      // Theorem 2's hypothesis: the instance admits a schedule of length 1
      // (guaranteed by the factory) *and* the canonical area is small.
      const auto canonical = canonical_allotment(instance, 1.0);
      if (!canonical.feasible) continue;
      const double area = canonical_area(instance, canonical);
      if (!leq(area, mu * static_cast<double>(machines))) continue;

      const auto outcome = canonical_list_schedule(instance, 1.0, list_options);
      if (!outcome.schedule) continue;
      const double ratio = outcome.schedule->makespan() / (2.0 * mu);
      worst_ratio[static_cast<std::size_t>(machines)] =
          std::max(worst_ratio[static_cast<std::size_t>(machines)], ratio);
      if (!leq(outcome.schedule->makespan(), 2.0 * mu)) {
        last_violation_m = machines;
      }
    }
  }

  point.empirical_m = std::min(last_violation_m + 1, options.scan_limit + 1);
  point.empirical_m = std::max(point.empirical_m, 2);
  if (point.empirical_m <= options.scan_limit) {
    point.worst_ratio_at_m = worst_ratio[static_cast<std::size_t>(point.empirical_m)];
  }
  return point;
}

std::vector<MmuPoint> mmu_curve(const std::vector<double>& mus, const InstanceFactory& factory,
                                const MmuEstimateOptions& options) {
  std::vector<MmuPoint> curve;
  curve.reserve(mus.size());
  for (const double mu : mus) curve.push_back(estimate_mmu(mu, factory, options));
  return curve;
}

}  // namespace malsched
