"""Layering DAG check over the #include graph.

The architecture is a strict layering (low layers must not include high
ones):

    support -> model -> {knapsack, packing, sched} -> core -> baselines
        -> {graph, workload} -> registry -> exec -> api
        -> {bench, examples, tests, tools}

Edges are read out of the quoted #include directives the shared lexer
kept inside pp tokens (system includes are out of scope). A file's layer
is its directory under src/ (everything outside src/ is the top layer and
may include anything); a `// lint:layer(<dir>)` directive pins a file to
a layer explicitly, which is how the fixtures simulate a misplaced file.

A violation reports the back-edge and, when the included file reaches
back into the includer's layer through further includes, the full
offending chain -- the cycle that makes the layering unbuildable as
separate libraries.
"""

import collections
import os
import re

from .engine import Diagnostic, TreeRule

LAYER_RANK = {
    "support": 0,
    "model": 10,
    "knapsack": 20,
    "packing": 20,
    "sched": 20,
    "core": 30,
    "baselines": 40,
    "graph": 50,
    "workload": 50,
    "registry": 60,
    "exec": 70,
    "api": 80,
    "top": 90,  # bench / examples / tests / tools: may include anything
}

LAYER_DIRECTIVE_RE = re.compile(r"lint:layer\(([a-z]+)\)")


def include_lines(sf):
    """(line, path) pairs for quoted includes in this file."""
    out = []
    for token in sf.tokens:
        if token.kind != "pp":
            continue
        match = re.match(r'#\s*include\s*"([^"]+)"', token.text)
        if match:
            out.append((token.line, match.group(1)))
    return out


class LayeringRule(TreeRule):
    id = "layering"
    doc = ("include-graph layering: support -> model -> solvers -> core -> "
           "baselines -> graph/workload -> registry -> exec -> api -> top; "
           "a lower layer must not include a higher one")

    @staticmethod
    def layer_of(sf):
        override = LAYER_DIRECTIVE_RE.search(sf.text)
        if override and override.group(1) in LAYER_RANK:
            return override.group(1)
        parts = sf.rel.split(os.sep)
        if parts[0] == "src" and len(parts) > 2 and parts[1] in LAYER_RANK:
            return parts[1]
        return "top"

    @staticmethod
    def layer_of_include(path):
        """Layer of an include target from its path (quoted includes are
        rooted at src/ by the build's -I; same-directory includes carry no
        directory and impose no constraint)."""
        head = path.split("/")[0]
        if head in ("bench", "examples", "tests", "tools"):
            return "top"
        if head in LAYER_RANK:
            return head
        return None

    def check_tree(self, files, strict):
        # include graph between scanned files, for chain witnesses
        by_rel = {sf.rel: sf for sf in files}
        resolved = {}  # rel -> [(line, include_path, target_rel or None)]
        for sf in files:
            entries = []
            for line, path in include_lines(sf):
                candidates = (os.path.join("src", *path.split("/")),
                              os.path.join(*path.split("/")))
                target = next((c for c in candidates if c in by_rel), None)
                entries.append((line, path, target))
            resolved[sf.rel] = entries

        out = []
        for sf in files:
            layer = self.layer_of(sf)
            rank = LAYER_RANK[layer]
            for line, path, target in resolved[sf.rel]:
                inc_layer = self.layer_of_include(path)
                if inc_layer is None or LAYER_RANK[inc_layer] <= rank:
                    continue
                witness = [f"{sf.rel}:{line}: #include \"{path}\" "
                           f"({layer}, rank {rank} -> {inc_layer}, rank "
                           f"{LAYER_RANK[inc_layer]})"]
                witness += self.chain_back(target, layer, resolved, by_rel)
                out.append(Diagnostic(
                    sf.rel, line, self.id,
                    f"layering violation: {layer}/ must not include "
                    f"{inc_layer}/ ({path}); invert the dependency or move "
                    "the shared vocabulary to a lower layer", witness))
        return out

    def chain_back(self, target, includer_layer, resolved, by_rel):
        """If the included file transitively includes something in the
        includer's layer, render that chain -- the concrete cycle."""
        if target is None:
            return []
        parent = {target: None}
        queue = collections.deque([target])
        hit = None
        while queue and hit is None:
            rel = queue.popleft()
            for line, path, nxt in resolved.get(rel, ()):
                if nxt is None or nxt in parent:
                    continue
                parent[nxt] = (rel, line, path)
                if self.layer_of(by_rel[nxt]) == includer_layer:
                    hit = nxt
                    break
                queue.append(nxt)
        if hit is None:
            return []
        chain = []
        cursor = hit
        while parent[cursor] is not None:
            rel, line, path = parent[cursor]
            chain.append(f"{rel}:{line}: #include \"{path}\"")
            cursor = rel
        chain.reverse()
        return [f"  closing the cycle back into {includer_layer}/:"] + chain
