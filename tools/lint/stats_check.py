"""ServiceStats exhaustiveness: a counter added to the struct must reach
every aggregation and serialization point, or it silently reads zero in
the sharded rollup / never appears in bench JSON.

Cross-references, per field of `struct ServiceStats`:

  * the sharded-tier rollup `accumulate_stats(...)` (defined in
    src/api/sharded_service.cpp) must read the field;
  * the JSON serializer `write_service_stats(...)` (src/api/stats_json.cpp,
    used by both bench writers) must emit it -- a member read or a
    string key with the field's name counts;
  * bench/bench_schema.json must name the field (tree mode only; the
    schema is not a C++ file, so the rule opens it directly).

The anchors are self-protecting: in tree mode, a missing struct, rollup
function, serializer, or schema file is itself an error (someone renamed
an anchor and the check would otherwise silently pass forever). In strict
(fixture) mode only the sub-checks whose anchors are present run, which is
how a single-file fixture can seed exactly one missing-field finding.
"""

import os
import re

from .engine import REPO_ROOT, Diagnostic, TreeRule

STRUCT_NAME = "ServiceStats"
ROLLUP_FN = "accumulate_stats"
WRITER_FN = "write_service_stats"
SCHEMA_REL = os.path.join("bench", "bench_schema.json")


def member_reads(fn):
    """Identifiers read through `.` or `->` in the function body."""
    out = set()
    tokens = fn.body_tokens
    for i, token in enumerate(tokens[:-1]):
        if token.kind == "punct" and token.text in (".", "->"):
            nxt = tokens[i + 1]
            if nxt.kind == "id":
                out.add(nxt.text)
    return out


def string_keys(fn):
    """Contents of string literals in the body (JSON key() arguments)."""
    out = set()
    for token in fn.body_tokens:
        if token.kind == "str":
            match = re.search(r'"([^"]*)"', token.text)
            if match:
                out.add(match.group(1))
    return out


class StatsExhaustivenessRule(TreeRule):
    id = "stats-exhaustive"
    doc = ("every ServiceStats field must be summed by accumulate_stats, "
           "emitted by write_service_stats, and named in bench_schema.json")

    def __init__(self, model_cache):
        self.model_cache = model_cache

    def find_function(self, model, name):
        for qualname in model.by_method.get(name, ()):
            fn = model.functions[qualname]
            if fn.body_tokens:
                return fn
        return None

    def check_tree(self, files, strict):
        model = self.model_cache.get(files)
        out = []

        struct = model.classes.get(STRUCT_NAME)
        if struct is None:
            if not strict:
                out.append(Diagnostic(
                    "src", 0, self.id,
                    f"anchor missing: no `struct {STRUCT_NAME}` found in the "
                    "tree (renamed? update tools/lint/stats_check.py)"))
            return out

        rollup = self.find_function(model, ROLLUP_FN)
        writer = self.find_function(model, WRITER_FN)
        schema_path = os.path.join(REPO_ROOT, SCHEMA_REL)
        schema_keys = None
        if not strict:
            for fn, label in ((rollup, ROLLUP_FN), (writer, WRITER_FN)):
                if fn is None:
                    out.append(Diagnostic(
                        struct.rel, struct.line, self.id,
                        f"anchor missing: no definition of {label}() in the "
                        "tree (renamed? update tools/lint/stats_check.py)"))
            if os.path.exists(schema_path):
                with open(schema_path, encoding="utf-8") as handle:
                    schema_keys = set(re.findall(r'"([^"]+)"', handle.read()))
            else:
                out.append(Diagnostic(
                    SCHEMA_REL, 0, self.id,
                    "anchor missing: bench_schema.json not found"))

        rolled = member_reads(rollup) if rollup is not None else None
        written = (member_reads(writer) | string_keys(writer)
                   if writer is not None else None)

        for field in struct.fields.values():
            checks = (
                (rolled, f"not rolled up by {ROLLUP_FN}(); a sharded-tier "
                         "stats() call will report 0 for it"),
                (written, f"not serialized by {WRITER_FN}(); bench JSON "
                          "will silently omit it"),
                (schema_keys, f"not named in {SCHEMA_REL}; the schema no "
                              "longer describes the bench output"),
            )
            for seen, why in checks:
                if seen is not None and field.name not in seen:
                    out.append(Diagnostic(
                        struct.rel, field.line, self.id,
                        f"{STRUCT_NAME}.{field.name} {why}",
                        [f"declared at {struct.rel}:{field.line}"]))
        return out
