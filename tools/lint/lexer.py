"""Comment/string/raw-string-aware C++ tokenizer shared by every lint rule.

One pass over the source text produces:

  * a token stream (`Token(kind, text, line)`) for the structural analyses
    (lock-order graph, layering DAG, stats exhaustiveness), and
  * `code_lines`, a comment- and literal-stripped rendering with the
    original line structure, for the line-oriented convention rules that
    were ported from the pre-package linter (their regexes must never fire
    on prose or quoted examples).

Handled: // and /* */ comments (including line-continuation inside a //
comment), "..." and '...' literals with escapes, encoding-prefixed and raw
string literals R"delim(...)delim" (newlines preserved for line counting),
backslash-newline line splices, preprocessor directives folded into single
'pp' tokens (continuations and raw strings inside a directive do not end
it), and the ISO 646 digraphs (<% %> <: :> %:), normalized to their
canonical spellings.

Token kinds:
  id     identifier or keyword
  num    numeric literal (pp-number)
  str    string literal (text includes quotes; raw strings included)
  chr    character literal
  punct  operator/punctuator, multi-character forms kept whole
  pp     one whole preprocessor directive (text has comments blanked,
         string CONTENTS kept -- include paths must survive for the
         layering analysis -- and splices collapsed to spaces)
"""

import collections
import re

Token = collections.namedtuple("Token", ("kind", "text", "line"))

# Longest-match-first alternation; re.S so block comments and raw strings
# may span lines. The str/chr arms tolerate an unterminated literal at
# end-of-line (they stop there) so one bad line cannot eat the whole file.
_MASTER = re.compile(
    r"""
    (?P<lcom>//(?:\\\r?\n|[^\n])*)
  | (?P<bcom>/\*.*?(?:\*/|\Z))
  | (?P<raw>(?:u8|u|U|L)?R"(?P<rdelim>[^()\\\s"]{0,16})\(.*?\)(?P=rdelim)")
  | (?P<str>(?:u8|u|U|L)?"(?:\\\r?\n|\\.|[^"\\\n])*(?:"|(?=\n)|\Z))
  | (?P<chr>(?:u8|u|U|L)?'(?:\\.|[^'\\\n])*(?:'|(?=\n)|\Z))
  | (?P<id>[A-Za-z_]\w*)
  | (?P<num>\.?\d(?:['\w.]|[eEpP][+-])*)
  | (?P<nl>\r?\n)
  | (?P<ws>[ \t\v\f]+)
  | (?P<cont>\\\r?\n)
  | (?P<punct><<=|>>=|\.\.\.|->\*|::|->|<<|>>|<=|>=|==|!=|&&|\|\||\+\+|--|
        \+=|-=|\*=|/=|%=|&=|\^=|\|=|<%|%>|<:|:>|%:%:|%:|.)
    """,
    re.S | re.X)

_DIGRAPHS = {"<%": "{", "%>": "}", "<:": "[", ":>": "]", "%:": "#", "%:%:": "##"}

# Inside a captured preprocessor directive: blank comments, collapse
# splices. String/char contents are KEPT (the layering analysis reads
# #include "dir/file.hpp" paths out of the pp token text).
_PP_CLEAN = re.compile(r"/\*.*?(?:\*/|\Z)|//[^\n]*|\\\r?\n", re.S)


def lex(text):
    """Tokenize C++ source. Returns (tokens, code_lines) where code_lines
    is the stripped per-line rendering described in the module doc."""
    n_lines = text.count("\n") + 1
    rendered = [[] for _ in range(n_lines)]
    tokens = []

    line = 1
    pos = 0
    n = len(text)
    pp_parts = None  # accumulating a preprocessor directive
    pp_line = 0
    at_line_start = True  # only whitespace seen since the last newline

    def flush_pp():
        nonlocal pp_parts
        if pp_parts is None:
            return
        directive = _PP_CLEAN.sub(" ", "".join(pp_parts)).rstrip()
        tokens.append(Token("pp", directive, pp_line))
        # Render the whole (possibly spliced) directive on its first line;
        # the physical lines it spanned stay blank, like a block comment.
        rendered[pp_line - 1].append(directive)
        pp_parts = None

    while pos < n:
        match = _MASTER.match(text, pos)
        kind = match.lastgroup
        raw = match.group()
        pos = match.end()

        if kind == "nl":
            flush_pp()
            line += 1
            at_line_start = True
            continue
        if kind == "ws":
            if pp_parts is not None:
                pp_parts.append(raw)
            elif not at_line_start:
                rendered[line - 1].append(" ")
            continue
        if kind == "cont":
            if pp_parts is not None:
                pp_parts.append(raw)
            line += raw.count("\n")
            continue
        if kind in ("lcom", "bcom"):
            # Comments are transparent to at_line_start: `/* c */ #if` is
            # still a directive, and a // comment runs to the newline anyway.
            line += raw.count("\n")
            if kind == "lcom" and pp_parts is not None:
                flush_pp()
            continue

        if pp_parts is not None:
            pp_parts.append(raw)
            line += raw.count("\n")
            continue

        if kind == "punct":
            canonical = _DIGRAPHS.get(raw, raw)
            if canonical in ("#", "##") and at_line_start:
                pp_parts = [canonical]
                pp_line = line
                at_line_start = False
                continue
            tokens.append(Token("punct", canonical, line))
            rendered[line - 1].append(canonical)
        elif kind in ("raw", "str", "chr"):
            tokens.append(Token("str" if kind == "raw" else kind, raw, line))
            # Literals are blanked from the rendering (convention rules must
            # not fire on quoted examples), newlines inside kept for counts.
            line += raw.count("\n")
        else:  # id / num
            tokens.append(Token(kind, raw, line))
            rendered[line - 1].append(raw)
        at_line_start = False

    flush_pp()
    code_lines = ["".join(_join(parts)) for parts in rendered]
    return tokens, code_lines


def _join(parts):
    """Glue rendered fragments; a lone ' ' marker separates tokens."""
    out = []
    for part in parts:
        if part == " ":
            if out and not out[-1].endswith(" "):
                out.append(" ")
        else:
            if out and out[-1] and not out[-1].endswith(" ") and part:
                # keep identifiers from fusing when a literal sat between
                prev, cur = out[-1][-1], part[0]
                if (prev.isalnum() or prev == "_") and (cur.isalnum() or cur == "_"):
                    out.append(" ")
            out.append(part)
    return out


def code_tokens(tokens):
    """The structural view: every token except preprocessor directives."""
    return [t for t in tokens if t.kind != "pp"]


def includes(tokens):
    """Quoted-include targets as (line, path) pairs, from pp tokens."""
    out = []
    for token in tokens:
        if token.kind != "pp":
            continue
        match = re.match(r'#\s*include\s*"([^"]+)"', token.text)
        if match:
            out.append((token.line, match.group(1)))
    return out
