"""Static lock-order (deadlock) analysis over the whole tree.

Builds a lock-ordering digraph from the cpp_model extraction:

  * a LockGuard acquired while other guards are live adds an edge
    held -> acquired (per nesting pair, with the file:line witness);
  * MALSCHED_REQUIRES(m) puts m in the held set for the whole body;
  * a call made while holding locks adds held -> a for every lock `a`
    the callee may acquire (its own guards plus, transitively, those of
    everything it calls -- a fixpoint over the call graph). Lambdas are
    deferred execution and contribute nothing at the construction site.

Mutex identity is per class (`SchedulerService::mutex_`) or per file for
locals and unresolved expressions (`src/model/instance_handle.cpp:table.mutex`).
Per-class keys cannot tell two instances apart, so call-mediated
self-edges (h -> h via a call) are dropped instead of reported; a DIRECT
self-nesting (two guards on the same key in one body) is kept -- that is
a relock, real regardless of instance identity.

The intended order is declared where the lock vocabulary lives
(src/support/mutex.hpp) with comment directives:

    // lint:lock-order(SchedulerService::mutex_ -> WorkerPool::mutex_)

Arrow chains declare consecutive pairs. The analysis then reports:

  * `lock-order` -- a cycle in the OBSERVED graph, with the witness path
    (this is the static-deadlock finding; a declared-order cycle is also
    reported, anchored at the declaration);
  * `lock-order-undeclared` -- an observed edge not covered by the
    transitive closure of the declarations (skipped for edges already
    inside a reported cycle: the cycle is the actionable finding there).
"""

import collections
import re

from . import cpp_model
from .engine import Diagnostic, TreeRule

DECLARE_RE = re.compile(r"lint:lock-order\(([^)]+)\)")

_SKIP_RECEIVERS = frozenset({"std", "<skip>"})


class Edge:
    __slots__ = ("src", "dst", "rel", "line", "why")

    def __init__(self, src, dst, rel, line, why):
        self.src = src
        self.dst = dst
        self.rel = rel
        self.line = line
        self.why = why

    def witness(self):
        return f"{self.rel}:{self.line}: {self.src} held -> acquires {self.dst} ({self.why})"


class LockOrderRule(TreeRule):
    id = "lock-order"
    doc = ("static deadlock check: LockGuard nesting + REQUIRES/call graph "
           "vs the hierarchy declared via lint:lock-order(...) in "
           "support/mutex.hpp")

    def __init__(self, model_cache):
        self.model_cache = model_cache

    # --------------------------------------------------------- resolution

    def resolve(self, expr, fn, model):
        """Map a guard/annotation expression to a stable mutex key."""
        parts = [p for p in re.split(r"\.|->", expr) if p]
        if not parts:
            return None
        if len(parts) == 1:
            name = parts[0]
            if name in fn.locals:
                return f"{fn.rel}:{name}"
            if fn.cls:
                return f"{fn.cls}::{name}"
            return f"{fn.rel}:{name}"
        base, member = parts[0], parts[-1]
        base_type = self.base_type(base, fn, model)
        if base_type:
            return f"{base_type}::{member}"
        return f"{fn.rel}:{'.'.join(parts)}"

    @staticmethod
    def base_type(base, fn, model):
        if base == "this":
            return fn.cls
        local = fn.locals.get(base)
        if local and local != "auto":
            return local
        cls = model.classes.get(fn.cls) if fn.cls else None
        if cls is not None and base in cls.fields:
            return cls.fields[base].type
        if base in model.classes:
            return base  # Class::static_member / Class::method form
        return None

    def resolve_call(self, ev, fn, model):
        """Callee qualname, or None when the target is not in the model."""
        if ev.receiver in _SKIP_RECEIVERS:
            return None
        if ev.receiver == "":
            if fn.cls and f"{fn.cls}::{ev.name}" in model.functions:
                return f"{fn.cls}::{ev.name}"
            if ev.name in model.functions:
                return ev.name
            return None
        base_type = self.base_type(ev.receiver, fn, model)
        if base_type is None:
            return None
        qualname = f"{base_type}::{ev.name}"
        return qualname if qualname in model.functions else None

    # --------------------------------------------------------- acquisitions

    def effective_acquires(self, model):
        """Fixpoint: locks each function may take, directly or via calls.
        Lambda bodies are separate functions; nobody 'calls' them here, so
        their acquisitions stay out of every call site (deferred)."""
        own = {}
        calls = {}
        for qualname, fn in model.functions.items():
            acquired = set()
            for ev in fn.events:
                if ev.kind == "guard":
                    key = self.resolve(ev.expr, fn, model)
                    if key:
                        acquired.add(key)
            # Annotation-declared acquisitions count only when they name a
            # real data member (a parameter name would mint a phantom key).
            cls = model.classes.get(fn.cls) if fn.cls else None
            for expr in fn.acquires_ann:
                leaf = re.split(r"\.|->", expr)[-1]
                if cls is not None and leaf in cls.fields:
                    acquired.add(f"{fn.cls}::{leaf}")
            own[qualname] = acquired
            calls[qualname] = {
                callee for callee in
                (self.resolve_call(ev, fn, model)
                 for ev in fn.events if ev.kind == "call")
                if callee is not None}

        eff = {qualname: set(acq) for qualname, acq in own.items()}
        changed = True
        while changed:
            changed = False
            for qualname, callees in calls.items():
                bucket = eff[qualname]
                before = len(bucket)
                for callee in callees:
                    bucket |= eff[callee]
                changed = changed or len(bucket) != before
        return eff

    def collect_edges(self, model):
        eff = self.effective_acquires(model)
        edges = []
        for qualname, fn in model.functions.items():
            held0 = []
            for expr in fn.requires:
                key = self.resolve(expr, fn, model)
                if key:
                    held0.append(key)
            stack = []  # (key, depth)
            for ev in fn.events:
                if ev.kind == "scope-end":
                    while stack and stack[-1][1] > ev.depth:
                        stack.pop()
                    continue
                held = held0 + [key for key, _ in stack]
                if ev.kind == "guard":
                    key = self.resolve(ev.expr, fn, model)
                    if not key:
                        continue
                    for h in held:
                        edges.append(Edge(h, key, fn.rel, ev.line,
                                          f"guard nesting in {qualname}"))
                    stack.append((key, ev.depth))
                elif ev.kind == "call" and held:
                    callee = self.resolve_call(ev, fn, model)
                    if callee is None:
                        continue
                    for acquired in eff.get(callee, ()):
                        for h in held:
                            if acquired == h:
                                continue  # per-class keys: instance unknown
                            edges.append(Edge(h, acquired, fn.rel, ev.line,
                                              f"{qualname} calls {callee}"))
        return edges

    # --------------------------------------------------------- declarations

    @staticmethod
    def declared_order(files):
        """(declared_pairs, sites): pairs from every lint:lock-order(...)
        chain; sites anchor declaration-level diagnostics."""
        pairs = set()
        sites = []
        for sf in files:
            for lineno, line in enumerate(sf.raw_lines, 1):
                for chain_text in DECLARE_RE.findall(line):
                    chain = [part.strip() for part in chain_text.split("->")]
                    chain = [part for part in chain if part]
                    for a, b in zip(chain, chain[1:]):
                        pairs.add((a, b))
                    sites.append((sf.rel, lineno, chain))
        return pairs, sites

    @staticmethod
    def closure(pairs):
        succ = collections.defaultdict(set)
        for a, b in pairs:
            succ[a].add(b)
        changed = True
        while changed:
            changed = False
            for a in list(succ):
                extra = set()
                for b in succ[a]:
                    extra |= succ.get(b, set())
                if not extra <= succ[a]:
                    succ[a] |= extra
                    changed = True
        return succ

    # --------------------------------------------------------- reporting

    def check_tree(self, files, strict):
        model = self.model_cache.get(files)
        edges = self.collect_edges(model)
        declared, sites = self.declared_order(files)
        out = []

        graph = collections.defaultdict(set)
        by_pair = collections.OrderedDict()
        for edge in edges:
            graph[edge.src].add(edge.dst)
            by_pair.setdefault((edge.src, edge.dst), edge)

        in_cycle = set()
        for component in self.cyclic_sccs(graph):
            cycle_path = self.cycle_path(component, graph)
            witness = []
            for a, b in zip(cycle_path, cycle_path[1:]):
                edge = by_pair[(a, b)]
                witness.append(edge.witness())
                in_cycle.add((a, b))
            anchor = by_pair[(cycle_path[0], cycle_path[1])]
            out.append(Diagnostic(
                anchor.rel, anchor.line, "lock-order",
                "static deadlock: lock acquisition cycle "
                + " -> ".join(cycle_path), witness))

        closure = self.closure(declared)
        for (a, b), edge in by_pair.items():
            if (a, b) in in_cycle:
                continue
            if b in closure.get(a, ()):
                continue
            out.append(Diagnostic(
                edge.rel, edge.line, "lock-order-undeclared",
                f"lock ordering {a} -> {b} is not declared; add "
                "lint:lock-order(...) to src/support/mutex.hpp (or fix the "
                "nesting) so the hierarchy stays reviewable",
                [edge.witness()]))

        declared_graph = collections.defaultdict(set)
        for a, b in declared:
            declared_graph[a].add(b)
        for component in self.cyclic_sccs(declared_graph):
            rel, lineno = sites[0][0], sites[0][1]
            out.append(Diagnostic(
                rel, lineno, "lock-order",
                "declared lock hierarchy is cyclic: "
                + " -> ".join(self.cycle_path(component, declared_graph))))
        return out

    @staticmethod
    def cyclic_sccs(graph):
        """Tarjan SCCs that contain a cycle (size > 1, or a self-loop)."""
        index = {}
        low = {}
        on_stack = set()
        stack = []
        counter = [0]
        sccs = []

        def strongconnect(v):
            # iterative Tarjan (fixtures are tiny but the tree is not)
            work = [(v, iter(sorted(graph.get(v, ()))))]
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            while work:
                node, children = work[-1]
                advanced = False
                for child in children:
                    if child not in index:
                        index[child] = low[child] = counter[0]
                        counter[0] += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(sorted(graph.get(child, ())))))
                        advanced = True
                        break
                    if child in on_stack:
                        low[node] = min(low[node], index[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    sccs.append(component)

        vertices = set(graph)
        for targets in graph.values():
            vertices |= targets
        for v in sorted(vertices):
            if v not in index:
                strongconnect(v)

        cyclic = []
        for component in sccs:
            if len(component) > 1 or component[0] in graph.get(component[0], ()):
                cyclic.append(sorted(component))
        return cyclic

    @staticmethod
    def cycle_path(component, graph):
        """A concrete closed walk through the SCC, e.g. [A, B, A]. BFS so
        every step is a real edge (a witness exists for each pair)."""
        members = set(component)
        start = component[0]
        if start in graph.get(start, ()):
            return [start, start]
        parent = {start: None}
        queue = collections.deque([start])
        while queue:
            node = queue.popleft()
            for nxt in sorted(graph.get(node, ())):
                if nxt == start and node != start:
                    path = []
                    cursor = node
                    while cursor is not None:
                        path.append(cursor)
                        cursor = parent[cursor]
                    path.reverse()
                    return path + [start]
                if nxt in members and nxt not in parent:
                    parent[nxt] = node
                    queue.append(nxt)
        return [start, start]  # cannot happen for a true SCC
