"""malsched static-analysis package (standard library only).

Grown from the single-file tools/lint_repo.py: each C++ file is lexed
exactly once by lexer.py and the token stream is shared by every rule
(plugin-style classes in token_rules.py plus the cross-file analyses in
lock_order.py / layering.py / stats_check.py built on cpp_model.py).

Entry point: cli.main() -- tools/lint_repo.py is a thin shim over it, so
`python3 tools/lint_repo.py` keeps working unchanged.
"""
